//! Quickstart: parse a program, run the points-to analysis, and ask
//! Thresher a refined heap-reachability question.
//!
//! Run with: `cargo run -p thresher --example quickstart`

use thresher::{ReachabilityAnswer, Thresher};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a guarded (dead) store and a real store. The
    // flow-insensitive points-to analysis cannot tell them apart; the
    // refutation engine can.
    let program = tir::parse(
        r#"
class Box { field item: Object; }
global CACHE: Box;
global MODE: int;
fn main() {
  var b: Box;
  var secret: Object;
  var s: Object;
  var m: int;
  b = new Box @box0;
  secret = new Object @secret0;
  s = new Object @str0;
  $MODE = 0;
  m = $MODE;
  if (m == 1) {
    b.item = secret;
  }
  b.item = s;
  $CACHE = b;
}
entry main;
"#,
    )?;

    let thresher = Thresher::new(&program);

    println!("flow-insensitive points-to graph:");
    print!("{}", thresher.points_to().dump(&program));
    println!();

    for target in ["str0", "secret0"] {
        let answer = thresher.query_reachable("CACHE", target);
        match &answer {
            ReachabilityAnswer::Reachable { path, .. } => {
                println!("CACHE ~> {target}: REACHABLE via {} edge(s)", path.len());
                for e in path {
                    println!("    {}", e.describe(&program, thresher.points_to()));
                }
            }
            ReachabilityAnswer::Refuted { refuted_edges } => {
                println!("CACHE ~> {target}: REFUTED ({} edge(s) severed)", refuted_edges.len());
            }
        }
    }
    Ok(())
}
