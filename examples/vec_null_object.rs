//! The paper's running example (Figures 1 and 2): the `Vec` null-object
//! pattern.
//!
//! All fresh `Vec`s share one static `EMPTY` backing array. The code is
//! carefully written never to store into it, but a flow-insensitive
//! points-to analysis cannot see that, so the graph claims the shared array
//! may contain the `Act` activity — the false alarm of §2. The refutation
//! requires path-sensitivity (the `sz < cap` branch condition against the
//! constructor's `sz = 0, cap = -1`), context-sensitivity (two `push` call
//! sites), and strong updates — which the witness-refutation search
//! provides on demand.
//!
//! Run with: `cargo run -p thresher --example vec_null_object`

use apps::figures;
use thresher::Thresher;

fn main() {
    let program = figures::fig1();
    println!("== Figure 1 program ==\n{}", tir::print_program(&program));

    let thresher = Thresher::new(&program);
    println!("== Figure 2: the flow-insensitive points-to graph ==");
    print!("{}", thresher.points_to().dump(&program));
    println!();

    // The false alarm: EMPTY ~> act0 (through arr0.contents).
    for (global, target, expectation) in [
        ("EMPTY", "act0", "refuted — the §2 walkthrough"),
        ("EMPTY", "hello0", "refuted — nothing is ever stored in EMPTY"),
        ("OBJS", "hello0", "reachable — hello really is pushed into OBJS"),
    ] {
        let answer = thresher.query_reachable(global, target);
        println!(
            "{global} ~> {target}: {} (expected: {expectation})",
            if answer.is_reachable() { "REACHABLE" } else { "REFUTED" }
        );
    }
}
