//! The §1 encapsulation client: statically check that instances of a class
//! never escape to a static field, with refutation-backed precision.
//!
//! Run with: `cargo run -p thresher --example escape_check`

use thresher::Thresher;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A connection pool that hands out wrappers but must never let the raw
    // `Connection` escape to a static field. A debug-only code path would
    // leak it — but that path is dead, and Thresher proves it.
    let program = tir::parse(
        r#"
class Connection { }
class Wrapper { field conn: Connection; }
class Pool { field current: Connection; }
global DEBUG_SINK: Object;
global POOL: Pool;
global DEBUG_ENABLED: int;

fn acquire(p: Pool): Wrapper {
  var c: Connection;
  var w: Wrapper;
  var d: int;
  c = new Connection @conn0;
  p.current = c;
  w = new Wrapper @wrap0;
  w.conn = c;
  d = $DEBUG_ENABLED;
  if (d == 1) {
    $DEBUG_SINK = c;
  }
  return w;
}

fn main() {
  var p: Pool;
  var w: Wrapper;
  $DEBUG_ENABLED = 0;
  p = new Pool @pool0;
  $POOL = p;
  w = call acquire(p);
}
entry main;
"#,
    )?;

    let thresher = Thresher::new(&program);
    let checker = thresher.escape_checker();

    let conn = program.class_by_name("Connection").unwrap();
    let report = checker.check_class(conn);
    println!(
        "Connection escapes: {} (refuted pairs: {}, edges refuted: {})",
        !report.is_encapsulated(),
        report.refuted_pairs,
        report.edges_refuted
    );
    for e in &report.escapes {
        println!(
            "  escape via {} -> {}",
            program.global(e.global).name,
            thresher.points_to().loc_name(&program, e.target)
        );
    }

    // Note the contrast: the flow-insensitive graph *does* contain the
    // debug edge...
    println!("\nflow-insensitive graph:");
    print!("{}", thresher.points_to().dump(&program));
    println!("\n...but the DEBUG_SINK path is dead (DEBUG_ENABLED is never 1),");
    println!("and POOL.current keeps the connection reachable only through the");
    println!("pool object, which IS an escape — unless we only ask about the");
    println!("debug sink:");
    let wrapped = checker.check_site("conn0");
    println!(
        "conn0 escape check: encapsulated={} ({} pairs refuted)",
        wrapped.is_encapsulated(),
        wrapped.refuted_pairs
    );
    Ok(())
}
