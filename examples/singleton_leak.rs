//! The Figure 5 leak: K9Mail's `EmailAddressAdapter` singleton.
//!
//! `getInstance(context)` caches an adapter in a static field; the activity
//! passed as `context` travels through two superclass constructors into the
//! adapter's `mContext` field, making the activity reachable from a static
//! field forever — a confirmed real leak. Thresher *witnesses* (does not
//! refute) the alarm and prints the path program for triage.
//!
//! Run with: `cargo run -p thresher --example singleton_leak`

use android::{harness::ActivitySpec, library, AlarmResult};
use tir::{CmpOp, Cond, Operand, ProgramBuilder, Ty};

fn main() {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let adapter = b.class("EmailAddressAdapter", Some(lib.resource_cursor_adapter));
    let s_instance = b.global("EmailAddressAdapter.sInstance", Ty::Ref(adapter));

    let get_instance = b.method(
        None,
        "getInstance",
        &[("context", Ty::Ref(lib.context))],
        Some(Ty::Ref(adapter)),
        |mb| {
            let ctx = mb.param(0);
            let cur = mb.var("cur", Ty::Ref(adapter));
            let fresh = mb.var("fresh", Ty::Ref(adapter));
            let out = mb.var("out", Ty::Ref(adapter));
            mb.read_global(cur, s_instance);
            mb.if_then(Cond::cmp(CmpOp::Eq, cur, Operand::Null), |mb| {
                mb.new_obj(fresh, adapter, "adr0");
                mb.call_static(
                    None,
                    lib.resource_cursor_adapter_ctor,
                    &[Operand::Var(fresh), Operand::Var(ctx)],
                );
                mb.write_global(s_instance, fresh);
            });
            mb.read_global(out, s_instance);
            mb.ret(out);
        },
    );

    let compose = b.class("MessageCompose", Some(lib.activity));
    b.method(Some(compose), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let a = mb.var("a", Ty::Ref(adapter));
        mb.call_static(Some(a), get_instance, &[Operand::Var(this)]);
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(compose, "act0")]);
    let program = b.finish();

    let report = android::ActivityLeakChecker::new(&program).check();
    println!(
        "alarms={} refuted={} (expected: the singleton leak survives)",
        report.num_alarms(),
        report.num_refuted()
    );
    for (alarm, result) in &report.alarms {
        match result {
            AlarmResult::Witnessed { path, witness } => {
                println!("LEAK {} ~> activity:", program.global(alarm.field).name);
                for _e in path {
                    println!("    edge survives refutation");
                }
                if let Some(w) = witness {
                    println!("  witness path program: {}", w.describe(&program));
                }
            }
            AlarmResult::Refuted => {
                println!("filtered: {}", program.global(alarm.field).name);
            }
        }
    }
}
