//! The Figure 3 example: taming aliasing path explosion with `from`
//! instance constraints.
//!
//! Backwards across `z = y.f`, the engine learns `ẑ from pt(y.f)`; across
//! the potentially-aliasing write `x.f = p` it case-splits into an aliased
//! case (`ẑ` further narrowed by `pt(p)`) and a disaliased case — and both
//! narrowings can refute a query long before reaching any allocation site.
//! This example shows the per-edge statistics under the mixed and the
//! fully-symbolic representations.
//!
//! Run with: `cargo run -p thresher --example aliasing_from_constraints`

use apps::figures;
use thresher::{Representation, SymexConfig, Thresher};

fn main() {
    let program = figures::fig3();
    println!("== Figure 3 program ==\n{}", tir::print_program(&program));

    for repr in [Representation::Mixed, Representation::FullySymbolic] {
        let config = SymexConfig::default().with_representation(repr);
        let thresher =
            Thresher::with_setup(&program, thresher::PointsToPolicy::Insensitive, config);
        // OUT may point to a0 (the direct store) and to a1 (read out of
        // x.f through the possible alias y = x).
        let mut total_paths = 0;
        for target in ["a0", "a1"] {
            let answer = thresher.query_reachable("OUT", target);
            println!(
                "[{repr:?}] OUT ~> {target}: {}",
                if answer.is_reachable() { "REACHABLE" } else { "REFUTED" }
            );
        }
        // Per-edge stats for the interesting contents edge.
        let pta = thresher.points_to();
        let n_class = program.class_by_name("N").unwrap();
        let f = program.resolve_field(n_class, "f").unwrap();
        for base_name in ["nx", "ny"] {
            let Some(base) = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == base_name)
            else {
                continue;
            };
            for t in pta.pt_field(base, f).iter() {
                let edge = pta::HeapEdge::Field { base, field: f, target: pta::LocId(t as u32) };
                let (out, stats) = thresher.refute_edge(&edge);
                total_paths += stats.path_programs;
                println!(
                    "[{repr:?}] edge {}: {:?} ({} path programs)",
                    edge.describe(&program, pta),
                    match out {
                        symex::SearchOutcome::Refuted => "refuted",
                        symex::SearchOutcome::Witnessed(_) => "witnessed",
                        symex::SearchOutcome::Aborted(_) => "aborted",
                    },
                    stats.path_programs
                );
            }
        }
        println!("[{repr:?}] total path programs: {total_paths}\n");
    }
}
