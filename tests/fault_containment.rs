//! Corpus-wide fault containment: under tiny budgets and short deadlines
//! the analysis must degrade (abort per edge) rather than crash, and the
//! resilient driver must never lose a refutation the strict seed
//! configuration finds.

use std::fs;
use std::time::Duration;

use pta::{ContextPolicy, HeapEdge, LocId, ModRef, PtaResult};
use symex::{Engine, SearchOutcome, StopReason, SymexConfig};
use tir::Program;

fn corpus_dir() -> std::path::PathBuf {
    // Tests run from the crate dir (crates/core); the corpus lives at the
    // workspace root.
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("corpus");
    p
}

fn corpus_programs() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for entry in fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("tir") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("read");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let program = tir::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        out.push((name, program));
    }
    assert!(out.len() >= 10, "expected the full corpus, found {}", out.len());
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Every may edge of the flow-insensitive heap graph: field edges from
/// `heap_entries` plus global edges from the global points-to sets.
fn all_edges(program: &Program, pta: &PtaResult) -> Vec<HeapEdge> {
    let mut edges = Vec::new();
    for (base, field, targets) in pta.heap_entries() {
        for t in targets.iter() {
            edges.push(HeapEdge::Field { base, field, target: LocId(t as u32) });
        }
    }
    for global in program.global_ids() {
        for t in pta.pt_global(global).iter() {
            edges.push(HeapEdge::Global { global, target: LocId(t as u32) });
        }
    }
    edges
}

/// Per-file cap so the sweep stays fast on the bigger apps.
const EDGE_CAP: usize = 25;

#[test]
fn corpus_sweeps_under_pressure_without_crashing() {
    for (name, program) in corpus_programs() {
        let pta = pta::analyze(&program, ContextPolicy::Insensitive);
        let modref = ModRef::compute(&program, &pta);
        let cfg =
            SymexConfig::default().with_budget(20).with_edge_deadline(Duration::from_millis(5));
        let mut engine = Engine::new(&program, &pta, &modref, cfg);
        for edge in all_edges(&program, &pta).into_iter().take(EDGE_CAP) {
            let decision = engine.refute_edge_resilient(&edge);
            // Totality: the driver must return one of the three outcome
            // kinds (never panic, never hang past its deadlines).
            match decision.outcome {
                SearchOutcome::Refuted
                | SearchOutcome::Witnessed(_)
                | SearchOutcome::Aborted(_) => {}
            }
            assert!(decision.attempts >= 1, "{name}: zero attempts recorded");
        }
    }
}

#[test]
fn resilient_driver_never_flips_a_seed_refutation() {
    for (name, program) in corpus_programs() {
        let pta = pta::analyze(&program, ContextPolicy::Insensitive);
        let modref = ModRef::compute(&program, &pta);
        for edge in all_edges(&program, &pta).into_iter().take(EDGE_CAP) {
            // Seed behavior: a strict single pass under the default config
            // (fresh engine per edge, like `Thresher::refute_edge`).
            let mut strict = Engine::new(&program, &pta, &modref, SymexConfig::default());
            if !strict.refute_edge(&edge).is_refuted() {
                continue;
            }
            let mut resilient = Engine::new(&program, &pta, &modref, SymexConfig::default());
            let decision = resilient.refute_edge_resilient(&edge);
            assert!(
                decision.outcome.is_refuted(),
                "{name}: resilient driver lost a seed refutation of {edge:?}"
            );
        }
    }
}

#[test]
fn escape_checker_survives_injected_panic() {
    let program = tir::parse(
        r#"
class Box { field item: Object; }
global CACHE: Box;
fn main() {
  var b: Box;
  var s: Object;
  b = new Box @box0;
  s = new Object @secret0;
  b.item = s;
  $CACHE = b;
}
entry main;
"#,
    )
    .expect("parse");
    let mut cfg = SymexConfig::default().with_degrade(false);
    cfg.inject_panic_on_new = Some("box0".into());
    let t = thresher::Thresher::with_setup(&program, ContextPolicy::Insensitive, cfg);
    // The injected fault panics inside every search that reaches box0's
    // allocation; the checker must finish anyway and account for it.
    let report = t.escape_checker().check_site("secret0");
    assert!(report.aborts.panic >= 1, "expected contained panics, got {:?}", report.aborts);
    // Aborted edges are conservatively kept, so the pair is not proven
    // encapsulated — degraded precision, not a crash.
    assert!(!report.is_encapsulated());
}

#[test]
fn escape_checker_ladder_recovers_from_injected_panic() {
    // A false `box0.item -> secret0` edge whose refutation must walk back
    // through box0's allocation (the store's value has an unresolved
    // `from` constraint until then), so the injected fault fires on the
    // strict pass; the ladder strips it and refutes coarsely.
    let program = tir::parse(
        r#"
class Box { field item: Object; field other: Box; }
global PUB: Box;
fn main() {
  var b: Box;
  var u: Object;
  var s: Object;
  var i: int;
  b = new Box @box0;
  u = new Object @pub0;
  i = 0;
  while (i < 3) {
    b.other = b;
    i = i + 1;
  }
  s = new Object @secret0;
  b.item = u;
  u = s;
  $PUB = b;
}
entry main;
"#,
    )
    .expect("parse");
    let cfg = SymexConfig { inject_panic_on_new: Some("box0".into()), ..SymexConfig::default() };
    let t = thresher::Thresher::with_setup(&program, ContextPolicy::Insensitive, cfg);
    let report = t.escape_checker().check_site("secret0");
    assert!(report.is_encapsulated(), "ladder should recover the refutation");
    assert!(report.degraded_decisions >= 1);
    assert!(report.retries >= 1);
}

#[test]
fn zero_engine_deadline_degrades_whole_corpus_run() {
    // A zero total deadline must not crash or hang: every edge aborts
    // with WallClock (the ladder is skipped once the engine deadline is
    // past) and the sweep completes immediately.
    let (name, program) = &corpus_programs()[0];
    let pta = pta::analyze(program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(program, &pta);
    let cfg = SymexConfig::default().with_total_deadline(Duration::ZERO);
    let mut engine = Engine::new(program, &pta, &modref, cfg);
    for edge in all_edges(program, &pta).into_iter().take(EDGE_CAP) {
        let decision = engine.refute_edge_resilient(&edge);
        match decision.outcome {
            SearchOutcome::Aborted(StopReason::WallClock) => {}
            SearchOutcome::Refuted => {
                // Vacuous edges (no producers) refute before any charge;
                // that is fine — refutation is always sound to report.
            }
            other => {
                panic!("{name}: expected WallClock abort or vacuous refutation, got {other:?}")
            }
        }
        assert!(!decision.degraded, "{name}: ladder must not run past the engine deadline");
    }
}

#[test]
fn pressured_outcomes_are_a_subset_flip_to_abort_only() {
    // Degrading pressure may turn decisions into aborts, but it must not
    // invent refutations of edges the seed config witnesses, nor flip
    // refuted edges to witnessed. (Aborts in either direction are fine.)
    let (_, program) = &corpus_programs()[0];
    let pta = pta::analyze(program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(program, &pta);
    for edge in all_edges(program, &pta).into_iter().take(EDGE_CAP) {
        let mut seed = Engine::new(program, &pta, &modref, SymexConfig::default());
        let seed_out = seed.refute_edge(&edge);
        let cfg =
            SymexConfig::default().with_budget(20).with_edge_deadline(Duration::from_millis(5));
        let mut pressured = Engine::new(program, &pta, &modref, cfg);
        let out = pressured.refute_edge_resilient(&edge).outcome;
        match (&seed_out, &out) {
            (SearchOutcome::Refuted, SearchOutcome::Witnessed(_)) => {
                panic!("pressure flipped a refutation to a witness for {edge:?}")
            }
            (SearchOutcome::Witnessed(_), SearchOutcome::Refuted) => {
                panic!("pressure invented a refutation for witnessed {edge:?}")
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Persistent-cache fault containment: a damaged `decisions.jsonl` must
// degrade the run to cold — never panic, never change an answer.

/// Decides the capped canonical edge set of `program` through a scheduler
/// backed by `dir`, returning the per-edge refuted bits, the tally, and the
/// store's corrupt-line count.
fn decide_cached(
    program: &Program,
    dir: &std::path::Path,
    mode: symex::CacheMode,
) -> (Vec<bool>, symex::Tally, u64) {
    use std::sync::Arc;
    let pta = pta::analyze(program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(program, &pta);
    let mut edges = all_edges(program, &pta);
    edges.sort(); // heap_entries iterates a HashMap; canonicalize the cap
    edges.truncate(EDGE_CAP);
    let store = symex::DecisionStore::open(dir, mode, program).expect("open store despite damage");
    let skipped = store.skipped_corrupt();
    let mut sched =
        symex::RefutationScheduler::new(program, &pta, &modref, SymexConfig::default(), 1)
            .with_store(Arc::new(store));
    let mut tally = symex::Tally::default();
    let refuted = edges
        .iter()
        .map(|e| matches!(sched.decide_edge(*e, &mut tally), symex::EdgeAnswer::Refuted))
        .collect();
    (refuted, tally, skipped)
}

fn cache_test_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("thresher-fault-cache-{tag}-{}", std::process::id()))
}

fn small_corpus_program() -> Program {
    let src = fs::read_to_string(corpus_dir().join("droidlife.tir")).expect("read droidlife");
    tir::parse(&src).expect("parse droidlife")
}

#[test]
fn bit_flipped_cache_records_degrade_to_cold() {
    let program = small_corpus_program();
    let dir = cache_test_dir("bitflip");
    let _ = fs::remove_dir_all(&dir);
    let (cold, _, _) = decide_cached(&program, &dir, symex::CacheMode::ReadWrite);

    // Flip a byte in the middle of every record line (the header survives).
    let path = dir.join(symex::persist::CACHE_FILE);
    let text = fs::read_to_string(&path).expect("read cache file");
    let mangled: Vec<String> = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            if i == 0 || line.len() < 8 {
                line.to_owned()
            } else {
                let mut bytes = line.as_bytes().to_vec();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x5a;
                String::from_utf8_lossy(&bytes).into_owned()
            }
        })
        .collect();
    fs::write(&path, mangled.join("\n") + "\n").expect("write mangled cache");

    let (warm, tally, skipped) = decide_cached(&program, &dir, symex::CacheMode::Read);
    assert_eq!(cold, warm, "corrupt cache changed an answer");
    assert!(skipped > 0, "no corrupt line was detected");
    assert_eq!(tally.cache_hits, 0, "a mangled record was served");
    assert_eq!(tally.cache_misses, cold.len() as u64, "every decision must recompute cold");
}

#[test]
fn truncated_cache_degrades_to_cold() {
    let program = small_corpus_program();
    let dir = cache_test_dir("truncate");
    let _ = fs::remove_dir_all(&dir);
    let (cold, _, _) = decide_cached(&program, &dir, symex::CacheMode::ReadWrite);

    // Cut the file mid-record: everything before the cut stays usable,
    // the severed line is skipped, nothing panics.
    let path = dir.join(symex::persist::CACHE_FILE);
    let bytes = fs::read(&path).expect("read cache file");
    let cut = bytes.len() * 3 / 5;
    fs::write(&path, &bytes[..cut]).expect("truncate cache");

    let (warm, tally, skipped) = decide_cached(&program, &dir, symex::CacheMode::Read);
    assert_eq!(cold, warm, "truncated cache changed an answer");
    assert!(skipped >= 1, "the severed record was not counted as corrupt");
    assert_eq!(
        tally.cache_hits + tally.cache_misses,
        cold.len() as u64,
        "every edge is either served from the surviving prefix or recomputed"
    );
    assert_eq!(tally.fresh_path_programs > 0, tally.cache_misses > 0);
}

#[test]
fn wrong_version_cache_is_discarded_then_rebuilt() {
    let program = small_corpus_program();
    let dir = cache_test_dir("version");
    let _ = fs::remove_dir_all(&dir);
    let (cold, _, _) = decide_cached(&program, &dir, symex::CacheMode::ReadWrite);

    // A future/foreign schema version makes the whole file unusable.
    let path = dir.join(symex::persist::CACHE_FILE);
    let text = fs::read_to_string(&path).expect("read cache file");
    let mut lines: Vec<&str> = text.lines().collect();
    let bad_header = "{\"schema\":\"thresher.cache/999\"}";
    lines[0] = bad_header;
    fs::write(&path, lines.join("\n") + "\n").expect("write wrong-version cache");

    // Read-write reopen: degrade to cold AND start a fresh file.
    let (warm, tally, skipped) = decide_cached(&program, &dir, symex::CacheMode::ReadWrite);
    assert_eq!(cold, warm, "version-mismatched cache changed an answer");
    assert_eq!(skipped, 1, "the mismatched header counts as one skipped record");
    assert_eq!(tally.cache_hits, 0, "a record outlived its schema");
    assert_eq!(tally.cache_misses, cold.len() as u64);

    // The rewrite restored a valid store: the next run is fully warm.
    let (rewarm, tally2, skipped2) = decide_cached(&program, &dir, symex::CacheMode::Read);
    assert_eq!(cold, rewarm);
    assert_eq!(skipped2, 0, "the rebuilt store must be clean");
    assert_eq!(tally2.cache_hits, cold.len() as u64);
    assert_eq!(tally2.cache_misses, 0);
    assert_eq!(tally2.fresh_path_programs, 0);

    let _ = fs::remove_dir_all(&dir);
}
