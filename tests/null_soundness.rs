//! Interpreter-backed soundness testing for the null-dereference client.
//!
//! Random programs composed from the null-motif vocabulary
//! ([`apps::NullMotif`]) are checked by the full refutation stack and
//! then *executed* by the real `tir::interp` under scripted oracle
//! schedules. Three properties tie the static answers to concrete runs:
//!
//! 1. **Alarms are live.** Every alarm's dereference site concretely
//!    faults: the schedule [`gated_schedule`] constructs for the motif
//!    drives the interpreter into `InterpError::NullDereference` at
//!    exactly the command the alarm names.
//! 2. **Refutations are safe.** Every motif the client proves safe runs
//!    to completion on its most adversarial schedule (the null `maybe`
//!    taken, the fan steered at the dereference), and no random schedule
//!    ever faults at a refuted site — faulting there would make the
//!    refutation unsound.
//! 3. **The cache does not bend ground truth.** The same programs
//!    checked through a cold read-write store and again warm (read-only,
//!    `--jobs 4`) yield byte-identical reports whose alarms still replay
//!    concretely.
//!
//! The motifs are emitted behind per-motif `maybe` gates
//! ([`build_null_program_gated`]) so a schedule can run any single motif
//! in isolation — otherwise the first faulting motif would shadow every
//! later alarm and properties 1–2 would be untestable for mixes.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use apps::null_motifs::{build_null_program_gated, expected_alarms, gated_schedule};
use apps::NullMotif;
use minicheck::{run_cases, Rng};
use thresher::{CacheMode, Thresher};
use tir::interp::{Interp, InterpError, Oracle};
use tir::{CmdId, Command, Program};

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_cache_dir() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("thresher-null-fuzz-{}-{n}", std::process::id()))
}

fn arb_motif(rng: &mut Rng) -> NullMotif {
    match rng.below(4) {
        0 => NullMotif::VecGet { pushes: rng.below(3), read_at: rng.below(3) },
        1 => NullMotif::DeepChain { depth: rng.usize_in(1, 3), null_source: rng.bool() },
        2 => {
            let width = rng.usize_in(2, 4);
            let null_arm = if rng.bool() { Some(rng.below(width)) } else { None };
            NullMotif::WideDispatch { width, null_arm }
        }
        _ => NullMotif::GuardedDeref,
    }
}

fn arb_groups(rng: &mut Rng) -> Vec<(String, Vec<NullMotif>)> {
    let ngroups = rng.usize_in(1, 2);
    ["A", "B"]
        .iter()
        .take(ngroups)
        .map(|tag| {
            let motifs = (0..rng.usize_in(1, 3)).map(|_| arb_motif(rng)).collect();
            (tag.to_string(), motifs)
        })
        .collect()
}

/// The dereference command motif `(tag, k)` pins its verdict on: the
/// unique read into `sink_{tag}_{k}` the builder emits.
fn sink_cmd(program: &Program, tag: &str, k: usize) -> CmdId {
    let name = format!("sink_{tag}_{k}");
    let entry = program.entry_opt().expect("entry");
    program
        .method_cmds(entry)
        .into_iter()
        .find(|&c| match program.cmd(c) {
            Command::ReadField { dst, .. } => program.var(*dst).name == name,
            _ => false,
        })
        .unwrap_or_else(|| panic!("no sink read for motif {tag}_{k}"))
}

/// Runs the gated program under `bits` and returns the outcome.
fn run_with(program: &Program, bits: Vec<bool>) -> Result<(), InterpError> {
    Interp::new(program, Oracle::scripted(bits, Vec::new()), 1_000_000).run().map(|_| ())
}

/// Per-motif correspondence: alarms fault concretely at the claimed
/// command, safe motifs never fault, and no schedule faults anywhere
/// the client did not alarm.
fn check_against_interp(
    groups: &[(String, Vec<NullMotif>)],
    program: &Program,
    alarm_cmds: &HashSet<CmdId>,
    rng: &mut Rng,
) {
    for (gi, (tag, motifs)) in groups.iter().enumerate() {
        for (ki, motif) in motifs.iter().enumerate() {
            let cmd = sink_cmd(program, tag, ki);
            let outcome = run_with(program, gated_schedule(groups, Some((gi, ki))));
            if motif.expect_alarm() {
                assert!(
                    alarm_cmds.contains(&cmd),
                    "motif {tag}_{ki} ({motif:?}) should alarm at {cmd}\nprogram:\n{}",
                    tir::print_program(program)
                );
                assert_eq!(
                    outcome,
                    Err(InterpError::NullDereference(cmd)),
                    "alarm at {cmd} ({motif:?}) did not replay concretely\nprogram:\n{}",
                    tir::print_program(program)
                );
            } else {
                assert!(
                    !alarm_cmds.contains(&cmd),
                    "refuted motif {tag}_{ki} ({motif:?}) alarmed\nprogram:\n{}",
                    tir::print_program(program)
                );
                assert_eq!(
                    outcome,
                    Ok(()),
                    "safe motif {tag}_{ki} ({motif:?}) faulted concretely — \
                     its refutation is unsound\nprogram:\n{}",
                    tir::print_program(program)
                );
            }
        }
    }
    // Fault containment under arbitrary schedules: any concrete null
    // dereference must be one the client reported.
    for _ in 0..6 {
        let bits = (0..24).map(|_| rng.bool()).collect();
        if let Err(InterpError::NullDereference(c)) = run_with(program, bits) {
            assert!(
                alarm_cmds.contains(&c),
                "UNSOUND: concrete null dereference at unreported {c}\nprogram:\n{}",
                tir::print_program(program)
            );
        }
    }
}

fn alarm_cmds(report: &thresher::NullReport) -> HashSet<CmdId> {
    report.alarms.iter().map(|a| a.site.cmd).collect()
}

#[test]
fn every_answer_path_matches_the_interpreter() {
    run_cases(64, |rng| {
        let groups = arb_groups(rng);
        let program = build_null_program_gated(&groups);
        let report = Thresher::new(&program).check_null_derefs();
        assert_eq!(
            report.num_alarms(),
            expected_alarms(&groups),
            "gating changed the verdicts\n{}",
            report.describe(&program)
        );
        assert_eq!(report.edge_timeouts, 0, "budget artifact in a tiny program");
        for a in &report.alarms {
            assert!(a.witness.is_some(), "live run produced an alarm without a witness");
        }
        check_against_interp(&groups, &program, &alarm_cmds(&report), rng);
    });
}

#[test]
fn cache_lifecycle_preserves_concrete_ground_truth() {
    run_cases(16, |rng| {
        let groups = arb_groups(rng);
        let program = build_null_program_gated(&groups);
        let dir = fresh_cache_dir();

        // Cold: live decisions written through to a fresh store.
        let cold = Thresher::new(&program)
            .with_cache(&dir, CacheMode::ReadWrite)
            .expect("open fresh store")
            .check_null_derefs();
        assert_eq!(cold.num_alarms(), expected_alarms(&groups), "cold run wrong");

        // Warm: decisions served from disk, parallel scheduler.
        let warm = Thresher::new(&program)
            .with_cache(&dir, CacheMode::Read)
            .expect("reopen store read-only")
            .with_jobs(4)
            .check_null_derefs();
        assert_eq!(
            cold.describe(&program),
            warm.describe(&program),
            "cache state changed the report"
        );
        assert_eq!(cold.to_value(&program).to_json(), warm.to_value(&program).to_json());

        // The warm answers still correspond to concrete execution.
        check_against_interp(&groups, &program, &alarm_cmds(&warm), rng);

        let _ = std::fs::remove_dir_all(&dir);
    });
}
