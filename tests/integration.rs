//! Cross-crate integration tests: the paper's figures and end-to-end app
//! checks driven through the `thresher` façade.

use apps::figures;
use thresher::{LoopMode, ReachabilityAnswer, SymexConfig, Thresher};

#[test]
fn fig1_walkthrough_via_facade() {
    let program = figures::fig1();
    let t = Thresher::new(&program);

    // §2's refutation: the shared EMPTY array can never contain the
    // activity (nor anything else).
    assert!(!t.query_reachable("EMPTY", "act0").is_reachable());
    assert!(!t.query_reachable("EMPTY", "hello0").is_reachable());

    // Sanity: the real stores are reachable.
    assert!(t.query_reachable("OBJS", "hello0").is_reachable());
}

#[test]
fn fig1_refutation_records_severed_edges() {
    let program = figures::fig1();
    let t = Thresher::new(&program);
    match t.query_reachable("EMPTY", "act0") {
        ReachabilityAnswer::Refuted { refuted_edges } => {
            assert!(!refuted_edges.is_empty());
        }
        other => panic!("expected refutation, got {other:?}"),
    }
}

#[test]
fn fig3_aliasing_example() {
    let program = figures::fig3();
    let t = Thresher::new(&program);
    // Both stores are real.
    assert!(t.query_reachable("OUT", "a0").is_reachable());
    assert!(t.query_reachable("OUT", "a1").is_reachable());
}

#[test]
fn multi_map_needs_loop_invariants() {
    // Hypothesis 3 (§4): the drop-all loop ablation cannot distinguish the
    // two boxes filled in loops; full inference can.
    let program = figures::multi_map();

    let full = Thresher::new(&program);
    let answer = full.query_reachable("CLEAN", "secret0");
    assert!(!answer.is_reachable(), "full loop inference must refute CLEAN ~> secret0");
    assert!(full.query_reachable("CLEAN", "pub0").is_reachable());

    let weak = Thresher::with_setup(
        &program,
        thresher::PointsToPolicy::Insensitive,
        SymexConfig::default().with_loop_mode(LoopMode::DropAll),
    );
    let weak_answer = weak.query_reachable("CLEAN", "secret0");
    assert!(
        weak_answer.is_reachable(),
        "drop-all loop handling must lose this refutation (and stay sound)"
    );
}

#[test]
fn small_app_end_to_end() {
    let app = apps::suite::droidlife();
    let t = Thresher::with_setup(
        &app.program,
        apps::builder::container_policy(&app),
        SymexConfig::default(),
    );
    let report = t.check_activity_leaks();
    assert_eq!(report.num_refuted(), 0, "DroidLife's leaks are all real");
    assert!(report.num_alarms() >= app.true_leak_fields.len());
}

#[test]
fn engine_stats_are_plumbed_through() {
    let program = figures::fig1();
    let t = Thresher::new(&program);
    let pta = t.points_to();
    let arr0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "arr0").unwrap();
    let act0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "act0").unwrap();
    let edge = pta::HeapEdge::Field { base: arr0, field: program.contents_field, target: act0 };
    let (out, stats) = t.refute_edge(&edge);
    assert!(out.is_refuted());
    assert!(stats.path_programs > 0);
    assert!(stats.total_refutations() > 0);
}
