//! Richer refutation-soundness differential tests: random programs with
//! helper calls, `while` loops, and `choice` branches are executed by
//! `tir::interp` under several oracles; no concretely-produced edge may be
//! refuted under any engine configuration.

use minicheck::{run_cases, Rng};

use pta::{ContextPolicy, HeapEdge, LocId, ModRef};
use symex::{Engine, LoopMode, Representation, SymexConfig};
use tir::interp::{Interp, Oracle};
use tir::{CmpOp, Cond, FieldId, GlobalId, MethodId, Operand, Program, ProgramBuilder, Ty, VarId};

#[derive(Clone, Debug)]
enum RStmt {
    New(usize),
    Copy(usize, usize),
    Write(usize, usize, usize),
    Read(usize, usize, usize),
    GWrite(usize, usize),
    GRead(usize, usize),
    CallStore(usize, usize),
    CallSwap(usize, usize),
    LoopWrite { base: usize, field: usize, src: usize, iters: u8 },
    ChoiceWrite { base: usize, field: usize, left: usize, right: usize },
}

const NV: usize = 3;
const NF: usize = 2;
const NG: usize = 2;

fn arb_stmts(rng: &mut Rng) -> Vec<RStmt> {
    let len = rng.usize_in(1, 9);
    (0..len)
        .map(|_| match rng.below(10) {
            0 => RStmt::New(rng.below(NV)),
            1 => RStmt::Copy(rng.below(NV), rng.below(NV)),
            2 => RStmt::Write(rng.below(NV), rng.below(NF), rng.below(NV)),
            3 => RStmt::Read(rng.below(NV), rng.below(NV), rng.below(NF)),
            4 => RStmt::GWrite(rng.below(NG), rng.below(NV)),
            5 => RStmt::GRead(rng.below(NV), rng.below(NG)),
            6 => RStmt::CallStore(rng.below(NV), rng.below(NV)),
            7 => RStmt::CallSwap(rng.below(NV), rng.below(NV)),
            8 => RStmt::LoopWrite {
                base: rng.below(NV),
                field: rng.below(NF),
                src: rng.below(NV),
                iters: rng.below(3) as u8,
            },
            _ => RStmt::ChoiceWrite {
                base: rng.below(NV),
                field: rng.below(NF),
                left: rng.below(NV),
                right: rng.below(NV),
            },
        })
        .collect()
}

struct Built {
    program: Program,
}

fn build(stmts: &[RStmt]) -> Built {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let cell = b.class("Cell", None);
    let fields: Vec<FieldId> =
        (0..NF).map(|i| b.field(cell, &format!("f{i}"), Ty::Ref(object))).collect();
    let globals: Vec<GlobalId> =
        (0..NG).map(|i| b.global(&format!("G{i}"), Ty::Ref(object))).collect();

    // Helper: store into field f0.
    let f0 = fields[0];
    let store: MethodId =
        b.method(None, "store_helper", &[("h", Ty::Ref(cell)), ("o", Ty::Ref(cell))], None, |mb| {
            let h = mb.param(0);
            let o = mb.param(1);
            mb.write_field(h, f0, o);
        });
    // Helper: swap-ish through f1 (read + write).
    let f1 = fields[1];
    let swap: MethodId =
        b.method(None, "swap_helper", &[("x", Ty::Ref(cell)), ("y", Ty::Ref(cell))], None, |mb| {
            let x = mb.param(0);
            let y = mb.param(1);
            let t = mb.var("t", Ty::Ref(object));
            mb.read_field(t, x, f1);
            mb.write_field(y, f1, t);
        });

    let f2 = fields.clone();
    let g2 = globals.clone();
    let main = b.method(None, "main", &[], None, |mb| {
        let vars: Vec<VarId> = (0..NV).map(|i| mb.var(&format!("v{i}"), Ty::Ref(cell))).collect();
        let counter = mb.var("i", Ty::Int);
        for (i, &v) in vars.iter().enumerate() {
            mb.new_obj(v, cell, &format!("init{i}"));
        }
        for (n, s) in stmts.iter().enumerate() {
            match s {
                RStmt::New(a) => {
                    mb.new_obj(vars[*a], cell, &format!("s{n}"));
                }
                RStmt::Copy(a, b2) => {
                    mb.assign(vars[*a], Operand::Var(vars[*b2]));
                }
                RStmt::Write(a, f, b2) => {
                    mb.write_field(vars[*a], f2[*f], vars[*b2]);
                }
                RStmt::Read(a, b2, f) => {
                    mb.read_field(vars[*a], vars[*b2], f2[*f]);
                }
                RStmt::GWrite(g, a) => {
                    mb.write_global(g2[*g], vars[*a]);
                }
                RStmt::GRead(a, g) => {
                    // Globals may be null concretely; only read after a
                    // guaranteed init (simplest: skip the null risk by
                    // writing first).
                    mb.write_global(g2[*g], vars[*a]);
                    mb.read_global(vars[*a], g2[*g]);
                }
                RStmt::CallStore(a, b2) => {
                    mb.call_static(None, store, &[Operand::Var(vars[*a]), Operand::Var(vars[*b2])]);
                }
                RStmt::CallSwap(a, b2) => {
                    mb.call_static(None, swap, &[Operand::Var(vars[*a]), Operand::Var(vars[*b2])]);
                }
                RStmt::LoopWrite { base, field, src, iters } => {
                    mb.assign(counter, 0);
                    mb.begin_block();
                    mb.write_field(vars[*base], f2[*field], vars[*src]);
                    mb.binop(counter, tir::BinOp::Add, counter, 1);
                    let body = mb.end_block();
                    mb.push_while(Cond::cmp(CmpOp::Lt, counter, i64::from(*iters)), body);
                }
                RStmt::ChoiceWrite { base, field, left, right } => {
                    mb.begin_block();
                    mb.write_field(vars[*base], f2[*field], vars[*left]);
                    let l = mb.end_block();
                    mb.begin_block();
                    mb.write_field(vars[*base], f2[*field], vars[*right]);
                    let r = mb.end_block();
                    mb.push_choice(l, r);
                }
            }
        }
    });
    b.set_entry(main);
    Built { program: b.finish() }
}

fn check(stmts: &[RStmt], config: SymexConfig) {
    let built = build(stmts);
    let program = &built.program;
    let pta = pta::analyze(program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(program, &pta);
    let mut engine = Engine::new(program, &pta, &modref, config);
    let loc_of = |alloc: tir::AllocId| -> LocId {
        LocId(pta.alloc_locs(alloc).iter().next().expect("reached alloc") as u32)
    };

    // Several oracles: deterministic, all-right branches, alternating.
    let oracles = [
        Oracle::always_first(),
        Oracle::scripted(vec![true; 16], vec![2; 8]),
        Oracle::scripted((0..16).map(|i| i % 2 == 0).collect(), (0..8).map(|i| i % 3).collect()),
    ];
    for oracle in oracles {
        let mut interp = Interp::new(program, oracle, 100_000);
        let trace = match interp.run() {
            Ok(t) => t,
            // Null dereferences are reachable in generated programs (reads
            // of never-written fields); the partial trace is still concrete
            // evidence.
            Err(_) => interp.trace().clone(),
        };
        for (owner, field, value) in &trace.field_edges {
            let edge =
                HeapEdge::Field { base: loc_of(*owner), field: *field, target: loc_of(*value) };
            let out = engine.refute_edge(&edge);
            assert!(
                !out.is_refuted(),
                "UNSOUND: concrete edge {} refuted\n{}",
                edge.describe(program, &pta),
                tir::print_program(program)
            );
        }
        for (global, value) in &trace.global_edges {
            let edge = HeapEdge::Global { global: *global, target: loc_of(*value) };
            let out = engine.refute_edge(&edge);
            assert!(
                !out.is_refuted(),
                "UNSOUND: concrete edge {} refuted\n{}",
                edge.describe(program, &pta),
                tir::print_program(program)
            );
        }
    }
}

#[test]
fn rich_programs_mixed() {
    run_cases(48, |rng| {
        let stmts = arb_stmts(rng);
        check(&stmts, SymexConfig::default());
    });
}

#[test]
fn rich_programs_fully_symbolic() {
    run_cases(48, |rng| {
        let stmts = arb_stmts(rng);
        check(&stmts, SymexConfig::default().with_representation(Representation::FullySymbolic));
    });
}

#[test]
fn rich_programs_fully_explicit() {
    run_cases(48, |rng| {
        let stmts = arb_stmts(rng);
        check(&stmts, SymexConfig::default().with_representation(Representation::FullyExplicit));
    });
}

#[test]
fn rich_programs_drop_all_loops() {
    run_cases(48, |rng| {
        let stmts = arb_stmts(rng);
        check(&stmts, SymexConfig::default().with_loop_mode(LoopMode::DropAll));
    });
}
