//! End-to-end observability guarantees: the `RunReport` produced by a real
//! corpus run must agree *exactly* with the driver-level statistics
//! (`ClientStats`, `AbortCounts`, `RefutationCounts`), and the recorded
//! trace must be well-nested with monotonic timestamps.
//!
//! All tests install the process-global recorder, so each serializes on
//! `obs::test_lock()` and resets the recorder up front.

use std::fs;

use thresher::obs::{self, Counter, MemRecorder, RingCapacity, SpanKind};
use thresher::{ActivityLeakChecker, Thresher};

fn corpus_dir() -> std::path::PathBuf {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("corpus");
    p
}

fn load(name: &str) -> tir::Program {
    let src = fs::read_to_string(corpus_dir().join(name)).expect("read corpus file");
    tir::parse(&src).expect("parse corpus file")
}

/// One shared static recorder for this test binary (installs leak, so
/// cycling one per test would grow without bound). Re-installs on every
/// call: a previous test's `obs::uninstall()` leaves recording disabled.
fn recorder() -> &'static MemRecorder {
    use std::sync::OnceLock;
    static REC: OnceLock<&'static MemRecorder> = OnceLock::new();
    let rec = *REC.get_or_init(|| MemRecorder::install_static(RingCapacity::default()));
    obs::install(rec);
    rec
}

#[test]
fn report_counters_match_client_stats_exactly() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    let program = load("droidlife.tir");
    let report = {
        let _run = obs::span(SpanKind::Run, "droidlife");
        ActivityLeakChecker::new(&program).check()
    };
    obs::uninstall();

    // Edge outcomes: the obs counters are bumped at the single
    // refute_edge_resilient site, the ClientStats at the decide_edge site —
    // they must agree exactly.
    assert_eq!(rec.counter(Counter::EdgesRefuted), report.stats.edges_refuted as u64);
    assert_eq!(rec.counter(Counter::EdgesWitnessed), report.stats.edges_witnessed as u64);
    assert_eq!(rec.counter(Counter::EdgesAborted), report.stats.edge_timeouts as u64);
    assert_eq!(rec.counter(Counter::DegradedRetries), report.stats.retries as u64);
    assert_eq!(rec.counter(Counter::DegradedDecisions), report.stats.degraded_decisions as u64);

    // Abort provenance: per-reason counters come only from
    // AbortCounts::record.
    let a = &report.stats.aborts;
    assert_eq!(rec.counter(Counter::AbortForkBudget), a.fork_budget);
    assert_eq!(rec.counter(Counter::AbortWorkBudget), a.work_budget);
    assert_eq!(rec.counter(Counter::AbortWallClock), a.wall_clock);
    assert_eq!(rec.counter(Counter::AbortCallerDepth), a.caller_depth);
    assert_eq!(rec.counter(Counter::AbortPanic), a.panic);
    assert_eq!(rec.counter(Counter::AbortSolverFailure), a.solver_failure);
    assert_eq!(rec.counter(Counter::AbortHeapCap), a.heap_cap);

    // Alarm totals.
    assert_eq!(rec.counter(Counter::AlarmsFound), report.num_alarms() as u64);
    assert_eq!(rec.counter(Counter::AlarmsRefuted), report.num_refuted() as u64);
    assert_eq!(rec.counter(Counter::AlarmsWitnessed), report.num_witnessed() as u64);

    // The analysis must actually have exercised the pipeline.
    assert!(rec.counter(Counter::SolverCalls) > 0);
    assert!(rec.counter(Counter::PathPrograms) > 0);
    assert_eq!(
        rec.counter(Counter::SolverCalls),
        rec.counter(Counter::SolverSat)
            + rec.counter(Counter::SolverUnsat)
            + rec.counter(Counter::SolverFailures)
    );
}

#[test]
fn report_refutation_totals_match_search_stats_exactly() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    let program = load("fig1_vec_null_object.tir");
    let t = Thresher::new(&program);
    // refute_edge uses a fresh engine per call, so one edge suffices for an
    // exact comparison.
    let (base, field, targets) =
        t.points_to().heap_entries().next().expect("fig1 has at least one heap field edge");
    let target = pta::LocId(targets.iter().next().expect("non-empty points-to set") as u32);
    let edge = pta::HeapEdge::Field { base, field, target };
    let (_, stats) = t.refute_edge(&edge);
    obs::uninstall();

    let r = &stats.refutations;
    assert_eq!(rec.counter(Counter::RefutedEmptyRegion), r.empty_region);
    assert_eq!(rec.counter(Counter::RefutedSeparation), r.separation);
    assert_eq!(rec.counter(Counter::RefutedPure), r.pure);
    assert_eq!(rec.counter(Counter::RefutedAllocation), r.allocation);
    assert_eq!(rec.counter(Counter::RefutedEntry), r.entry);
    assert_eq!(rec.counter(Counter::PathPrograms), stats.path_programs);
    assert_eq!(rec.counter(Counter::CmdsExecuted), stats.cmds_executed);
    assert_eq!(rec.counter(Counter::Subsumed), stats.subsumed);
    assert_eq!(rec.counter(Counter::LoopFixpoints), stats.loop_fixpoints);
    assert_eq!(rec.counter(Counter::CallsSkippedIrrelevant), stats.calls_skipped_irrelevant);
    assert_eq!(rec.counter(Counter::CallsSkippedDepth), stats.calls_skipped_depth);
}

#[test]
fn corpus_run_report_is_schema_valid() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    let program = load("fig1_vec_null_object.tir");
    {
        let _run = obs::span(SpanKind::Run, "fig1");
        let t = Thresher::new(&program);
        assert!(!t.query_reachable("EMPTY", "act0").is_reachable());
    }
    obs::uninstall();

    let report = rec.run_report(&[("program", "fig1_vec_null_object.tir")]);
    let text = report.to_json();
    let parsed = obs::json::parse(&text).expect("report is valid JSON");

    use obs::json::Value;
    assert_eq!(parsed.get("schema").and_then(Value::as_str), Some("thresher.run_report/1"));
    let counters = parsed.get("counters").expect("counters object");
    // Every declared counter is present (zeros included) and integral.
    for c in Counter::ALL {
        let v = counters.get(c.name()).unwrap_or_else(|| panic!("missing {}", c.name()));
        assert!(v.as_u64().is_some(), "{} not an integer", c.name());
    }
    // Every declared histogram is present with the snapshot shape.
    let hists = parsed.get("histograms").expect("histograms object");
    for h in obs::Hist::ALL {
        let snap = hists.get(h.name()).unwrap_or_else(|| panic!("missing {}", h.name()));
        for field in ["count", "sum", "max"] {
            assert!(snap.get(field).and_then(Value::as_u64).is_some(), "{}.{field}", h.name());
        }
        let buckets = snap.get("buckets").and_then(Value::as_arr).expect("buckets");
        // Bucket bounds ascend strictly.
        let bounds: Vec<u64> =
            buckets.iter().map(|b| b.as_arr().unwrap()[0].as_u64().unwrap()).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{} bounds not ascending", h.name());
    }
    // The run actually did work.
    assert!(report.counter("edges_refuted").unwrap() > 0);
    assert!(report.histogram("solver_call_ns").unwrap().count > 0);
    assert_eq!(
        report.counter("solver_calls").unwrap(),
        report.histogram("solver_call_ns").unwrap().count
    );
}

#[test]
fn corpus_trace_spans_nest_and_are_monotonic() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    let program = load("fig1_vec_null_object.tir");
    {
        let _run = obs::span(SpanKind::Run, "fig1");
        let t = Thresher::new(&program);
        let _ = t.query_reachable("EMPTY", "act0");
    }
    obs::uninstall();

    let events = rec.events();
    assert_eq!(rec.dropped_events(), 0, "default ring must hold a corpus run");
    let spans: Vec<_> = events.iter().filter(|e| !e.instant).collect();
    assert!(spans.iter().any(|e| e.kind == SpanKind::Run));
    assert!(spans.iter().any(|e| e.kind == SpanKind::Setup));
    assert!(spans.iter().any(|e| e.kind == SpanKind::Pta));
    assert!(spans.iter().any(|e| e.kind == SpanKind::Query));
    assert!(spans.iter().any(|e| e.kind == SpanKind::Edge));
    assert!(spans.iter().any(|e| e.kind == SpanKind::SolverCall));

    // Single-threaded run: every span at depth d+1 must be contained in
    // the timestamp interval of some span at depth d.
    for inner in &spans {
        if inner.depth == 0 {
            continue;
        }
        let contained = spans.iter().any(|outer| {
            outer.depth + 1 == inner.depth
                && outer.ts_us <= inner.ts_us
                && inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us
        });
        assert!(
            contained,
            "span {:?}/{} at depth {} not contained in any parent",
            inner.kind, inner.label, inner.depth
        );
    }

    // The Run span is the outermost: it contains every other span.
    let run = spans.iter().find(|e| e.kind == SpanKind::Run).unwrap();
    for e in &spans {
        assert!(run.ts_us <= e.ts_us && e.ts_us + e.dur_us <= run.ts_us + run.dur_us);
    }

    // Timestamps are monotone in event order per thread (complete events
    // are emitted at close; end times must be non-decreasing).
    for tid in spans.iter().map(|e| e.tid).collect::<std::collections::HashSet<_>>() {
        let ends: Vec<u64> = events
            .iter()
            .filter(|e| e.tid == tid && !e.instant)
            .map(|e| e.ts_us + e.dur_us)
            .collect();
        assert!(ends.windows(2).all(|w| w[0] <= w[1]), "non-monotonic close order");
    }

    // The Chrome export of this real trace parses and keeps all events.
    let chrome = obs::json::parse(&rec.chrome_trace()).expect("chrome trace parses");
    let items = chrome.get("traceEvents").and_then(obs::json::Value::as_arr).unwrap();
    assert_eq!(items.len(), events.len());
}

/// CI regression gate for the disabled-recorder overhead guarantee. The
/// threshold is an absolute ceiling orders of magnitude above the real cost
/// of the one-branch fast path (~1 ns/call), so it only trips on a real
/// regression (e.g. allocation or clock reads sneaking into the path).
#[test]
fn disabled_recorder_overhead_gate() {
    let _serial = obs::test_lock();
    obs::uninstall();

    let program = load("fig1_vec_null_object.tir");
    let t = Thresher::new(&program);

    // Warm caches, then measure an instrumented end-to-end query with the
    // recorder disabled.
    let _ = t.query_reachable("EMPTY", "act0");
    let start = std::time::Instant::now();
    let _ = t.query_reachable("EMPTY", "act0");
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "disabled-recorder corpus query too slow: {elapsed:?}"
    );

    // Micro gate: 10M disabled counter/histogram calls stay under a second
    // on any plausible hardware unless the fast path regressed.
    let start = std::time::Instant::now();
    for i in 0..10_000_000u64 {
        obs::add(Counter::CmdsExecuted, 1);
        obs::observe(obs::Hist::HeapCells, i & 0xff);
    }
    let micro = start.elapsed();
    assert!(micro < std::time::Duration::from_secs(1), "fast path regressed: {micro:?}");
}
