//! Cross-run incremental behavior of the persistent refutation cache
//! (`symex::persist`).
//!
//! Three properties, per ISSUE acceptance:
//!
//! - **cold/warm identity** on corpus apps: a warm rerun over an
//!   unchanged program serves *every* decision from disk (zero misses,
//!   zero invalidations, zero live path programs) and produces the same
//!   answers and committed decisions as the cold run;
//! - **edit sensitivity**: after editing one method, the warm run's
//!   answers equal a cold run on the edited program, and exactly the
//!   decisions whose fingerprint slice contains the edited method are
//!   invalidated;
//! - **edit precision**: editing a method outside every decision's slice
//!   (dead code) invalidates nothing — the rerun is still fully warm.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pta::{ContextPolicy, HeapEdge, LocId, ModRef, PtaResult};
use symex::{
    CacheMode, DecisionStore, EdgeAnswer, Fingerprinter, RefutationScheduler, SymexConfig, Tally,
};
use tir::{MethodId, Program, ProgramBuilder, Ty};

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_cache_dir() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("thresher-incremental-test-{}-{n}", std::process::id()))
}

fn corpus_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("corpus");
    p
}

fn load(name: &str) -> Program {
    let src = fs::read_to_string(corpus_dir().join(name)).expect("read corpus file");
    tir::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Every may edge of the flow-insensitive heap graph, capped for speed.
fn all_edges(program: &Program, pta: &PtaResult, cap: usize) -> Vec<HeapEdge> {
    let mut edges = Vec::new();
    for (base, field, targets) in pta.heap_entries() {
        for t in targets.iter() {
            edges.push(HeapEdge::Field { base, field, target: LocId(t as u32) });
        }
    }
    for global in program.global_ids() {
        for t in pta.pt_global(global).iter() {
            edges.push(HeapEdge::Global { global, target: LocId(t as u32) });
        }
    }
    // `heap_entries` iterates a HashMap: canonicalize so two analyses of the
    // same program enumerate (and cap to) the same edges.
    edges.sort();
    edges.truncate(cap);
    edges
}

/// Committed decision shape in canonical order: `(edge, refuted, attempts,
/// degraded)`.
type DecisionShape = (HeapEdge, bool, u32, bool);

/// One full pass: decide every edge through a scheduler backed by `dir`,
/// returning the per-edge refuted bits, the committed decision shapes,
/// and the tally.
fn decide_all(
    program: &Program,
    dir: &std::path::Path,
    mode: CacheMode,
    config: &SymexConfig,
    cap: usize,
) -> (Vec<bool>, Vec<DecisionShape>, Tally) {
    let pta = pta::analyze(program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(program, &pta);
    let edges = all_edges(program, &pta, cap);
    let store = DecisionStore::open(dir, mode, program).expect("open store");
    let mut sched = RefutationScheduler::new(program, &pta, &modref, config.clone(), 1)
        .with_store(Arc::new(store));
    let mut tally = Tally::default();
    let refuted: Vec<bool> = edges
        .iter()
        .map(|e| matches!(sched.decide_edge(*e, &mut tally), EdgeAnswer::Refuted))
        .collect();
    let decisions = sched
        .decisions()
        .into_iter()
        .map(|(e, d)| (e, d.outcome.is_refuted(), d.attempts, d.degraded))
        .collect();
    (refuted, decisions, tally)
}

fn assert_pure_warm(tally: &Tally, decisions: usize, what: &str) {
    assert_eq!(tally.cache_misses, 0, "{what}: warm run recomputed a decision");
    assert_eq!(tally.cache_invalidated, 0, "{what}: unchanged program invalidated a decision");
    assert_eq!(tally.fresh_path_programs, 0, "{what}: warm run explored path programs");
    assert_eq!(tally.cache_hits, decisions as u64, "{what}: not every decision came from disk");
}

#[test]
fn corpus_cold_warm_identical() {
    let config = SymexConfig::default();
    for name in ["droidlife.tir", "opensudoku.tir", "smspopup.tir"] {
        let program = load(name);
        let dir = fresh_cache_dir();

        let (cold, cold_dec, cold_tally) =
            decide_all(&program, &dir, CacheMode::ReadWrite, &config, 20);
        assert_eq!(cold_tally.cache_hits, 0, "{name}: fresh store produced hits");
        assert_eq!(cold_tally.cache_misses, cold_dec.len() as u64, "{name}: miss accounting");

        let (warm, warm_dec, warm_tally) = decide_all(&program, &dir, CacheMode::Read, &config, 20);
        assert_eq!(cold, warm, "{name}: warm answers differ from cold");
        assert_eq!(cold_dec, warm_dec, "{name}: warm committed decisions differ from cold");
        assert_pure_warm(&warm_tally, warm_dec.len(), name);

        let _ = fs::remove_dir_all(&dir);
    }
}

/// `edit`: 0 = baseline; 1 = edit the live `mutate` helper (in every
/// decision's slice); 2 = edit the dead `scratch` helper (in no slice).
fn build_program(edit: u8) -> Program {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let node = b.class("Node", None);
    let f = b.field(node, "f", Ty::Ref(object));
    let g = b.field(node, "g", Ty::Ref(object));
    let ga = b.global("GA", Ty::Ref(object));
    let gb = b.global("GB", Ty::Ref(node));

    let mutate =
        b.method(None, "mutate", &[("n", Ty::Ref(node)), ("o", Ty::Ref(object))], None, |mb| {
            let (n, o) = (mb.param(0), mb.param(1));
            mb.write_field(n, f, o);
            if edit == 1 {
                mb.write_field(n, g, o);
            }
        });
    let publish = b.method(None, "publish", &[("o", Ty::Ref(object))], None, |mb| {
        let o = mb.param(0);
        mb.write_global(ga, o);
    });
    // Never called: in no decision's call-graph slice, so edits to it must
    // not invalidate anything.
    b.method(None, "scratch", &[("n", Ty::Ref(node))], None, |mb| {
        let n = mb.param(0);
        let t = mb.var("t", Ty::Ref(object));
        mb.read_field(t, n, f);
        if edit == 2 {
            mb.write_field(n, g, t);
        }
    });

    let main = b.method(None, "main", &[], None, |mb| {
        let n = mb.var("n", Ty::Ref(node));
        let o = mb.var("o", Ty::Ref(object));
        let p = mb.var("p", Ty::Ref(object));
        mb.new_obj(n, node, "n0");
        mb.new_obj(o, object, "o0");
        mb.new_obj(p, object, "p0");
        mb.call_static(None, mutate, &[n.into(), o.into()]);
        mb.call_static(None, publish, &[p.into()]);
        mb.write_global(gb, n);
    });
    b.set_entry(main);
    b.finish()
}

fn method_named(program: &Program, name: &str) -> MethodId {
    program
        .method_ids()
        .find(|&m| program.method_name(m) == name)
        .unwrap_or_else(|| panic!("no method {name}"))
}

#[test]
fn edit_invalidates_exactly_the_dependent_decisions() {
    let config = SymexConfig::default();
    let dir = fresh_cache_dir();

    // Cold run on the baseline, then a pure warm rerun on an *independently
    // rebuilt* identical program: fingerprints must be build-stable.
    let v0 = build_program(0);
    let (_, dec0, t0) = decide_all(&v0, &dir, CacheMode::ReadWrite, &config, usize::MAX);
    assert!(dec0.len() >= 3, "baseline decided too few edges: {}", dec0.len());
    assert_eq!(t0.cache_misses, dec0.len() as u64);
    let v0_again = build_program(0);
    let (_, dec0b, t0b) = decide_all(&v0_again, &dir, CacheMode::Read, &config, usize::MAX);
    assert_eq!(dec0, dec0b, "identical rebuild changed decisions");
    assert_pure_warm(&t0b, dec0b.len(), "identical rebuild");

    // Editing the live helper: every decision's slice contains `mutate`
    // (the slice is the connected call-graph component of the producers),
    // so every previously stored edge is invalidated; edges new in the
    // edited program are misses. Answers equal a cold run on the edit.
    let v1 = build_program(1);
    {
        let pta = pta::analyze(&v1, ContextPolicy::Insensitive);
        let fpr = Fingerprinter::new(&v1, &pta, &config);
        let mutate_m = method_named(&v1, "mutate");
        let scratch_m = method_named(&v1, "scratch");
        for e in all_edges(&v1, &pta, usize::MAX) {
            let slice = fpr.slice(&e);
            assert!(slice.contains(&mutate_m), "edge slice misses the live helper");
            assert!(!slice.contains(&scratch_m), "dead code leaked into an edge slice");
        }
    }
    let (warm1, dec1, t1) = decide_all(&v1, &dir, CacheMode::ReadWrite, &config, usize::MAX);
    let cold_dir = fresh_cache_dir();
    let (cold1, cold_dec1, _) =
        decide_all(&v1, &cold_dir, CacheMode::ReadWrite, &config, usize::MAX);
    assert_eq!(warm1, cold1, "warm-after-edit answers differ from a cold run on the edit");
    assert_eq!(dec1, cold_dec1, "warm-after-edit decisions differ from a cold run on the edit");
    assert_eq!(t1.cache_hits, 0, "a stale decision was served from disk after the edit");
    assert_eq!(
        t1.cache_invalidated,
        dec0.len() as u64,
        "every stored decision depends on the edited method and must be invalidated"
    );
    assert_eq!(
        t1.cache_misses,
        (dec1.len() - dec0.len()) as u64,
        "edges introduced by the edit are plain misses, not invalidations"
    );
    assert!(dec1.len() > dec0.len(), "the edit should add a heap edge (n0.g -> o0)");

    let _ = fs::remove_dir_all(&cold_dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dead_code_edit_invalidates_nothing() {
    let config = SymexConfig::default();
    let dir = fresh_cache_dir();

    let v0 = build_program(0);
    let (_, dec0, _) = decide_all(&v0, &dir, CacheMode::ReadWrite, &config, usize::MAX);

    // `scratch` is unreachable: its edit changes the program text but no
    // decision's slice, so the rerun must stay fully warm.
    let v2 = build_program(2);
    let (_, dec2, t2) = decide_all(&v2, &dir, CacheMode::Read, &config, usize::MAX);
    assert_eq!(dec0, dec2, "dead-code edit changed committed decisions");
    assert_pure_warm(&t2, dec2.len(), "dead-code edit");

    let _ = fs::remove_dir_all(&dir);
}
