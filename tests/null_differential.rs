//! Differential + ground-truth testing for the null-dereference client.
//!
//! Two properties, checked over the corpus, the null-motif generators,
//! and the scaled null corpus:
//!
//! 1. **Ground truth.** [`thresher::NullClient`] reports exactly the
//!    alarms the motif vocabulary predicts ([`apps::NullMotif::expect_alarm`]):
//!    every satisfiable null flow is witnessed, every dead one refuted,
//!    and nothing aborts within the default budget.
//! 2. **Determinism.** The *bytes* of the report — both the human
//!    rendering (`describe`) and the machine rendering
//!    (`to_value(..).to_json()`) — are identical across every context
//!    policy × `--jobs {1,4}` × cold/warm cache × points-to solver
//!    (`reference`, `delta`, `demand`). A client that answers
//!    differently depending on scheduling, cache state, or solver choice
//!    cannot back a refutation cache or a resident daemon.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use apps::NullMotif;
use thresher::{
    CacheMode, PointsToPolicy, PtaOptions, SolverKind, SymexConfig, Thresher,
};
use tir::Program;

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_cache_dir() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!("thresher-null-diff-{}-{n}", std::process::id()));
    p
}

fn corpus_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("corpus");
    p
}

fn policies(program: &Program) -> Vec<PointsToPolicy> {
    vec![
        PointsToPolicy::Insensitive,
        PointsToPolicy::containers_named(program, &["AVec", "AHashMap"]),
        PointsToPolicy::ObjectSensitive { max_depth: 2 },
        PointsToPolicy::CallSiteSensitive,
    ]
}

/// Runs the client and returns both renderings of the report.
fn report_bytes(t: &Thresher, program: &Program) -> (String, String) {
    let report = t.check_null_derefs();
    (report.describe(program), report.to_value(program).to_json())
}

fn one_group(motifs: Vec<NullMotif>) -> Vec<(String, Vec<NullMotif>)> {
    vec![(String::new(), motifs)]
}

// ---------------------------------------------------------------------
// Ground truth
// ---------------------------------------------------------------------

/// Every motif shape, safe and alarming variants, in isolation: the
/// client's verdict must match the vocabulary's ground truth, with a
/// concrete witness attached to every alarm and no budget exhaustion.
#[test]
fn ground_truth_per_motif() {
    let cases: Vec<(&str, NullMotif)> = vec![
        ("vec-get-unwritten", NullMotif::VecGet { pushes: 1, read_at: 2 }),
        ("vec-get-written", NullMotif::VecGet { pushes: 2, read_at: 1 }),
        ("deep-chain-live", NullMotif::DeepChain { depth: 3, null_source: true }),
        ("deep-chain-dead", NullMotif::DeepChain { depth: 3, null_source: false }),
        ("wide-dispatch-null-arm", NullMotif::WideDispatch { width: 3, null_arm: Some(1) }),
        ("wide-dispatch-clean", NullMotif::WideDispatch { width: 3, null_arm: None }),
        ("guarded", NullMotif::GuardedDeref),
    ];
    for (name, motif) in cases {
        let expected = usize::from(motif.expect_alarm());
        let groups = one_group(vec![motif]);
        let program = apps::null_motifs::build_null_program(&groups);
        let t = Thresher::new(&program);
        let report = t.check_null_derefs();
        assert_eq!(
            report.num_alarms(),
            expected,
            "{name}: wrong verdict\n{}",
            report.describe(&program)
        );
        assert_eq!(report.edge_timeouts, 0, "{name}: ran out of budget");
        for alarm in &report.alarms {
            assert!(!alarm.aborted, "{name}: alarm is a budget artifact");
            assert!(alarm.witness.is_some(), "{name}: alarm lacks a witness");
        }
    }
}

/// The scaled null corpus at several sizes: alarm count equals the
/// generator's ground truth, so precision neither decays nor inflates
/// with program size.
#[test]
fn ground_truth_on_scaled_corpus() {
    for scale in [1, 2, 4, 6] {
        let program = apps::scale::scaled_null_program(scale);
        let expected = apps::scale::expected_null_alarms(scale);
        let t = Thresher::new(&program);
        let report = t.check_null_derefs();
        assert_eq!(
            report.num_alarms(),
            expected,
            "scaled-{scale}: wrong alarm count\n{}",
            report.describe(&program)
        );
        assert_eq!(report.edge_timeouts, 0, "scaled-{scale}: ran out of budget");
        assert!(report.candidate_sites > expected, "scaled-{scale}: nothing was refuted");
    }
}

/// Figure 1's on-disk program: every dereference in `AVec` is through a
/// freshly allocated table or a just-initialized vector, so the
/// may-null front end produces no candidates at all — the paper's
/// false *flow* alarm (`EMPTY -> act0`) is an escape-client problem,
/// not a null-client one. Pins the front end's tightness: broadening
/// it to "every field read" would regress this to noise.
#[test]
fn fig1_corpus_file_is_null_clean() {
    let src = fs::read_to_string(corpus_dir().join("fig1_vec_null_object.tir")).expect("read");
    let program = tir::parse(&src).expect("parse");
    let t = Thresher::new(&program);
    let report = t.check_null_derefs();
    assert!(report.is_null_safe(), "unexpected alarms:\n{}", report.describe(&program));
    assert_eq!(report.candidate_sites, 0, "fig1 should have no may-null dereference bases");
}

/// The whole on-disk corpus must at least run the client to completion
/// without aborts — a smoke gate that new corpus files stay analyzable.
#[test]
fn corpus_files_run_null_client() {
    let mut count = 0;
    for entry in fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("tir") {
            continue;
        }
        count += 1;
        let src = fs::read_to_string(&path).expect("read");
        let program = tir::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = Thresher::new(&program).check_null_derefs();
        assert_eq!(report.edge_timeouts, 0, "{}: null client aborted", path.display());
    }
    assert!(count >= 10, "expected the full corpus, found {count}");
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

/// Asserts that every configuration axis leaves both report renderings
/// byte-identical to the jobs-1, cache-free, delta-solver baseline.
#[track_caller]
fn assert_identical_everywhere(name: &str, program: &Program) {
    for policy in policies(program) {
        let mk = |options: &PtaOptions| {
            Thresher::with_options(program, policy.clone(), SymexConfig::default(), options)
        };
        let baseline = report_bytes(&mk(&PtaOptions::default()), program);

        // Parallel scheduler.
        let jobs4 = report_bytes(&mk(&PtaOptions::default()).with_jobs(4), program);
        assert_eq!(baseline, jobs4, "{name} ({policy:?}): jobs=4 changed the report");

        // Alternate points-to solvers.
        for solver in [SolverKind::Reference, SolverKind::Demand] {
            let got = report_bytes(&mk(&PtaOptions { solver, ..Default::default() }), program);
            assert_eq!(baseline, got, "{name} ({policy:?}): {solver:?} changed the report");
        }

        // Cold write-through cache, then a warm read-only run over it.
        let dir = fresh_cache_dir();
        let cold = report_bytes(
            &mk(&PtaOptions::default()).with_cache(&dir, CacheMode::ReadWrite).expect("cache"),
            program,
        );
        assert_eq!(baseline, cold, "{name} ({policy:?}): cold cache changed the report");
        let warm = report_bytes(
            &mk(&PtaOptions::default()).with_cache(&dir, CacheMode::Read).expect("cache").with_jobs(4),
            program,
        );
        assert_eq!(baseline, warm, "{name} ({policy:?}): warm cache changed the report");
        fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn reports_identical_on_motif_mix() {
    let groups = vec![
        (
            "A".to_owned(),
            vec![
                NullMotif::VecGet { pushes: 1, read_at: 2 },
                NullMotif::DeepChain { depth: 3, null_source: false },
                NullMotif::GuardedDeref,
            ],
        ),
        (
            "B".to_owned(),
            vec![
                NullMotif::WideDispatch { width: 3, null_arm: Some(1) },
                NullMotif::DeepChain { depth: 2, null_source: true },
                NullMotif::VecGet { pushes: 2, read_at: 1 },
            ],
        ),
    ];
    let program = apps::null_motifs::build_null_program(&groups);
    assert_identical_everywhere("motif-mix", &program);
}

#[test]
fn reports_identical_on_scaled_corpus() {
    let program = apps::scale::scaled_null_program(4);
    assert_identical_everywhere("scaled-4", &program);
}

#[test]
fn reports_identical_on_fig1_corpus_file() {
    let src = fs::read_to_string(corpus_dir().join("fig1_vec_null_object.tir")).expect("read");
    let program = tir::parse(&src).expect("parse");
    assert_identical_everywhere("fig1", &program);
}
