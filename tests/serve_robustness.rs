//! Robustness guarantees of the resident daemon (`thresher::serve`):
//!
//! - the fault-injection suite: a panicking, stalling, or cache-corrupting
//!   request fails alone, with a structured StopReason-tagged error, while
//!   the daemon keeps serving and untouched requests answer byte-identically;
//! - per-request reports are equivalent (`--diff-reports`) to a one-shot
//!   `thresher-cli` run of the same work;
//! - a soak run holds residency under the LRU cap and every decision store
//!   under its byte cap (compaction observed via counters) with zero answer
//!   changes;
//! - process lifecycle: EOF and SIGTERM drain to exit 0, and a daemon
//!   killed with SIGKILL leaves a store the next daemon self-heals.
//!
//! Tests that install the process-global recorder serialize on
//! `obs::test_lock()` (same discipline as tests/observability.rs).

use std::fs;
use std::io::{BufRead, BufReader, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use thresher::obs::json::Value;
use thresher::obs::{self, Counter, MemRecorder, RingCapacity};
use thresher::serve::{Daemon, ServeConfig};

const PROGRAM: &str = r#"
class Box { field item: Object; }
global CACHE: Box;
fn main() {
  var b: Box;
  var secret: Object;
  var s: Object;
  b = new Box @box0;
  secret = new Object @secret0;
  s = new Object @str0;
  b.item = s;
  $CACHE = b;
}
entry main;
"#;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thresher-serve-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One shared static recorder for this test binary (installs leak, so
/// cycling one per test would grow without bound).
fn recorder() -> &'static MemRecorder {
    use std::sync::OnceLock;
    static REC: OnceLock<&'static MemRecorder> = OnceLock::new();
    let rec = *REC.get_or_init(|| MemRecorder::install_static(RingCapacity::default()));
    obs::install(rec);
    rec
}

fn request(id: u64, method: &str, params: &[(&str, Value)]) -> String {
    let params = Value::Obj(params.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect());
    Value::Obj(vec![
        ("id".to_owned(), Value::uint(id)),
        ("method".to_owned(), Value::str(method)),
        ("params".to_owned(), params),
    ])
    .to_json()
}

fn load_req(id: u64, name: &str) -> String {
    request(id, "load_program", &[("name", Value::str(name)), ("source", Value::str(PROGRAM))])
}

fn query_req(id: u64, program: &str, loc: &str, extra: &[(&str, Value)]) -> String {
    let mut params = vec![
        ("program", Value::str(program)),
        ("global", Value::str("CACHE")),
        ("loc", Value::str(loc)),
    ];
    params.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    request(id, "query_edge", &params)
}

fn response_for(lines: &[String], id: u64) -> Value {
    lines
        .iter()
        .find_map(|l| {
            let v = obs::json::parse(l).ok()?;
            (v.get("id").and_then(Value::as_u64) == Some(id)).then_some(v)
        })
        .unwrap_or_else(|| panic!("no response with id {id} in {lines:#?}"))
}

/// Serializes an `ok` body with the `cost` block removed: cost carries
/// wall-clock phase timings (answer-invariant but not byte-stable), so
/// byte-identity comparisons exclude it, exactly like `--diff-reports`
/// excludes `_ns`/`_us` histograms.
fn strip_cost(body: &Value) -> String {
    match body {
        Value::Obj(fields) => {
            Value::Obj(fields.iter().filter(|(k, _)| k != "cost").cloned().collect::<Vec<_>>())
                .to_json()
        }
        other => other.to_json(),
    }
}

fn ok_body(lines: &[String], id: u64) -> String {
    strip_cost(
        response_for(lines, id).get("ok").unwrap_or_else(|| {
            panic!("id {id} is not ok: {:?}", response_for(lines, id).to_json())
        }),
    )
}

fn err_code(lines: &[String], id: u64) -> String {
    response_for(lines, id)
        .get("err")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("id {id} is not err: {:?}", response_for(lines, id).to_json()))
        .to_owned()
}

/// The full fault matrix: panic, stall, cache corruption, torn write. The
/// daemon survives all four; only the targeted request fails, with a
/// structured error; the same untouched query answers byte-identically
/// before, between, and after the faults — including after an evict +
/// reload over the damaged store.
#[test]
fn fault_suite_daemon_survives_and_isolates() {
    let cache = tmp("faults");
    let config = ServeConfig {
        workers: 1,
        inject: true,
        cache_root: Some(cache.clone()),
        ..ServeConfig::default()
    };
    let daemon = Daemon::new(config);
    let script = [
        load_req(1, "boxy"),
        query_req(2, "boxy", "str0", &[]),
        query_req(3, "boxy", "str0", &[("inject", Value::str("panic"))]),
        query_req(4, "boxy", "str0", &[]),
        query_req(
            5,
            "boxy",
            "str0",
            &[("inject", Value::str("stall")), ("deadline_ms", Value::uint(150))],
        ),
        query_req(6, "boxy", "str0", &[]),
        query_req(7, "boxy", "str0", &[("inject", Value::str("corrupt-cache"))]),
        query_req(8, "boxy", "str0", &[]),
        query_req(9, "boxy", "secret0", &[("inject", Value::str("torn-write"))]),
        request(10, "evict", &[("program", Value::str("boxy"))]),
        load_req(11, "boxy"),
        query_req(12, "boxy", "str0", &[]),
    ]
    .join("\n");
    let (lines, summary) = daemon.run_script(&script);

    // The targeted requests fail with structured, provenance-tagged errors.
    let panic_err = response_for(&lines, 3);
    assert_eq!(err_code(&lines, 3), "panic");
    assert_eq!(
        panic_err.get("err").and_then(|e| e.get("stop_reason")).and_then(Value::as_str),
        Some("panic")
    );
    let stall_err = response_for(&lines, 5);
    assert_eq!(err_code(&lines, 5), "deadline");
    assert_eq!(
        stall_err.get("err").and_then(|e| e.get("stop_reason")).and_then(Value::as_str),
        Some("wall-clock")
    );

    // The cache-damaging requests themselves still answer.
    assert!(ok_body(&lines, 7).contains("\"reachable\":true"));
    assert!(ok_body(&lines, 9).contains("\"reachable\":false"));

    // Untouched requests are byte-identical throughout — including id 12,
    // served after evicting and reloading over the damaged store.
    let baseline = ok_body(&lines, 2);
    for id in [4, 6, 8, 12] {
        assert_eq!(ok_body(&lines, id), baseline, "answer changed at id {id}");
    }
    // The reload reopened the damaged store read-write (corrupt and torn
    // lines are skipped, not fatal).
    assert!(ok_body(&lines, 11).contains("\"cache\":\"read-write\""));

    assert_eq!(summary.panicked, 1);
    assert_eq!(summary.timed_out, 1);
    assert_eq!(summary.admitted, 12);
    let _ = fs::remove_dir_all(&cache);
}

/// A per-request report (params `report: true`) from the daemon is
/// `--diff-reports`-equivalent to a one-shot `thresher-cli` run of the
/// same load + query.
#[test]
fn per_request_report_matches_one_shot_cli() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    let dir = tmp("identity");
    let tir_path = dir.join("boxy.tir");
    fs::write(&tir_path, PROGRAM).expect("write program");

    let daemon = Daemon::new(ServeConfig { workers: 1, ..ServeConfig::default() });
    let script = [
        request(
            1,
            "load_program",
            &[("name", Value::str("boxy")), ("path", Value::str(tir_path.to_str().unwrap()))],
        ),
        query_req(2, "boxy", "secret0", &[("report", Value::Bool(true))]),
    ]
    .join("\n");
    let (lines, summary) = daemon.run_script(&script);
    obs::uninstall();
    assert_eq!(summary.completed, 2, "daemon run failed: {lines:#?}");
    let report = response_for(&lines, 2)
        .get("ok")
        .and_then(|o| o.get("report"))
        .expect("ok.report present")
        .to_json();
    let serve_report = dir.join("serve-report.json");
    fs::write(&serve_report, report).expect("write serve report");

    let cli_report = dir.join("cli-report.json");
    let status = Command::new(env!("CARGO_BIN_EXE_thresher-cli"))
        .args([
            tir_path.to_str().unwrap(),
            "--query",
            "CACHE",
            "secret0",
            "--jobs",
            "1",
            "--report-out",
            cli_report.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run thresher-cli");
    // secret0 is refuted: completed with no findings.
    assert_eq!(status.code(), Some(0));

    let diff = Command::new(env!("CARGO_BIN_EXE_thresher-cli"))
        .args(["--diff-reports", serve_report.to_str().unwrap(), cli_report.to_str().unwrap()])
        .output()
        .expect("run --diff-reports");
    assert_eq!(
        diff.status.code(),
        Some(0),
        "daemon and CLI reports differ:\n{}",
        String::from_utf8_lossy(&diff.stdout)
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A program with `n` globals, each holding its own box/object pair, so
/// one round of queries decides ~2n distinct edges (enough decision-store
/// records to trip a small byte cap).
fn soak_source(globals: usize) -> String {
    let mut s = String::from("class Box { field item: Object; }\n");
    for i in 0..globals {
        s.push_str(&format!("global G{i}: Box;\n"));
    }
    s.push_str("fn main() {\n");
    for i in 0..globals {
        s.push_str(&format!(
            "  var b{i}: Box;\n  var o{i}: Object;\n  b{i} = new Box @box{i};\n  \
             o{i} = new Object @obj{i};\n  b{i}.item = o{i};\n  $G{i} = b{i};\n"
        ));
    }
    s.push_str("}\nentry main;\n");
    s
}

/// Soak: >1000 requests over 20 programs through a daemon with a small
/// residency cap and tiny per-program cache caps. Residency stays bounded
/// (evictions observed), every store file stays under its byte cap with
/// compaction observed via counters, and every repeated request answers
/// identically across all rounds.
#[test]
fn soak_bounded_residency_and_caches_zero_answer_changes() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    const PROGRAMS: usize = 20;
    const GLOBALS: usize = 10;
    const ROUNDS: usize = 3;
    const CACHE_CAP: u64 = 1400;
    let cache = tmp("soak");
    let config = ServeConfig {
        workers: 1,
        max_resident: 4,
        queue_cap: 4096,
        rate_per_sec: 1e9,
        burst: 1e9,
        cache_root: Some(cache.clone()),
        cache_bytes_cap: CACHE_CAP,
        ..ServeConfig::default()
    };
    let daemon = Daemon::new(config);

    let source = soak_source(GLOBALS);
    let mut script = Vec::new();
    let mut id = 0u64;
    // (query key -> ids that issued it) for the zero-answer-change check.
    let mut issued: Vec<(String, u64)> = Vec::new();
    for _round in 0..ROUNDS {
        for p in 0..PROGRAMS {
            let name = format!("soak{p}");
            id += 1;
            script.push(request(
                id,
                "load_program",
                &[("name", Value::str(name.clone())), ("source", Value::str(source.clone()))],
            ));
            for g in 0..GLOBALS {
                for (tag, loc) in
                    [("hit", format!("obj{g}")), ("miss", format!("obj{}", (g + 1) % GLOBALS))]
                {
                    id += 1;
                    script.push(request(
                        id,
                        "query_edge",
                        &[
                            ("program", Value::str(name.clone())),
                            ("global", Value::str(format!("G{g}"))),
                            ("loc", Value::str(loc.clone())),
                        ],
                    ));
                    issued.push((format!("{name}/G{g}/{tag}"), id));
                }
            }
        }
    }
    assert!(id >= 1000, "soak must issue >= 1000 requests, issued {id}");
    let (lines, summary) = daemon.run_script(&script.join("\n"));
    obs::uninstall();

    assert_eq!(
        summary.completed, id,
        "soak had failures: shed={} panicked={}",
        summary.shed, summary.panicked
    );
    assert_eq!(summary.shed, 0);
    assert_eq!(summary.panicked, 0);

    // Residency stayed bounded; pressure evictions happened and were
    // counted.
    assert!(daemon.resident_count() <= 4);
    assert_eq!(summary.evicted, (PROGRAMS * ROUNDS - 4) as u64);
    assert_eq!(rec.counter(Counter::ProgramsEvicted), summary.evicted);

    // Every store file is at (or under) its byte cap and compaction was
    // observed via counters, with records actually dropped.
    assert!(rec.counter(Counter::CacheCompactions) > 0, "no compaction in soak");
    assert!(rec.counter(Counter::CacheRecordsDropped) > 0);
    for p in 0..PROGRAMS {
        let file = cache.join(format!("soak{p}")).join("decisions.jsonl");
        let bytes = fs::metadata(&file).map(|m| m.len()).unwrap_or(0);
        assert!(
            bytes <= CACHE_CAP + 512,
            "store for soak{p} grew to {bytes} bytes (cap {CACHE_CAP})"
        );
    }

    // Zero answer changes: every repeat of the same query — across rounds,
    // evictions, reloads, and compactions — answered byte-identically.
    let mut answers: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    for (key, id) in issued {
        let body = ok_body(&lines, id);
        match answers.get(&key) {
            None => {
                answers.insert(key, body);
            }
            Some(first) => assert_eq!(&body, first, "answer changed for {key}"),
        }
    }
    let _ = fs::remove_dir_all(&cache);
}

/// Two different clients issuing the same request back-to-back get
/// equivalent reports (`--diff-reports`: identical modulo timing) — no
/// cross-request state leaks into reports.
#[test]
fn two_clients_get_identical_reports() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    let dir = tmp("two-clients");
    let daemon = Daemon::new(ServeConfig { workers: 1, ..ServeConfig::default() });
    let q = |id: u64, client: &str| {
        let mut v =
            obs::json::parse(&query_req(id, "boxy", "secret0", &[("report", Value::Bool(true))]))
                .unwrap();
        if let Value::Obj(fields) = &mut v {
            fields.push(("client".to_owned(), Value::str(client)));
        }
        v.to_json()
    };
    let script = [load_req(1, "boxy"), q(2, "alice"), q(3, "bob")].join("\n");
    let (lines, summary) = daemon.run_script(&script);
    obs::uninstall();
    assert_eq!(summary.completed, 3);
    let report_path = |id: u64| {
        let json = response_for(&lines, id)
            .get("ok")
            .and_then(|o| o.get("report"))
            .expect("report present")
            .to_json();
        let path = dir.join(format!("client-{id}.json"));
        fs::write(&path, json).expect("write report");
        path
    };
    let (a, b) = (report_path(2), report_path(3));
    let diff = Command::new(env!("CARGO_BIN_EXE_thresher-cli"))
        .args(["--diff-reports", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("run --diff-reports");
    assert_eq!(
        diff.status.code(),
        Some(0),
        "two clients got different reports:\n{}",
        String::from_utf8_lossy(&diff.stdout)
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A program with two null-deref candidates: `t.item` (reachable null —
/// one alarm) and the guarded `u.item` (refuted). Used by the null-client
/// serve tests.
const NULLY: &str = r#"class Box { field item: Object; }
fn main() {
  var b: Box;
  var t: Box;
  var u: Box;
  var o: Object;
  var flag: int;
  flag = 0;
  b = new Box @box0;
  o = new Object @obj0;
  t = null;
  if (flag == 1) {
    t = new Box @box1;
  }
  b.item = o;
  t.item = o;
  u = null;
  if (flag == 1) {
    u = new Box @box2;
  }
  if (u != null) {
    u.item = o;
  }
}
entry main;
"#;

fn load_src_req(id: u64, name: &str, source: &str) -> String {
    request(id, "load_program", &[("name", Value::str(name)), ("source", Value::str(source))])
}

fn analyze_null_req(id: u64, program: &str, extra: &[(&str, Value)]) -> String {
    let mut params = vec![("program", Value::str(program)), ("client", Value::str("null"))];
    params.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    request(id, "analyze", &params)
}

/// The null client through the resident daemon: `analyze` with
/// `"client": "null"` answers with the stable `NullReport` rendering, a
/// panicking null query is contained to its own request, and the
/// resident escape-client state (a `query_edge` answer decided before
/// the panic) is untouched afterwards.
#[test]
fn null_client_analyze_isolates_faults_from_escape_state() {
    let daemon = Daemon::new(ServeConfig { workers: 1, inject: true, ..ServeConfig::default() });
    let script = [
        load_req(1, "boxy"),
        load_src_req(2, "nully", NULLY),
        // Escape-client baseline on the resident boxy analysis.
        query_req(3, "boxy", "str0", &[]),
        analyze_null_req(4, "nully", &[]),
        // A null query that panics mid-flight...
        analyze_null_req(5, "nully", &[("inject", Value::str("panic"))]),
        // ...must leave both residents answering byte-identically.
        query_req(6, "boxy", "str0", &[]),
        analyze_null_req(7, "nully", &[]),
    ]
    .join("\n");
    let (lines, summary) = daemon.run_script(&script);
    assert_eq!(summary.admitted, 7);
    assert_eq!(summary.panicked, 1);

    let null_body = ok_body(&lines, 4);
    assert!(null_body.contains("\"candidate_sites\":2"), "wrong candidates: {null_body}");
    assert!(null_body.contains("\"refuted_sites\":1"), "guarded deref not refuted: {null_body}");
    assert!(null_body.contains("null? t at"), "missing t.item alarm: {null_body}");

    assert_eq!(err_code(&lines, 5), "panic");
    assert_eq!(ok_body(&lines, 6), ok_body(&lines, 3), "escape-client answer changed");
    assert_eq!(ok_body(&lines, 7), null_body, "null report changed after the panic");
}

/// The same null analyze over the TCP transport answers identically to
/// stdio.
#[test]
fn null_client_analyze_over_tcp_matches_stdio() {
    let stdio_daemon = Daemon::new(ServeConfig { workers: 1, ..ServeConfig::default() });
    let script = [load_src_req(1, "nully", NULLY), analyze_null_req(2, "nully", &[])].join("\n");
    let (stdio_lines, summary) = stdio_daemon.run_script(&script);
    assert_eq!(summary.completed, 2);
    let expected = ok_body(&stdio_lines, 2);

    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let daemon = Arc::new(Daemon::new(ServeConfig { workers: 1, ..ServeConfig::default() }));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    daemon.start_listener(listener).expect("start listener");

    // Hold stdio open (no data) until the TCP exchange finishes, then
    // report EOF so the daemon drains — same shape as the tcp drain test.
    struct Gate(Arc<AtomicBool>);
    impl std::io::Read for Gate {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            while !self.0.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Ok(0)
        }
    }
    let gate = Arc::new(AtomicBool::new(false));
    let (d, g) = (daemon.clone(), gate.clone());
    let runner = std::thread::spawn(move || d.run(BufReader::new(Gate(g)), std::io::sink()));

    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    writeln!(conn, "{}", load_src_req(1, "nully", NULLY)).unwrap();
    writeln!(conn, "{}", analyze_null_req(2, "nully", &[])).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut lines = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        lines.push(line.trim().to_owned());
    }
    drop(conn);
    assert_eq!(ok_body(&lines, 2), expected, "TCP null report differs from stdio");
    gate.store(true, Ordering::Relaxed);
    let _ = runner.join().expect("runner join");
}

// ---- process lifecycle (spawned thresher-serve binary) ----

fn spawn_serve(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_thresher-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn thresher-serve")
}

fn wait_with_timeout(child: &mut Child, what: &str) -> i32 {
    for _ in 0..600 {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code().unwrap_or(-1);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let _ = child.kill();
    panic!("{what}: daemon did not exit within 30s");
}

/// EOF on stdin drains queued work and exits 0, with every admitted
/// request answered.
#[test]
fn eof_drains_and_exits_zero() {
    let mut child = spawn_serve(&[]);
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "{}", load_req(1, "boxy")).unwrap();
        writeln!(stdin, "{}", query_req(2, "boxy", "str0", &[])).unwrap();
    }
    drop(child.stdin.take()); // EOF
    let stdout = child.stdout.take().unwrap();
    let code = wait_with_timeout(&mut child, "eof drain");
    assert_eq!(code, 0);
    let lines: Vec<String> = BufReader::new(stdout).lines().map(|l| l.unwrap()).collect();
    assert!(ok_body(&lines, 1).contains("\"program\":\"boxy\""));
    assert!(ok_body(&lines, 2).contains("\"reachable\":true"));
}

/// SIGTERM requests a drain; the daemon finishes in-flight work and exits
/// 0 (the blocked stdin read is noticed at the next line under
/// SA_RESTART, so the test nudges it with a health request).
#[test]
#[cfg(unix)]
fn sigterm_drains_and_exits_zero() {
    let mut child = spawn_serve(&[]);
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "{}", load_req(1, "boxy")).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    // Wake the reader so it sees the drain flag; keep stdin open to prove
    // the exit is SIGTERM-driven, not EOF-driven.
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "{{\"id\": 9, \"method\": \"health\"}}").unwrap();
    }
    let code = wait_with_timeout(&mut child, "sigterm drain");
    assert_eq!(code, 0);
    drop(child.stdin.take());
}

/// SIGKILL mid-session leaves a decision store (plus its advisory lock,
/// naming a now-dead pid) that the next daemon steals, reads — skipping
/// any torn tail — and reopens read-write, answering identically.
#[test]
#[cfg(unix)]
fn sigkill_leaves_store_next_daemon_self_heals() {
    let cache = tmp("kill9");
    let tir_dir = tmp("kill9-src");
    let tir_path = tir_dir.join("boxy.tir");
    fs::write(&tir_path, PROGRAM).expect("write program");

    let mut child = spawn_serve(&["--cache-dir", cache.to_str().unwrap(), "--workers", "1"]);
    let mut first_answer = String::new();
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(
            stdin,
            "{}",
            request(
                1,
                "load_program",
                &[("name", Value::str("boxy")), ("path", Value::str(tir_path.to_str().unwrap()))],
            )
        )
        .unwrap();
        writeln!(stdin, "{}", query_req(2, "boxy", "str0", &[])).unwrap();
        // Read both responses so the store is definitely populated before
        // the kill.
        let mut reader = BufReader::new(child.stdout.as_mut().unwrap());
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if let Ok(v) = obs::json::parse(&line) {
                if v.get("id").and_then(Value::as_u64) == Some(2) {
                    first_answer = strip_cost(v.get("ok").expect("query ok"));
                }
            }
        }
    }
    assert!(!first_answer.is_empty());
    let killed =
        Command::new("kill").args(["-9", &child.id().to_string()]).status().expect("send SIGKILL");
    assert!(killed.success());
    let _ = child.wait();

    // The dead daemon left its advisory lock behind.
    let store_dir = cache.join("boxy");
    assert!(store_dir.join("decisions.lock").exists(), "lock file should be left behind");
    // Simulate a write torn by the kill.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(store_dir.join("decisions.jsonl"))
            .expect("open store file");
        f.write_all(b"{\"v\":1,\"fp\":\"99999\",\"edge\":\"torn-by-k").unwrap();
    }

    // The next daemon steals the stale lock, skips the torn tail, and
    // answers identically.
    let daemon = Daemon::new(ServeConfig {
        workers: 1,
        cache_root: Some(cache.clone()),
        ..ServeConfig::default()
    });
    let script = [
        request(
            1,
            "load_program",
            &[("name", Value::str("boxy")), ("path", Value::str(tir_path.to_str().unwrap()))],
        ),
        query_req(2, "boxy", "str0", &[]),
    ]
    .join("\n");
    let (lines, summary) = daemon.run_script(&script);
    assert_eq!(summary.completed, 2, "self-heal run failed: {lines:#?}");
    assert!(
        ok_body(&lines, 1).contains("\"cache\":\"read-write\""),
        "stale lock not stolen: {}",
        ok_body(&lines, 1)
    );
    assert_eq!(ok_body(&lines, 2), first_answer);
    let _ = fs::remove_dir_all(&cache);
    let _ = fs::remove_dir_all(&tir_dir);
}

/// The TCP listener serves the same protocol as stdio and winds down on
/// drain.
#[test]
fn tcp_listener_serves_and_drains() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let daemon = Arc::new(Daemon::new(ServeConfig { workers: 1, ..ServeConfig::default() }));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    daemon.start_listener(listener).expect("start listener");

    // A stdio transport that stays open (without data) until the test
    // releases it, then reports EOF so the daemon drains.
    struct Gate(Arc<AtomicBool>);
    impl std::io::Read for Gate {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            while !self.0.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Ok(0)
        }
    }
    let gate = Arc::new(AtomicBool::new(false));
    let d = daemon.clone();
    let g = gate.clone();
    let runner = std::thread::spawn(move || d.run(BufReader::new(Gate(g)), std::io::sink()));

    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    writeln!(conn, "{}", load_req(1, "boxy")).unwrap();
    writeln!(conn, "{}", query_req(2, "boxy", "secret0", &[])).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut lines = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        lines.push(line.trim().to_owned());
    }
    assert!(ok_body(&lines, 2).contains("\"reachable\":false"));
    gate.store(true, Ordering::Relaxed);
    let summary = runner.join().expect("runner join");
    assert_eq!(summary.completed, 2);
}
