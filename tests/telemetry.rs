//! The live telemetry plane of the resident daemon (`thresher::serve`):
//!
//! - every queued request answers with a `cost` block whose counts
//!   reconcile *exactly* with the daemon's internal telemetry registry, as
//!   read back through the `metrics` method (Prometheus text exposition);
//! - the counts inside `cost` are jobs-invariant (only wall-clock fields
//!   may differ across `--jobs N`), so answer identity under
//!   `--diff-reports` is preserved;
//! - slow-request forensics: with the threshold at zero every request
//!   lands in the bounded JSONL slow log, the `slowlog` method reads it
//!   back, and the file self-truncates under its byte cap;
//! - shed responses carry a `queue_wait_ms` hint next to `retry_after_ms`
//!   once the daemon has seen queue traffic;
//! - `health` exposes store sizes, uptime, and the in-flight high-water
//!   mark;
//! - the `--metrics-addr` HTTP listener serves a parseable exposition.
//!
//! Tests that install the process-global recorder serialize on
//! `obs::test_lock()` (same discipline as tests/serve_robustness.rs).

use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

use thresher::obs::json::Value;
use thresher::obs::{self, prom, MemRecorder, RingCapacity};
use thresher::serve::{Daemon, ServeConfig};

const PROGRAM: &str = r#"
class Box { field item: Object; }
global CACHE: Box;
fn main() {
  var b: Box;
  var secret: Object;
  var s: Object;
  b = new Box @box0;
  secret = new Object @secret0;
  s = new Object @str0;
  b.item = s;
  $CACHE = b;
}
entry main;
"#;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thresher-telem-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One shared static recorder for this test binary (installs leak, so
/// cycling one per test would grow without bound).
fn recorder() -> &'static MemRecorder {
    use std::sync::OnceLock;
    static REC: OnceLock<&'static MemRecorder> = OnceLock::new();
    let rec = *REC.get_or_init(|| MemRecorder::install_static(RingCapacity::default()));
    obs::install(rec);
    rec
}

fn request(id: u64, method: &str, params: &[(&str, Value)]) -> String {
    let params = Value::Obj(params.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect());
    Value::Obj(vec![
        ("id".to_owned(), Value::uint(id)),
        ("method".to_owned(), Value::str(method)),
        ("params".to_owned(), params),
    ])
    .to_json()
}

fn load_req(id: u64, name: &str) -> String {
    request(id, "load_program", &[("name", Value::str(name)), ("source", Value::str(PROGRAM))])
}

fn query_req(id: u64, program: &str, loc: &str) -> String {
    request(
        id,
        "query_edge",
        &[
            ("program", Value::str(program)),
            ("global", Value::str("CACHE")),
            ("loc", Value::str(loc)),
        ],
    )
}

fn response_for(lines: &[String], id: u64) -> Value {
    lines
        .iter()
        .find_map(|l| {
            let v = obs::json::parse(l).ok()?;
            (v.get("id").and_then(Value::as_u64) == Some(id)).then_some(v)
        })
        .unwrap_or_else(|| panic!("no response with id {id} in {lines:#?}"))
}

fn ok_body(lines: &[String], id: u64) -> Value {
    response_for(lines, id)
        .get("ok")
        .unwrap_or_else(|| panic!("id {id} is not ok: {:?}", response_for(lines, id).to_json()))
        .clone()
}

fn cost_of(lines: &[String], id: u64) -> Value {
    ok_body(lines, id).get("cost").unwrap_or_else(|| panic!("id {id} has no cost block")).clone()
}

fn cost_u64(cost: &Value, field: &str) -> u64 {
    cost.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("cost field {field} missing in {}", cost.to_json()))
}

/// The value of counter `name` (wire name, no prefix) in a parsed
/// exposition, i.e. the `thresher_<name>_total` sample.
fn expo_counter(samples: &[prom::Sample], name: &str) -> u64 {
    let full = format!("thresher_{name}_total");
    samples.iter().find(|s| s.name == full).unwrap_or_else(|| panic!("no sample {full}")).value
        as u64
}

/// Every queued request answers with a full cost block, and summing the
/// delta-derived counts across all responses reproduces the daemon's own
/// telemetry registry exactly — the reconciliation invariant: the
/// exposition inside the final `metrics` response covers precisely the
/// requests completed before it (everything, with one worker and `metrics`
/// last), and `requests_admitted` additionally includes the `metrics`
/// request itself because admission is tallied before the queue push.
#[test]
fn cost_blocks_reconcile_with_exposition() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    let daemon = Daemon::new(ServeConfig { workers: 1, ..ServeConfig::default() });
    let script = [
        load_req(1, "boxy"),
        query_req(2, "boxy", "str0"),
        query_req(3, "boxy", "secret0"),
        query_req(4, "boxy", "str0"),
        request(5, "metrics", &[]),
    ]
    .join("\n");
    let (lines, summary) = daemon.run_script(&script);
    obs::uninstall();
    assert_eq!(summary.completed, 5, "run failed: {lines:#?}");

    // Every queued response carries the full cost block.
    for id in 1..=5 {
        let cost = cost_of(&lines, id);
        for field in [
            "wall_us",
            "queue_wait_ms",
            "path_programs",
            "solver_calls",
            "solver_ns",
            "cache_hits",
            "cache_misses",
            "cache_invalidated",
            "edges_refuted",
            "edges_witnessed",
            "edges_aborted",
        ] {
            let _ = cost_u64(&cost, field);
        }
        let phases = cost.get("phases").expect("cost.phases");
        for p in ["parse_us", "pta_us", "symex_us", "cache_us"] {
            assert!(phases.get(p).and_then(Value::as_u64).is_some(), "missing phase {p}");
        }
    }
    // Analysis phases land where expected: parse+pta on the load, symex on
    // a query; queries carry their fair budget share.
    let load_phases = cost_of(&lines, 1).get("phases").unwrap().clone();
    assert!(load_phases.get("parse_us").and_then(Value::as_u64).is_some());
    assert!(cost_of(&lines, 2).get("budget").and_then(Value::as_u64).is_some());
    assert!(cost_u64(&cost_of(&lines, 2), "path_programs") > 0);
    assert!(cost_u64(&cost_of(&lines, 2), "solver_calls") > 0);

    // Reconciliation: the exposition's engine counters equal the sum of
    // the cost blocks (the `metrics` request contributes zeros — building
    // an exposition consumes no engine work).
    let body = ok_body(&lines, 5);
    assert_eq!(body.get("format").and_then(Value::as_str), Some("prometheus-text-0.0.4"));
    let text = body.get("exposition").and_then(Value::as_str).expect("exposition").to_owned();
    let samples = prom::parse(&text).expect("exposition parses");
    for name in [
        "path_programs",
        "solver_calls",
        "cache_hits",
        "cache_misses",
        "cache_invalidated",
        "edges_refuted",
        "edges_witnessed",
        "edges_aborted",
    ] {
        let summed: u64 = (1..=5).map(|id| cost_u64(&cost_of(&lines, id), name)).sum();
        assert_eq!(expo_counter(&samples, name), summed, "counter {name} does not reconcile");
    }
    // Serve-plane counters: admission is tallied before the queue push, so
    // the metrics request sees itself admitted but not yet completed.
    assert_eq!(expo_counter(&samples, "requests_admitted"), 5);
    assert_eq!(expo_counter(&samples, "requests_completed"), 4);
    // Gauges and window quantiles are present.
    assert!(text.contains("thresher_serve_resident_programs 1"));
    assert!(text.contains("thresher_serve_uptime_seconds"));
    assert!(text.contains("thresher_serve_window_request_us"));
    // The request-latency histogram made it into the exposition with
    // cumulative buckets.
    assert!(text.contains("thresher_serve_request_us_bucket"));
    assert!(text.contains("le=\"+Inf\""));
}

/// The counts inside `cost` are delta-derived and therefore identical at
/// any `--jobs N`; only wall-clock fields may differ. This is the same
/// invariant `--diff-reports` enforces for per-request reports.
#[test]
fn cost_counts_are_jobs_invariant() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    let strip_wall = |cost: &Value| -> Vec<(String, u64)> {
        let Value::Obj(fields) = cost else { panic!("cost is not an object") };
        let mut counts: Vec<(String, u64)> = fields
            .iter()
            .filter(|(k, _)| {
                !matches!(k.as_str(), "wall_us" | "queue_wait_ms" | "solver_ns" | "phases")
            })
            .map(|(k, v)| (k.clone(), v.as_u64().unwrap_or(0)))
            .collect();
        counts.sort();
        counts
    };

    let run = |jobs: usize| {
        let daemon = Daemon::new(ServeConfig { workers: 1, jobs, ..ServeConfig::default() });
        let script =
            [load_req(1, "boxy"), query_req(2, "boxy", "str0"), query_req(3, "boxy", "secret0")]
                .join("\n");
        let (lines, summary) = daemon.run_script(&script);
        assert_eq!(summary.completed, 3, "run failed: {lines:#?}");
        (1..=3).map(|id| strip_wall(&cost_of(&lines, id))).collect::<Vec<_>>()
    };

    let one = run(1);
    let four = run(4);
    obs::uninstall();
    assert_eq!(one, four, "cost counts changed across --jobs");
}

/// With the threshold at zero every executed request lands in the slow
/// log with spans + cost; `slowlog` reads the newest entries back; the
/// file self-truncates under its byte cap; `requests_slow` counts them.
#[test]
fn slow_log_captures_spans_and_truncates() {
    let dir = tmp("slowlog");
    let log_path = dir.join("slow.jsonl");
    const CAP: u64 = 4096;
    let daemon = Daemon::new(ServeConfig {
        workers: 1,
        slow_log: Some(log_path.clone()),
        slow_threshold: Duration::ZERO,
        slow_log_bytes_cap: CAP,
        ..ServeConfig::default()
    });

    let mut script = vec![load_req(1, "boxy")];
    for id in 2..=40 {
        script.push(query_req(id, "boxy", "str0"));
    }
    script.push(request(41, "slowlog", &[("limit", Value::uint(8))]));
    let (lines, summary) = daemon.run_script(&script.join("\n"));
    assert_eq!(summary.completed, 41, "run failed: {lines:#?}");

    let body = ok_body(&lines, 41);
    assert!(matches!(body.get("enabled"), Some(Value::Bool(true))));
    assert!(body.get("path").and_then(Value::as_str).is_some());
    let Some(Value::Arr(entries)) = body.get("entries") else { panic!("entries missing") };
    assert!(!entries.is_empty() && entries.len() <= 8, "got {} entries", entries.len());
    for e in entries {
        assert_eq!(e.get("outcome").and_then(Value::as_str), Some("ok"));
        assert!(e.get("method").and_then(Value::as_str).is_some());
        assert!(e.get("cost").is_some(), "slow entry lacks cost: {}", e.to_json());
        let Some(Value::Arr(spans)) = e.get("spans") else { panic!("spans missing") };
        for s in spans {
            assert!(s.get("name").and_then(Value::as_str).is_some());
            assert!(s.get("dur_us").and_then(Value::as_u64).is_some());
        }
    }
    // Entries are oldest-first by timestamp.
    let ts: Vec<u64> =
        entries.iter().filter_map(|e| e.get("ts_us").and_then(Value::as_u64)).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "entries out of order: {ts:?}");

    // 40 entries of ~400 bytes each overflow a 4 KiB cap several times —
    // the log must have truncated itself and stayed bounded.
    let bytes = std::fs::metadata(&log_path).map(|m| m.len()).unwrap_or(0);
    assert!(bytes > 0 && bytes <= CAP, "slow log is {bytes} bytes (cap {CAP})");

    // Every executed request counted as slow (threshold 0), including the
    // slowlog read itself minus the one in flight while it rendered: the
    // exposition is read after drain, so here all 41 are visible.
    let samples = prom::parse(&daemon.exposition()).expect("exposition parses");
    assert_eq!(expo_counter(&samples, "requests_slow"), 41);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A shed response carries the recent queue-wait estimate next to
/// `retry_after_ms`, once the window has samples. The input is gated so
/// the rate-limited request is only submitted after two requests have
/// demonstrably completed (their queue waits recorded).
#[test]
fn shed_responses_carry_queue_wait_hint() {
    // stdin side: yields scripted chunks, blocking between them until the
    // test observes the preceding responses.
    struct GatedInput {
        rx: mpsc::Receiver<Option<Vec<u8>>>,
        buf: Vec<u8>,
    }
    impl std::io::Read for GatedInput {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.buf.is_empty() {
                match self.rx.recv() {
                    Ok(Some(chunk)) => self.buf = chunk,
                    Ok(None) | Err(_) => return Ok(0),
                }
            }
            let n = out.len().min(self.buf.len());
            out[..n].copy_from_slice(&self.buf[..n]);
            self.buf.drain(..n);
            Ok(n)
        }
    }
    // stdout side: forwards each complete response line to the test.
    #[derive(Clone)]
    struct LineTx {
        tx: mpsc::Sender<String>,
        buf: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
    }
    impl std::io::Write for LineTx {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            let mut buf = self.buf.lock().unwrap();
            buf.extend_from_slice(data);
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = buf.drain(..=pos).collect();
                let _ = self.tx.send(String::from_utf8_lossy(&line).trim().to_owned());
            }
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let (in_tx, in_rx) = mpsc::channel::<Option<Vec<u8>>>();
    let (out_tx, out_rx) = mpsc::channel::<String>();
    let daemon = std::sync::Arc::new(Daemon::new(ServeConfig {
        workers: 1,
        // Two requests pass the bucket, the third is rate-limited.
        rate_per_sec: 0.0,
        burst: 2.0,
        ..ServeConfig::default()
    }));

    let d = daemon.clone();
    let writer = LineTx { tx: out_tx, buf: std::sync::Arc::default() };
    let runner = std::thread::spawn(move || {
        d.run(std::io::BufReader::new(GatedInput { rx: in_rx, buf: Vec::new() }), writer)
    });

    let chunk = format!("{}\n{}\n", load_req(1, "boxy"), query_req(2, "boxy", "str0"));
    in_tx.send(Some(chunk.into_bytes())).unwrap();
    let mut lines = Vec::new();
    while lines.len() < 2 {
        lines.push(out_rx.recv_timeout(Duration::from_secs(30)).expect("responses 1 and 2"));
    }
    // Both completed: the queue-wait window now has two samples, so the
    // next shed carries the hint.
    in_tx.send(Some(format!("{}\n", query_req(3, "boxy", "str0")).into_bytes())).unwrap();
    lines.push(out_rx.recv_timeout(Duration::from_secs(30)).expect("response 3"));
    in_tx.send(None).unwrap();
    let summary = runner.join().expect("daemon thread");

    assert_eq!(summary.completed, 2);
    assert_eq!(summary.shed, 1);
    let shed = response_for(&lines, 3);
    let err = shed.get("err").expect("id 3 shed");
    assert_eq!(err.get("code").and_then(Value::as_str), Some("rate-limited"));
    assert!(err.get("retry_after_ms").and_then(Value::as_u64).is_some());
    assert!(
        err.get("queue_wait_ms").and_then(Value::as_u64).is_some(),
        "shed response lacks queue_wait_ms: {}",
        shed.to_json()
    );
}

/// `health` exposes per-store byte sizes, uptime, and the in-flight
/// high-water mark alongside the original residency fields.
#[test]
fn health_reports_stores_uptime_and_peak() {
    let cache = tmp("health");
    let daemon = Daemon::new(ServeConfig {
        workers: 1,
        cache_root: Some(cache.clone()),
        ..ServeConfig::default()
    });
    // `health` answers inline on the transport thread; a gated read is not
    // needed because run_script only returns after the drain, and we only
    // assert on the final in-script health snapshot being well-formed.
    let script =
        [load_req(1, "boxy"), query_req(2, "boxy", "str0"), request(3, "health", &[])].join("\n");
    let (lines, summary) = daemon.run_script(&script);
    assert_eq!(summary.completed, 2, "run failed: {lines:#?}");

    let health = ok_body(&lines, 3);
    for field in
        ["programs", "stores", "store_bytes", "queue_depth", "active", "peak_active", "uptime_ms"]
    {
        assert!(health.get(field).is_some(), "health lacks {field}: {}", health.to_json());
    }
    assert!(health.get("uptime_s").and_then(Value::as_u64).is_some());
    assert!(matches!(health.get("draining"), Some(Value::Bool(false))));
    // Two requests ran through one worker: the high-water mark is exactly 1
    // by drain time; health may have answered before the first pop, so the
    // in-script snapshot only bounds it.
    assert!(health.get("peak_active").and_then(Value::as_u64).unwrap_or(99) <= 1);
    let _ = std::fs::remove_dir_all(&cache);
}

/// The `--metrics-addr` HTTP listener answers a GET with a well-formed,
/// parseable exposition and closes the connection.
#[test]
fn metrics_http_listener_serves_exposition() {
    let daemon = Daemon::new(ServeConfig { workers: 1, ..ServeConfig::default() });
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    daemon.start_metrics_listener(listener).expect("start metrics listener");

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");

    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "bad status: {response}");
    assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    let samples = prom::parse(body).expect("exposition parses");
    assert!(samples.iter().any(|s| s.name == "thresher_serve_uptime_seconds"));
    assert!(samples.iter().any(|s| s.name == "thresher_serve_queue_depth"));
    assert_eq!(expo_counter(&samples, "requests_admitted"), 0);

    // An empty script drains the daemon, which also winds down (and joins)
    // the metrics accept loop.
    let (_, summary) = daemon.run_script("");
    assert_eq!(summary.admitted, 0);
}
