//! Property tests for edit-delta incremental points-to analysis.
//!
//! Two properties, per ISSUE acceptance:
//!
//! - **reference equivalence**: for random base programs and random edit
//!   sequences, the canonicalized incremental state equals a from-scratch
//!   reference solve after *every* applied edit batch, under every context
//!   policy;
//! - **refutation soundness across edits**: after each edit, heap edges
//!   produced by concretely interpreting the edited program are never
//!   refuted by the symbolic engine running over the incrementally
//!   maintained points-to result.

use minicheck::{run_cases, Rng};
use pta::{
    analyze_with, canonical_text, ContextPolicy, IncrementalPta, ModRef, PtaOptions, SolverKind,
};
use symex::{Engine, Fingerprinter, MethodHashCache, SymexConfig};
use tir::interp::{Interp, Oracle};
use tir::{apply_edits, EditOp, Program};

// ------------------------------------------------------------ base programs

/// A base program with enough surface area for interesting edits: a class
/// hierarchy with an override, fields, globals, getters/setters, and a main
/// that exercises all of them. All object variables are initialized so
/// statement-level edits rarely produce null dereferences.
fn base_source(rng: &mut Rng) -> String {
    let extra_global = rng.bool();
    let extra_call = rng.bool();
    let mut s = String::from(
        r#"class Cell {
  field f0: Object;
  field f1: Object;
  method get(this: Cell): Object {
    var r: Object;
    r = this.f0;
    return r;
  }
  method set(this: Cell, v: Object) {
    this.f0 = v;
    return;
  }
}
class CellSub extends Cell {
  method get(this: CellSub): Object {
    var o: Object;
    o = new Object @subobj;
    return o;
  }
}
global G0: Object;
global G1: Object;
"#,
    );
    if extra_global {
        s.push_str("global G2: Object;\n");
    }
    s.push_str(
        r#"fn main() {
  var c0: Cell;
  var c1: Cell;
  var o0: Object;
  var o1: Object;
  var r: Object;
  c0 = new Cell @c0a;
  c1 = new CellSub @c1a;
  o0 = new Object @o0a;
  o1 = new Object @o1a;
  call c0.set(o0);
  call c1.set(o1);
  r = call c0.get();
  $G0 = o0;
  $G1 = r;
"#,
    );
    if extra_call {
        s.push_str("  r = call c1.get();\n");
    }
    s.push_str("  return;\n}\nentry main;\n");
    s
}

// ------------------------------------------------------------ edit menu

/// Names usable in generated statement texts. Matches `base_source`.
const CELL_VARS: &[&str] = &["c0", "c1"];
const OBJ_VARS: &[&str] = &["o0", "o1", "r"];
const FIELDS: &[&str] = &["f0", "f1"];
const GLOBALS: &[&str] = &["G0", "G1"];

/// One random statement over the fixed name menu. `fresh` makes allocation
/// site names unique across the whole edit history of one case (site names
/// are globally unique in tir, including removed ones).
fn random_stmt(rng: &mut Rng, fresh: &mut usize) -> String {
    let c = |rng: &mut Rng| CELL_VARS[rng.below(CELL_VARS.len())];
    let o = |rng: &mut Rng| OBJ_VARS[rng.below(OBJ_VARS.len())];
    let f = |rng: &mut Rng| FIELDS[rng.below(FIELDS.len())];
    let g = |rng: &mut Rng| GLOBALS[rng.below(GLOBALS.len())];
    match rng.weighted(&[2, 2, 2, 2, 2, 2, 1, 1]) {
        0 => {
            *fresh += 1;
            let class = if rng.bool() { "Cell" } else { "CellSub" };
            format!("{} = new {} @e{};", c(rng), class, *fresh)
        }
        1 => {
            *fresh += 1;
            format!("{} = new Object @e{};", o(rng), *fresh)
        }
        2 => format!("{}.{} = {};", c(rng), f(rng), o(rng)),
        3 => format!("{} = {}.{};", o(rng), c(rng), f(rng)),
        4 => format!("${} = {};", g(rng), o(rng)),
        5 => format!("{} = ${};", o(rng), g(rng)),
        6 => format!("call {}.set({});", c(rng), o(rng)),
        _ => format!("{} = call {}.get();", o(rng), c(rng)),
    }
}

/// One random edit op against the current program. May be invalid (e.g.
/// removing a statement another command depends on); `apply_edits` is
/// transactional, so invalid ops are simply skipped by the caller.
fn random_edit(rng: &mut Rng, program: &Program, fresh: &mut usize) -> EditOp {
    let main_cmds = program.method_cmds(program.entry()).len();
    match rng.weighted(&[4, 3, 3, 1, 1]) {
        0 => EditOp::AddStmt {
            method: "main".into(),
            at: rng.below(main_cmds + 1),
            text: random_stmt(rng, fresh),
        },
        1 => EditOp::ReplaceStmt {
            method: "main".into(),
            at: rng.below(main_cmds),
            text: random_stmt(rng, fresh),
        },
        2 => EditOp::RemoveStmt { method: "main".into(), at: rng.below(main_cmds) },
        3 => {
            *fresh += 1;
            EditOp::AddMethod {
                class: Some("CellSub".into()),
                text: "method set(this: CellSub, v: Object) {\n  this.f1 = v;\n  $G0 = v;\n  return;\n}"
                    .to_string(),
            }
        }
        _ => EditOp::RemoveMethod { method: "CellSub.get".into() },
    }
}

fn reference_text(program: &Program, policy: &ContextPolicy) -> String {
    let options = PtaOptions { solver: SolverKind::Reference, ..PtaOptions::default() };
    canonical_text(program, &analyze_with(program, policy.clone(), &options))
}

// ------------------------------------------------------------ property 1

/// Random edit sequences: after every applied batch, the canonicalized
/// incremental state must match a from-scratch reference solve.
#[test]
fn random_edit_sequences_match_reference() {
    run_cases(48, |rng| {
        let policy = match rng.below(3) {
            0 => ContextPolicy::Insensitive,
            1 => ContextPolicy::ObjectSensitive { max_depth: 2 },
            _ => ContextPolicy::CallSiteSensitive,
        };
        let mut program = tir::parse(&base_source(rng)).expect("base program parses");
        let mut inc = IncrementalPta::new(&program, policy.clone(), &PtaOptions::default());
        assert_eq!(
            canonical_text(&program, &inc.result(&program)),
            reference_text(&program, &policy),
            "initial solve disagrees with reference"
        );

        let mut fresh = 0usize;
        let steps = rng.usize_in(3, 6);
        let mut applied_batches = 0usize;
        for _ in 0..steps {
            let ops: Vec<EditOp> =
                (0..rng.usize_in(1, 2)).map(|_| random_edit(rng, &program, &mut fresh)).collect();
            // Invalid batches (dangling uses, duplicate methods, …) are
            // rejected transactionally; skip them.
            let Ok(applied) = apply_edits(&mut program, &ops) else { continue };
            applied_batches += 1;
            let stats = inc.apply_edits(&program, &applied);
            assert_eq!(
                canonical_text(&program, &inc.result(&program)),
                reference_text(&program, &policy),
                "incremental state diverged after {ops:?} (stats: {stats:?})\nprogram:\n{}",
                tir::print_program(&program)
            );
        }
        // The menu is built from the base program's own names, so most
        // random batches apply; a case where nothing applied exercises
        // nothing and would hide generator rot.
        assert!(
            steps == 0 || applied_batches > 0 || steps < 3,
            "no batch applied in {steps} steps"
        );
    });
}

// ------------------------------------------------------------ property 2

/// The abstract image of a concrete trace under the incremental result.
fn concrete_edges(pta: &pta::PtaResult, trace: &tir::interp::Trace) -> Vec<pta::HeapEdge> {
    let loc_of = |alloc: tir::AllocId| {
        pta::LocId(
            pta.alloc_locs(alloc).iter().next().expect("reached allocation has a location") as u32
        )
    };
    let mut edges = Vec::new();
    for (owner, field, value) in &trace.field_edges {
        edges.push(pta::HeapEdge::Field {
            base: loc_of(*owner),
            field: *field,
            target: loc_of(*value),
        });
    }
    for (global, value) in &trace.global_edges {
        edges.push(pta::HeapEdge::Global { global: *global, target: loc_of(*value) });
    }
    edges.sort();
    edges.dedup();
    edges
}

/// Refutations computed over the incrementally maintained points-to result
/// must stay sound after every edit: no edge the concrete interpreter
/// actually produces may be refuted.
#[test]
fn surviving_refutations_stay_sound_across_edits() {
    run_cases(24, |rng| {
        let mut program = tir::parse(&base_source(rng)).expect("base program parses");
        let mut inc =
            IncrementalPta::new(&program, ContextPolicy::Insensitive, &PtaOptions::default());

        let mut fresh = 1000usize;
        for _ in 0..rng.usize_in(2, 4) {
            let op = random_edit(rng, &program, &mut fresh);
            let Ok(applied) = apply_edits(&mut program, &[op]) else { continue };
            inc.apply_edits(&program, &applied);

            let pta = inc.result(&program);
            let modref = ModRef::compute(&program, &pta);
            // Edits can introduce null dereferences (e.g. a call through a
            // variable overwritten by an unwritten field read); such traces
            // fault and yield no edges to check.
            let Ok(trace) = Interp::new(&program, Oracle::always_first(), 100_000).run() else {
                continue;
            };
            let mut engine = Engine::new(&program, &pta, &modref, SymexConfig::default());
            for edge in concrete_edges(&pta, &trace) {
                let out = engine.refute_edge(&edge);
                assert!(
                    !out.is_refuted(),
                    "UNSOUND after edit: concretely-produced edge {} was refuted\nprogram:\n{}",
                    edge.describe(&program, &pta),
                    tir::print_program(&program)
                );
            }
        }
    });
}

// ------------------------------------------------------------ property 3

/// Every may edge of the points-to result, in canonical order.
fn all_edges(program: &Program, pta: &pta::PtaResult) -> Vec<pta::HeapEdge> {
    let mut edges = Vec::new();
    for (base, field, targets) in pta.heap_entries() {
        for t in targets.iter() {
            edges.push(pta::HeapEdge::Field { base, field, target: pta::LocId(t as u32) });
        }
    }
    for global in program.global_ids() {
        for t in pta.pt_global(global).iter() {
            edges.push(pta::HeapEdge::Global { global, target: pta::LocId(t as u32) });
        }
    }
    edges.sort();
    edges
}

/// Fingerprint fusion: a fingerprinter that reuses cached method hashes
/// for everything outside `EditSolveStats::changed_methods` must produce
/// the same fingerprint for every edge as one built from scratch. If the
/// delta solver ever under-reports a changed method, the cached and fresh
/// fingerprints diverge here.
#[test]
fn cached_fingerprints_match_fresh_after_edits() {
    run_cases(24, |rng| {
        let mut program = tir::parse(&base_source(rng)).expect("base program parses");
        let mut inc =
            IncrementalPta::new(&program, ContextPolicy::Insensitive, &PtaOptions::default());
        let config = SymexConfig::default();
        let mut cache = MethodHashCache::new();
        {
            let pta = inc.result(&program);
            let _ = Fingerprinter::with_cache(&program, &pta, &config, &mut cache, &[]);
        }

        let mut fresh_sites = 3000usize;
        let mut applied_any = false;
        for _ in 0..rng.usize_in(2, 4) {
            let op = random_edit(rng, &program, &mut fresh_sites);
            let Ok(applied) = apply_edits(&mut program, &[op]) else { continue };
            applied_any = true;
            let stats = inc.apply_edits(&program, &applied);
            let pta = inc.result(&program);
            let fresh = Fingerprinter::new(&program, &pta, &config);
            let cached = Fingerprinter::with_cache(
                &program,
                &pta,
                &config,
                &mut cache,
                &stats.changed_methods,
            );
            for edge in all_edges(&program, &pta) {
                assert_eq!(
                    fresh.fingerprint(&edge),
                    cached.fingerprint(&edge),
                    "cached fingerprint diverged for {} after edit (changed: {:?})\nprogram:\n{}",
                    fresh.edge_key(&edge),
                    stats
                        .changed_methods
                        .iter()
                        .map(|&m| program.method_name(m))
                        .collect::<Vec<_>>(),
                    tir::print_program(&program)
                );
            }
        }
        if applied_any {
            assert!(cache.hits() > 0, "fingerprint cache never hit across an edit sequence");
        }
    });
}

// ------------------------------------------------------------ property 4

/// The null-dereference client over the incrementally maintained points-to
/// state must answer exactly like a from-scratch run (reference solver)
/// after every edit — byte-identical in both report renderings. The base
/// program's `f1` field is nullable (only random edits ever write it), so
/// edit scripts routinely create, move, and kill candidate sites.
#[test]
fn null_report_matches_from_scratch_after_edits() {
    run_cases(24, |rng| {
        let mut program = tir::parse(&base_source(rng)).expect("base program parses");
        let mut inc =
            IncrementalPta::new(&program, ContextPolicy::Insensitive, &PtaOptions::default());

        let report = |program: &Program, pta: &pta::PtaResult| {
            let modref = ModRef::compute(program, pta);
            thresher::NullClient::new(program, pta, &modref, SymexConfig::default()).run()
        };

        let mut fresh = 4000usize;
        for _ in 0..rng.usize_in(2, 4) {
            let op = random_edit(rng, &program, &mut fresh);
            let Ok(applied) = apply_edits(&mut program, std::slice::from_ref(&op)) else {
                continue;
            };
            inc.apply_edits(&program, &applied);

            let incremental = report(&program, &inc.result(&program));
            let options = PtaOptions { solver: SolverKind::Reference, ..PtaOptions::default() };
            let scratch = report(
                &program,
                &analyze_with(&program, ContextPolicy::Insensitive, &options),
            );
            assert_eq!(
                incremental.describe(&program),
                scratch.describe(&program),
                "null report diverged from scratch after {op:?}\nprogram:\n{}",
                tir::print_program(&program)
            );
            assert_eq!(
                incremental.to_value(&program).to_json(),
                scratch.to_value(&program).to_json(),
                "null report JSON diverged from scratch after an edit"
            );
        }
    });
}

// ------------------------------------------------------------ determinism

/// Replaying the same edit sequence on two independent incremental solvers
/// yields byte-identical canonical states (no hidden iteration-order
/// dependence in the delta pipeline).
#[test]
fn edit_replay_is_deterministic() {
    run_cases(16, |rng| {
        let src = base_source(rng);
        let mut fresh = 2000usize;
        let probe = tir::parse(&src).expect("base program parses");
        let mut probe = probe;
        let mut ops_log: Vec<Vec<EditOp>> = Vec::new();
        for _ in 0..3 {
            let ops = vec![random_edit(rng, &probe, &mut fresh)];
            if apply_edits(&mut probe, &ops).is_ok() {
                ops_log.push(ops);
            }
        }

        let run = || {
            let mut program = tir::parse(&src).expect("base program parses");
            let mut inc = IncrementalPta::new(
                &program,
                ContextPolicy::ObjectSensitive { max_depth: 2 },
                &PtaOptions::default(),
            );
            for ops in &ops_log {
                let applied = apply_edits(&mut program, ops).expect("pre-validated batch");
                inc.apply_edits(&program, &applied);
            }
            canonical_text(&program, &inc.result(&program))
        };
        assert_eq!(run(), run(), "same edit sequence produced different canonical states");
    });
}
