//! The on-disk corpus must stay in sync with the generators and be fully
//! analyzable through the CLI-facing entry points.

use std::fs;
use thresher::Thresher;

fn corpus_dir() -> std::path::PathBuf {
    // Tests run from the crate dir (crates/core); the corpus lives at the
    // workspace root.
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("corpus");
    p
}

#[test]
fn corpus_files_parse_and_analyze() {
    let dir = corpus_dir();
    let mut count = 0;
    for entry in fs::read_dir(&dir).expect("corpus dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("tir") {
            continue;
        }
        count += 1;
        let src = fs::read_to_string(&path).expect("read");
        let program = tir::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let t = Thresher::new(&program);
        assert!(t.points_to().num_locs() > 0, "{}", path.display());
    }
    assert!(count >= 10, "expected the full corpus, found {count}");
}

#[test]
fn corpus_matches_generators() {
    let dir = corpus_dir();
    for app in apps::suite::all_apps() {
        let path = dir.join(format!("{}.tir", app.name.to_lowercase()));
        let on_disk = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{}: {e} (run `cargo run -p apps --example export_corpus`)", path.display())
        });
        assert_eq!(
            on_disk,
            tir::print_program(&app.program),
            "{} is stale; regenerate with `cargo run -p apps --example export_corpus`",
            app.name
        );
    }
}

#[test]
fn fig1_corpus_file_refutes_through_cli_path() {
    let path = corpus_dir().join("fig1_vec_null_object.tir");
    let src = fs::read_to_string(path).expect("read fig1");
    let program = tir::parse(&src).expect("parse");
    let t = Thresher::new(&program);
    assert!(!t.query_reachable("EMPTY", "act0").is_reachable());
}
