//! The documented process exit-code contract (`thresher::exit`), exercised
//! end-to-end against the real binaries: analysis outcomes (0/1/2) and the
//! sysexits failure band (64+), shared by `thresher-cli` and
//! `thresher-serve`.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

const PROGRAM: &str = r#"
class Box { field item: Object; }
global CACHE: Box;
fn main() {
  var b: Box;
  var secret: Object;
  var s: Object;
  b = new Box @box0;
  secret = new Object @secret0;
  s = new Object @str0;
  b.item = s;
  $CACHE = b;
}
entry main;
"#;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thresher-exit-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn cli(args: &[&str]) -> Option<i32> {
    Command::new(env!("CARGO_BIN_EXE_thresher-cli"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run thresher-cli")
        .code()
}

#[test]
fn cli_analysis_outcomes() {
    let dir = tmp("outcomes");
    let path = dir.join("boxy.tir");
    fs::write(&path, PROGRAM).expect("write program");
    let p = path.to_str().unwrap();

    // Completed, everything refuted -> 0.
    assert_eq!(cli(&[p, "--query", "CACHE", "secret0"]), Some(0));
    // Completed with a finding (reachable) -> 1.
    assert_eq!(cli(&[p, "--query", "CACHE", "str0"]), Some(1));
    // Findings dominate refutations when both are queried.
    assert_eq!(cli(&[p, "--query", "CACHE", "secret0", "--query", "CACHE", "str0"]), Some(1));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cli_failure_band() {
    let dir = tmp("failures");
    let good = dir.join("boxy.tir");
    fs::write(&good, PROGRAM).expect("write program");
    let bad = dir.join("broken.tir");
    fs::write(&bad, "class {{{ not tir").expect("write broken program");

    // Usage errors -> 64.
    assert_eq!(cli(&["--definitely-not-a-flag"]), Some(64));
    assert_eq!(cli(&[good.to_str().unwrap(), "--query", "NO_SUCH_GLOBAL", "str0"]), Some(64));
    // Missing input -> 66.
    assert_eq!(cli(&[dir.join("missing.tir").to_str().unwrap()]), Some(66));
    // Parse error -> 65.
    assert_eq!(cli(&[bad.to_str().unwrap()]), Some(65));
    // --diff-reports with unreadable inputs -> 66.
    assert_eq!(cli(&["--diff-reports", "no-such-a.json", "no-such-b.json"]), Some(66));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn serve_shares_the_contract() {
    // Usage error -> 64.
    let code = Command::new(env!("CARGO_BIN_EXE_thresher-serve"))
        .arg("--definitely-not-a-flag")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run thresher-serve")
        .code();
    assert_eq!(code, Some(64));

    // A clean drain (EOF with no requests) -> 0.
    let mut child = Command::new(env!("CARGO_BIN_EXE_thresher-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn thresher-serve");
    child.stdin.take().unwrap().write_all(b"").unwrap();
    let status = child.wait().expect("wait");
    assert_eq!(status.code(), Some(0));
}
