//! Interpreter-backed soundness fuzzing for the persistent refutation
//! cache.
//!
//! Random programs — compositions of the corpus motifs (field chains,
//! call rings, global hand-offs, virtual dispatch fans, concrete loops,
//! non-deterministic choices) — are executed by the real `tir::interp`
//! under random oracle schedules. Every field/global edge the concrete
//! run produces must map to an *unrefuted* points-to edge, and the
//! property must survive the whole cache lifecycle:
//!
//! 1. **cold** — decisions computed live and written through to a fresh
//!    on-disk [`DecisionStore`];
//! 2. **warm** — a second scheduler over the same directory must serve
//!    every decision from disk (zero misses, zero live path programs)
//!    and still refute none of the concrete edges;
//! 3. **`--jobs 4`** — a parallel scheduler consulting the same store
//!    must witness (never refute) reachability for every concrete
//!    global hand-off.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minicheck::{run_cases, Rng};
use pta::{BitSet, ContextPolicy, HeapEdge, HeapGraphView, LocId, ModRef, PtaResult};
use symex::{
    CacheMode, DecisionStore, EdgeAnswer, JobVerdict, ReachJob, RefutationScheduler, SymexConfig,
    Tally,
};
use tir::interp::{Interp, Oracle};
use tir::{CmpOp, Cond, GlobalId, Operand, Program, ProgramBuilder, Ty, VarId};

/// Data vars in the pool (`d0`, `d1`).
const ND: usize = 2;
/// Object vars in the pool (`o0`..`o2`).
const NO: usize = 3;
/// Object-typed globals (`G0`, `G1`).
const NG: usize = 2;

/// One random motif, mirroring the corpus generator's structural
/// vocabulary (`apps::scale`): linked-data stores, copy rings through
/// calls, global hand-offs, dispatch fans, loops.
#[derive(Clone, Debug)]
enum Motif {
    /// `d_a.next = d_b`
    LinkNext { a: usize, b: usize },
    /// `d.payload = o`
    StorePayload { d: usize, o: usize },
    /// `t = d_from.payload; d_to.payload = t`
    LoadStore { from: usize, to: usize },
    /// `call ring0(d, o)` — the store happens two calls deep.
    RingStore { d: usize, o: usize },
    /// `call handoff(o)` — writes `$G0` inside the callee.
    Handoff { o: usize },
    /// `$G = o`
    GWrite { g: usize, o: usize },
    /// `t = $G; d.payload = t`
    GReadStore { g: usize, d: usize },
    /// `b = new SubA/SubB; b.slot = o; t = call b.get(); d.payload = t`
    /// (`SubA::get` returns the slot, `SubB::get` returns null).
    DispatchStore { sub_b: bool, o: usize, d: usize },
    /// `i = 0; while (i < iters) { d.payload = o; i = i + 1; }`
    LoopStore { d: usize, o: usize, iters: u8 },
    /// `choice { d.payload = left } or { d.payload = right }` — resolved
    /// by the oracle schedule.
    ChoiceStore { d: usize, left: usize, right: usize },
    /// `loop { d.payload = o; }` — iteration count from the oracle.
    NondetStore { d: usize, o: usize },
}

fn arb_motifs(rng: &mut Rng) -> Vec<Motif> {
    let len = rng.usize_in(2, 8);
    (0..len)
        .map(|_| match rng.below(11) {
            0 => Motif::LinkNext { a: rng.below(ND), b: rng.below(ND) },
            1 => Motif::StorePayload { d: rng.below(ND), o: rng.below(NO) },
            2 => Motif::LoadStore { from: rng.below(ND), to: rng.below(ND) },
            3 => Motif::RingStore { d: rng.below(ND), o: rng.below(NO) },
            4 => Motif::Handoff { o: rng.below(NO) },
            5 => Motif::GWrite { g: rng.below(NG), o: rng.below(NO) },
            6 => Motif::GReadStore { g: rng.below(NG), d: rng.below(ND) },
            7 => Motif::DispatchStore { sub_b: rng.bool(), o: rng.below(NO), d: rng.below(ND) },
            8 => Motif::LoopStore { d: rng.below(ND), o: rng.below(NO), iters: rng.below(3) as u8 },
            9 => Motif::ChoiceStore { d: rng.below(ND), left: rng.below(NO), right: rng.below(NO) },
            _ => Motif::NondetStore { d: rng.below(ND), o: rng.below(NO) },
        })
        .collect()
}

fn arb_oracle(rng: &mut Rng) -> Oracle {
    let choices = (0..rng.usize_in(0, 16)).map(|_| rng.bool()).collect();
    let loop_iters = (0..rng.usize_in(0, 8)).map(|_| rng.below(3) as u32).collect();
    Oracle::scripted(choices, loop_iters)
}

fn build(motifs: &[Motif]) -> Program {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let data = b.class("Data", None);
    let next_f = b.field(data, "next", Ty::Ref(data));
    let payload_f = b.field(data, "payload", Ty::Ref(object));
    let base = b.class("Base", None);
    let slot_f = b.field(base, "slot", Ty::Ref(object));
    let sub_a = b.class("SubA", Some(base));
    let sub_b = b.class("SubB", Some(base));
    let globals: Vec<GlobalId> =
        (0..NG).map(|i| b.global(&format!("G{i}"), Ty::Ref(object))).collect();

    // Dispatch fan: SubA::get hands the slot back, SubB::get drops it.
    b.method(Some(base), "get", &[], Some(Ty::Ref(object)), |mb| {
        let r = mb.var("r", Ty::Ref(object));
        mb.read_field(r, mb.this(), slot_f);
        mb.ret(r);
    });
    b.method(Some(sub_a), "get", &[], Some(Ty::Ref(object)), |mb| {
        let r = mb.var("r", Ty::Ref(object));
        mb.read_field(r, mb.this(), slot_f);
        mb.ret(r);
    });
    b.method(Some(sub_b), "get", &[], Some(Ty::Ref(object)), |mb| {
        mb.ret(Operand::Null);
    });

    // Copy ring: the payload store happens two static calls deep.
    let ring2 =
        b.method(None, "ring2", &[("d", Ty::Ref(data)), ("o", Ty::Ref(object))], None, |mb| {
            let (d, o) = (mb.param(0), mb.param(1));
            mb.write_field(d, payload_f, o);
        });
    let ring1 =
        b.method(None, "ring1", &[("d", Ty::Ref(data)), ("o", Ty::Ref(object))], None, |mb| {
            let (d, o) = (mb.param(0), mb.param(1));
            mb.call_static(None, ring2, &[Operand::Var(d), Operand::Var(o)]);
        });
    let ring0 =
        b.method(None, "ring0", &[("d", Ty::Ref(data)), ("o", Ty::Ref(object))], None, |mb| {
            let (d, o) = (mb.param(0), mb.param(1));
            mb.call_static(None, ring1, &[Operand::Var(d), Operand::Var(o)]);
        });

    // Global hand-off through a callee.
    let g0 = globals[0];
    let handoff = b.method(None, "handoff", &[("o", Ty::Ref(object))], None, |mb| {
        let o = mb.param(0);
        mb.write_global(g0, o);
    });

    let main = b.method(None, "main", &[], None, |mb| {
        let d: Vec<VarId> = (0..ND).map(|i| mb.var(&format!("d{i}"), Ty::Ref(data))).collect();
        let o: Vec<VarId> = (0..NO).map(|i| mb.var(&format!("o{i}"), Ty::Ref(object))).collect();
        let bv = mb.var("bv", Ty::Ref(base));
        let tv = mb.var("tv", Ty::Ref(object));
        let iv = mb.var("iv", Ty::Int);
        for (i, &dv) in d.iter().enumerate() {
            mb.new_obj(dv, data, &format!("data{i}"));
        }
        for (i, &ov) in o.iter().enumerate() {
            mb.new_obj(ov, object, &format!("obj{i}"));
        }
        for (k, m) in motifs.iter().enumerate() {
            match m {
                Motif::LinkNext { a, b } => {
                    mb.write_field(d[*a], next_f, d[*b]);
                }
                Motif::StorePayload { d: di, o: oi } => {
                    mb.write_field(d[*di], payload_f, o[*oi]);
                }
                Motif::LoadStore { from, to } => {
                    mb.read_field(tv, d[*from], payload_f);
                    mb.write_field(d[*to], payload_f, tv);
                }
                Motif::RingStore { d: di, o: oi } => {
                    mb.call_static(None, ring0, &[Operand::Var(d[*di]), Operand::Var(o[*oi])]);
                }
                Motif::Handoff { o: oi } => {
                    mb.call_static(None, handoff, &[Operand::Var(o[*oi])]);
                }
                Motif::GWrite { g, o: oi } => {
                    mb.write_global(globals[*g], o[*oi]);
                }
                Motif::GReadStore { g, d: di } => {
                    mb.read_global(tv, globals[*g]);
                    mb.write_field(d[*di], payload_f, tv);
                }
                Motif::DispatchStore { sub_b: use_b, o: oi, d: di } => {
                    let class = if *use_b { sub_b } else { sub_a };
                    mb.new_obj(bv, class, &format!("disp{k}"));
                    mb.write_field(bv, slot_f, o[*oi]);
                    mb.call_virtual(Some(tv), bv, "get", &[]);
                    mb.write_field(d[*di], payload_f, tv);
                }
                Motif::LoopStore { d: di, o: oi, iters } => {
                    mb.assign(iv, 0);
                    let (dv, ov) = (d[*di], o[*oi]);
                    mb.while_(Cond::cmp(CmpOp::Lt, iv, i64::from(*iters)), |mb| {
                        mb.write_field(dv, payload_f, ov);
                        mb.binop(iv, tir::BinOp::Add, iv, 1);
                    });
                }
                Motif::ChoiceStore { d: di, left, right } => {
                    let (dv, lv, rv) = (d[*di], o[*left], o[*right]);
                    mb.choice(
                        |mb| {
                            mb.write_field(dv, payload_f, lv);
                        },
                        |mb| {
                            mb.write_field(dv, payload_f, rv);
                        },
                    );
                }
                Motif::NondetStore { d: di, o: oi } => {
                    let (dv, ov) = (d[*di], o[*oi]);
                    mb.loop_(|mb| {
                        mb.write_field(dv, payload_f, ov);
                    });
                }
            }
        }
    });
    b.set_entry(main);
    b.finish()
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_cache_dir() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("thresher-interp-fuzz-{}-{n}", std::process::id()))
}

/// Maps a concrete allocation site to its abstract location (unique under
/// the insensitive policy).
fn loc_of(pta: &PtaResult, alloc: tir::AllocId) -> LocId {
    LocId(pta.alloc_locs(alloc).iter().next().expect("reached allocation has a location") as u32)
}

/// The deduplicated abstract image of a concrete trace.
fn concrete_edges(pta: &PtaResult, trace: &tir::interp::Trace) -> Vec<HeapEdge> {
    let mut seen = HashSet::new();
    let mut edges = Vec::new();
    for (owner, field, value) in &trace.field_edges {
        let e = HeapEdge::Field {
            base: loc_of(pta, *owner),
            field: *field,
            target: loc_of(pta, *value),
        };
        if seen.insert(e) {
            edges.push(e);
        }
    }
    for (global, value) in &trace.global_edges {
        let e = HeapEdge::Global { global: *global, target: loc_of(pta, *value) };
        if seen.insert(e) {
            edges.push(e);
        }
    }
    edges
}

fn assert_unrefuted(
    sched: &mut RefutationScheduler<'_>,
    edges: &[HeapEdge],
    program: &Program,
    pta: &PtaResult,
    phase: &str,
) -> Tally {
    let mut tally = Tally::default();
    for e in edges {
        let answer = sched.decide_edge(*e, &mut tally);
        assert!(
            !matches!(answer, EdgeAnswer::Refuted),
            "UNSOUND ({phase}): concretely-produced edge {} was refuted\nprogram:\n{}",
            e.describe(program, pta),
            tir::print_program(program)
        );
    }
    tally
}

#[test]
fn cache_lifecycle_never_refutes_concrete_edges() {
    run_cases(64, |rng| {
        let motifs = arb_motifs(rng);
        let program = build(&motifs);
        let mut interp = Interp::new(&program, arb_oracle(rng), 100_000);
        // Even a faulted run's partial trace is ground truth: everything
        // recorded did concretely happen.
        let trace = match interp.run() {
            Ok(t) => t,
            Err(_) => interp.trace().clone(),
        };

        let pta = pta::analyze(&program, ContextPolicy::Insensitive);
        let modref = ModRef::compute(&program, &pta);
        let edges = concrete_edges(&pta, &trace);
        let config = SymexConfig::default();
        let dir = fresh_cache_dir();

        // Cold: live decisions, written through to the fresh store.
        {
            let store = DecisionStore::open(&dir, CacheMode::ReadWrite, &program)
                .expect("open fresh store");
            let mut sched = RefutationScheduler::new(&program, &pta, &modref, config.clone(), 1)
                .with_store(Arc::new(store));
            let t = assert_unrefuted(&mut sched, &edges, &program, &pta, "cold");
            assert_eq!(t.cache_hits, 0, "a fresh store cannot produce hits");
        }

        // Warm: every decision must come from disk, with zero live
        // exploration, and still refute nothing concrete.
        {
            let store = DecisionStore::open(&dir, CacheMode::Read, &program)
                .expect("reopen store read-only");
            let mut sched = RefutationScheduler::new(&program, &pta, &modref, config.clone(), 1)
                .with_store(Arc::new(store));
            let t = assert_unrefuted(&mut sched, &edges, &program, &pta, "warm");
            assert_eq!(t.cache_misses, 0, "warm run recomputed a decision");
            assert_eq!(t.cache_invalidated, 0, "unchanged program invalidated a decision");
            assert_eq!(t.fresh_path_programs, 0, "warm run explored path programs");
            assert_eq!(t.cache_hits, edges.len() as u64);
        }

        // Parallel warm start: reachability for every concrete global
        // hand-off must be witnessed, not refuted, under --jobs 4.
        let jobs: Vec<ReachJob> = {
            let mut seen = HashSet::new();
            trace
                .global_edges
                .iter()
                .map(|(g, value)| (*g, loc_of(&pta, *value)))
                .filter(|pair| seen.insert(*pair))
                .map(|(g, loc)| ReachJob { source: g, targets: BitSet::singleton(loc.index()) })
                .collect()
        };
        if !jobs.is_empty() {
            let store = DecisionStore::open(&dir, CacheMode::ReadWrite, &program)
                .expect("reopen store read-write");
            let mut sched = RefutationScheduler::new(&program, &pta, &modref, config, 4)
                .with_store(Arc::new(store));
            let mut view = HeapGraphView::new(&pta);
            let outcome = sched.run(&mut view, &jobs);
            for (job, verdict) in jobs.iter().zip(&outcome.verdicts) {
                assert!(
                    matches!(verdict, JobVerdict::Witnessed { .. }),
                    "UNSOUND (--jobs 4): concretely-reached global {} ~> target was refuted\n\
                     program:\n{}",
                    program.global(job.source).name,
                    tir::print_program(&program)
                );
            }
        }

        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn oracle_schedules_explore_both_choice_arms() {
    // Generator sanity: across a handful of seeds the scripted oracles
    // must actually exercise both arms of ChoiceStore and non-zero
    // nondet-loop iterations, otherwise the fuzzer is weaker than it
    // claims.
    let mut stored_left = false;
    let mut stored_right = false;
    let mut looped = false;
    run_cases(32, |rng| {
        let motifs =
            vec![Motif::ChoiceStore { d: 0, left: 0, right: 1 }, Motif::NondetStore { d: 1, o: 2 }];
        let program = build(&motifs);
        let mut interp = Interp::new(&program, arb_oracle(rng), 10_000);
        let trace = interp.run().expect("tiny program runs");
        for (_, _, value) in &trace.field_edges {
            let name = &program.alloc(*value).name;
            stored_left |= name == "obj0";
            stored_right |= name == "obj1";
            looped |= name == "obj2";
        }
    });
    assert!(stored_left, "no schedule took the left choice arm");
    assert!(stored_right, "no schedule took the right choice arm");
    assert!(looped, "no schedule ran the nondet loop");
}
