//! Differential testing of the two points-to fixpoint strategies.
//!
//! The delta-propagation solver (with online cycle collapsing) and the
//! full-set reference solver must agree on *everything a client can
//! observe* from a [`pta::PtaResult`]: the canonically numbered points-to
//! sets, the heap graph, the producer map, the call graph, and the set of
//! reached methods. The comparison runs over the whole benchmark suite,
//! the paper's figure programs, generated `apps::scale` corpora, and
//! minicheck-seeded random programs — each under multiple context
//! policies.

use minicheck::{run_cases, Rng};
use pta::{analyze_with, canonical_text, ContextPolicy, PtaOptions, SolverKind};
use tir::{Operand, Program, ProgramBuilder, Ty};

/// Solves `program` with both strategies and asserts byte-identical
/// canonical serializations.
#[track_caller]
fn assert_solvers_agree(name: &str, program: &Program, policy: ContextPolicy) {
    let delta = analyze_with(program, policy.clone(), &PtaOptions::default());
    let reference = analyze_with(
        program,
        policy.clone(),
        &PtaOptions { solver: SolverKind::Reference, ..Default::default() },
    );
    let (a, b) = (canonical_text(program, &delta), canonical_text(program, &reference));
    assert_eq!(a, b, "delta and reference solvers disagree on {name} under {policy:?}");
}

fn policies(program: &Program) -> Vec<ContextPolicy> {
    vec![
        ContextPolicy::Insensitive,
        ContextPolicy::containers_named(program, &["AVec", "AHashMap"]),
        ContextPolicy::ObjectSensitive { max_depth: 2 },
        ContextPolicy::CallSiteSensitive,
    ]
}

#[test]
fn solvers_agree_on_suite_apps() {
    for app in apps::suite::all_apps() {
        for policy in policies(&app.program) {
            assert_solvers_agree(app.name, &app.program, policy);
        }
    }
}

#[test]
fn solvers_agree_on_figures() {
    for (name, program) in [
        ("fig1", apps::figures::fig1()),
        ("fig3", apps::figures::fig3()),
        ("multi_map", apps::figures::multi_map()),
    ] {
        for policy in policies(&program) {
            assert_solvers_agree(name, &program, policy);
        }
    }
}

#[test]
fn solvers_agree_on_scaled_corpora() {
    for scale in [1, 2, 8, 16] {
        let program = apps::scale::scaled_program(scale);
        for policy in policies(&program) {
            assert_solvers_agree(&format!("scaled-{scale}"), &program, policy);
        }
    }
}

/// Builds a random program: a handful of classes with reference fields, a
/// few globals, and call-connected methods whose bodies mix allocations,
/// copies, field traffic, global traffic, virtual dispatch, and
/// nondeterministic control flow. Everything the two solvers treat
/// differently (copy edges, complex constraints, dispatch) appears.
fn random_program(rng: &mut Rng) -> Program {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let obj = Ty::Ref(object);
    let num_classes = rng.usize_in(1, 3);
    let classes: Vec<_> = (0..num_classes)
        .map(|i| {
            let base = b.class(&format!("C{i}"), None);
            let sub = b.class(&format!("C{i}Sub"), Some(base));
            let field = b.field(base, &format!("f{i}"), obj);
            (base, sub, field)
        })
        .collect();
    let globals: Vec<_> =
        (0..rng.usize_in(1, 3)).map(|i| b.global(&format!("GLB{i}"), obj)).collect();
    // `get` on each base/sub pair so virtual dispatch has two targets.
    for (i, &(base, sub, field)) in classes.iter().enumerate() {
        for (tag, class) in [("b", base), ("s", sub)] {
            b.method(Some(class), "get", &[("p", obj)], Some(obj), |mb| {
                let this = mb.this();
                let p = mb.param(0);
                let q = mb.var("q", obj);
                mb.write_field(this, field, p);
                mb.read_field(q, this, field);
                if tag == "s" {
                    mb.new_obj(q, mb.program_builder().object_class(), &format!("gs{i}"));
                }
                mb.ret(q);
            });
        }
    }
    // A chain of free functions, each maybe-calling the next (the last
    // maybe-calls the first: a program-wide copy ring).
    let num_fns = rng.usize_in(2, 4);
    let fns: Vec<_> = (0..num_fns)
        .map(|i| b.declare_method(None, &format!("h{i}"), &[("x", obj)], Some(obj)))
        .collect();
    for i in 0..num_fns {
        let succ = fns[(i + 1) % num_fns];
        let steps = rng.usize_in(1, 5);
        let choices: Vec<usize> = (0..steps).map(|_| rng.below(6)).collect();
        let seeds: Vec<(usize, usize, bool)> = (0..steps)
            .map(|_| (rng.below(num_classes), rng.below(globals.len()), rng.bool()))
            .collect();
        b.define_method(fns[i], |mb| {
            let x = mb.param(0);
            let r = mb.var("r", obj);
            mb.assign(r, x);
            for (s, (&which, &(ci, gi, flip))) in choices.iter().zip(seeds.iter()).enumerate() {
                let (base, sub, field) = classes[ci];
                match which {
                    0 => {
                        let o = mb.var(&format!("o{s}"), Ty::Ref(sub));
                        mb.new_obj(o, sub, &format!("a{i}_{s}"));
                        mb.write_field(o, field, r);
                    }
                    1 => {
                        mb.write_global(globals[gi], r);
                    }
                    2 => {
                        mb.read_global(r, globals[gi]);
                    }
                    3 => {
                        let recv = mb.var(&format!("v{s}"), Ty::Ref(base));
                        mb.new_obj(recv, if flip { base } else { sub }, &format!("r{i}_{s}"));
                        mb.call_virtual(Some(r), recv, "get", &[Operand::Var(x)]);
                    }
                    4 => {
                        mb.maybe(|mb| {
                            mb.call_static(Some(r), succ, &[Operand::Var(r)]);
                        });
                    }
                    _ => {
                        let o = mb.var(&format!("w{s}"), Ty::Ref(sub));
                        mb.new_obj(o, sub, &format!("w{i}_{s}"));
                        mb.write_field(o, field, r);
                        mb.read_field(r, o, field);
                    }
                }
            }
            mb.ret(r);
        });
    }
    let entry = b.method(None, "main", &[], None, |mb| {
        let o = mb.var("o", obj);
        mb.new_obj(o, object, "seed");
        let out = mb.var("out", obj);
        mb.call_static(Some(out), fns[0], &[Operand::Var(o)]);
        mb.write_global(globals[0], out);
        mb.ret_void();
    });
    b.set_entry(entry);
    b.finish()
}

#[test]
fn solvers_agree_on_random_programs() {
    run_cases(60, |rng| {
        let program = random_program(rng);
        let policy = match rng.below(3) {
            0 => ContextPolicy::Insensitive,
            1 => ContextPolicy::ObjectSensitive { max_depth: 2 },
            _ => ContextPolicy::CallSiteSensitive,
        };
        assert_solvers_agree("random", &program, policy);
    });
}
