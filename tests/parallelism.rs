//! End-to-end guarantees of the parallel refutation scheduler: every
//! reported number — the `LeakReport`, the merged `SearchStats`, and the
//! machine-readable `RunReport` — must be identical for every `--jobs`
//! setting, and edges descheduled by early path cancellation must be
//! counted distinctly from aborted edges.
//!
//! Tests that install the process-global recorder serialize on
//! `obs::test_lock()` and reset the recorder up front (same discipline as
//! `observability.rs`).

use std::fs;

use thresher::obs::{self, Counter, MemRecorder, RingCapacity, SpanKind};
use thresher::{
    ActivityLeakChecker, AlarmResult, ClientStats, LeakReport, ReachJob, RefutationScheduler,
    SymexConfig,
};

fn corpus_dir() -> std::path::PathBuf {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("corpus");
    p
}

fn load(name: &str) -> tir::Program {
    let src = fs::read_to_string(corpus_dir().join(name)).expect("read corpus file");
    tir::parse(&src).expect("parse corpus file")
}

/// One shared static recorder for this test binary (installs leak, so
/// cycling one per test would grow without bound).
fn recorder() -> &'static MemRecorder {
    use std::sync::OnceLock;
    static REC: OnceLock<&'static MemRecorder> = OnceLock::new();
    let rec = *REC.get_or_init(|| MemRecorder::install_static(RingCapacity::default()));
    obs::install(rec);
    rec
}

type AlarmDigest = (tir::GlobalId, pta::LocId, bool, Vec<pta::HeapEdge>);

/// Deterministic digest of a leak report: everything except wall-clock
/// time.
fn digest(report: &LeakReport) -> (Vec<AlarmDigest>, ClientStatsDigest) {
    let alarms = report
        .alarms
        .iter()
        .map(|(a, r)| {
            let path = match r {
                AlarmResult::Refuted => Vec::new(),
                AlarmResult::Witnessed { path, .. } => path.clone(),
            };
            (a.field, a.activity, r.is_refuted(), path)
        })
        .collect();
    (alarms, stats_digest(&report.stats))
}

#[derive(Debug, PartialEq, Eq)]
struct ClientStatsDigest {
    edges_refuted: usize,
    edges_witnessed: usize,
    edge_timeouts: usize,
    aborts: thresher::AbortCounts,
    retries: usize,
    degraded_decisions: usize,
    edges_descheduled: usize,
}

fn stats_digest(s: &ClientStats) -> ClientStatsDigest {
    ClientStatsDigest {
        edges_refuted: s.edges_refuted,
        edges_witnessed: s.edges_witnessed,
        edge_timeouts: s.edge_timeouts,
        aborts: s.aborts.clone(),
        retries: s.retries,
        degraded_decisions: s.degraded_decisions,
        edges_descheduled: s.edges_descheduled,
    }
}

/// Runs the full leak client on `program` under the recorder and returns
/// the report digest plus the run report.
fn instrumented_run(program: &tir::Program, jobs: usize) -> (LeakReport, obs::RunReport) {
    let rec = recorder();
    rec.reset();
    let report = {
        let _run = obs::span(SpanKind::Run, "corpus");
        ActivityLeakChecker::new(program).with_jobs(jobs).check()
    };
    obs::uninstall();
    let run_report = rec.run_report(&[("program", "corpus")]);
    (report, run_report)
}

/// Timing-independent view of a run report: all counters plus the
/// deterministic (non-`_ns`/`_us`) histograms. `dropped_trace_events` and
/// `trace_threads` are trace-volume artifacts, excluded by design.
fn report_digest(r: &obs::RunReport) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        r.counters.iter().map(|(n, v)| ((*n).to_owned(), v.to_string())).collect();
    for (name, snap) in &r.histograms {
        if name.ends_with("_ns") || name.ends_with("_us") {
            continue;
        }
        out.push(((*name).to_owned(), format!("{snap:?}")));
    }
    out
}

#[test]
fn jobs_settings_produce_identical_reports() {
    let _serial = obs::test_lock();

    for name in ["droidlife.tir", "pulsepoint.tir"] {
        let program = load(name);
        let (report1, run1) = instrumented_run(&program, 1);
        let (report4, run4) = instrumented_run(&program, 4);

        assert_eq!(digest(&report1), digest(&report4), "{name}: leak report differs");
        assert_eq!(
            report_digest(&run1),
            report_digest(&run4),
            "{name}: run report differs between --jobs 1 and --jobs 4"
        );
    }
}

#[test]
fn search_stats_are_identical_across_jobs() {
    let _serial = obs::test_lock();
    obs::uninstall();

    let program = load("droidlife.tir");
    let run = |jobs: usize| {
        let policy =
            pta::ContextPolicy::containers_named(&program, android::library::CONTAINER_CLASSES);
        let pta_result = pta::analyze(&program, policy);
        let modref = pta::ModRef::compute(&program, &pta_result);
        let mut client =
            android::LeakClient::new(&program, &pta_result, &modref, SymexConfig::default())
                .with_jobs(jobs);
        let alarms = client.find_alarms();
        let mut stats = android::ClientStats::default();
        for alarm in alarms {
            let _ = client.triage(alarm, &mut stats);
        }
        client.engine_stats().clone()
    };
    assert_eq!(run(1), run(4), "merged SearchStats differ between --jobs 1 and --jobs 4");
}

/// A path whose first edge is refuted leaves its remaining edges
/// undecided: they are *descheduled*, never searched, and must be counted
/// separately from aborts.
const DESCHEDULE_SRC: &str = r#"
class Box { field item: Object; }
global CACHE: Box;
global FLAG: int;
fn main() {
  var b: Box;
  var o: Object;
  var f: int;
  b = new Box @box0;
  o = new Object @obj0;
  b.item = o;
  $FLAG = 0;
  f = $FLAG;
  if (f == 1) {
    $CACHE = b;
  }
}
entry main;
"#;

#[test]
fn descheduled_edges_are_counted_distinctly_from_aborts() {
    let _serial = obs::test_lock();
    let rec = recorder();
    rec.reset();

    let program = tir::parse(DESCHEDULE_SRC).expect("parse");
    let pta_result = pta::analyze(&program, pta::ContextPolicy::Insensitive);
    let modref = pta::ModRef::compute(&program, &pta_result);
    let global = program.global_by_name("CACHE").expect("CACHE");
    let target = pta_result
        .locs()
        .ids()
        .find(|&l| pta_result.loc_name(&program, l) == "obj0")
        .expect("obj0");

    let run = |jobs: usize| {
        let mut sched =
            RefutationScheduler::new(&program, &pta_result, &modref, SymexConfig::default(), jobs);
        let mut view = pta::HeapGraphView::new(&pta_result);
        let job = ReachJob { source: global, targets: pta::BitSet::singleton(target.index()) };
        sched.run(&mut view, std::slice::from_ref(&job))
    };

    let outcome = run(1);
    obs::uninstall();

    // The dead `$CACHE = b` store is refuted at path index 0; the live
    // `b.item = o` edge behind it is descheduled, not aborted.
    assert!(outcome.verdicts[0].is_refuted());
    assert_eq!(outcome.tally.edges_refuted, 1, "{:?}", outcome.tally);
    assert_eq!(outcome.tally.edges_descheduled, 1, "{:?}", outcome.tally);
    assert_eq!(outcome.tally.edge_timeouts, 0, "{:?}", outcome.tally);
    assert_eq!(outcome.tally.edges_witnessed, 0, "{:?}", outcome.tally);

    // The obs counter tracks the tally, and aborted stays at zero.
    assert_eq!(rec.counter(Counter::EdgesDescheduled), 1);
    assert_eq!(rec.counter(Counter::EdgesAborted), 0);

    // Descheduling is deterministic: the count is identical under worker
    // threads (which may speculatively compute the descheduled edge, but
    // never commit it). Only the wall-clock field may differ.
    let parallel = run(4);
    let timeless = |t: &thresher::Tally| {
        let mut t = t.clone();
        t.symex_time = std::time::Duration::ZERO;
        t
    };
    assert_eq!(timeless(&outcome.tally), timeless(&parallel.tally));
}
