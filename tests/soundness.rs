//! Refutation-soundness differential testing (Theorem 1).
//!
//! Random programs are executed by a concrete interpreter that records
//! every heap edge (allocation site of owner, field, allocation site of
//! value) actually produced. The refutation engine must never refute an
//! edge that a concrete execution produced — under any configuration.

use minicheck::{run_cases, Rng};
use std::collections::HashMap;

use pta::{ContextPolicy, HeapEdge, LocId, ModRef};
use symex::{Engine, LoopMode, Representation, SymexConfig};
use tir::{
    AllocId, BinOp, CmpOp, Cond, FieldId, GlobalId, MethodBuilder, Operand, Program,
    ProgramBuilder, Ty, VarId,
};

/// Abstract plan for a random program, lowered into TIR by `lower`.
#[derive(Clone, Debug)]
enum Step {
    NewObj {
        var: usize,
    },
    CopyVar {
        dst: usize,
        src: usize,
    },
    WriteField {
        base: usize,
        field: usize,
        src: usize,
    },
    ReadField {
        dst: usize,
        base: usize,
        field: usize,
    },
    WriteGlobal {
        global: usize,
        src: usize,
    },
    ReadGlobal {
        dst: usize,
        global: usize,
    },
    SetInt {
        var: usize,
        val: i8,
    },
    AddInt {
        dst: usize,
        src: usize,
        k: i8,
    },
    /// if (int_a < int_b) { body } else { else_body }
    Guarded {
        a: usize,
        b: usize,
        body: Vec<Step>,
        else_body: Vec<Step>,
    },
}

const NVARS: usize = 4;
const NINTS: usize = 3;
const NFIELDS: usize = 2;
const NGLOBALS: usize = 2;

fn arb_leaf(rng: &mut Rng) -> Step {
    match rng.below(8) {
        0 => Step::NewObj { var: rng.below(NVARS) },
        1 => Step::CopyVar { dst: rng.below(NVARS), src: rng.below(NVARS) },
        2 => Step::WriteField {
            base: rng.below(NVARS),
            field: rng.below(NFIELDS),
            src: rng.below(NVARS),
        },
        3 => Step::ReadField {
            dst: rng.below(NVARS),
            base: rng.below(NVARS),
            field: rng.below(NFIELDS),
        },
        4 => Step::WriteGlobal { global: rng.below(NGLOBALS), src: rng.below(NVARS) },
        5 => Step::ReadGlobal { dst: rng.below(NVARS), global: rng.below(NGLOBALS) },
        6 => Step::SetInt { var: rng.below(NINTS), val: rng.i64_in(-3, 3) as i8 },
        _ => Step::AddInt {
            dst: rng.below(NINTS),
            src: rng.below(NINTS),
            k: rng.i64_in(-2, 2) as i8,
        },
    }
}

fn arb_leaf_vec(rng: &mut Rng) -> Vec<Step> {
    let n = rng.usize_in(1, 5);
    (0..n).map(|_| arb_leaf(rng)).collect()
}

fn arb_steps(rng: &mut Rng, depth: u32) -> Vec<Step> {
    if depth == 0 {
        return arb_leaf_vec(rng);
    }
    if rng.weighted(&[4, 1]) == 0 {
        arb_leaf_vec(rng)
    } else {
        vec![Step::Guarded {
            a: rng.below(NINTS),
            b: rng.below(NINTS),
            body: arb_steps(rng, depth - 1),
            else_body: arb_steps(rng, depth - 1),
        }]
    }
}

struct Lowered {
    program: Program,
    objs: Vec<VarId>,
    fields: Vec<FieldId>,
    globals: Vec<GlobalId>,
}

fn lower(steps: &[Step]) -> Lowered {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let cell = b.class("Cell", None);
    let fields: Vec<FieldId> =
        (0..NFIELDS).map(|i| b.field(cell, &format!("f{i}"), Ty::Ref(object))).collect();
    let globals: Vec<GlobalId> =
        (0..NGLOBALS).map(|i| b.global(&format!("G{i}"), Ty::Ref(object))).collect();

    let mut objs_out = Vec::new();
    let fields2 = fields.clone();
    let globals2 = globals.clone();
    let main = b.method(None, "main", &[], None, |mb| {
        let objs: Vec<VarId> =
            (0..NVARS).map(|i| mb.var(&format!("o{i}"), Ty::Ref(cell))).collect();
        let ints: Vec<VarId> = (0..NINTS).map(|i| mb.var(&format!("n{i}"), Ty::Int)).collect();
        // Give every object var a distinct initial allocation so reads
        // never fault.
        for (i, &o) in objs.iter().enumerate() {
            mb.new_obj(o, cell, &format!("init{i}"));
        }
        emit(mb, steps, cell, &objs, &ints, &fields2, &globals2, &mut 0);
        objs_out = objs;
    });
    b.set_entry(main);
    Lowered { program: b.finish(), objs: objs_out, fields, globals }
}

#[allow(clippy::too_many_arguments)]
fn emit(
    mb: &mut MethodBuilder,
    steps: &[Step],
    cell: tir::ClassId,
    objs: &[VarId],
    ints: &[VarId],
    fields: &[FieldId],
    globals: &[GlobalId],
    fresh: &mut usize,
) {
    for s in steps {
        match s {
            Step::NewObj { var } => {
                *fresh += 1;
                mb.new_obj(objs[*var], cell, &format!("site{fresh}"));
            }
            Step::CopyVar { dst, src } => {
                mb.assign(objs[*dst], objs[*src]);
            }
            Step::WriteField { base, field, src } => {
                mb.write_field(objs[*base], fields[*field], objs[*src]);
            }
            Step::ReadField { dst, base, field } => {
                mb.read_field(objs[*dst], objs[*base], fields[*field]);
            }
            Step::WriteGlobal { global, src } => {
                mb.write_global(globals[*global], objs[*src]);
            }
            Step::ReadGlobal { dst, global } => {
                mb.read_global(objs[*dst], globals[*global]);
            }
            Step::SetInt { var, val } => {
                mb.assign(ints[*var], i64::from(*val));
            }
            Step::AddInt { dst, src, k } => {
                mb.binop(ints[*dst], BinOp::Add, ints[*src], i64::from(*k));
            }
            Step::Guarded { a, b, body, else_body } => {
                let body = body.clone();
                let else_body = else_body.clone();
                let mut fresh2 = *fresh + 100;
                mb.begin_block();
                emit(mb, &body, cell, objs, ints, fields, globals, &mut fresh2);
                let then_s = mb.end_block();
                let mut fresh3 = fresh2 + 100;
                mb.begin_block();
                emit(mb, &else_body, cell, objs, ints, fields, globals, &mut fresh3);
                let else_s = mb.end_block();
                mb.push_if(Cond::cmp(CmpOp::Lt, ints[*a], ints[*b]), then_s, else_s);
                *fresh += 300;
            }
        }
    }
}

/// Concrete interpreter over the generated fragment. Object identities are
/// (allocation-name) tagged; reads of null fields yield null.
#[derive(Default)]
struct Interp {
    vars: HashMap<VarId, Option<usize>>,
    ints: HashMap<VarId, i64>,
    globals: HashMap<GlobalId, Option<usize>>,
    heap: HashMap<(usize, FieldId), Option<usize>>,
    /// Allocation site of each object.
    site_of: Vec<AllocId>,
    /// Produced heap edges: (owner site, field, value site).
    field_edges: Vec<(AllocId, FieldId, AllocId)>,
    /// Produced global edges: (global, value site).
    global_edges: Vec<(GlobalId, AllocId)>,
}

impl Interp {
    fn run(&mut self, program: &Program) {
        let main = program.entry();
        let body = program.method(main).body.clone();
        self.stmt(program, &body);
    }

    fn stmt(&mut self, program: &Program, s: &tir::Stmt) {
        match s {
            tir::Stmt::Seq(ss) => {
                for c in ss {
                    self.stmt(program, c);
                }
            }
            tir::Stmt::If { cond, then_br, else_br } => {
                if self.cond(cond) {
                    self.stmt(program, then_br);
                } else {
                    self.stmt(program, else_br);
                }
            }
            tir::Stmt::Skip => {}
            tir::Stmt::Cmd(c) => self.cmd(program, *c),
            other => panic!("unsupported statement in random program: {other:?}"),
        }
    }

    fn cond(&self, c: &Cond) -> bool {
        match c {
            Cond::True => true,
            Cond::Nondet => true,
            Cond::Cmp { op, lhs, rhs } => {
                let l = self.int_val(lhs);
                let r = self.int_val(rhs);
                op.eval(l, r)
            }
        }
    }

    fn int_val(&self, o: &Operand) -> i64 {
        match o {
            Operand::Int(c) => *c,
            Operand::Var(v) => self.ints.get(v).copied().unwrap_or(0),
            Operand::Null => 0,
        }
    }

    fn cmd(&mut self, program: &Program, c: tir::CmdId) {
        match program.cmd(c).clone() {
            tir::Command::New { dst, alloc, .. } => {
                let id = self.site_of.len();
                self.site_of.push(alloc);
                self.vars.insert(dst, Some(id));
            }
            tir::Command::Assign { dst, src } => {
                if program.var(dst).ty.is_ref() {
                    let v = match src {
                        Operand::Var(y) => self.vars.get(&y).copied().flatten(),
                        _ => None,
                    };
                    self.vars.insert(dst, v);
                } else {
                    let v = self.int_val(&src);
                    self.ints.insert(dst, v);
                }
            }
            tir::Command::BinOp { dst, op, lhs, rhs } => {
                let l = self.int_val(&lhs);
                let r = self.int_val(&rhs);
                let v = match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                };
                self.ints.insert(dst, v);
            }
            tir::Command::WriteField { obj, field, src } => {
                if let Some(Some(o)) = self.vars.get(&obj).copied().map(Some) {
                    let Some(o) = o else { return };
                    let v = match src {
                        Operand::Var(y) => self.vars.get(&y).copied().flatten(),
                        _ => None,
                    };
                    self.heap.insert((o, field), v);
                    if let Some(val) = v {
                        self.field_edges.push((self.site_of[o], field, self.site_of[val]));
                    }
                }
            }
            tir::Command::ReadField { dst, obj, field } => {
                let v = self
                    .vars
                    .get(&obj)
                    .copied()
                    .flatten()
                    .and_then(|o| self.heap.get(&(o, field)).copied().flatten());
                self.vars.insert(dst, v);
            }
            tir::Command::WriteGlobal { global, src } => {
                let v = match src {
                    Operand::Var(y) => self.vars.get(&y).copied().flatten(),
                    _ => None,
                };
                self.globals.insert(global, v);
                if let Some(val) = v {
                    self.global_edges.push((global, self.site_of[val]));
                }
            }
            tir::Command::ReadGlobal { dst, global } => {
                let v = self.globals.get(&global).copied().flatten();
                self.vars.insert(dst, v);
            }
            other => panic!("unsupported command in random program: {other:?}"),
        }
    }
}

fn check_soundness(steps: &[Step], config: SymexConfig) {
    let lowered = lower(steps);
    let program = &lowered.program;
    let _ = &lowered.objs;
    let _ = &lowered.fields;
    let _ = &lowered.globals;

    let mut interp = Interp::default();
    interp.run(program);

    let pta = pta::analyze(program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(program, &pta);
    let mut engine = Engine::new(program, &pta, &modref, config);

    let loc_of = |alloc: AllocId| -> LocId {
        let locs = pta.alloc_locs(alloc);
        LocId(locs.iter().next().expect("allocation reached") as u32)
    };

    for (owner, field, value) in &interp.field_edges {
        let edge = HeapEdge::Field { base: loc_of(*owner), field: *field, target: loc_of(*value) };
        let out = engine.refute_edge(&edge);
        assert!(
            !out.is_refuted(),
            "UNSOUND: concretely-produced edge {} was refuted\nprogram:\n{}",
            edge.describe(program, &pta),
            tir::print_program(program)
        );
    }
    for (global, value) in &interp.global_edges {
        let edge = HeapEdge::Global { global: *global, target: loc_of(*value) };
        let out = engine.refute_edge(&edge);
        assert!(
            !out.is_refuted(),
            "UNSOUND: concretely-produced edge {} was refuted\nprogram:\n{}",
            edge.describe(program, &pta),
            tir::print_program(program)
        );
    }
}

#[test]
fn concrete_edges_never_refuted_mixed() {
    run_cases(64, |rng| {
        let steps = arb_steps(rng, 1);
        check_soundness(&steps, SymexConfig::default());
    });
}

#[test]
fn concrete_edges_never_refuted_fully_symbolic() {
    run_cases(64, |rng| {
        let steps = arb_steps(rng, 1);
        check_soundness(
            &steps,
            SymexConfig::default().with_representation(Representation::FullySymbolic),
        );
    });
}

#[test]
fn concrete_edges_never_refuted_drop_all_loops() {
    run_cases(64, |rng| {
        let steps = arb_steps(rng, 1);
        check_soundness(&steps, SymexConfig::default().with_loop_mode(LoopMode::DropAll));
    });
}

#[test]
fn concrete_edges_never_refuted_no_simplification() {
    run_cases(64, |rng| {
        let steps = arb_steps(rng, 1);
        check_soundness(&steps, SymexConfig::default().with_simplification(false));
    });
}
