//! Transitive mod/ref analysis over the call graph.
//!
//! Used by the symbolic engine to (a) skip calls that cannot affect the
//! current query (frame rule) and (b) soundly drop query constraints when a
//! callee beyond the call-stack bound is skipped (§4: "we soundly skipped
//! callees by dropping constraints that executing the call might produce").
//!
//! Summaries split into two layers: *direct* effects (one linear scan of a
//! method's own commands) and the *transitive* closure over the call graph.
//! [`ModRef::recompute`] exploits the split after a program edit: only the
//! direct effects of methods the incremental solver reports as changed are
//! re-scanned, then the (cheap) closure re-runs. Direct `mod_cells` sets are
//! keyed by the result's canonical location numbering, so retention is
//! guarded by a numbering signature — an edit that changes the location set
//! renumbers everything and falls back to a full direct pass.

use std::collections::HashMap;

use tir::{Command, FieldId, MethodId, Program};

use crate::bitset::BitSet;
use crate::result::PtaResult;

/// One layer of per-method summaries (direct or transitive).
#[derive(Clone, Debug, Default)]
struct Effects {
    mod_fields: Vec<BitSet>,
    mod_globals: Vec<BitSet>,
    ref_fields: Vec<BitSet>,
    ref_globals: Vec<BitSet>,
    /// Location-sensitive write summaries: for each method and field, the
    /// abstract locations whose cells the method may write.
    mod_cells: Vec<HashMap<FieldId, BitSet>>,
    /// Whether the method allocates.
    allocates: Vec<bool>,
}

impl Effects {
    fn with_len(n: usize) -> Effects {
        Effects {
            mod_fields: vec![BitSet::new(); n],
            mod_globals: vec![BitSet::new(); n],
            ref_fields: vec![BitSet::new(); n],
            ref_globals: vec![BitSet::new(); n],
            mod_cells: vec![HashMap::new(); n],
            allocates: vec![false; n],
        }
    }

    fn resize(&mut self, n: usize) {
        self.mod_fields.resize(n, BitSet::new());
        self.mod_globals.resize(n, BitSet::new());
        self.ref_fields.resize(n, BitSet::new());
        self.ref_globals.resize(n, BitSet::new());
        self.mod_cells.resize(n, HashMap::new());
        self.allocates.resize(n, false);
    }

    fn clear_method(&mut self, m: MethodId) {
        self.mod_fields[m.index()] = BitSet::new();
        self.mod_globals[m.index()] = BitSet::new();
        self.ref_fields[m.index()] = BitSet::new();
        self.ref_globals[m.index()] = BitSet::new();
        self.mod_cells[m.index()] = HashMap::new();
        self.allocates[m.index()] = false;
    }
}

/// Per-method summaries of fields/globals that may be written or read,
/// including transitive callees.
#[derive(Clone, Debug)]
pub struct ModRef {
    /// Direct effects only — retained so edits re-scan just the changed
    /// methods. The `mod_cells` sets are in the numbering of `loc_sig`.
    direct: Effects,
    /// Signature of the canonical location numbering `direct.mod_cells`
    /// is expressed in.
    loc_sig: u64,
    /// Direct ∪ transitive-callee effects (what the accessors expose).
    total: Effects,
}

/// FNV-1a over the canonical location names: two results assign the same
/// ids to the same locations iff their signatures match (the numbering is
/// a sort over exactly these names).
fn loc_signature(program: &Program, pta: &PtaResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for l in pta.locs().ids() {
        eat(pta.loc_name(program, l).as_bytes());
        eat(&[0]);
    }
    h
}

impl ModRef {
    /// Computes mod/ref summaries for every method of `program`, using the
    /// call graph from `pta`.
    pub fn compute(program: &Program, pta: &PtaResult) -> ModRef {
        let n = program.method_ids().count();
        let mut mr = ModRef {
            direct: Effects::with_len(n),
            loc_sig: loc_signature(program, pta),
            total: Effects::with_len(n),
        };
        for m in program.method_ids() {
            mr.scan_direct(program, pta, m);
        }
        mr.close_over_calls(program, pta);
        mr
    }

    /// Refreshes the summaries after a program edit. `changed` is the
    /// incremental solver's changed-method set (methods whose commands,
    /// points-to facts, or call targets may differ); only their direct
    /// effects are re-scanned unless the location numbering shifted.
    ///
    /// Cell-blocking ([`ModRef::block_cells`]) is not retained — re-apply
    /// it after every recompute, exactly as after [`ModRef::compute`].
    pub fn recompute(&mut self, program: &Program, pta: &PtaResult, changed: &[MethodId]) {
        let n = program.method_ids().count();
        self.direct.resize(n);
        let sig = loc_signature(program, pta);
        if sig == self.loc_sig {
            for &m in changed {
                self.direct.clear_method(m);
                self.scan_direct(program, pta, m);
            }
        } else {
            // The edit changed the abstract-location set, so every
            // retained mod_cells bit is in a stale numbering.
            self.loc_sig = sig;
            self.direct = Effects::with_len(n);
            for m in program.method_ids() {
                self.scan_direct(program, pta, m);
            }
        }
        self.close_over_calls(program, pta);
    }

    /// One linear scan of `m`'s own commands into `self.direct`.
    fn scan_direct(&mut self, program: &Program, pta: &PtaResult, m: MethodId) {
        let d = &mut self.direct;
        for c in program.method_cmds(m) {
            match program.cmd(c) {
                Command::WriteField { obj, field, .. } => {
                    d.mod_fields[m.index()].insert(field.index());
                    d.mod_cells[m.index()].entry(*field).or_default().union_with(pta.pt_var(*obj));
                }
                Command::WriteArray { arr, .. } => {
                    d.mod_fields[m.index()].insert(program.contents_field.index());
                    d.mod_cells[m.index()]
                        .entry(program.contents_field)
                        .or_default()
                        .union_with(pta.pt_var(*arr));
                }
                Command::WriteGlobal { global, .. } => {
                    d.mod_globals[m.index()].insert(global.index());
                }
                Command::ReadField { field, .. } => {
                    d.ref_fields[m.index()].insert(field.index());
                }
                Command::ReadArray { .. } => {
                    d.ref_fields[m.index()].insert(program.contents_field.index());
                }
                Command::ArrayLen { .. } => {
                    d.ref_fields[m.index()].insert(program.len_field.index());
                }
                Command::ReadGlobal { global, .. } => {
                    d.ref_globals[m.index()].insert(global.index());
                }
                Command::New { .. } => {
                    d.allocates[m.index()] = true;
                }
                Command::NewArray { .. } => {
                    d.allocates[m.index()] = true;
                    // Array allocation initializes `len`.
                    d.mod_fields[m.index()].insert(program.len_field.index());
                }
                _ => {}
            }
        }
    }

    /// Rebuilds `self.total` = direct effects closed over the call graph
    /// (iterate to fixpoint; the graph is small).
    fn close_over_calls(&mut self, program: &Program, pta: &PtaResult) {
        let mr = &mut self.total;
        *mr = self.direct.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for m in program.method_ids() {
                for c in program.method_cmds(m) {
                    for &callee in pta.call_targets(c) {
                        if callee == m {
                            continue;
                        }
                        let (cf, cg, rf, rg, cc, al) = (
                            mr.mod_fields[callee.index()].clone(),
                            mr.mod_globals[callee.index()].clone(),
                            mr.ref_fields[callee.index()].clone(),
                            mr.ref_globals[callee.index()].clone(),
                            mr.mod_cells[callee.index()].clone(),
                            mr.allocates[callee.index()],
                        );
                        changed |= mr.mod_fields[m.index()].union_with(&cf);
                        changed |= mr.mod_globals[m.index()].union_with(&cg);
                        changed |= mr.ref_fields[m.index()].union_with(&rf);
                        changed |= mr.ref_globals[m.index()].union_with(&rg);
                        for (f, locs) in cc {
                            changed |=
                                mr.mod_cells[m.index()].entry(f).or_default().union_with(&locs);
                        }
                        if al && !mr.allocates[m.index()] {
                            mr.allocates[m.index()] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    /// Fields (by index) that `m` may transitively write.
    pub fn mod_fields(&self, m: MethodId) -> &BitSet {
        &self.total.mod_fields[m.index()]
    }

    /// Locations whose `field` cells `m` may transitively write.
    pub fn mod_cell_locs(&self, m: MethodId, field: FieldId) -> Option<&BitSet> {
        self.total.mod_cells[m.index()].get(&field)
    }

    /// True if `m` may write `field` of an object abstracted by a location
    /// in `locs`.
    pub fn may_write_cell(&self, m: MethodId, field: FieldId, locs: &BitSet) -> bool {
        self.mod_cell_locs(m, field).map(|w| !w.is_disjoint(locs)).unwrap_or(false)
    }

    /// Suppress the `field`-cell summary locations in `blocked` for every
    /// method (used to mirror empty-contents annotations).
    pub fn block_cells(&mut self, field: FieldId, blocked: &BitSet) {
        for per in &mut self.total.mod_cells {
            if let Some(locs) = per.get_mut(&field) {
                locs.subtract(blocked);
            }
        }
    }

    /// Globals (by index) that `m` may transitively write.
    pub fn mod_globals(&self, m: MethodId) -> &BitSet {
        &self.total.mod_globals[m.index()]
    }

    /// Fields (by index) that `m` may transitively read.
    pub fn ref_fields(&self, m: MethodId) -> &BitSet {
        &self.total.ref_fields[m.index()]
    }

    /// Globals (by index) that `m` may transitively read.
    pub fn ref_globals(&self, m: MethodId) -> &BitSet {
        &self.total.ref_globals[m.index()]
    }

    /// True if `m` may transitively allocate.
    pub fn allocates(&self, m: MethodId) -> bool {
        self.total.allocates[m.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, PtaOptions};
    use crate::context::ContextPolicy;
    use crate::incremental::IncrementalPta;
    use tir::{apply_edits, parse, EditOp};

    #[test]
    fn direct_and_transitive_mods() {
        let p = parse(
            r#"
class Box { field item: Object; field other: Object; }
global G: Object;
fn leaf(b: Box, o: Object) {
  b.item = o;
}
fn mid(b: Box, o: Object) {
  call leaf(b, o);
}
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  call mid(b, o);
  $G = o;
}
entry main;
"#,
        )
        .expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let mr = ModRef::compute(&p, &r);
        let box_cls = p.class_by_name("Box").unwrap();
        let item = p.resolve_field(box_cls, "item").unwrap();
        let other = p.resolve_field(box_cls, "other").unwrap();
        let g = p.global_by_name("G").unwrap();

        let leaf = p.free_function("leaf").unwrap();
        let mid = p.free_function("mid").unwrap();
        let main = p.entry();

        assert!(mr.mod_fields(leaf).contains(item.index()));
        assert!(!mr.mod_fields(leaf).contains(other.index()));
        // Transitive: mid inherits leaf's mods.
        assert!(mr.mod_fields(mid).contains(item.index()));
        assert!(!mr.allocates(mid));
        assert!(mr.allocates(main));
        assert!(mr.mod_globals(main).contains(g.index()));
        assert!(!mr.mod_globals(mid).contains(g.index()));
    }

    #[test]
    fn refs_tracked_separately() {
        let p = parse(
            r#"
class Box { field item: Object; }
fn reader(b: Box): Object {
  var o: Object;
  o = b.item;
  return o;
}
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = call reader(b);
}
entry main;
"#,
        )
        .expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let mr = ModRef::compute(&p, &r);
        let box_cls = p.class_by_name("Box").unwrap();
        let item = p.resolve_field(box_cls, "item").unwrap();
        let reader = p.free_function("reader").unwrap();
        assert!(mr.ref_fields(reader).contains(item.index()));
        assert!(mr.mod_fields(reader).is_empty());
    }

    #[test]
    fn recursion_terminates() {
        let p = parse(
            r#"
global G: Object;
fn rec(o: Object) {
  $G = o;
  call rec(o);
}
fn main() {
  var o: Object;
  o = new Object @o0;
  call rec(o);
}
entry main;
"#,
        )
        .expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let mr = ModRef::compute(&p, &r);
        let rec = p.free_function("rec").unwrap();
        let g = p.global_by_name("G").unwrap();
        assert!(mr.mod_globals(rec).contains(g.index()));
    }

    /// `recompute` over an edit sequence must always match a from-scratch
    /// `compute` against the same result — including when the edit changes
    /// the abstract-location set and invalidates the retained numbering.
    #[test]
    fn recompute_matches_compute_across_edits() {
        let src = r#"
class Box { field item: Object; field other: Object; }
global G: Object;
fn writer(b: Box, o: Object) {
  b.item = o;
  return;
}
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  call writer(b, o);
  return;
}
entry main;
"#;
        let mut p = parse(src).expect("parse");
        let mut inc = IncrementalPta::new(&p, ContextPolicy::Insensitive, &PtaOptions::default());
        let mut mr = ModRef::compute(&p, &inc.result(&p));
        let batches: Vec<Vec<EditOp>> = vec![
            // Same location set: retained direct summaries stay valid.
            vec![EditOp::AddStmt { method: "writer".into(), at: 1, text: "b.other = o;".into() }],
            // New allocation site: the numbering shifts, forcing the
            // full-direct fallback.
            vec![
                EditOp::AddStmt {
                    method: "main".into(),
                    at: 2,
                    text: "o = new Object @obj1;".into(),
                },
                EditOp::AddStmt { method: "main".into(), at: 3, text: "$G = o;".into() },
            ],
            vec![EditOp::RemoveStmt { method: "writer".into(), at: 0 }],
        ];
        for batch in &batches {
            let applied = apply_edits(&mut p, batch).expect("apply");
            let stats = inc.apply_edits(&p, &applied);
            let pta = inc.result(&p);
            mr.recompute(&p, &pta, &stats.changed_methods);
            let fresh = ModRef::compute(&p, &pta);
            let bits = |b: &BitSet| b.iter().collect::<Vec<_>>();
            let cells = |e: &HashMap<FieldId, BitSet>| {
                let mut v: Vec<(usize, Vec<usize>)> =
                    e.iter().map(|(f, s)| (f.index(), s.iter().collect())).collect();
                v.sort();
                v
            };
            for m in p.method_ids() {
                let name = p.method_name(m);
                assert_eq!(
                    cells(&mr.total.mod_cells[m.index()]),
                    cells(&fresh.total.mod_cells[m.index()]),
                    "mod_cells diverge for {name}"
                );
                assert_eq!(bits(mr.mod_fields(m)), bits(fresh.mod_fields(m)), "{name}");
                assert_eq!(bits(mr.mod_globals(m)), bits(fresh.mod_globals(m)), "{name}");
                assert_eq!(bits(mr.ref_fields(m)), bits(fresh.ref_fields(m)), "{name}");
                assert_eq!(bits(mr.ref_globals(m)), bits(fresh.ref_globals(m)), "{name}");
                assert_eq!(mr.allocates(m), fresh.allocates(m), "{name}");
            }
        }
    }
}
