//! Transitive mod/ref analysis over the call graph.
//!
//! Used by the symbolic engine to (a) skip calls that cannot affect the
//! current query (frame rule) and (b) soundly drop query constraints when a
//! callee beyond the call-stack bound is skipped (§4: "we soundly skipped
//! callees by dropping constraints that executing the call might produce").

use std::collections::HashMap;

use tir::{Command, FieldId, MethodId, Program};

use crate::bitset::BitSet;
use crate::result::PtaResult;

/// Per-method summaries of fields/globals that may be written or read,
/// including transitive callees.
#[derive(Debug)]
pub struct ModRef {
    mod_fields: Vec<BitSet>,
    mod_globals: Vec<BitSet>,
    ref_fields: Vec<BitSet>,
    ref_globals: Vec<BitSet>,
    /// Location-sensitive write summaries: for each method and field, the
    /// abstract locations whose cells the method (transitively) may write.
    /// This is the paper's "points-to facts guide execution" at the
    /// call-skipping level: a call is irrelevant to a query cell unless the
    /// callee can write that field *of an object in the cell's region*.
    mod_cells: Vec<HashMap<FieldId, BitSet>>,
    /// Whether the method (transitively) allocates.
    allocates: Vec<bool>,
}

impl ModRef {
    /// Computes mod/ref summaries for every method of `program`, using the
    /// call graph from `pta`.
    pub fn compute(program: &Program, pta: &PtaResult) -> ModRef {
        let n = program.method_ids().count();
        let mut mr = ModRef {
            mod_fields: vec![BitSet::new(); n],
            mod_globals: vec![BitSet::new(); n],
            ref_fields: vec![BitSet::new(); n],
            ref_globals: vec![BitSet::new(); n],
            mod_cells: vec![HashMap::new(); n],
            allocates: vec![false; n],
        };
        // Direct effects.
        for m in program.method_ids() {
            for c in program.method_cmds(m) {
                match program.cmd(c) {
                    Command::WriteField { obj, field, .. } => {
                        mr.mod_fields[m.index()].insert(field.index());
                        mr.mod_cells[m.index()]
                            .entry(*field)
                            .or_default()
                            .union_with(pta.pt_var(*obj));
                    }
                    Command::WriteArray { arr, .. } => {
                        mr.mod_fields[m.index()].insert(program.contents_field.index());
                        mr.mod_cells[m.index()]
                            .entry(program.contents_field)
                            .or_default()
                            .union_with(pta.pt_var(*arr));
                    }
                    Command::WriteGlobal { global, .. } => {
                        mr.mod_globals[m.index()].insert(global.index());
                    }
                    Command::ReadField { field, .. } => {
                        mr.ref_fields[m.index()].insert(field.index());
                    }
                    Command::ReadArray { .. } => {
                        mr.ref_fields[m.index()].insert(program.contents_field.index());
                    }
                    Command::ArrayLen { .. } => {
                        mr.ref_fields[m.index()].insert(program.len_field.index());
                    }
                    Command::ReadGlobal { global, .. } => {
                        mr.ref_globals[m.index()].insert(global.index());
                    }
                    Command::New { .. } | Command::NewArray { .. } => {
                        mr.allocates[m.index()] = true;
                        // Array allocation initializes `len`.
                        if matches!(program.cmd(c), Command::NewArray { .. }) {
                            mr.mod_fields[m.index()].insert(program.len_field.index());
                        }
                    }
                    _ => {}
                }
            }
        }
        // Transitive closure over the call graph (iterate to fixpoint; the
        // graph is small).
        let mut changed = true;
        while changed {
            changed = false;
            for m in program.method_ids() {
                for c in program.method_cmds(m) {
                    for &callee in pta.call_targets(c) {
                        if callee == m {
                            continue;
                        }
                        let (cf, cg, rf, rg, cc, al) = (
                            mr.mod_fields[callee.index()].clone(),
                            mr.mod_globals[callee.index()].clone(),
                            mr.ref_fields[callee.index()].clone(),
                            mr.ref_globals[callee.index()].clone(),
                            mr.mod_cells[callee.index()].clone(),
                            mr.allocates[callee.index()],
                        );
                        changed |= mr.mod_fields[m.index()].union_with(&cf);
                        changed |= mr.mod_globals[m.index()].union_with(&cg);
                        changed |= mr.ref_fields[m.index()].union_with(&rf);
                        changed |= mr.ref_globals[m.index()].union_with(&rg);
                        for (f, locs) in cc {
                            changed |=
                                mr.mod_cells[m.index()].entry(f).or_default().union_with(&locs);
                        }
                        if al && !mr.allocates[m.index()] {
                            mr.allocates[m.index()] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        mr
    }

    /// Fields (by index) that `m` may transitively write.
    pub fn mod_fields(&self, m: MethodId) -> &BitSet {
        &self.mod_fields[m.index()]
    }

    /// Locations whose `field` cells `m` may transitively write.
    pub fn mod_cell_locs(&self, m: MethodId, field: FieldId) -> Option<&BitSet> {
        self.mod_cells[m.index()].get(&field)
    }

    /// True if `m` may write `field` of an object abstracted by a location
    /// in `locs`.
    pub fn may_write_cell(&self, m: MethodId, field: FieldId, locs: &BitSet) -> bool {
        self.mod_cell_locs(m, field).map(|w| !w.is_disjoint(locs)).unwrap_or(false)
    }

    /// Suppress the `field`-cell summary locations in `blocked` for every
    /// method (used to mirror empty-contents annotations).
    pub fn block_cells(&mut self, field: FieldId, blocked: &BitSet) {
        for per in &mut self.mod_cells {
            if let Some(locs) = per.get_mut(&field) {
                locs.subtract(blocked);
            }
        }
    }

    /// Globals (by index) that `m` may transitively write.
    pub fn mod_globals(&self, m: MethodId) -> &BitSet {
        &self.mod_globals[m.index()]
    }

    /// Fields (by index) that `m` may transitively read.
    pub fn ref_fields(&self, m: MethodId) -> &BitSet {
        &self.ref_fields[m.index()]
    }

    /// Globals (by index) that `m` may transitively read.
    pub fn ref_globals(&self, m: MethodId) -> &BitSet {
        &self.ref_globals[m.index()]
    }

    /// True if `m` may transitively allocate.
    pub fn allocates(&self, m: MethodId) -> bool {
        self.allocates[m.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::context::ContextPolicy;
    use tir::parse;

    #[test]
    fn direct_and_transitive_mods() {
        let p = parse(
            r#"
class Box { field item: Object; field other: Object; }
global G: Object;
fn leaf(b: Box, o: Object) {
  b.item = o;
}
fn mid(b: Box, o: Object) {
  call leaf(b, o);
}
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  call mid(b, o);
  $G = o;
}
entry main;
"#,
        )
        .expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let mr = ModRef::compute(&p, &r);
        let box_cls = p.class_by_name("Box").unwrap();
        let item = p.resolve_field(box_cls, "item").unwrap();
        let other = p.resolve_field(box_cls, "other").unwrap();
        let g = p.global_by_name("G").unwrap();

        let leaf = p.free_function("leaf").unwrap();
        let mid = p.free_function("mid").unwrap();
        let main = p.entry();

        assert!(mr.mod_fields(leaf).contains(item.index()));
        assert!(!mr.mod_fields(leaf).contains(other.index()));
        // Transitive: mid inherits leaf's mods.
        assert!(mr.mod_fields(mid).contains(item.index()));
        assert!(!mr.allocates(mid));
        assert!(mr.allocates(main));
        assert!(mr.mod_globals(main).contains(g.index()));
        assert!(!mr.mod_globals(mid).contains(g.index()));
    }

    #[test]
    fn refs_tracked_separately() {
        let p = parse(
            r#"
class Box { field item: Object; }
fn reader(b: Box): Object {
  var o: Object;
  o = b.item;
  return o;
}
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = call reader(b);
}
entry main;
"#,
        )
        .expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let mr = ModRef::compute(&p, &r);
        let box_cls = p.class_by_name("Box").unwrap();
        let item = p.resolve_field(box_cls, "item").unwrap();
        let reader = p.free_function("reader").unwrap();
        assert!(mr.ref_fields(reader).contains(item.index()));
        assert!(mr.mod_fields(reader).is_empty());
    }

    #[test]
    fn recursion_terminates() {
        let p = parse(
            r#"
global G: Object;
fn rec(o: Object) {
  $G = o;
  call rec(o);
}
fn main() {
  var o: Object;
  o = new Object @o0;
  call rec(o);
}
entry main;
"#,
        )
        .expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let mr = ModRef::compute(&p, &r);
        let rec = p.free_function("rec").unwrap();
        let g = p.global_by_name("G").unwrap();
        assert!(mr.mod_globals(rec).contains(g.index()));
    }
}
