//! The points-to analysis result consumed by clients and by the
//! witness-refutation engine.

use std::collections::HashMap;

use tir::{AllocId, ClassId, CmdId, FieldId, GlobalId, MethodId, Program, Ty, VarId};

use crate::bitset::BitSet;
use crate::loc::{LocId, LocTable};

/// A may points-to edge of the heap abstraction (a `⇒` edge of Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HeapEdge {
    /// `global ⇒ target`
    Global {
        /// The source global.
        global: GlobalId,
        /// The pointed-to location.
        target: LocId,
    },
    /// `base.field ⇒ target`
    Field {
        /// The source object location.
        base: LocId,
        /// The traversed field.
        field: FieldId,
        /// The pointed-to location.
        target: LocId,
    },
}

impl HeapEdge {
    /// The destination location of the edge.
    pub fn target(&self) -> LocId {
        match self {
            HeapEdge::Global { target, .. } | HeapEdge::Field { target, .. } => *target,
        }
    }

    /// Renders the edge with human-readable location names.
    pub fn describe(&self, program: &Program, result: &dyn crate::PtaView) -> String {
        match self {
            HeapEdge::Global { global, target } => {
                format!("{} => {}", program.global(*global).name, result.loc_name(program, *target))
            }
            HeapEdge::Field { base, field, target } => format!(
                "{}.{} => {}",
                result.loc_name(program, *base),
                program.field(*field).name,
                result.loc_name(program, *target)
            ),
        }
    }
}

/// The immutable output of [`crate::analyze`].
#[derive(Debug)]
pub struct PtaResult {
    locs: LocTable,
    var_pt: HashMap<VarId, BitSet>,
    global_pt: Vec<BitSet>,
    heap: HashMap<(LocId, FieldId), BitSet>,
    producers: HashMap<HeapEdge, Vec<CmdId>>,
    call_targets: HashMap<CmdId, Vec<MethodId>>,
    callers: HashMap<MethodId, Vec<CmdId>>,
    reached: BitSet,
    loc_class: Vec<ClassId>,
    alloc_locs: HashMap<AllocId, BitSet>,
    empty: BitSet,
}

impl PtaResult {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        locs: LocTable,
        var_pt: HashMap<VarId, BitSet>,
        global_pt: Vec<BitSet>,
        heap: HashMap<(LocId, FieldId), BitSet>,
        producers: HashMap<HeapEdge, Vec<CmdId>>,
        call_targets: HashMap<CmdId, Vec<MethodId>>,
        callers: HashMap<MethodId, Vec<CmdId>>,
        reached: BitSet,
        loc_class: Vec<ClassId>,
        alloc_locs: HashMap<AllocId, BitSet>,
    ) -> Self {
        PtaResult {
            locs,
            var_pt,
            global_pt,
            heap,
            producers,
            call_targets,
            callers,
            reached,
            loc_class,
            alloc_locs,
            empty: BitSet::new(),
        }
    }

    /// The abstract-location table.
    pub fn locs(&self) -> &LocTable {
        &self.locs
    }

    /// Total number of abstract locations.
    pub fn num_locs(&self) -> usize {
        self.locs.len()
    }

    /// Points-to set of a local variable, conflated over calling contexts
    /// (the `pt_Ĝ(x)` of the paper).
    pub fn pt_var(&self, v: VarId) -> &BitSet {
        self.var_pt.get(&v).unwrap_or(&self.empty)
    }

    /// Points-to set of a global.
    pub fn pt_global(&self, g: GlobalId) -> &BitSet {
        self.global_pt.get(g.index()).unwrap_or(&self.empty)
    }

    /// Points-to set of field `f` of location `base`.
    pub fn pt_field(&self, base: LocId, f: FieldId) -> &BitSet {
        self.heap.get(&(base, f)).unwrap_or(&self.empty)
    }

    /// Points-to set of `y.f` — union of `pt_field(l, f)` over `l ∈ pt(y)`
    /// (the `pt_Ĝ(y.f)` of the paper).
    pub fn pt_var_field(&self, y: VarId, f: FieldId) -> BitSet {
        let mut out = BitSet::new();
        for l in self.pt_var(y).iter() {
            out.union_with(self.pt_field(LocId(l as u32), f));
        }
        out
    }

    /// All heap field edges, as (base, field, targets) triples.
    pub fn heap_entries(&self) -> impl Iterator<Item = (LocId, FieldId, &BitSet)> {
        self.heap.iter().map(|(&(l, f), t)| (l, f, t))
    }

    /// Number of may points-to edges in the heap abstraction (including
    /// global edges).
    pub fn num_heap_edges(&self) -> usize {
        self.heap.values().map(BitSet::len).sum::<usize>()
            + self.global_pt.iter().map(BitSet::len).sum::<usize>()
    }

    /// Commands that may produce `edge` (the statements a witness search for
    /// that edge starts from).
    pub fn producers(&self, edge: &HeapEdge) -> &[CmdId] {
        self.producers.get(edge).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Possible callees of a call command, conflated over contexts.
    pub fn call_targets(&self, cmd: CmdId) -> &[MethodId] {
        self.call_targets.get(&cmd).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Call commands that may invoke `m`.
    pub fn callers(&self, m: MethodId) -> &[CmdId] {
        self.callers.get(&m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if `m` is reachable from the entry method.
    pub fn is_reached(&self, m: MethodId) -> bool {
        self.reached.contains(m.index())
    }

    /// The class of objects abstracted by `l`.
    pub fn class_of(&self, l: LocId) -> ClassId {
        self.loc_class[l.index()]
    }

    /// All locations whose class is `base` or a subclass of it.
    pub fn locs_of_class(&self, program: &Program, base: ClassId) -> BitSet {
        let mut out = BitSet::new();
        for l in self.locs.ids() {
            if program.is_subclass(self.class_of(l), base) {
                out.insert(l.index());
            }
        }
        out
    }

    /// All (possibly context-qualified) locations born at allocation site
    /// `a`.
    pub fn alloc_locs(&self, a: AllocId) -> &BitSet {
        self.alloc_locs.get(&a).unwrap_or(&self.empty)
    }

    /// Human-readable location name (e.g. `vec0.arr1`).
    pub fn loc_name(&self, program: &Program, l: LocId) -> String {
        self.locs.name(l, program)
    }

    /// Debug sanity check: every location in a variable's points-to set must
    /// be class-compatible with the variable's declared type.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on a type-incompatible points-to fact, which
    /// would indicate a solver bug.
    pub fn check_types(&self, program: &Program) {
        if cfg!(debug_assertions) {
            for (&v, pt) in &self.var_pt {
                let Ty::Ref(declared) = program.var(v).ty else { continue };
                for l in pt.iter() {
                    let class = self.class_of(LocId(l as u32));
                    debug_assert!(
                        program.is_subclass(class, declared)
                            || program.is_subclass(declared, class),
                        "points-to type mismatch: {} : {} ∋ {}",
                        program.var(v).name,
                        program.class(declared).name,
                        program.class(class).name,
                    );
                }
            }
        }
    }

    /// Renders the points-to graph in GraphViz dot format (globals as
    /// boxes, abstract locations as ellipses, labelled field edges) — the
    /// Figure 2 visualization.
    pub fn to_dot(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph points_to {\n  rankdir=LR;\n");
        for g in program.global_ids() {
            if self.pt_global(g).is_empty() {
                continue;
            }
            let _ = writeln!(out, "  \"${}\" [shape=box];", program.global(g).name);
            for t in self.pt_global(g).iter() {
                let _ = writeln!(
                    out,
                    "  \"${}\" -> \"{}\";",
                    program.global(g).name,
                    self.loc_name(program, LocId(t as u32))
                );
            }
        }
        let mut entries: Vec<_> = self.heap.iter().collect();
        entries.sort_by_key(|((l, f), _)| (l.index(), f.index()));
        for ((l, f), ts) in entries {
            for t in ts.iter() {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [label=\"{}\"];",
                    self.loc_name(program, *l),
                    self.loc_name(program, LocId(t as u32)),
                    program.field(*f).name
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the whole points-to graph for debugging.
    pub fn dump(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for g in program.global_ids() {
            for t in self.pt_global(g).iter() {
                let _ = writeln!(
                    out,
                    "{} => {}",
                    program.global(g).name,
                    self.loc_name(program, LocId(t as u32))
                );
            }
        }
        let mut entries: Vec<_> = self.heap.iter().collect();
        entries.sort_by_key(|((l, f), _)| (l.index(), f.index()));
        for ((l, f), ts) in entries {
            for t in ts.iter() {
                let _ = writeln!(
                    out,
                    "{}.{} => {}",
                    self.loc_name(program, *l),
                    program.field(*f).name,
                    self.loc_name(program, LocId(t as u32))
                );
            }
        }
        out
    }
}

/// Serializes every client-observable part of a result into one canonical
/// string. Points-to sets arrive via [`PtaResult::dump`] (which renders
/// canonical location names in canonical numbering order); the call graph,
/// reached set, producer map, and allocation-site map are rendered by
/// iterating the *program* (ids are program-derived, not solver-derived).
/// Two equal results serialize identically no matter which fixpoint
/// strategy — or incremental edit history — produced them, which makes
/// this the byte-for-byte comparison key for differential and
/// incremental-oracle testing.
pub fn canonical_text(program: &Program, r: &PtaResult) -> String {
    let mut out = r.dump(program);
    for m in program.method_ids() {
        if r.is_reached(m) {
            out.push_str(&format!("reached {}\n", program.method_name(m)));
        }
        let callers = r.callers(m);
        if !callers.is_empty() {
            let ids: Vec<String> = callers.iter().map(|c| c.index().to_string()).collect();
            out.push_str(&format!("callers {} <- {}\n", program.method_name(m), ids.join(",")));
        }
        for cmd in program.method_cmds(m) {
            let targets = r.call_targets(cmd);
            if !targets.is_empty() {
                let names: Vec<String> = targets.iter().map(|&t| program.method_name(t)).collect();
                out.push_str(&format!("call {} -> {}\n", cmd.index(), names.join(",")));
            }
        }
    }
    let mut edges: Vec<HeapEdge> = Vec::new();
    for g in program.global_ids() {
        for t in r.pt_global(g).iter() {
            edges.push(HeapEdge::Global { global: g, target: LocId(t as u32) });
        }
    }
    let mut entries: Vec<_> = r.heap_entries().collect();
    entries.sort_by_key(|(l, f, _)| (l.index(), f.index()));
    for (base, field, targets) in entries {
        for t in targets.iter() {
            edges.push(HeapEdge::Field { base, field, target: LocId(t as u32) });
        }
    }
    edges.sort();
    for edge in edges {
        let prods: Vec<String> = r.producers(&edge).iter().map(|c| c.index().to_string()).collect();
        out.push_str(&format!("producers {} : {}\n", edge.describe(program, r), prods.join(",")));
    }
    for a in program.alloc_ids() {
        let locs: Vec<String> =
            r.alloc_locs(a).iter().map(|l| r.loc_name(program, LocId(l as u32))).collect();
        out.push_str(&format!("alloc {} : {}\n", program.alloc(a).name, locs.join(",")));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::analysis::analyze;
    use crate::context::ContextPolicy;

    #[test]
    fn to_dot_renders_nodes_and_edges() {
        let p = tir::parse(
            r#"
class Box { field item: Object; }
global ROOT: Box;
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  b.item = o;
  $ROOT = b;
}
entry main;
"#,
        )
        .expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let dot = r.to_dot(&p);
        assert!(dot.starts_with("digraph points_to {"), "{dot}");
        assert!(dot.contains("\"$ROOT\" -> \"box0\""), "{dot}");
        assert!(dot.contains("\"box0\" -> \"obj0\" [label=\"item\"]"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
    }
}
