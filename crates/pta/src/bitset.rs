//! A compact growable bitset used for points-to sets and regions.

/// A growable set of small non-negative integers, stored as 64-bit words.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet { words: Vec::new() }
    }

    /// Creates a set containing a single element.
    pub fn singleton(bit: usize) -> Self {
        let mut s = BitSet::new();
        s.insert(bit);
        s
    }

    /// Creates a set from an iterator of elements.
    pub fn from_iter_bits(bits: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new();
        for b in bits {
            s.insert(b);
        }
        s
    }

    /// Inserts `bit`; returns true if it was newly added.
    pub fn insert(&mut self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & m != 0;
        self.words[w] |= m;
        !had
    }

    /// Removes `bit`; returns true if it was present.
    pub fn remove(&mut self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & m != 0;
        self.words[w] &= !m;
        had
    }

    /// Membership test.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        self.words.get(w).is_some_and(|word| word & m != 0)
    }

    /// True if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index one past the last non-zero word (trailing zero words carry no
    /// elements, so they never need to be copied or allocated for).
    fn effective_len(&self) -> usize {
        self.words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1)
    }

    /// Adds every element of `other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let n = other.effective_len();
        if n == 0 {
            return false;
        }
        if n > self.words.len() {
            self.words.resize(n, 0);
        }
        let mut changed = false;
        for (i, &w) in other.words[..n].iter().enumerate() {
            if w == 0 {
                continue;
            }
            let before = self.words[i];
            self.words[i] |= w;
            changed |= self.words[i] != before;
        }
        changed
    }

    /// Adds every element of `other` that is *not* in `exclude`; returns
    /// true if `self` gained at least one element. This is the difference-
    /// propagation kernel: `delta.union_with_delta(&incoming, &old)` folds
    /// only genuinely new locations into the pending delta, word by word.
    pub fn union_with_delta(&mut self, other: &BitSet, exclude: &BitSet) -> bool {
        let n = other.effective_len();
        if n == 0 {
            return false;
        }
        let mut changed = false;
        for (i, &w) in other.words[..n].iter().enumerate() {
            let fresh = w & !exclude.words.get(i).copied().unwrap_or(0);
            if fresh == 0 {
                continue;
            }
            if i >= self.words.len() {
                self.words.resize(n, 0);
            }
            let before = self.words[i];
            self.words[i] |= fresh;
            changed |= self.words[i] != before;
        }
        changed
    }

    /// Keeps only elements also in `other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (i, w) in self.words.iter_mut().enumerate() {
            let before = *w;
            *w &= other.words.get(i).copied().unwrap_or(0);
            changed |= *w != before;
        }
        changed
    }

    /// Removes every element of `other`; returns true if `self` changed.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (i, w) in self.words.iter_mut().enumerate() {
            let before = *w;
            *w &= !other.words.get(i).copied().unwrap_or(0);
            changed |= *w != before;
        }
        changed
    }

    /// The intersection as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// True if `self` and `other` share no elements.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(other.words.iter()).all(|(a, b)| a & b == 0)
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates over elements in ascending order. Zero words are skipped
    /// whole, and within a word each set bit is found with
    /// `trailing_zeros` instead of probing all 64 positions.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .flat_map(|(wi, &w)| WordBits { word: w, base: wi * 64 })
    }

    /// True if `a0 ∪ a1 == b0 ∪ b1`, computed word by word without
    /// allocating the unions. This is the hot equality probe of lazy cycle
    /// detection, where each side is an old/delta split of one node.
    pub(crate) fn pair_union_eq(a0: &BitSet, a1: &BitSet, b0: &BitSet, b1: &BitSet) -> bool {
        let n = a0.words.len().max(a1.words.len()).max(b0.words.len()).max(b1.words.len());
        let word = |s: &BitSet, i: usize| s.words.get(i).copied().unwrap_or(0);
        (0..n).all(|i| (word(a0, i) | word(a1, i)) == (word(b0, i) | word(b1, i)))
    }

    /// The single element, if the set has exactly one.
    pub fn as_singleton(&self) -> Option<usize> {
        let mut it = self.iter();
        let first = it.next()?;
        if it.next().is_none() {
            Some(first)
        } else {
            None
        }
    }
}

/// Iterator over the set bits of a single word.
struct WordBits {
    word: u64,
    base: usize,
}

impl Iterator for WordBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + b)
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        BitSet::from_iter_bits(iter)
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(200));
        assert!(s.contains(3) && s.contains(200) && !s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2, 64, 100].into_iter().collect();
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.len(), 5);
        assert!(!u.union_with(&b));

        let i = a.intersection(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 64]);

        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));

        let c: BitSet = [7, 8].into_iter().collect();
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn subtract_removes() {
        let mut a: BitSet = [1, 2, 3].into_iter().collect();
        let b: BitSet = [2].into_iter().collect();
        assert!(a.subtract(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn singleton_detection() {
        assert_eq!(BitSet::singleton(9).as_singleton(), Some(9));
        let two: BitSet = [1, 9].into_iter().collect();
        assert_eq!(two.as_singleton(), None);
        assert_eq!(BitSet::new().as_singleton(), None);
    }

    #[test]
    fn subtract_at_word_boundaries() {
        // Elements straddling the 64-bit word boundary, with `other` both
        // shorter and longer than `self`.
        let mut a: BitSet = [0, 63, 64, 127, 128].into_iter().collect();
        let shorter: BitSet = [63].into_iter().collect();
        assert!(a.subtract(&shorter));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 127, 128]);

        let longer: BitSet = [0, 127, 128, 500].into_iter().collect();
        assert!(a.subtract(&longer));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![64]);
        // Subtracting a set that shares nothing reports no change.
        let disjoint: BitSet = [63, 65].into_iter().collect();
        assert!(!a.subtract(&disjoint));
    }

    #[test]
    fn intersect_at_word_boundaries() {
        let mut a: BitSet = [63, 64, 127, 128].into_iter().collect();
        // `other` shorter than `self`: everything beyond its words drops.
        let short: BitSet = [63, 64].into_iter().collect();
        assert!(a.intersect_with(&short));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![63, 64]);

        // `other` longer than `self`: extra words are irrelevant.
        let mut b: BitSet = [64].into_iter().collect();
        let long: BitSet = [64, 1000].into_iter().collect();
        assert!(!b.intersect_with(&long));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![64]);

        // Intersecting with the empty set empties and reports a change.
        let mut c: BitSet = [0].into_iter().collect();
        assert!(c.intersect_with(&BitSet::new()));
        assert!(c.is_empty());
    }

    #[test]
    fn union_with_empty_is_noop() {
        let mut a: BitSet = [1, 70].into_iter().collect();
        assert!(!a.union_with(&BitSet::new()));
        // A set whose words are all zero (insert + remove) is still empty.
        let mut hollow = BitSet::singleton(130);
        hollow.remove(130);
        assert!(!a.union_with(&hollow));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn union_with_delta_filters_exclude() {
        let old: BitSet = [1, 64].into_iter().collect();
        let incoming: BitSet = [1, 2, 64, 129].into_iter().collect();
        let mut delta = BitSet::new();
        assert!(delta.union_with_delta(&incoming, &old));
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![2, 129]);
        // Re-pushing the same bits adds nothing.
        assert!(!delta.union_with_delta(&incoming, &old));
        // Everything excluded: no change, no growth.
        let mut d2 = BitSet::new();
        assert!(!d2.union_with_delta(&old, &incoming));
        assert!(d2.is_empty());
    }

    #[test]
    fn iter_skips_zero_words() {
        // Only words 0 and 8 are populated; iteration must still be exact.
        let s: BitSet = [5, 512, 575].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 512, 575]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_behaviour() {
        let s = BitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.is_subset(&s));
        assert!(s.is_disjoint(&s));
        assert_eq!(format!("{s:?}"), "{}");
    }
}
