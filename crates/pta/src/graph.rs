//! A mutable view over the points-to graph supporting edge deletion and
//! heap-path search.
//!
//! The refutation loop of the leak client works on this view: when the
//! symbolic engine refutes an edge, the edge is deleted here and the client
//! re-searches for an alternative path from the source global to the target
//! location (§2 "Formulate Queries").

use std::collections::{HashMap, HashSet, VecDeque};

use tir::{FieldId, GlobalId, Program};

use crate::bitset::BitSet;
use crate::loc::LocId;
use crate::result::HeapEdge;
use crate::view::PtaView;

/// A deletion overlay over a points-to result's heap graph. Works over any
/// [`PtaView`] — the exhaustive [`PtaResult`](crate::PtaResult) or a
/// demand-computed [`PartialPtaResult`](crate::PartialPtaResult) slice.
pub struct HeapGraphView<'a> {
    result: &'a dyn PtaView,
    deleted: HashSet<HeapEdge>,
}

impl<'a> HeapGraphView<'a> {
    /// Creates a view with no deletions.
    pub fn new(result: &'a dyn PtaView) -> Self {
        HeapGraphView { result, deleted: HashSet::new() }
    }

    /// The underlying analysis result.
    pub fn result(&self) -> &'a dyn PtaView {
        self.result
    }

    /// Marks `edge` as refuted/deleted.
    pub fn delete(&mut self, edge: HeapEdge) {
        self.deleted.insert(edge);
    }

    /// True if `edge` has been deleted.
    pub fn is_deleted(&self, edge: &HeapEdge) -> bool {
        self.deleted.contains(edge)
    }

    /// Number of deleted edges.
    pub fn num_deleted(&self) -> usize {
        self.deleted.len()
    }

    /// Finds a shortest path of surviving edges from `global` to any
    /// location in `targets`, as a sequence of edges source-to-sink.
    pub fn find_path(
        &self,
        program: &Program,
        global: GlobalId,
        targets: &BitSet,
    ) -> Option<Vec<HeapEdge>> {
        let _ = program;
        // Successor index in canonical (base, field) order: the underlying
        // heap map iterates in hash order, which varies across processes, and
        // the BFS tie-break (which shortest path wins) must not.
        let mut succ: HashMap<LocId, Vec<(FieldId, &BitSet)>> = HashMap::new();
        let mut entries: Vec<_> = self.result.heap_rows();
        entries.sort_by_key(|&(base, field, _)| (base.index(), field.index()));
        for (base, field, targets) in entries {
            succ.entry(base).or_default().push((field, targets));
        }
        // BFS over locations; parent pointers reconstruct the edge path.
        let mut parent: HashMap<LocId, HeapEdge> = HashMap::new();
        let mut queue: VecDeque<LocId> = VecDeque::new();
        let mut seen: HashSet<LocId> = HashSet::new();

        let mut found: Option<LocId> = None;
        for t in self.result.pt_global(global).iter() {
            let loc = LocId(t as u32);
            let edge = HeapEdge::Global { global, target: loc };
            if self.is_deleted(&edge) {
                continue;
            }
            if seen.insert(loc) {
                parent.insert(loc, edge);
                if targets.contains(loc.index()) {
                    found = Some(loc);
                    break;
                }
                queue.push_back(loc);
            }
        }
        while found.is_none() {
            let Some(cur) = queue.pop_front() else { break };
            // Expand all field edges out of `cur`, in (field, target) order.
            for &(field, succs) in succ.get(&cur).map(Vec::as_slice).unwrap_or(&[]) {
                for t in succs.iter() {
                    let loc = LocId(t as u32);
                    let edge = HeapEdge::Field { base: cur, field, target: loc };
                    if self.is_deleted(&edge) || seen.contains(&loc) {
                        continue;
                    }
                    seen.insert(loc);
                    parent.insert(loc, edge);
                    if targets.contains(loc.index()) {
                        found = Some(loc);
                        break;
                    }
                    queue.push_back(loc);
                }
                if found.is_some() {
                    break;
                }
            }
        }
        let mut cur = found?;
        let mut path = Vec::new();
        loop {
            let edge = parent[&cur];
            path.push(edge);
            match edge {
                HeapEdge::Global { .. } => break,
                HeapEdge::Field { base, .. } => cur = base,
            }
        }
        path.reverse();
        Some(path)
    }

    /// True if some surviving path connects `global` to a location in
    /// `targets`.
    pub fn is_reachable(&self, program: &Program, global: GlobalId, targets: &BitSet) -> bool {
        self.find_path(program, global, targets).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::context::ContextPolicy;
    use tir::parse;

    const CHAIN: &str = r#"
class Mid { field next: Object; }
global ROOT: Mid;
fn main() {
  var m: Mid;
  var o: Object;
  m = new Mid @mid0;
  o = new Object @leaf0;
  m.next = o;
  $ROOT = m;
}
entry main;
"#;

    #[test]
    fn finds_two_edge_path() {
        let p = parse(CHAIN).expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let view = HeapGraphView::new(&r);
        let root = p.global_by_name("ROOT").unwrap();
        let leaf: BitSet =
            r.locs().ids().filter(|&l| r.loc_name(&p, l) == "leaf0").map(|l| l.index()).collect();
        let path = view.find_path(&p, root, &leaf).expect("path");
        assert_eq!(path.len(), 2);
        assert!(matches!(path[0], HeapEdge::Global { .. }));
        assert!(matches!(path[1], HeapEdge::Field { .. }));
    }

    #[test]
    fn deleting_an_edge_disconnects() {
        let p = parse(CHAIN).expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let mut view = HeapGraphView::new(&r);
        let root = p.global_by_name("ROOT").unwrap();
        let leaf: BitSet =
            r.locs().ids().filter(|&l| r.loc_name(&p, l) == "leaf0").map(|l| l.index()).collect();
        let path = view.find_path(&p, root, &leaf).expect("path");
        view.delete(path[1]);
        assert!(!view.is_reachable(&p, root, &leaf));
        assert_eq!(view.num_deleted(), 1);
    }

    #[test]
    fn reroutes_around_deleted_edge() {
        let p = parse(
            r#"
class Mid { field a: Object; field b: Object; }
global ROOT: Mid;
fn main() {
  var m: Mid;
  var o: Object;
  m = new Mid @mid0;
  o = new Object @leaf0;
  m.a = o;
  m.b = o;
  $ROOT = m;
}
entry main;
"#,
        )
        .expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        let mut view = HeapGraphView::new(&r);
        let root = p.global_by_name("ROOT").unwrap();
        let leaf: BitSet =
            r.locs().ids().filter(|&l| r.loc_name(&p, l) == "leaf0").map(|l| l.index()).collect();
        let path1 = view.find_path(&p, root, &leaf).expect("path 1");
        view.delete(path1[1]);
        let path2 = view.find_path(&p, root, &leaf).expect("path 2");
        assert_ne!(path1[1], path2[1]);
        view.delete(path2[1]);
        assert!(!view.is_reachable(&p, root, &leaf));
    }
}
