//! Edit-delta incremental points-to: solve program edits, not programs.
//!
//! [`IncrementalPta`] owns a resident delta solver whose state survives
//! across program edits. Pure additions reuse the old/delta split directly:
//! the new constraints are registered against the already-solved state and
//! the worklist drains only what the edit disturbs. Edits that can *retract*
//! facts (statement removal or replacement, method removal, method addition
//! that changes virtual dispatch) run deletion-then-rederive: a joint
//! fixpoint finds the set of nodes whose facts may depend on a retracted
//! derivation (`dirty`) together with the set of method instances still
//! provably reachable (`live`), the dirty facts and the whole constraint
//! structure are dropped, live bodies are re-registered in a non-propagating
//! rebuild mode, and a single boundary scan re-seeds propagation from every
//! surviving fact into the rebuilt edges. Clean facts — the vast majority
//! for a local edit — are never recomputed, only re-pushed one hop.
//!
//! Correctness leans on three invariants, checked by the oracle tests at the
//! bottom of this file (incremental state vs. a from-scratch reference solve,
//! byte-identical after [`LocTable`] canonicalization):
//!
//! 1. *Dirty closure soundness*: any node whose fixpoint value can shrink is
//!    forward-reachable (over copy, load, store, and dispatch edges of the
//!    pre-edit structure) from a seed of the edit, so clearing the dirty set
//!    and re-deriving reaches the true fixpoint from below.
//! 2. *Liveness under-approximation is safe*: an instance not proven live is
//!    only suspended, never forgotten — if re-derived dispatch reaches it
//!    during the drain, [`Solver::instance`] revives it and re-registers its
//!    body against the current program.
//! 3. *Dead locations cannot re-derive*: each abstract location has a unique
//!    creating instance, so a location whose allocation site was removed (or
//!    whose creator is suspended) only ever appears in dirty sets, and the
//!    live-location snapshot taken by [`IncrementalPta::result`] drops it
//!    from the exported table.

use std::collections::{HashMap, HashSet};

use tir::{AppliedEdit, Callee, CmdId, Command, MethodId, Operand, Program};

use crate::analysis::{Ctx, InstId, NodeId, NodeKind, PtaOptions, Solver, SolverKind};
use crate::bitset::BitSet;
use crate::context::ContextPolicy;
use crate::loc::{AbsLoc, LocId, LocTable};
use crate::result::PtaResult;

/// Cost and impact telemetry for one [`IncrementalPta::apply_edits`] batch.
#[derive(Clone, Debug)]
pub struct EditSolveStats {
    /// Worklist pops spent solving this batch (comparable unit to a
    /// from-scratch solve's propagation count).
    pub propagations: u64,
    /// True if the batch took the deletion-then-rederive path; false for
    /// the pure-addition fast path.
    pub rebuilt: bool,
    /// Nodes whose facts were dropped and re-derived (0 on the fast path).
    pub dirty_nodes: usize,
    /// Total solver nodes after the batch (denominator for dirty ratio).
    pub total_nodes: usize,
    /// Method instances suspended after the batch.
    pub suspended_instances: usize,
    /// Methods whose points-to facts, call targets, or reachability may
    /// have changed — the invalidation set for downstream fingerprint
    /// caches. Sorted and deduplicated.
    pub changed_methods: Vec<MethodId>,
}

/// A resident points-to analysis that accepts program edits.
pub struct IncrementalPta {
    solver: Solver,
}

impl IncrementalPta {
    /// Solves `program` from scratch (delta engine) and retains the state.
    ///
    /// # Panics
    ///
    /// Panics if `program` has no entry method.
    pub fn new(program: &Program, policy: ContextPolicy, options: &PtaOptions) -> Self {
        let mut solver = Solver::new(policy);
        solver.options = PtaOptions { solver: SolverKind::Delta, ..options.clone() };
        solver.solve(program, program.entry());
        IncrementalPta { solver }
    }

    /// Worklist pops performed over the lifetime of this solver.
    pub fn propagations(&self) -> u64 {
        self.solver.propagations
    }

    /// Read access to the resident solver state, for the demand-query tier
    /// ([`crate::DemandPta`]) to index the solved constraint graph.
    pub(crate) fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Snapshots the current fixpoint as a [`PtaResult`].
    ///
    /// Abstract locations whose creating instance is suspended (or whose
    /// allocation site was edited away) are dropped from the exported
    /// table, so the result is indistinguishable from a from-scratch solve
    /// of the current program.
    pub fn result(&self, program: &Program) -> PtaResult {
        let live = self.live_loc_table(program);
        let result = self.solver.build_result(program, Some(live));
        result.check_types(program);
        result
    }

    /// Incorporates an already-applied edit batch into the fixpoint.
    ///
    /// `program` must be the *post-edit* program and `applied` the receipt
    /// returned by [`tir::apply_edits`] for this batch. Batches must be
    /// applied in order; the solver state always mirrors exactly one
    /// program version.
    pub fn apply_edits(&mut self, program: &Program, applied: &[AppliedEdit]) -> EditSolveStats {
        let _span = obs::span(obs::SpanKind::Pta, "incremental edit solve");
        let start_props = self.solver.propagations;
        let pre_suspended: HashSet<InstId> = self.solver.suspended.clone();
        let old_call_edges = self.solver.call_edges.clone();
        self.solver.drain_log = Some(Vec::new());
        self.solver.drain_log_floor = 0;

        let needs_rebuild = applied.iter().any(|e| match e {
            AppliedEdit::AddedCmd { .. } | AppliedEdit::AddedVar { .. } => false,
            // Adding a method only retracts facts if it can capture an
            // already-performed virtual dispatch (override hazard). A name
            // no pending virtual call mentions cannot.
            AppliedEdit::AddedMethod { method, .. } => {
                let name = &program.method(*method).name;
                self.solver.calls.iter().any(|c| c.fixed_target.is_none() && &c.method_name == name)
            }
            _ => true,
        });

        let mut changed: HashSet<MethodId> = applied.iter().map(edited_method).collect();
        let dirty_nodes = if needs_rebuild {
            self.rebuild(program, applied, &mut changed)
        } else {
            self.apply_additions(program, applied);
            0
        };

        // Facts that grew are visible as drain pops; facts that shrank are
        // visible as dirty nodes (folded into `changed` inside `rebuild` —
        // a rederived-to-smaller or rederived-to-empty set never reaches
        // the drain log). Either way a Var/Ret node names the owning
        // method.
        let log = self.solver.drain_log.take().unwrap_or_default();
        let popped: HashSet<usize> =
            log.iter().map(|n| self.solver.find_read(n.0 as usize)).collect();
        for (idx, kind) in self.solver.nodes.iter().enumerate() {
            if !popped.contains(&self.solver.find_read(idx)) {
                continue;
            }
            if let NodeKind::Var(i, _) | NodeKind::Ret(i) = kind {
                changed.insert(self.solver.insts[i.0 as usize].0);
            }
        }
        // A method whose call targets changed re-fingerprints even if its
        // local facts did not (the slice hash covers callee names).
        for &(cmd, _) in old_call_edges.symmetric_difference(&self.solver.call_edges) {
            changed.insert(program.cmd_method(cmd));
        }
        // Reachability flips invalidate too (a method leaving the reached
        // set must not warm-hit as if still analyzed).
        for i in 0..self.solver.insts.len() {
            let inst = InstId(i as u32);
            if pre_suspended.contains(&inst) != self.solver.suspended.contains(&inst) {
                changed.insert(self.solver.insts[i].0);
            }
        }
        let mut changed_methods: Vec<MethodId> = changed.into_iter().collect();
        changed_methods.sort_by_key(|m| m.index());

        EditSolveStats {
            propagations: self.solver.propagations - start_props,
            rebuilt: needs_rebuild,
            dirty_nodes,
            total_nodes: self.solver.nodes.len(),
            suspended_instances: self.solver.suspended.len(),
            changed_methods,
        }
    }

    /// Pure-addition fast path: register the new constraints against the
    /// solved state and drain. Monotone, so no retraction machinery runs.
    fn apply_additions(&mut self, program: &Program, applied: &[AppliedEdit]) {
        // Snapshot instance lists up front: an added call can create new
        // instances mid-batch, and those self-register their (current,
        // fully edited) bodies — re-processing an added command for them
        // would double-register constraints.
        let mut insts_of: HashMap<MethodId, Vec<InstId>> = HashMap::new();
        for e in applied {
            if let AppliedEdit::AddedCmd { method, .. } = e {
                insts_of.entry(*method).or_insert_with(|| self.instances_of(*method));
            }
        }
        for e in applied {
            match e {
                AppliedEdit::AddedCmd { method, cmd } => {
                    let command = program.cmd(*cmd).clone();
                    for inst in insts_of[method].clone() {
                        self.solver.process_cmd(program, inst, *cmd, &command);
                    }
                }
                AppliedEdit::AddedVar { .. } | AppliedEdit::AddedMethod { .. } => {}
                _ => unreachable!("non-addition edit on the fast path"),
            }
        }
        self.solver.drain_delta(program);
    }

    /// Non-suspended instances of `method`, in creation order.
    fn instances_of(&self, method: MethodId) -> Vec<InstId> {
        (0..self.solver.insts.len())
            .map(|i| InstId(i as u32))
            .filter(|&i| {
                self.solver.insts[i.0 as usize].0 == method && !self.solver.suspended.contains(&i)
            })
            .collect()
    }

    /// Deletion-then-rederive. Returns the number of dirtied nodes.
    fn rebuild(
        &mut self,
        program: &Program,
        applied: &[AppliedEdit],
        changed: &mut HashSet<MethodId>,
    ) -> usize {
        let existing = self.solver.insts.len();
        let nnodes = self.solver.nodes.len();
        // Union-find groups are frozen during the closure (no collapsing
        // runs), so membership can be precomputed once.
        let mut members: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..nnodes {
            members.entry(self.solver.find_read(i)).or_default().push(i);
        }

        // --- Stage 1: seeds -------------------------------------------------
        let mut seeds: Vec<NodeId> = Vec::new();
        for e in applied {
            match e {
                AppliedEdit::RemovedCmd { method, cmd } => {
                    self.seed_removed_cmd(program, *method, *cmd, &mut seeds);
                }
                AppliedEdit::ReplacedCmd { method, old, .. } => {
                    self.seed_removed_cmd(program, *method, *old, &mut seeds);
                }
                // Removed methods need no command-level seeds: their
                // instances fall out of the live set below, and callers'
                // result variables are forward-reachable from the dead
                // instances' Ret nodes.
                _ => {}
            }
        }
        // Method-set changes can silently re-route already-performed
        // dispatches (an added override shadows, a removed override
        // exposes the super). Re-resolve every recorded dispatch and seed
        // the bindings whose target changed.
        let method_set_changed = applied.iter().any(|e| {
            matches!(e, AppliedEdit::AddedMethod { .. } | AppliedEdit::RemovedMethod { .. })
        });
        if method_set_changed {
            for ci in 0..self.solver.calls.len() {
                let dispatched = self.solver.calls[ci].dispatched.clone();
                for (lbit, inst) in dispatched {
                    let old_target = self.solver.insts[inst.0 as usize].0;
                    if self.solver.dispatch_target(program, ci, LocId(lbit as u32))
                        != Some(old_target)
                    {
                        self.seed_call_binding(program, ci, inst, &mut seeds);
                    }
                }
            }
        }

        // --- Stage 2: joint (dirty, live) fixpoint --------------------------
        let mut dirty = BitSet::new();
        let mut queue: Vec<usize> = Vec::new();
        for &s in &seeds {
            let r = self.solver.find_read(s.0 as usize);
            if dirty.insert(r) {
                queue.push(r);
            }
        }
        self.dirty_closure(program, &members, &mut dirty, &mut queue);
        let live = loop {
            let live = self.liveness(program, &dirty);
            let mut grew = false;
            for idx in 0..nnodes {
                let owner = match self.solver.nodes[idx] {
                    NodeKind::Var(i, _) | NodeKind::Ret(i) => i,
                    _ => continue,
                };
                if live.contains(owner.0 as usize) {
                    continue;
                }
                let r = self.solver.find_read(idx);
                if dirty.insert(r) {
                    queue.push(r);
                    grew = true;
                }
            }
            if !grew {
                break live;
            }
            self.dirty_closure(program, &members, &mut dirty, &mut queue);
        };
        let member_dirty: Vec<bool> =
            (0..nnodes).map(|i| dirty.contains(self.solver.find_read(i))).collect();
        let dirty_count = member_dirty.iter().filter(|&&d| d).count();
        // A dirty node's set may shrink — or empty out entirely, in which
        // case rederivation never re-pushes it and the drain log stays
        // silent. Charge every dirty Var/Ret node's owner to the changed
        // set here, where the dirty closure is still in hand.
        for (idx, kind) in self.solver.nodes.iter().enumerate() {
            if !member_dirty[idx] {
                continue;
            }
            if let NodeKind::Var(i, _) | NodeKind::Ret(i) = kind {
                changed.insert(self.solver.insts[i.0 as usize].0);
            }
        }

        // --- Stage 3: drop dirty facts, rebuild structure -------------------
        let s = &mut self.solver;
        for (i, &is_dirty) in member_dirty.iter().enumerate().take(nnodes) {
            let r = s.find_read(i);
            if is_dirty {
                s.pts[i] = BitSet::new();
            } else if r != i {
                // Clean collapsed members resume life as ordinary nodes
                // carrying their representative's (final, correct) set.
                s.pts[i] = s.pts[r].clone();
            }
            debug_assert!(s.delta[i].is_empty(), "edit applied mid-drain");
            s.delta[i] = BitSet::new();
            s.copy_succs[i].clear();
            s.loads[i].clear();
            s.stores[i].clear();
            s.recv_calls[i].clear();
            s.parent[i] = i as u32;
        }
        s.calls.clear();
        s.lcd_attempted.clear();
        s.call_edges.clear();
        s.worklist.clear();
        s.reached_methods = BitSet::new();
        for i in 0..existing {
            let inst = InstId(i as u32);
            if live.contains(i) {
                s.suspended.remove(&inst);
                s.reached_methods.insert(s.insts[i].0.index());
            } else {
                s.suspended.insert(inst);
            }
        }
        s.rebuilding = true;
        for i in 0..existing {
            let inst = InstId(i as u32);
            if !s.suspended.contains(&inst) {
                s.process_body(program, inst);
            }
            // Instances created during the rebuild (fresh dispatch
            // targets) register their own bodies inside `instance`.
        }
        s.rebuilding = false;

        // --- Stage 4: boundary scan + drain ---------------------------------
        // Every surviving fact is pushed one hop into the rebuilt edges;
        // clean targets absorb them as no-ops, dirty targets re-derive.
        for i in 0..s.nodes.len() {
            if s.pts[i].is_empty() || s.copy_succs[i].is_empty() {
                continue;
            }
            let bits = s.pts[i].clone();
            let succs = s.copy_succs[i].clone();
            for t in succs {
                s.push_delta(t, &bits);
            }
        }
        s.drain_delta(program);
        debug_assert!(s.delta.iter().all(BitSet::is_empty));
        dirty_count
    }

    /// Seeds for retracting one unlinked (but still readable) command.
    fn seed_removed_cmd(
        &self,
        program: &Program,
        method: MethodId,
        cmd: CmdId,
        seeds: &mut Vec<NodeId>,
    ) {
        let s = &self.solver;
        let insts: Vec<InstId> = (0..s.insts.len())
            .map(|i| InstId(i as u32))
            .filter(|&i| s.insts[i.0 as usize].0 == method)
            .collect();
        let var_seed = |seeds: &mut Vec<NodeId>, inst: InstId, v| {
            if let Some(&n) = s.node_index.get(&NodeKind::Var(inst, v)) {
                seeds.push(n);
            }
        };
        let field_seeds = |seeds: &mut Vec<NodeId>, base, field| {
            for &inst in &insts {
                let Some(&b) = s.node_index.get(&NodeKind::Var(inst, base)) else { continue };
                for l in s.pts[s.find_read(b.0 as usize)].iter() {
                    if let Some(&f) = s.node_index.get(&NodeKind::Field(LocId(l as u32), field)) {
                        seeds.push(f);
                    }
                }
            }
        };
        match program.cmd(cmd) {
            Command::WriteField { obj, field, .. } => field_seeds(seeds, *obj, *field),
            Command::WriteArray { arr, .. } => field_seeds(seeds, *arr, program.contents_field),
            Command::WriteGlobal { global, .. } => {
                if let Some(&n) = s.node_index.get(&NodeKind::Global(*global)) {
                    seeds.push(n);
                }
            }
            Command::Return { val: Some(Operand::Var(_)) } => {
                for &inst in &insts {
                    if let Some(&n) = s.node_index.get(&NodeKind::Ret(inst)) {
                        seeds.push(n);
                    }
                }
            }
            Command::Call { dst, callee, .. } => {
                match callee {
                    Callee::Static { method: callee_m }
                        if program.method(*callee_m).class.is_none() =>
                    {
                        // Free function: one instance per (policy) context.
                        let ctx =
                            if s.policy.call_site_sensitive() { Ctx::Site(cmd) } else { Ctx::None };
                        if let Some(&ci) = s.inst_index.get(&(*callee_m, ctx)) {
                            for &p in &program.method(*callee_m).params {
                                var_seed(seeds, ci, p);
                            }
                        }
                        if let Some(d) = dst {
                            for &inst in &insts {
                                var_seed(seeds, inst, *d);
                            }
                        }
                    }
                    _ => {
                        // Receiver-indexed: one RecvCall per caller
                        // instance; its dispatch record names every
                        // binding this site ever created.
                        for ci in 0..s.calls.len() {
                            if s.calls[ci].cmd != cmd {
                                continue;
                            }
                            for &(_, inst) in &s.calls[ci].dispatched {
                                self.seed_call_binding(program, ci, inst, seeds);
                            }
                        }
                    }
                }
            }
            other => {
                if let Some(d) = other.def() {
                    for &inst in &insts {
                        var_seed(seeds, inst, d);
                    }
                }
            }
        }
    }

    /// Seeds the nodes wired by `bind_call` for one (call, callee instance)
    /// binding: callee formals (including `this`) and the caller's result
    /// variable.
    fn seed_call_binding(
        &self,
        program: &Program,
        ci: usize,
        callee_inst: InstId,
        seeds: &mut Vec<NodeId>,
    ) {
        let s = &self.solver;
        let callee_m = s.insts[callee_inst.0 as usize].0;
        for &p in &program.method(callee_m).params {
            if let Some(&n) = s.node_index.get(&NodeKind::Var(callee_inst, p)) {
                seeds.push(n);
            }
        }
        let call = &s.calls[ci];
        if let Some(d) = call.dst {
            if let Some(&n) = s.node_index.get(&NodeKind::Var(call.caller, d)) {
                seeds.push(n);
            }
        }
    }

    /// Forward closure of `dirty` over the pre-edit constraint structure:
    /// anything a dirty node's facts flowed into may shrink.
    fn dirty_closure(
        &self,
        program: &Program,
        members: &HashMap<usize, Vec<usize>>,
        dirty: &mut BitSet,
        queue: &mut Vec<usize>,
    ) {
        let s = &self.solver;
        let mark = |dirty: &mut BitSet, queue: &mut Vec<usize>, n: NodeId| {
            let r = s.find_read(n.0 as usize);
            if dirty.insert(r) {
                queue.push(r);
            }
        };
        while let Some(r) = queue.pop() {
            // Constraint lists may live on any member of a collapsed group
            // (merge moves them to the representative, but scanning all
            // members is correct regardless and immune to merge policy).
            for &m in members.get(&r).map(Vec::as_slice).unwrap_or(&[]) {
                for &t in &s.copy_succs[m] {
                    mark(dirty, queue, t);
                }
                for &(_, dst) in &s.loads[m] {
                    mark(dirty, queue, dst);
                }
                for &(f, _) in &s.stores[m] {
                    // The derived edges src → (l.f) vanish when the base
                    // loses l; the field nodes must re-derive.
                    for l in s.pts[r].iter() {
                        if let Some(&fnode) = s.node_index.get(&NodeKind::Field(LocId(l as u32), f))
                        {
                            mark(dirty, queue, fnode);
                        }
                    }
                }
                for &ci in &s.recv_calls[m] {
                    for &(_, inst) in &s.calls[ci].dispatched {
                        let callee_m = s.insts[inst.0 as usize].0;
                        for &p in &program.method(callee_m).params {
                            if let Some(&n) = s.node_index.get(&NodeKind::Var(inst, p)) {
                                mark(dirty, queue, n);
                            }
                        }
                        if let Some(d) = s.calls[ci].dst {
                            if let Some(&n) =
                                s.node_index.get(&NodeKind::Var(s.calls[ci].caller, d))
                            {
                                mark(dirty, queue, n);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Instances provably reachable from the entry through the *current*
    /// program, trusting only dispatch through clean receivers. An
    /// under-approximation: anything missed is suspended, and revived on
    /// demand if the drain re-derives a dispatch to it.
    fn liveness(&self, program: &Program, dirty: &BitSet) -> BitSet {
        let s = &self.solver;
        let mut live = BitSet::new();
        let entry = s.inst_index[&(program.entry(), Ctx::None)];
        let mut stack = vec![entry];
        live.insert(entry.0 as usize);
        while let Some(inst) = stack.pop() {
            let method = s.insts[inst.0 as usize].0;
            if program.method(method).removed {
                continue;
            }
            for cmd_id in program.method_cmds(method) {
                let Command::Call { callee, args, .. } = program.cmd(cmd_id) else { continue };
                let visit = |i2: InstId, live: &mut BitSet, stack: &mut Vec<InstId>| {
                    if live.insert(i2.0 as usize) {
                        stack.push(i2);
                    }
                };
                let recv_var = match callee {
                    Callee::Static { method: m2 } if program.method(*m2).class.is_none() => {
                        let ctx = if s.policy.call_site_sensitive() {
                            Ctx::Site(cmd_id)
                        } else {
                            Ctx::None
                        };
                        if let Some(&i2) = s.inst_index.get(&(*m2, ctx)) {
                            visit(i2, &mut live, &mut stack);
                        }
                        continue;
                    }
                    Callee::Static { .. } => match args.first() {
                        Some(Operand::Var(v)) => *v,
                        _ => continue,
                    },
                    Callee::Virtual { receiver, .. } => *receiver,
                };
                let Some(&rnode) = s.node_index.get(&NodeKind::Var(inst, recv_var)) else {
                    continue;
                };
                let r = s.find_read(rnode.0 as usize);
                if dirty.contains(r) {
                    continue; // receiver uncertain: let the drain decide
                }
                for l in s.pts[r].iter() {
                    let lid = LocId(l as u32);
                    let class = s.locs.class_of(lid, program);
                    let target = match callee {
                        Callee::Virtual { method: name, .. } => program.resolve_method(class, name),
                        Callee::Static { method: m2 } => {
                            let tc = program.method(*m2).class.expect("instance method");
                            program.is_subclass(class, tc).then_some(*m2)
                        }
                    };
                    let Some(t) = target else { continue };
                    let ctx = s.callee_ctx(program, t, lid, cmd_id);
                    if let Some(&i2) = s.inst_index.get(&(t, ctx)) {
                        visit(i2, &mut live, &mut stack);
                    }
                }
            }
        }
        live
    }

    /// Builds the fresh location table containing exactly the locations
    /// allocated by live instances, plus the old→fresh mapping.
    ///
    /// Safe to build in ascending instance order: every location has a
    /// unique creating instance, and a location used as a context
    /// qualifier was interned (by its creator) before any instance keyed
    /// on it existed — so the qualifier's fresh id is always available.
    pub(crate) fn live_loc_table(&self, program: &Program) -> (LocTable, Vec<Option<LocId>>) {
        let s = &self.solver;
        let mut table = LocTable::new();
        let mut map: Vec<Option<LocId>> = vec![None; s.locs.len()];
        for i in 0..s.insts.len() {
            let inst = InstId(i as u32);
            if s.suspended.contains(&inst) {
                continue;
            }
            let (method, _) = s.insts[i];
            if program.method(method).removed {
                continue;
            }
            let qual = s.alloc_qualifier(program, inst);
            for cmd_id in program.method_cmds(method) {
                let alloc = match program.cmd(cmd_id) {
                    Command::New { alloc, .. } | Command::NewArray { alloc, .. } => *alloc,
                    _ => continue,
                };
                let old = s
                    .locs
                    .lookup(AbsLoc { alloc, ctx: qual })
                    .expect("live instance's allocation was never interned");
                if map[old.index()].is_some() {
                    continue;
                }
                let fresh_ctx =
                    qual.map(|q| map[q.index()].expect("qualifier interned before dependent"));
                map[old.index()] = Some(table.intern(AbsLoc { alloc, ctx: fresh_ctx }));
            }
        }
        (table, map)
    }
}

/// The method named by an applied edit (for the changed-method set).
fn edited_method(e: &AppliedEdit) -> MethodId {
    match e {
        AppliedEdit::AddedCmd { method, .. }
        | AppliedEdit::ReplacedCmd { method, .. }
        | AppliedEdit::RemovedCmd { method, .. }
        | AppliedEdit::AddedVar { method, .. }
        | AppliedEdit::AddedMethod { method, .. }
        | AppliedEdit::RemovedMethod { method, .. } => *method,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_with;
    use crate::result::canonical_text;
    use tir::{apply_edits, EditOp};

    fn policies() -> Vec<ContextPolicy> {
        vec![
            ContextPolicy::Insensitive,
            ContextPolicy::ObjectSensitive { max_depth: 2 },
            ContextPolicy::CallSiteSensitive,
        ]
    }

    /// Applies each edit batch in sequence and, after every batch, checks
    /// the incremental state byte-for-byte against a from-scratch solve by
    /// the reference engine — under every context policy.
    fn check_oracle(src: &str, batches: &[Vec<EditOp>]) {
        for policy in policies() {
            let mut program = tir::parse(src).expect("test program parses");
            let options = PtaOptions::default();
            let reference = PtaOptions { solver: SolverKind::Reference, ..Default::default() };
            let mut inc = IncrementalPta::new(&program, policy.clone(), &options);
            assert_eq!(
                canonical_text(&program, &inc.result(&program)),
                canonical_text(&program, &analyze_with(&program, policy.clone(), &reference)),
                "initial state diverges under {policy:?}"
            );
            for (bi, batch) in batches.iter().enumerate() {
                let applied = apply_edits(&mut program, batch)
                    .unwrap_or_else(|e| panic!("batch {bi} rejected: {}", e.message));
                inc.apply_edits(&program, &applied);
                let got = canonical_text(&program, &inc.result(&program));
                let want =
                    canonical_text(&program, &analyze_with(&program, policy.clone(), &reference));
                assert_eq!(got, want, "batch {bi} diverges under {policy:?}");
            }
        }
    }

    fn add(method: &str, at: usize, text: &str) -> EditOp {
        EditOp::AddStmt { method: method.into(), at, text: text.into() }
    }

    fn replace(method: &str, at: usize, text: &str) -> EditOp {
        EditOp::ReplaceStmt { method: method.into(), at, text: text.into() }
    }

    fn remove(method: &str, at: usize) -> EditOp {
        EditOp::RemoveStmt { method: method.into(), at }
    }

    // main's command ordinals: 0 `a = new A @a0`, 1 `o = new Object @o0`,
    // 2 `call a.set(o)`, 3 `r = call a.get()`, 4 `return`.
    const BASE: &str = r#"
class A {
  field f: Object;
  method get(this: A): Object {
    var r: Object;
    r = this.f;
    return r;
  }
  method set(this: A, v: Object) {
    this.f = v;
    return;
  }
}
class B extends A {
  method get(this: B): Object {
    var o: Object;
    o = new Object @bobj;
    return o;
  }
}
fn main() {
  var a: A;
  var o: Object;
  var r: Object;
  a = new A @a0;
  o = new Object @o0;
  call a.set(o);
  r = call a.get();
  return;
}
entry main;
"#;

    #[test]
    fn add_statement_takes_fast_path() {
        for policy in policies() {
            let mut program = tir::parse(BASE).unwrap();
            let mut inc = IncrementalPta::new(&program, policy, &PtaOptions::default());
            let applied =
                apply_edits(&mut program, &[add("main", 2, "o = new Object @o1;")]).unwrap();
            let stats = inc.apply_edits(&program, &applied);
            assert!(!stats.rebuilt, "pure addition must not rebuild");
            assert_eq!(stats.dirty_nodes, 0);
        }
        check_oracle(BASE, &[vec![add("main", 2, "o = new Object @o1;")]]);
    }

    #[test]
    fn remove_statement_rederives() {
        let mut program = tir::parse(BASE).unwrap();
        let mut inc =
            IncrementalPta::new(&program, ContextPolicy::Insensitive, &PtaOptions::default());
        // Remove `call a.set(o)`: the heap edge a0.f -> o0 (and hence
        // get()'s result) must be retracted.
        let applied = apply_edits(&mut program, &[remove("main", 2)]).unwrap();
        let stats = inc.apply_edits(&program, &applied);
        assert!(stats.rebuilt);
        assert!(stats.dirty_nodes > 0);
        let got = canonical_text(&program, &inc.result(&program));
        let reference = PtaOptions { solver: SolverKind::Reference, ..Default::default() };
        let want = canonical_text(
            &program,
            &analyze_with(&program, ContextPolicy::Insensitive, &reference),
        );
        assert_eq!(got, want);
        assert!(!got.contains("a0.f"), "retracted store left a heap edge:\n{got}");
    }

    #[test]
    fn edit_sequences_match_reference() {
        check_oracle(
            BASE,
            &[
                // Route the store through a second receiver as well.
                vec![
                    add("main", 2, "var a2: A;"),
                    add("main", 2, "a2 = new A @a1;"),
                    add("main", 3, "call a2.set(o);"),
                ],
                // Remove the original store; a0.f must empty while a1.f stays.
                vec![remove("main", 4)],
                // Swap the dispatch receiver's class: get() resolves to B.get.
                vec![replace("main", 0, "a = new B @ab;")],
            ],
        );
    }

    #[test]
    fn scc_split_removal_matches_reference() {
        // x, y, z form a copy cycle the delta solver collapses; removing
        // one edge splits the SCC and must un-merge the facts: afterwards
        // z still sees both objects but x and y only the first.
        let src = r#"
fn main() {
  var x: Object;
  var y: Object;
  var z: Object;
  var w: Object;
  x = new Object @w0;
  loop {
    y = x;
    z = y;
    x = z;
    choice {
      w = new Object @w1;
      z = w;
    } or {
    }
  }
  return;
}
entry main;
"#;
        // Ordinals: 0 new@w0, 1 y=x, 2 z=y, 3 x=z, 4 new@w1, 5 z=w.
        check_oracle(src, &[vec![remove("main", 3)]]);
    }

    #[test]
    fn method_addition_changes_dispatch() {
        // B has no set() override initially; adding one must re-route the
        // already-performed dispatch of `call b.set(o)`.
        let src = r#"
class A {
  field f: Object;
  method set(this: A, v: Object) {
    this.f = v;
    return;
  }
}
class B extends A {
}
global sink: Object;
fn main() {
  var b: B;
  var o: Object;
  b = new B @b0;
  o = new Object @o0;
  call b.set(o);
  return;
}
entry main;
"#;
        check_oracle(
            src,
            &[vec![EditOp::AddMethod {
                class: Some("B".into()),
                text: "method set(this: B, v: Object) {\n  $sink = v;\n  return;\n}".into(),
            }]],
        );
    }

    #[test]
    fn method_removal_falls_back_to_super() {
        check_oracle(
            BASE,
            &[
                // main's receiver becomes a B, dispatching B.get.
                vec![replace("main", 0, "a = new B @ab;")],
                // Removing the override exposes A.get again.
                vec![EditOp::RemoveMethod { method: "B.get".into() }],
            ],
        );
    }

    #[test]
    fn suspension_and_revival_round_trip() {
        check_oracle(
            BASE,
            &[
                // Removing the only call to get() suspends its instance...
                vec![remove("main", 3)],
                // ...and re-adding an equivalent call must revive it exactly.
                vec![add("main", 3, "r = call a.get();")],
            ],
        );
    }

    #[test]
    fn edit_solve_is_cheaper_than_scratch() {
        // On a program with many untouched sibling methods, an edit local
        // to main must not re-propagate the siblings' facts.
        let mut src = String::from("class A {\n  field f: Object;\n");
        for i in 0..30 {
            src.push_str(&format!(
                "  method m{i}(this: A): Object {{\n    var o: Object;\n    var r: Object;\n    o = new Object @s{i};\n    this.f = o;\n    r = this.f;\n    return r;\n  }}\n"
            ));
        }
        src.push_str("}\nfn main() {\n  var a: A;\n  var r: Object;\n  a = new A @a0;\n");
        for i in 0..30 {
            src.push_str(&format!("  r = call a.m{i}();\n"));
        }
        src.push_str("  return;\n}\nentry main;\n");
        let mut program = tir::parse(&src).unwrap();
        let mut inc =
            IncrementalPta::new(&program, ContextPolicy::Insensitive, &PtaOptions::default());
        let scratch = inc.propagations();
        let applied = apply_edits(&mut program, &[add("main", 1, "r = call a.m0();")]).unwrap();
        let stats = inc.apply_edits(&program, &applied);
        assert!(
            stats.propagations * 4 <= scratch,
            "edit cost {} vs scratch {} exceeds 25%",
            stats.propagations,
            scratch
        );
    }

    #[test]
    fn drain_log_cap_compacts_without_changing_answers() {
        // A tiny cap forces mid-drain compactions; the edit solve must
        // still match the reference byte for byte and still charge the
        // edited method to the changed set (the log is only ever read as a
        // representative-resolved set, so compaction is invisible).
        let _serial = obs::test_lock();
        let rec = obs::MemRecorder::install_static(obs::RingCapacity::default());
        rec.reset();
        let mut program = tir::parse(BASE).unwrap();
        let options = PtaOptions { drain_log_cap: 2, ..PtaOptions::default() };
        let mut inc = IncrementalPta::new(&program, ContextPolicy::Insensitive, &options);
        // An added allocation flows o → set.v → a0.f → get.r → main.r:
        // several drain pops, comfortably past the cap of 2.
        let applied =
            apply_edits(&mut program, &[add("main", 2, "o = new Object @o1;")]).unwrap();
        let stats = inc.apply_edits(&program, &applied);
        assert!(
            rec.counter(obs::Counter::PtaDrainlogCompactions) > 0,
            "cap 2 never triggered a compaction"
        );
        let names: Vec<String> =
            stats.changed_methods.iter().map(|&m| program.method_name(m)).collect();
        assert!(names.iter().any(|n| n == "main"), "compacted log lost main: {names:?}");
        let reference = PtaOptions { solver: SolverKind::Reference, ..Default::default() };
        assert_eq!(
            canonical_text(&program, &inc.result(&program)),
            canonical_text(
                &program,
                &analyze_with(&program, ContextPolicy::Insensitive, &reference)
            ),
            "compaction changed the fixpoint"
        );
        obs::uninstall();
    }

    #[test]
    fn changed_methods_are_tight() {
        let mut program = tir::parse(BASE).unwrap();
        let mut inc =
            IncrementalPta::new(&program, ContextPolicy::Insensitive, &PtaOptions::default());
        let applied = apply_edits(&mut program, &[remove("main", 2)]).unwrap();
        let stats = inc.apply_edits(&program, &applied);
        let names: Vec<String> =
            stats.changed_methods.iter().map(|&m| program.method_name(m)).collect();
        assert!(names.iter().any(|n| n == "main"), "edited method missing from {names:?}");
        // B.get is never reached; removing main's store cannot touch it.
        assert!(!names.iter().any(|n| n == "B.get"), "unaffected method invalidated: {names:?}");
    }
}
