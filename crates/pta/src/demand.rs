//! Demand-driven points-to queries: O(query) slices of the points-to
//! graph via CFL-reachability over the solved constraint graph.
//!
//! The exhaustive solver ([`crate::analyze_with`]) computes `pt(n)` for
//! every node. A refutation query, however, touches one alarm edge — one
//! source global, one sink location — and reads only the facts on the
//! heap paths between them. [`DemandPta`] answers such a query by
//! traversing the *solved* constraint graph backwards from the queried
//! node: at fixpoint every complex constraint (field read/write, dynamic
//! dispatch) has been materialized into plain copy edges through
//! `Field(loc, f)` nodes, so the balanced field-read/field-write paths of
//! CFL-reachability (`flowsTo` / `flowsTo-bar`) degenerate to plain
//! reverse reachability over copy edges, and
//!
//! ```text
//!   pt(n) = ⋃ { seeds(m) : m →* n over copy edges }
//! ```
//!
//! where `seeds(m)` are the allocation-site locations injected at `m` by
//! `new` commands and dispatch `this`-bindings. A query explores only the
//! backward cone of its node — the *slice* — and the forward heap closure
//! of the resulting targets, typically a small fraction of the graph.
//!
//! Three guarantees, in decreasing order of strength:
//!
//! * **Exactness is enforced, not assumed.** Every demand-computed fact is
//!   gated against the resident exhaustive result (the *oracle*) before
//!   publication: on any mismatch the oracle's value is published and a
//!   drift counter ticks ([`obs::Counter::PtaDemandDrift`]). A demand
//!   answer is therefore byte-identical to the exhaustive answer on every
//!   queried fact, unconditionally.
//! * **Budgeted exploration.** A query that traverses more than
//!   [`PtaOptions::demand_budget`](crate::PtaOptions) representatives
//!   abandons the slice and falls back to pure oracle delegation
//!   ([`PartialPtaResult`] in fallback mode) — recorded, never wrong.
//! * **Out-of-slice resolution.** The engine consuming a
//!   [`PartialPtaResult`] may ask for facts outside the slice (transfer
//!   functions walk arbitrary code); those resolve against the oracle and
//!   are counted ([`PartialPtaResult::resolutions`]).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tir::{AllocId, ClassId, CmdId, Command, FieldId, GlobalId, MethodId, Operand, Program, VarId};

use crate::analysis::{NodeKind, PtaOptions, Solver, SolverKind};
use crate::bitset::BitSet;
use crate::context::ContextPolicy;
use crate::incremental::IncrementalPta;
use crate::loc::{AbsLoc, LocId, LocTable};
use crate::result::{HeapEdge, PtaResult};
use crate::view::PtaView;

/// Element-wise set equality. `BitSet`'s derived `Eq` is unusable here:
/// word vectors may differ by trailing zero words.
fn same_set(a: &BitSet, b: &BitSet) -> bool {
    a.is_subset(b) && b.is_subset(a)
}

/// Accounting for one demand query.
#[derive(Clone, Copy, Debug, Default)]
pub struct DemandQueryStats {
    /// Constraint-graph representatives traversed (first visits only).
    pub nodes_touched: u64,
    /// `nodes_touched` over the total representative count — the fraction
    /// of the constraint graph this query needed.
    pub slice_fraction: f64,
    /// True if the exploration budget ran out and the answer is pure
    /// oracle delegation.
    pub fallback: bool,
    /// Demand-computed facts that disagreed with the oracle and were
    /// replaced by it. Zero on a from-scratch fixpoint.
    pub drift: u64,
    /// True if a previously-computed slice was revalidated and reused.
    pub cache_hit: bool,
}

/// Lifetime aggregate over every query answered by one [`DemandPta`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DemandStats {
    /// Queries answered.
    pub queries: u64,
    /// Queries that fell back to the exhaustive result.
    pub fallbacks: u64,
    /// Gated facts replaced by the oracle.
    pub drift: u64,
    /// Representatives traversed, summed over queries.
    pub nodes_touched: u64,
    /// Sum of per-query slice fractions (mean = sum / queries).
    pub slice_fraction_sum: f64,
    /// Queries answered from the slice cache.
    pub cache_hits: u64,
}

impl DemandStats {
    /// Mean per-query slice fraction; 0 before the first query.
    pub fn mean_slice_fraction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.slice_fraction_sum / self.queries as f64
        }
    }
}

/// A query-relevant slice of the points-to graph, backed by the resident
/// exhaustive result for everything outside the slice.
///
/// Implements [`PtaView`], so the refutation engine runs on it unchanged.
/// In-slice lookups (the queried global, closed heap cells, producer
/// lists, and the variables the producer pass resolved) are served from
/// demand-computed — oracle-gated — data; everything else delegates to the
/// oracle and bumps [`Self::resolutions`]. Call-graph and location-table
/// accessors delegate wholesale: they are byproducts of the resident solve
/// and carry no per-query cost.
pub struct PartialPtaResult {
    oracle: Arc<PtaResult>,
    global: GlobalId,
    global_pt: BitSet,
    heap: HashMap<(LocId, FieldId), BitSet>,
    /// Locations whose *every* field cell is materialized in `heap`; a
    /// missing cell for a closed base means provably-empty, not
    /// out-of-slice.
    closed_locs: BitSet,
    var_pt: HashMap<VarId, BitSet>,
    producers: HashMap<HeapEdge, Vec<CmdId>>,
    fallback: bool,
    resolutions: AtomicU64,
    empty: BitSet,
}

impl PartialPtaResult {
    fn pure_fallback(oracle: Arc<PtaResult>, global: GlobalId) -> Self {
        PartialPtaResult {
            global_pt: oracle.pt_global(global).clone(),
            oracle,
            global,
            heap: HashMap::new(),
            closed_locs: BitSet::new(),
            var_pt: HashMap::new(),
            producers: HashMap::new(),
            fallback: true,
            resolutions: AtomicU64::new(0),
            empty: BitSet::new(),
        }
    }

    /// The exhaustive result backing out-of-slice lookups.
    pub fn oracle(&self) -> &Arc<PtaResult> {
        &self.oracle
    }

    /// The global this slice was computed for.
    pub fn queried_global(&self) -> GlobalId {
        self.global
    }

    /// True if the budget ran out and every lookup delegates.
    pub fn is_fallback(&self) -> bool {
        self.fallback
    }

    /// Out-of-slice lookups resolved against the oracle so far.
    pub fn resolutions(&self) -> u64 {
        self.resolutions.load(Ordering::Relaxed)
    }

    /// Number of heap edges materialized in the slice.
    pub fn slice_edges(&self) -> usize {
        self.heap.values().map(BitSet::len).sum::<usize>() + self.global_pt.len()
    }

    /// Locations whose outgoing field cells are fully materialized.
    pub fn closed_locs(&self) -> &BitSet {
        &self.closed_locs
    }

    fn count_resolution(&self) {
        self.resolutions.fetch_add(1, Ordering::Relaxed);
    }
}

impl PtaView for PartialPtaResult {
    fn pt_var(&self, v: VarId) -> &BitSet {
        if !self.fallback {
            if let Some(pt) = self.var_pt.get(&v) {
                return pt;
            }
        }
        self.count_resolution();
        self.oracle.pt_var(v)
    }

    fn pt_global(&self, g: GlobalId) -> &BitSet {
        if g == self.global {
            return &self.global_pt;
        }
        self.count_resolution();
        self.oracle.pt_global(g)
    }

    fn pt_field(&self, base: LocId, f: FieldId) -> &BitSet {
        if !self.fallback && self.closed_locs.contains(base.index()) {
            return self.heap.get(&(base, f)).unwrap_or(&self.empty);
        }
        self.count_resolution();
        self.oracle.pt_field(base, f)
    }

    fn heap_rows(&self) -> Vec<(LocId, FieldId, &BitSet)> {
        if self.fallback {
            return self.oracle.heap_rows();
        }
        self.heap.iter().map(|(&(l, f), t)| (l, f, t)).collect()
    }

    fn producers(&self, edge: &HeapEdge) -> &[CmdId] {
        if !self.fallback {
            let in_slice = match edge {
                HeapEdge::Global { global, .. } => *global == self.global,
                HeapEdge::Field { base, .. } => self.closed_locs.contains(base.index()),
            };
            if in_slice {
                return self.producers.get(edge).map(Vec::as_slice).unwrap_or(&[]);
            }
        }
        self.count_resolution();
        self.oracle.producers(edge)
    }

    fn call_targets(&self, cmd: CmdId) -> &[MethodId] {
        self.oracle.call_targets(cmd)
    }

    fn callers(&self, m: MethodId) -> &[CmdId] {
        self.oracle.callers(m)
    }

    fn is_reached(&self, m: MethodId) -> bool {
        self.oracle.is_reached(m)
    }

    fn class_of(&self, l: LocId) -> ClassId {
        self.oracle.class_of(l)
    }

    fn locs_of_class(&self, program: &Program, base: ClassId) -> BitSet {
        self.oracle.locs_of_class(program, base)
    }

    fn alloc_locs(&self, a: AllocId) -> &BitSet {
        self.oracle.alloc_locs(a)
    }

    fn locs(&self) -> &LocTable {
        self.oracle.locs()
    }

    fn exhaustive(&self) -> &PtaResult {
        &self.oracle
    }
}

struct CachedSlice {
    partial: Arc<PartialPtaResult>,
    /// Methods whose facts contributed to the slice — the proactive
    /// invalidation key (revalidation at reuse is the safety net).
    touched_methods: Vec<MethodId>,
    stats: DemandQueryStats,
}

/// Per-query scratch: budget accounting and the method set the traversal
/// touched.
#[derive(Default)]
struct QueryScratch {
    nodes_touched: u64,
    visited: HashSet<u32>,
    drift: u64,
    touched_methods: HashSet<MethodId>,
}

/// The demand-driven query tier over a solved constraint graph.
///
/// Build one with [`DemandPta::analyze`] (owns its own exhaustive solve)
/// or [`DemandPta::from_incremental`] (indexes a resident
/// [`IncrementalPta`]'s state). Queries ([`DemandPta::query_global`])
/// return a [`PartialPtaResult`] slice plus per-query cost stats; slices
/// are cached per global and revalidated fact-by-fact against the oracle
/// on reuse, so a stale cache can cost time but never correctness.
pub struct DemandPta {
    oracle: Arc<PtaResult>,
    budget: usize,
    empty_contents_allocs: Vec<AllocId>,
    /// Reverse copy edges between union-find representatives (sorted,
    /// dedup'd, self-loops dropped), indexed by representative node id.
    preds: Vec<Vec<u32>>,
    /// Seed locations (canonical numbering) injected at each
    /// representative by `new` commands and dispatch `this`-bindings.
    seeds: Vec<BitSet>,
    /// Methods owning each representative's `Var`/`Ret` members.
    rep_methods: Vec<Vec<MethodId>>,
    /// Representatives of the `Var` nodes of each variable (conflated
    /// over instances, suspended instances excluded).
    var_nodes: HashMap<VarId, Vec<u32>>,
    global_nodes: HashMap<GlobalId, u32>,
    /// Field cells per canonical location: `(field, cell representative)`.
    fields_of_loc: HashMap<u32, Vec<(FieldId, u32)>>,
    total_nodes: usize,
    /// Memoized `pt` per representative (canonical numbering). Survives
    /// across queries; cleared on rebuild.
    memo: HashMap<u32, BitSet>,
    slices: HashMap<GlobalId, CachedSlice>,
    stats: DemandStats,
}

impl DemandPta {
    /// Runs the exhaustive delta solve on `program`, retains the result as
    /// the oracle, and indexes the solved constraint graph for queries.
    ///
    /// # Panics
    ///
    /// Panics if `program` has no entry method.
    pub fn analyze(program: &Program, policy: ContextPolicy, options: &PtaOptions) -> Self {
        let mut solver = Solver::new(policy);
        solver.options = PtaOptions { solver: SolverKind::Delta, ..options.clone() };
        solver.solve(program, program.entry());
        let result = solver.build_result(program, None);
        result.check_types(program);
        let oracle = Arc::new(result);
        let mut demand = DemandPta::empty(oracle, options.demand_budget);
        demand.rebuild_index(&solver, program, None);
        demand
    }

    /// Indexes a resident incremental solver's current fixpoint. The
    /// oracle is snapshotted via [`IncrementalPta::result`].
    pub fn from_incremental(inc: &IncrementalPta, program: &Program) -> Self {
        let oracle = Arc::new(inc.result(program));
        DemandPta::from_incremental_with_oracle(inc, program, oracle)
    }

    /// [`DemandPta::from_incremental`] reusing an already-snapshotted
    /// oracle (must be `inc.result(program)` for the same program version;
    /// [`crate::Solver::build_result`] is deterministic, so any such
    /// snapshot is interchangeable).
    pub fn from_incremental_with_oracle(
        inc: &IncrementalPta,
        program: &Program,
        oracle: Arc<PtaResult>,
    ) -> Self {
        let solver = inc.solver();
        let mut demand = DemandPta::empty(oracle, solver.options.demand_budget);
        demand.rebuild_index(solver, program, Some(inc.live_loc_table(program)));
        demand
    }

    fn empty(oracle: Arc<PtaResult>, budget: usize) -> Self {
        DemandPta {
            oracle,
            budget,
            empty_contents_allocs: Vec::new(),
            preds: Vec::new(),
            seeds: Vec::new(),
            rep_methods: Vec::new(),
            var_nodes: HashMap::new(),
            global_nodes: HashMap::new(),
            fields_of_loc: HashMap::new(),
            total_nodes: 0,
            memo: HashMap::new(),
            slices: HashMap::new(),
            stats: DemandStats::default(),
        }
    }

    /// Re-indexes after an edit batch: `inc` has absorbed the edits,
    /// `oracle` is the fresh exhaustive snapshot, and `changed` is the
    /// batch's invalidation set ([`crate::EditSolveStats::changed_methods`]).
    /// Cached slices touching a changed method are dropped eagerly; the
    /// survivors are revalidated fact-by-fact on their next reuse. Returns
    /// the number of slices dropped.
    pub fn on_edit(
        &mut self,
        inc: &IncrementalPta,
        program: &Program,
        oracle: Arc<PtaResult>,
        changed: &[MethodId],
    ) -> usize {
        self.oracle = oracle;
        let solver = inc.solver();
        self.rebuild_index(solver, program, Some(inc.live_loc_table(program)));
        self.invalidate(changed)
    }

    /// Drops cached slices whose traversal touched any of `changed`.
    /// Returns the number dropped.
    pub fn invalidate(&mut self, changed: &[MethodId]) -> usize {
        let changed: HashSet<MethodId> = changed.iter().copied().collect();
        let before = self.slices.len();
        self.slices.retain(|_, s| !s.touched_methods.iter().any(|m| changed.contains(m)));
        before - self.slices.len()
    }

    /// Drops every cached slice (the serve-eviction path). Returns the
    /// number dropped.
    pub fn clear_slices(&mut self) -> usize {
        let n = self.slices.len();
        self.slices.clear();
        n
    }

    /// Lifetime query statistics.
    pub fn stats(&self) -> &DemandStats {
        &self.stats
    }

    /// Slices currently cached.
    pub fn slices_cached(&self) -> usize {
        self.slices.len()
    }

    /// Total constraint-graph nodes — the denominator of
    /// [`DemandQueryStats::slice_fraction`].
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// The exploration budget (0 = unbounded).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Replaces the exploration budget.
    pub fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    /// The exhaustive oracle.
    pub fn oracle(&self) -> &Arc<PtaResult> {
        &self.oracle
    }

    /// Extracts the query index from a solved constraint graph. Read-only
    /// over the solver; the index owns plain copied data.
    fn rebuild_index(
        &mut self,
        solver: &Solver,
        program: &Program,
        live: Option<(LocTable, Vec<Option<LocId>>)>,
    ) {
        self.memo.clear();
        self.empty_contents_allocs = solver.options.empty_contents_allocs.clone();
        let n = solver.nodes.len();
        self.total_nodes = n;

        // Canonical renumbering of the solver's (interning-order) location
        // ids, mirroring `Solver::build_result` exactly: optional live
        // filter, then `LocTable::canonicalize` (deterministic name-chain
        // sort on a cloned table).
        let (mut table, map): (LocTable, Vec<Option<LocId>>) = match live {
            Some(x) => x,
            None => (solver.locs.clone(), solver.locs.ids().map(Some).collect()),
        };
        let perm = table.canonicalize(program);
        let remap =
            |l: usize| -> Option<u32> { map[l].map(|fresh| perm[fresh.index()].0) };

        let reps: Vec<u32> = (0..n).map(|i| solver.find_read(i) as u32).collect();

        // Reverse copy edges between representatives. Collapsed members'
        // successor rows were merged into their representative, but
        // scanning every row is correct regardless of merge policy.
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            let ri = reps[i];
            for &s in &solver.copy_succs[i] {
                let rs = reps[s.0 as usize];
                if rs != ri {
                    preds[rs as usize].push(ri);
                }
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        self.preds = preds;

        // Seeds: the only entry points of locations into the constraint
        // graph are `new`/`newarray` destinations (`Solver::process_cmd`)
        // and dispatch `this`-bindings (`Solver::bind_call`). Reconstruct
        // both read-only, in canonical numbering.
        let mut seeds: Vec<BitSet> = vec![BitSet::new(); n];
        let mut rep_methods: Vec<Vec<MethodId>> = vec![Vec::new(); n];
        let mut var_nodes: HashMap<VarId, Vec<u32>> = HashMap::new();
        let mut global_nodes: HashMap<GlobalId, u32> = HashMap::new();
        let mut fields_of_loc: HashMap<u32, Vec<(FieldId, u32)>> = HashMap::new();

        for (i, kind) in solver.nodes.iter().enumerate() {
            match kind {
                NodeKind::Var(inst, v) => {
                    if solver.suspended.contains(inst) {
                        continue;
                    }
                    let (m, _) = solver.insts[inst.0 as usize];
                    rep_methods[reps[i] as usize].push(m);
                    var_nodes.entry(*v).or_default().push(reps[i]);
                }
                NodeKind::Ret(inst) => {
                    if solver.suspended.contains(inst) {
                        continue;
                    }
                    let (m, _) = solver.insts[inst.0 as usize];
                    rep_methods[reps[i] as usize].push(m);
                }
                NodeKind::Global(g) => {
                    global_nodes.insert(*g, reps[i]);
                }
                NodeKind::Field(l, f) => {
                    if let Some(c) = remap(l.index()) {
                        fields_of_loc.entry(c).or_default().push((*f, reps[i]));
                    }
                }
            }
        }
        for ms in &mut rep_methods {
            ms.sort_unstable_by_key(|m| m.index());
            ms.dedup();
        }
        for ns in var_nodes.values_mut() {
            ns.sort_unstable();
            ns.dedup();
        }

        // Allocation seeds.
        for (i, &(method, _)) in solver.insts.iter().enumerate() {
            let inst = crate::analysis::InstId(i as u32);
            if solver.suspended.contains(&inst) || program.method(method).removed {
                continue;
            }
            let qual = solver.alloc_qualifier(program, inst);
            for cmd_id in program.method_cmds(method) {
                let (dst, alloc) = match program.cmd(cmd_id) {
                    Command::New { dst, alloc, .. } | Command::NewArray { dst, alloc, .. } => {
                        (*dst, *alloc)
                    }
                    _ => continue,
                };
                let Some(&node) = solver.node_index.get(&NodeKind::Var(inst, dst)) else {
                    continue;
                };
                let Some(old) = solver.locs.lookup(AbsLoc { alloc, ctx: qual }) else {
                    continue;
                };
                if let Some(c) = remap(old.index()) {
                    seeds[reps[node.0 as usize] as usize].insert(c as usize);
                }
            }
        }
        // Dispatch `this`-binding seeds.
        for call in &solver.calls {
            for &(lbit, callee_inst) in &call.dispatched {
                if solver.suspended.contains(&callee_inst) {
                    continue;
                }
                let (m, _) = solver.insts[callee_inst.0 as usize];
                let method = program.method(m);
                if method.removed || method.class.is_none() {
                    continue;
                }
                let Some(&this_param) = method.params.first() else { continue };
                let Some(&node) = solver.node_index.get(&NodeKind::Var(callee_inst, this_param))
                else {
                    continue;
                };
                if let Some(c) = remap(lbit) {
                    seeds[reps[node.0 as usize] as usize].insert(c as usize);
                }
            }
        }

        self.seeds = seeds;
        self.rep_methods = rep_methods;
        self.var_nodes = var_nodes;
        self.global_nodes = global_nodes;
        self.fields_of_loc = fields_of_loc;
    }

    /// `pt(start)` by backward reachability over reverse copy edges,
    /// unioning seeds; memoized per representative. `None` on budget
    /// exhaustion. Memoized hits are absorbed without re-expansion.
    fn resolve(&mut self, start: u32, qs: &mut QueryScratch) -> Option<BitSet> {
        if let Some(m) = self.memo.get(&start) {
            return Some(m.clone());
        }
        let mut out = BitSet::new();
        let mut stack = vec![start];
        let mut seen: HashSet<u32> = HashSet::new();
        seen.insert(start);
        while let Some(r) = stack.pop() {
            if qs.visited.insert(r) {
                qs.nodes_touched += 1;
                if self.budget != 0 && qs.nodes_touched > self.budget as u64 {
                    return None;
                }
            }
            out.union_with(&self.seeds[r as usize]);
            qs.touched_methods.extend(self.rep_methods[r as usize].iter().copied());
            for &p in &self.preds[r as usize] {
                if !seen.insert(p) {
                    continue;
                }
                if let Some(m) = self.memo.get(&p) {
                    out.union_with(m);
                } else {
                    stack.push(p);
                }
            }
        }
        self.memo.insert(start, out.clone());
        Some(out)
    }

    /// Gates a demand-computed set against the oracle's value: equal sets
    /// publish the computed one, any disagreement publishes the oracle's
    /// and counts drift. Publication is therefore always exact.
    fn gate(&self, computed: BitSet, oracle: &BitSet, qs: &mut QueryScratch) -> BitSet {
        if same_set(&computed, oracle) {
            computed
        } else {
            qs.drift += 1;
            oracle.clone()
        }
    }

    /// Gated `pt(v)`: union over the variable's instance nodes, compared
    /// against the oracle's conflated set. `None` on budget exhaustion.
    fn var_fact(&mut self, v: VarId, qs: &mut QueryScratch) -> Option<BitSet> {
        let reps = self.var_nodes.get(&v).cloned().unwrap_or_default();
        let mut out = BitSet::new();
        for r in reps {
            out.union_with(&self.resolve(r, qs)?);
        }
        let oracle = self.oracle.clone();
        Some(self.gate(out, oracle.pt_var(v), qs))
    }

    /// Answers a points-to query for `global`: the slice holding
    /// `pt(global)`, the full forward heap closure of its targets, and the
    /// producer lists of every slice edge — everything a refutation of an
    /// alarm edge rooted at `global` reads in-slice.
    ///
    /// Returns the (possibly cached) slice and this query's cost. On
    /// budget exhaustion the slice is pure oracle delegation with
    /// `fallback` recorded — never a wrong answer.
    pub fn query_global(
        &mut self,
        program: &Program,
        global: GlobalId,
    ) -> (Arc<PartialPtaResult>, DemandQueryStats) {
        obs::add(obs::Counter::PtaDemandQueries, 1);
        self.stats.queries += 1;

        if let Some(cached) = self.slices.get(&global) {
            if self.slice_matches_oracle(&cached.partial) {
                let mut stats = cached.stats;
                stats.cache_hit = true;
                stats.nodes_touched = 0;
                self.stats.cache_hits += 1;
                self.stats.slice_fraction_sum += stats.slice_fraction;
                let partial = Arc::clone(&self.slices[&global].partial);
                return (partial, stats);
            }
            self.slices.remove(&global);
        }

        let mut qs = QueryScratch::default();
        let computed = self.compute_slice(program, global, &mut qs);
        let fallback = computed.is_none();
        let partial = match computed {
            Some(p) => Arc::new(p),
            None => {
                obs::add(obs::Counter::PtaDemandFallbacks, 1);
                Arc::new(PartialPtaResult::pure_fallback(Arc::clone(&self.oracle), global))
            }
        };
        let slice_fraction = if self.total_nodes == 0 {
            0.0
        } else {
            qs.nodes_touched as f64 / self.total_nodes as f64
        };
        let stats = DemandQueryStats {
            nodes_touched: qs.nodes_touched,
            slice_fraction,
            fallback,
            drift: qs.drift,
            cache_hit: false,
        };
        obs::add(obs::Counter::PtaDemandNodesTouched, qs.nodes_touched);
        obs::add(obs::Counter::PtaDemandDrift, qs.drift);
        self.stats.fallbacks += u64::from(fallback);
        self.stats.drift += qs.drift;
        self.stats.nodes_touched += qs.nodes_touched;
        self.stats.slice_fraction_sum += slice_fraction;

        if !fallback {
            let mut touched: Vec<MethodId> = qs.touched_methods.into_iter().collect();
            touched.sort_unstable_by_key(|m| m.index());
            self.slices.insert(
                global,
                CachedSlice { partial: Arc::clone(&partial), touched_methods: touched, stats },
            );
        }
        (partial, stats)
    }

    /// The demand computation proper. `None` on budget exhaustion.
    fn compute_slice(
        &mut self,
        program: &Program,
        global: GlobalId,
        qs: &mut QueryScratch,
    ) -> Option<PartialPtaResult> {
        let oracle = Arc::clone(&self.oracle);

        // pt(global), gated.
        let computed = match self.global_nodes.get(&global).copied() {
            Some(r) => self.resolve(r, qs)?,
            None => BitSet::new(),
        };
        let global_pt = self.gate(computed, oracle.pt_global(global), qs);

        // Forward heap closure: every location reachable from the queried
        // global gets all of its field cells materialized (gated), and new
        // targets join the frontier. `closed` marks completion, so an
        // absent cell under a closed base reads as provably empty.
        let mut heap: HashMap<(LocId, FieldId), BitSet> = HashMap::new();
        let mut closed = BitSet::new();
        let mut frontier: Vec<usize> = global_pt.iter().collect();
        while let Some(l) = frontier.pop() {
            if !closed.insert(l) {
                continue;
            }
            let cells = self.fields_of_loc.get(&(l as u32)).cloned().unwrap_or_default();
            let lid = LocId(l as u32);
            for (f, rep) in cells {
                let computed = self.resolve(rep, qs)?;
                let cell = self.gate(computed, oracle.pt_field(lid, f), qs);
                if cell.is_empty() {
                    continue;
                }
                for t in cell.iter() {
                    if !closed.contains(t) {
                        frontier.push(t);
                    }
                }
                heap.insert((lid, f), cell);
            }
        }

        // Producer lists for the slice edges, mirroring
        // `Solver::build_result`'s exact iteration order (methods in
        // program order, commands in body order) restricted to writes that
        // can hit the slice. The variable facts feeding the lists are
        // themselves gated, so the lists match the exhaustive ones on
        // every slice edge.
        let slice_fields: HashSet<FieldId> = closed
            .iter()
            .flat_map(|l| {
                self.fields_of_loc
                    .get(&(l as u32))
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    .iter()
                    .map(|&(f, _)| f)
            })
            .collect();
        let mut producers: HashMap<HeapEdge, Vec<CmdId>> = HashMap::new();
        let mut var_pt: HashMap<VarId, BitSet> = HashMap::new();
        let field_producers = |this: &mut Self,
                                   producers: &mut HashMap<HeapEdge, Vec<CmdId>>,
                                   var_pt: &mut HashMap<VarId, BitSet>,
                                   qs: &mut QueryScratch,
                                   obj: VarId,
                                   field: FieldId,
                                   y: VarId,
                                   cmd_id: CmdId,
                                   array: bool|
         -> Option<()> {
            let mut base_pt = match var_pt.get(&obj) {
                Some(pt) => pt.clone(),
                None => {
                    let pt = this.var_fact(obj, qs)?;
                    var_pt.insert(obj, pt.clone());
                    pt
                }
            };
            if array {
                // Annotated arrays have no producible contents edges;
                // blocked cells are keyed by allocation site, resolved
                // through the canonical table.
                let blocked: Vec<usize> = base_pt
                    .iter()
                    .filter(|&l| {
                        this.empty_contents_allocs
                            .contains(&oracle.locs().get(LocId(l as u32)).alloc)
                    })
                    .collect();
                for l in blocked {
                    base_pt.remove(l);
                }
            }
            if !base_pt.iter().any(|l| closed.contains(l)) {
                return Some(());
            }
            let val_pt = match var_pt.get(&y) {
                Some(pt) => pt.clone(),
                None => {
                    let pt = this.var_fact(y, qs)?;
                    var_pt.insert(y, pt.clone());
                    pt
                }
            };
            for b in base_pt.iter().filter(|&b| closed.contains(b)) {
                for t in val_pt.iter() {
                    producers
                        .entry(HeapEdge::Field {
                            base: LocId(b as u32),
                            field,
                            target: LocId(t as u32),
                        })
                        .or_default()
                        .push(cmd_id);
                }
            }
            qs.touched_methods.insert(program.cmd_method(cmd_id));
            Some(())
        };
        let reached: Vec<MethodId> =
            program.method_ids().filter(|&m| oracle.is_reached(m)).collect();
        for &m in &reached {
            for cmd_id in program.method_cmds(m) {
                match program.cmd(cmd_id) {
                    Command::WriteField { obj, field, src: Operand::Var(y) } => {
                        if !slice_fields.contains(field) {
                            continue;
                        }
                        field_producers(
                            self,
                            &mut producers,
                            &mut var_pt,
                            qs,
                            *obj,
                            *field,
                            *y,
                            cmd_id,
                            false,
                        )?;
                    }
                    Command::WriteArray { arr, src: Operand::Var(y), .. } => {
                        if !slice_fields.contains(&program.contents_field) {
                            continue;
                        }
                        field_producers(
                            self,
                            &mut producers,
                            &mut var_pt,
                            qs,
                            *arr,
                            program.contents_field,
                            *y,
                            cmd_id,
                            true,
                        )?;
                    }
                    Command::WriteGlobal { global: g, src: Operand::Var(y) } if *g == global => {
                        let val_pt = match var_pt.get(y) {
                            Some(pt) => pt.clone(),
                            None => {
                                let pt = self.var_fact(*y, qs)?;
                                var_pt.insert(*y, pt.clone());
                                pt
                            }
                        };
                        for t in val_pt.iter() {
                            producers
                                .entry(HeapEdge::Global { global, target: LocId(t as u32) })
                                .or_default()
                                .push(cmd_id);
                        }
                        qs.touched_methods.insert(program.cmd_method(cmd_id));
                    }
                    _ => {}
                }
            }
        }

        Some(PartialPtaResult {
            oracle,
            global,
            global_pt,
            heap,
            closed_locs: closed,
            var_pt,
            producers,
            fallback: false,
            resolutions: AtomicU64::new(0),
            empty: BitSet::new(),
        })
    }

    /// Revalidates a cached slice fact-by-fact against the current oracle:
    /// the queried global's set, every materialized heap cell, closure
    /// completeness of every closed location (a cell that appeared since
    /// caching invalidates), every resolved variable, and every producer
    /// list. O(slice) hash lookups and set compares — no graph traversal.
    fn slice_matches_oracle(&self, slice: &PartialPtaResult) -> bool {
        if slice.fallback {
            // A fallback pseudo-slice holds no reusable demand data.
            return false;
        }
        let o = &self.oracle;
        if !same_set(&slice.global_pt, o.pt_global(slice.global)) {
            return false;
        }
        for (&(l, f), cell) in &slice.heap {
            if !same_set(cell, o.pt_field(l, f)) {
                return false;
            }
        }
        for l in slice.closed_locs.iter() {
            for &(f, _) in
                self.fields_of_loc.get(&(l as u32)).map(Vec::as_slice).unwrap_or(&[])
            {
                let lid = LocId(l as u32);
                if !slice.heap.contains_key(&(lid, f)) && !o.pt_field(lid, f).is_empty() {
                    return false;
                }
            }
        }
        for (&v, pt) in &slice.var_pt {
            if !same_set(pt, o.pt_var(v)) {
                return false;
            }
        }
        for (edge, cmds) in &slice.producers {
            if o.producers(edge) != cmds.as_slice() {
                return false;
            }
        }
        true
    }

    /// Gated `pt(v)` as a standalone query (differential tests and tools).
    /// Falls back to the oracle's set — with `fallback` recorded — on
    /// budget exhaustion.
    pub fn pt_var_query(&mut self, v: VarId) -> (BitSet, DemandQueryStats) {
        obs::add(obs::Counter::PtaDemandQueries, 1);
        self.stats.queries += 1;
        let mut qs = QueryScratch::default();
        let (pt, fallback) = match self.var_fact(v, &mut qs) {
            Some(pt) => (pt, false),
            None => {
                obs::add(obs::Counter::PtaDemandFallbacks, 1);
                (self.oracle.pt_var(v).clone(), true)
            }
        };
        let slice_fraction = if self.total_nodes == 0 {
            0.0
        } else {
            qs.nodes_touched as f64 / self.total_nodes as f64
        };
        let stats = DemandQueryStats {
            nodes_touched: qs.nodes_touched,
            slice_fraction,
            fallback,
            drift: qs.drift,
            cache_hit: false,
        };
        obs::add(obs::Counter::PtaDemandNodesTouched, qs.nodes_touched);
        obs::add(obs::Counter::PtaDemandDrift, qs.drift);
        self.stats.fallbacks += u64::from(fallback);
        self.stats.drift += qs.drift;
        self.stats.nodes_touched += qs.nodes_touched;
        self.stats.slice_fraction_sum += slice_fraction;
        (pt, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_with;
    use tir::parse;

    const BOXY: &str = r#"
class Box { field item: Object; }
global ROOT: Box;
global OTHER: Object;
fn main() {
  var b: Box;
  var o: Object;
  var stray: Object;
  b = new Box @box0;
  o = new Object @obj0;
  stray = new Object @stray0;
  b.item = o;
  $ROOT = b;
  $OTHER = stray;
}
entry main;
"#;

    #[test]
    fn demand_matches_exhaustive_on_queried_facts() {
        let p = parse(BOXY).expect("parse");
        let opts = PtaOptions::default();
        let exhaustive = analyze_with(&p, ContextPolicy::Insensitive, &opts);
        let mut demand = DemandPta::analyze(&p, ContextPolicy::Insensitive, &opts);
        let root = p.global_by_name("ROOT").unwrap();
        let (partial, stats) = demand.query_global(&p, root);
        assert!(!stats.fallback);
        assert_eq!(stats.drift, 0, "from-scratch fixpoint must not drift");
        assert!(same_set(partial.pt_global(root), exhaustive.pt_global(root)));
        for (l, f, cell) in partial.heap_rows() {
            assert!(same_set(cell, exhaustive.pt_field(l, f)));
        }
        // The slice is partial: the stray global's cone was never touched.
        assert!(stats.nodes_touched > 0);
        assert!((stats.nodes_touched as usize) < demand.total_nodes());
    }

    #[test]
    fn out_of_slice_lookups_resolve_against_oracle() {
        let p = parse(BOXY).expect("parse");
        let mut demand = DemandPta::analyze(&p, ContextPolicy::Insensitive, &PtaOptions::default());
        let root = p.global_by_name("ROOT").unwrap();
        let other = p.global_by_name("OTHER").unwrap();
        let (partial, _) = demand.query_global(&p, root);
        assert_eq!(partial.resolutions(), 0);
        let via_oracle = partial.pt_global(other).clone();
        assert_eq!(partial.resolutions(), 1, "out-of-slice global must count");
        assert!(same_set(&via_oracle, demand.oracle().pt_global(other)));
    }

    #[test]
    fn budget_exhaustion_falls_back_exactly() {
        let p = parse(BOXY).expect("parse");
        let opts = PtaOptions { demand_budget: 1, ..PtaOptions::default() };
        let exhaustive = analyze_with(&p, ContextPolicy::Insensitive, &opts);
        let mut demand = DemandPta::analyze(&p, ContextPolicy::Insensitive, &opts);
        let root = p.global_by_name("ROOT").unwrap();
        let (partial, stats) = demand.query_global(&p, root);
        assert!(stats.fallback, "budget 1 must exhaust on a multi-node cone");
        assert!(partial.is_fallback());
        assert!(same_set(partial.pt_global(root), exhaustive.pt_global(root)));
        let box0 = exhaustive.pt_global(root).iter().next().unwrap();
        let item = p.field_ids().find(|&f| p.field(f).name == "item").unwrap();
        assert!(same_set(
            partial.pt_field(LocId(box0 as u32), item),
            exhaustive.pt_field(LocId(box0 as u32), item)
        ));
        assert_eq!(demand.stats().fallbacks, 1);
    }

    #[test]
    fn second_query_hits_the_slice_cache() {
        let p = parse(BOXY).expect("parse");
        let mut demand = DemandPta::analyze(&p, ContextPolicy::Insensitive, &PtaOptions::default());
        let root = p.global_by_name("ROOT").unwrap();
        let (_, first) = demand.query_global(&p, root);
        assert!(!first.cache_hit);
        let (_, second) = demand.query_global(&p, root);
        assert!(second.cache_hit);
        assert_eq!(second.nodes_touched, 0);
        assert_eq!(demand.stats().cache_hits, 1);
        assert_eq!(demand.slices_cached(), 1);
    }

    #[test]
    fn producers_match_exhaustive_on_slice_edges() {
        let p = parse(BOXY).expect("parse");
        let exhaustive =
            analyze_with(&p, ContextPolicy::Insensitive, &PtaOptions::default());
        let mut demand = DemandPta::analyze(&p, ContextPolicy::Insensitive, &PtaOptions::default());
        let root = p.global_by_name("ROOT").unwrap();
        let (partial, _) = demand.query_global(&p, root);
        for t in partial.pt_global(root).iter() {
            let edge = HeapEdge::Global { global: root, target: LocId(t as u32) };
            assert_eq!(partial.producers(&edge), exhaustive.producers(&edge));
        }
        for (l, f, cell) in partial.heap_rows() {
            for t in cell.iter() {
                let edge = HeapEdge::Field { base: l, field: f, target: LocId(t as u32) };
                assert_eq!(partial.producers(&edge), exhaustive.producers(&edge));
            }
        }
    }

    #[test]
    fn incremental_edit_invalidates_and_stays_exact() {
        let mut p = parse(BOXY).expect("parse");
        let opts = PtaOptions::default();
        let mut inc = IncrementalPta::new(&p, ContextPolicy::Insensitive, &opts);
        let mut demand = DemandPta::from_incremental(&inc, &p);
        let root = p.global_by_name("ROOT").unwrap();
        let (_, first) = demand.query_global(&p, root);
        assert_eq!(first.drift, 0);

        // Reroute the store: b.item now also holds a second object.
        let applied = tir::apply_edits(
            &mut p,
            &[
                tir::EditOp::AddStmt {
                    method: "main".into(),
                    at: 3,
                    text: "var o2: Object;".into(),
                },
                tir::EditOp::AddStmt {
                    method: "main".into(),
                    at: 4,
                    text: "o2 = new Object @obj1;".into(),
                },
                tir::EditOp::AddStmt { method: "main".into(), at: 5, text: "b.item = o2;".into() },
            ],
        )
        .expect("edit applies");
        let stats = inc.apply_edits(&p, &applied);
        let oracle = Arc::new(inc.result(&p));
        demand.on_edit(&inc, &p, Arc::clone(&oracle), &stats.changed_methods);

        let (partial, second) = demand.query_global(&p, root);
        assert!(!second.cache_hit, "edited slice must not warm-hit");
        assert_eq!(second.drift, 0, "post-edit fixpoint must still be exact");
        assert!(same_set(partial.pt_global(root), oracle.pt_global(root)));
        let item = p.field_ids().find(|&f| p.field(f).name == "item").unwrap();
        let box_loc = oracle.pt_global(root).iter().next().unwrap();
        assert_eq!(partial.pt_field(LocId(box_loc as u32), item).len(), 2);
    }
}
