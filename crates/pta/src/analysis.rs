//! The flow-insensitive Andersen-style points-to analysis with on-the-fly
//! call-graph construction.
//!
//! Subset constraints are solved with a worklist over a node graph:
//! variable nodes (per method instance), global nodes, heap field nodes
//! (per abstract location), and return-value nodes. Field reads/writes and
//! virtual calls are *complex* constraints indexed on their base/receiver
//! node and re-processed as that node's points-to set grows.
//!
//! Two fixpoint engines share that constraint graph (see [`SolverKind`]):
//!
//! * **Delta propagation** (the default): each node keeps an `old/delta`
//!   split — `old` holds locations already pushed downstream, `delta` the
//!   ones not yet propagated. A worklist round drains one node's delta,
//!   pushes only those bits along copy edges, and re-evaluates the node's
//!   complex constraints against the delta alone. Copy cycles — ubiquitous
//!   with call-graph-on-the-fly analyses, where parameter/return wiring
//!   closes loops — are detected lazily (when a copy edge propagates
//!   nothing and both endpoint sets are equal) and collapsed into a
//!   representative node via union-find, Nuutila/LCD style.
//! * **Reference**: the textbook full-set worklist solver, kept as the
//!   differential-testing oracle.
//!
//! Both engines renumber abstract locations canonically after solving
//! ([`LocTable::canonicalize`]), so their final [`PtaResult`]s are
//! identical bit for bit.

use std::collections::{HashMap, HashSet, VecDeque};

use tir::{
    AllocId, Callee, ClassId, CmdId, Command, FieldId, GlobalId, MethodId, Operand, Program, VarId,
};

use crate::bitset::BitSet;
use crate::context::ContextPolicy;
use crate::loc::{AbsLoc, LocId, LocTable};
use crate::result::{HeapEdge, PtaResult};

/// A method-analysis context: the receiver's abstract location (object
/// sensitivity), the call site (1-CFA), or nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum Ctx {
    /// Context-insensitive instance.
    None,
    /// Keyed by receiver location (object/container sensitivity).
    Recv(LocId),
    /// Keyed by call site (1-CFA).
    Site(CmdId),
}

/// Interned (method, context) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct InstId(pub(crate) u32);

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum NodeKind {
    /// A local variable of a method instance.
    Var(InstId, VarId),
    /// A global variable.
    Global(GlobalId),
    /// Field `f` of objects abstracted by a location.
    Field(LocId, FieldId),
    /// The return value of a method instance.
    Ret(InstId),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct NodeId(pub(crate) u32);

/// A pending receiver-indexed call: dispatch is re-run as the receiver's
/// points-to set grows.
#[derive(Clone, Debug)]
pub(crate) struct RecvCall {
    pub(crate) caller: InstId,
    pub(crate) cmd: CmdId,
    /// `None` for virtual dispatch by name; `Some` for a direct call to an
    /// instance method (constructor-style), which skips re-resolution.
    pub(crate) fixed_target: Option<MethodId>,
    pub(crate) method_name: String,
    pub(crate) dst: Option<VarId>,
    pub(crate) args: Vec<Operand>,
    /// Receiver locations already dispatched.
    pub(crate) seen: BitSet,
    /// Dispatch record: (receiver location bit, callee instance) pairs, in
    /// dispatch order. The incremental solver reads this to find which
    /// callee bindings a program edit may invalidate.
    pub(crate) dispatched: Vec<(usize, InstId)>,
}

/// Inserts `v` into a sorted vector if absent; returns true if inserted.
fn insert_sorted(list: &mut Vec<NodeId>, v: NodeId) -> bool {
    match list.binary_search(&v) {
        Ok(_) => false,
        Err(pos) => {
            list.insert(pos, v);
            true
        }
    }
}

pub(crate) struct Solver {
    pub(crate) policy: ContextPolicy,
    pub(crate) locs: LocTable,
    pub(crate) insts: Vec<(MethodId, Ctx)>,
    pub(crate) inst_index: HashMap<(MethodId, Ctx), InstId>,
    pub(crate) nodes: Vec<NodeKind>,
    pub(crate) node_index: HashMap<NodeKind, NodeId>,
    /// Points-to sets: the full set under the reference solver; the
    /// already-propagated "old" half of the old/delta split under the
    /// delta solver.
    pub(crate) pts: Vec<BitSet>,
    /// Locations not yet pushed downstream. Delta solver only; always
    /// disjoint from the node's `pts`, and non-empty only while the node
    /// sits on the worklist.
    pub(crate) delta: Vec<BitSet>,
    /// Copy successors, sorted by raw node id and dedup'd: the iteration
    /// order *is* the deterministic propagation order.
    pub(crate) copy_succs: Vec<Vec<NodeId>>,
    pub(crate) loads: Vec<Vec<(FieldId, NodeId)>>,
    pub(crate) stores: Vec<Vec<(FieldId, NodeId)>>,
    pub(crate) recv_calls: Vec<Vec<usize>>,
    pub(crate) calls: Vec<RecvCall>,
    pub(crate) worklist: VecDeque<NodeId>,
    /// Union-find over nodes for online cycle collapsing; stays the
    /// identity under the reference solver.
    pub(crate) parent: Vec<u32>,
    /// Copy edges already probed for a cycle, packed `(n << 32) | s`
    /// (LCD fires once per edge).
    pub(crate) lcd_attempted: HashSet<u64>,
    /// (caller cmd, callee method) call-graph edges.
    pub(crate) call_edges: HashSet<(CmdId, MethodId)>,
    pub(crate) reached_methods: BitSet,
    pub(crate) options: PtaOptions,
    /// Incremental rebuild mode: registration lays down constraint
    /// structure (and evaluates complex constraints of already-solved
    /// nodes structurally) but copy edges push nothing — the boundary
    /// scan after the rebuild seeds all propagation at once.
    pub(crate) rebuilding: bool,
    /// Instances whose constraints were dropped by an incremental rebuild
    /// because their reachability became uncertain. Revived (body
    /// re-registered) if dispatch re-derives them.
    pub(crate) suspended: HashSet<InstId>,
    /// Worklist pops performed by this solver (the unit the incremental
    /// CI gate measures).
    pub(crate) propagations: u64,
    /// When set, every drained node id is appended here (the incremental
    /// solver reads it to find which methods' facts changed).
    pub(crate) drain_log: Option<Vec<NodeId>>,
    /// Size of the drain log after its last compaction. The next
    /// compaction fires only once the log doubles past this floor (or
    /// exceeds `drain_log_cap`, whichever is larger), so a log whose
    /// irreducible size exceeds the cap degrades to amortized O(1) per
    /// push instead of O(n).
    pub(crate) drain_log_floor: usize,
    /// Reusable per-pop buffers for the drain loop. Constraint lists must
    /// be read through a snapshot (`eval_*` may grow the originals
    /// mid-iteration), but cloning four `Vec`s per pop dominated the
    /// solve on sub-500-node programs; copying into retained-capacity
    /// scratch is allocation-free after warm-up.
    scratch_succs: Vec<NodeId>,
    scratch_fields: Vec<(FieldId, NodeId)>,
    scratch_calls: Vec<usize>,
}

impl Solver {
    pub(crate) fn new(policy: ContextPolicy) -> Self {
        Solver {
            policy,
            locs: LocTable::new(),
            insts: Vec::new(),
            inst_index: HashMap::new(),
            nodes: Vec::new(),
            node_index: HashMap::new(),
            pts: Vec::new(),
            delta: Vec::new(),
            copy_succs: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            recv_calls: Vec::new(),
            calls: Vec::new(),
            worklist: VecDeque::new(),
            parent: Vec::new(),
            lcd_attempted: HashSet::new(),
            call_edges: HashSet::new(),
            reached_methods: BitSet::new(),
            options: PtaOptions::default(),
            rebuilding: false,
            suspended: HashSet::new(),
            propagations: 0,
            drain_log: None,
            drain_log_floor: 0,
            scratch_succs: Vec::new(),
            scratch_fields: Vec::new(),
            scratch_calls: Vec::new(),
        }
    }

    pub(crate) fn node(&mut self, kind: NodeKind) -> NodeId {
        if let Some(&id) = self.node_index.get(&kind) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node overflow"));
        obs::add(obs::Counter::PtaNodes, 1);
        self.nodes.push(kind);
        self.node_index.insert(kind, id);
        self.pts.push(BitSet::new());
        self.delta.push(BitSet::new());
        self.copy_succs.push(Vec::new());
        self.loads.push(Vec::new());
        self.stores.push(Vec::new());
        self.recv_calls.push(Vec::new());
        self.parent.push(id.0);
        id
    }

    /// Union-find lookup with path halving. The identity under the
    /// reference solver, which never links nodes.
    pub(crate) fn find(&mut self, n: NodeId) -> NodeId {
        let mut x = n.0 as usize;
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        NodeId(x as u32)
    }

    /// Read-only union-find lookup (no path compression), for post-solve
    /// passes over `&self`.
    pub(crate) fn find_read(&self, n: usize) -> usize {
        let mut x = n;
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        x
    }

    pub(crate) fn add_loc(&mut self, node: NodeId, loc: LocId) {
        match self.options.solver {
            SolverKind::Reference => {
                if self.pts[node.0 as usize].insert(loc.index()) {
                    self.worklist.push_back(node);
                }
            }
            _ => {
                let n = self.find(node);
                let i = n.0 as usize;
                if self.pts[i].contains(loc.index()) {
                    return;
                }
                let was_empty = self.delta[i].is_empty();
                if self.delta[i].insert(loc.index()) && was_empty {
                    self.worklist.push_back(n);
                }
            }
        }
    }

    fn add_copy(&mut self, from: NodeId, to: NodeId) {
        match self.options.solver {
            SolverKind::Reference => {
                if insert_sorted(&mut self.copy_succs[from.0 as usize], to)
                    && !self.pts[from.0 as usize].is_empty()
                {
                    self.worklist.push_back(from);
                }
            }
            _ => {
                let f = self.find(from);
                let t = self.find(to);
                if f == t {
                    return;
                }
                if insert_sorted(&mut self.copy_succs[f.0 as usize], t)
                    && !self.rebuilding
                    && !self.pts[f.0 as usize].is_empty()
                {
                    // Everything already propagated out of `f` must reach
                    // the new successor now; `f`'s pending delta follows
                    // through the worklist (`f` is queued whenever its
                    // delta is non-empty). During an incremental rebuild
                    // the boundary scan performs this push for every edge
                    // at once, so nothing is pushed here.
                    self.push_delta_from(f, t);
                }
            }
        }
    }

    /// [`Solver::push_delta`] with the source bits read in place from
    /// `from`'s old set — no clone of the source set (the dominant
    /// allocation on small programs, where `add_copy` fires once per
    /// assignment).
    fn push_delta_from(&mut self, from: NodeId, t: NodeId) -> bool {
        let (fi, ti) = (from.0 as usize, t.0 as usize);
        let was_empty = self.delta[ti].is_empty();
        // `pts` and `delta` are separate vectors, so the source old set,
        // the target old set, and the target delta borrow disjointly.
        let (pts, delta) = (&self.pts, &mut self.delta);
        if !delta[ti].union_with_delta(&pts[fi], &pts[ti]) {
            return false;
        }
        obs::add(obs::Counter::PtaDeltasPushed, 1);
        if was_empty {
            self.worklist.push_back(t);
        }
        true
    }

    /// Folds `bits \ old(t)` into `delta(t)`, enqueueing `t` when its delta
    /// transitions from empty to non-empty. Returns true if anything new
    /// arrived.
    pub(crate) fn push_delta(&mut self, t: NodeId, bits: &BitSet) -> bool {
        let i = t.0 as usize;
        let old = &self.pts[i];
        let delta = &mut self.delta[i];
        let was_empty = delta.is_empty();
        if !delta.union_with_delta(bits, old) {
            return false;
        }
        obs::add(obs::Counter::PtaDeltasPushed, 1);
        if was_empty {
            self.worklist.push_back(t);
        }
        true
    }

    /// Gets or creates the instance of `method` under `ctx`, analyzing its
    /// body on first creation. A suspended instance (constraints dropped
    /// by an incremental rebuild) is revived: re-marked reached and its
    /// body re-registered against the current program.
    pub(crate) fn instance(&mut self, program: &Program, method: MethodId, ctx: Ctx) -> InstId {
        if let Some(&id) = self.inst_index.get(&(method, ctx)) {
            if self.suspended.remove(&id) {
                self.reached_methods.insert(method.index());
                self.process_body(program, id);
            }
            return id;
        }
        let id = InstId(u32::try_from(self.insts.len()).expect("instance overflow"));
        obs::add(obs::Counter::PtaInstances, 1);
        self.insts.push((method, ctx));
        self.inst_index.insert((method, ctx), id);
        self.reached_methods.insert(method.index());
        self.process_body(program, id);
        id
    }

    fn is_ref(&self, program: &Program, v: VarId) -> bool {
        program.var(v).ty.is_ref()
    }

    pub(crate) fn var_node(&mut self, inst: InstId, v: VarId) -> NodeId {
        self.node(NodeKind::Var(inst, v))
    }

    /// The context qualifier an allocation in `inst` receives: the
    /// receiver location, when the policy qualifies the instance's class.
    pub(crate) fn alloc_qualifier(&self, program: &Program, inst: InstId) -> Option<LocId> {
        let (method, ctx) = self.insts[inst.0 as usize];
        let qualifies = match program.method(method).class {
            Some(c) => self.policy.qualifies(program, c),
            None => false,
        };
        match ctx {
            Ctx::Recv(l) if qualifies => Some(l),
            _ => None,
        }
    }

    /// The abstract location for an allocation executed in instance `inst`.
    /// Only receiver contexts qualify the heap abstraction (1-CFA keeps
    /// allocation-site locations).
    fn alloc_loc(&mut self, program: &Program, inst: InstId, alloc: AllocId) -> LocId {
        let ctx = self.alloc_qualifier(program, inst);
        self.locs.intern(AbsLoc { alloc, ctx })
    }

    pub(crate) fn process_body(&mut self, program: &Program, inst: InstId) {
        let (method, _) = self.insts[inst.0 as usize];
        let cmds = program.method_cmds(method);
        for cmd_id in cmds {
            let cmd = program.cmd(cmd_id).clone();
            self.process_cmd(program, inst, cmd_id, &cmd);
        }
    }

    /// Registers a load constraint `dst = base.f` and seeds it: the
    /// reference solver re-queues the base node, the delta solver runs the
    /// new constraint against the base's already-propagated set at once
    /// (the pending delta reaches it through the worklist).
    fn register_load(&mut self, base: NodeId, f: FieldId, dst: NodeId) {
        match self.options.solver {
            SolverKind::Reference => {
                self.loads[base.0 as usize].push((f, dst));
                if !self.pts[base.0 as usize].is_empty() {
                    self.worklist.push_back(base);
                }
            }
            _ => {
                let b = self.find(base);
                self.loads[b.0 as usize].push((f, dst));
                // Most registrations happen before any fact reaches the
                // base, so check emptiness before paying for the clone.
                if !self.pts[b.0 as usize].is_empty() {
                    let old = self.pts[b.0 as usize].clone();
                    self.eval_load(&old, f, dst);
                }
            }
        }
    }

    /// Registers a store constraint `base.f = src`; seeding mirrors
    /// [`Solver::register_load`].
    fn register_store(&mut self, program: &Program, base: NodeId, f: FieldId, src: NodeId) {
        match self.options.solver {
            SolverKind::Reference => {
                self.stores[base.0 as usize].push((f, src));
                if !self.pts[base.0 as usize].is_empty() {
                    self.worklist.push_back(base);
                }
            }
            _ => {
                let b = self.find(base);
                self.stores[b.0 as usize].push((f, src));
                if !self.pts[b.0 as usize].is_empty() {
                    let old = self.pts[b.0 as usize].clone();
                    self.eval_store(program, &old, f, src);
                }
            }
        }
    }

    /// Registers a receiver-indexed call; seeding mirrors
    /// [`Solver::register_load`].
    fn register_recv_call(&mut self, program: &Program, recv: NodeId, call: RecvCall) {
        let idx = self.calls.len();
        self.calls.push(call);
        match self.options.solver {
            SolverKind::Reference => {
                self.recv_calls[recv.0 as usize].push(idx);
                if !self.pts[recv.0 as usize].is_empty() {
                    self.worklist.push_back(recv);
                }
            }
            _ => {
                let r = self.find(recv);
                self.recv_calls[r.0 as usize].push(idx);
                if !self.pts[r.0 as usize].is_empty() {
                    let old = self.pts[r.0 as usize].clone();
                    self.eval_recv_call(program, idx, &old);
                }
            }
        }
    }

    pub(crate) fn process_cmd(
        &mut self,
        program: &Program,
        inst: InstId,
        cmd_id: CmdId,
        cmd: &Command,
    ) {
        let contents = program.contents_field;
        match cmd {
            Command::Assign { dst, src: Operand::Var(y) }
                if self.is_ref(program, *dst) && self.is_ref(program, *y) =>
            {
                let from = self.var_node(inst, *y);
                let to = self.var_node(inst, *dst);
                self.add_copy(from, to);
            }
            Command::ReadField { dst, obj, field } if self.is_ref(program, *dst) => {
                let base = self.var_node(inst, *obj);
                let to = self.var_node(inst, *dst);
                self.register_load(base, *field, to);
            }
            Command::WriteField { obj, field, src: Operand::Var(y) }
                if self.is_ref(program, *y) =>
            {
                let base = self.var_node(inst, *obj);
                let from = self.var_node(inst, *y);
                self.register_store(program, base, *field, from);
            }
            Command::ReadGlobal { dst, global } if self.is_ref(program, *dst) => {
                let from = self.node(NodeKind::Global(*global));
                let to = self.var_node(inst, *dst);
                self.add_copy(from, to);
            }
            Command::WriteGlobal { global, src: Operand::Var(y) } if self.is_ref(program, *y) => {
                let from = self.var_node(inst, *y);
                let to = self.node(NodeKind::Global(*global));
                self.add_copy(from, to);
            }
            Command::ReadArray { dst, arr, .. } if self.is_ref(program, *dst) => {
                let base = self.var_node(inst, *arr);
                let to = self.var_node(inst, *dst);
                self.register_load(base, contents, to);
            }
            Command::WriteArray { arr, src: Operand::Var(y), .. } if self.is_ref(program, *y) => {
                let base = self.var_node(inst, *arr);
                let from = self.var_node(inst, *y);
                self.register_store(program, base, contents, from);
            }
            Command::New { dst, alloc, .. } => {
                let loc = self.alloc_loc(program, inst, *alloc);
                let node = self.var_node(inst, *dst);
                self.add_loc(node, loc);
            }
            Command::NewArray { dst, alloc, .. } => {
                let loc = self.alloc_loc(program, inst, *alloc);
                let node = self.var_node(inst, *dst);
                self.add_loc(node, loc);
            }
            Command::Call { dst, callee, args } => match callee {
                Callee::Virtual { receiver, method } => {
                    let recv = self.var_node(inst, *receiver);
                    let call = RecvCall {
                        caller: inst,
                        cmd: cmd_id,
                        fixed_target: None,
                        method_name: method.clone(),
                        dst: *dst,
                        args: args.clone(),
                        seen: BitSet::new(),
                        dispatched: Vec::new(),
                    };
                    self.register_recv_call(program, recv, call);
                }
                Callee::Static { method } => {
                    let callee_m = program.method(*method);
                    if callee_m.class.is_some() {
                        // Direct call to an instance method (constructor
                        // style): the receiver is args[0]. Context depends
                        // on the receiver's locations, so treat it as a
                        // receiver-indexed call with a fixed target.
                        let recv_var = match args.first() {
                            Some(Operand::Var(v)) => *v,
                            _ => return, // receiver null/constant: no-op call
                        };
                        let recv = self.var_node(inst, recv_var);
                        let call = RecvCall {
                            caller: inst,
                            cmd: cmd_id,
                            fixed_target: Some(*method),
                            method_name: callee_m.name.clone(),
                            dst: *dst,
                            args: args[1..].to_vec(),
                            seen: BitSet::new(),
                            dispatched: Vec::new(),
                        };
                        self.register_recv_call(program, recv, call);
                    } else {
                        // Free function: per-site under 1-CFA, otherwise
                        // context-insensitive.
                        let ctx = if self.policy.call_site_sensitive() {
                            Ctx::Site(cmd_id)
                        } else {
                            Ctx::None
                        };
                        let callee = self.instance(program, *method, ctx);
                        self.bind_call(program, inst, cmd_id, callee, *method, None, *dst, args);
                    }
                }
            },
            Command::Return { val: Some(Operand::Var(v)) } if self.is_ref(program, *v) => {
                let from = self.var_node(inst, *v);
                let to = self.node(NodeKind::Ret(inst));
                self.add_copy(from, to);
            }
            _ => {}
        }
    }

    /// Wires actual arguments and return value between a call site and a
    /// callee instance. `this_loc` carries the dispatched receiver location
    /// for instance methods.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn bind_call(
        &mut self,
        program: &Program,
        caller: InstId,
        cmd: CmdId,
        callee_inst: InstId,
        callee: MethodId,
        this_loc: Option<LocId>,
        dst: Option<VarId>,
        args: &[Operand],
    ) {
        self.call_edges.insert((cmd, callee));
        let callee_m = program.method(callee).clone();
        let mut params = callee_m.params.iter();
        if callee_m.class.is_some() {
            let this_param = *params.next().expect("instance method has this");
            let this_node = self.var_node(callee_inst, this_param);
            if let Some(l) = this_loc {
                self.add_loc(this_node, l);
            }
        }
        for (param, arg) in params.zip(args.iter()) {
            if let Operand::Var(a) = arg {
                if self.is_ref(program, *a) && self.is_ref(program, *param) {
                    let from = self.var_node(caller, *a);
                    let to = self.var_node(callee_inst, *param);
                    self.add_copy(from, to);
                }
            }
        }
        if let Some(d) = dst {
            if self.is_ref(program, d) {
                let from = self.node(NodeKind::Ret(callee_inst));
                let to = self.var_node(caller, d);
                self.add_copy(from, to);
            }
        }
    }

    /// True if writes into `l.f` are suppressed by an annotation.
    fn is_blocked_cell(&self, program: &Program, l: LocId, f: FieldId) -> bool {
        f == program.contents_field
            && self.options.empty_contents_allocs.contains(&self.locs.get(l).alloc)
    }

    /// Context for a callee dispatched on receiver location `l` at call
    /// site `cmd`.
    pub(crate) fn callee_ctx(
        &self,
        program: &Program,
        callee: MethodId,
        l: LocId,
        cmd: CmdId,
    ) -> Ctx {
        if self.policy.call_site_sensitive() {
            return Ctx::Site(cmd);
        }
        let Some(class) = program.method(callee).class else {
            return Ctx::None;
        };
        if !self.policy.qualifies(program, class) {
            return Ctx::None;
        }
        if self.locs.depth(l) + 1 > self.policy.max_depth() {
            return Ctx::None;
        }
        Ctx::Recv(l)
    }

    /// Resolves the dispatch target of call `ci` on receiver location `l`,
    /// mirroring [`Solver::eval_recv_call`]'s rules: `None` when the
    /// receiver class is incompatible or the name does not resolve.
    pub(crate) fn dispatch_target(
        &self,
        program: &Program,
        ci: usize,
        l: LocId,
    ) -> Option<MethodId> {
        let class = self.locs.class_of(l, program);
        match self.calls[ci].fixed_target {
            Some(t) => {
                let tc = program.method(t).class.expect("instance method");
                if program.is_subclass(class, tc) {
                    Some(t)
                } else {
                    None
                }
            }
            None => program.resolve_method(class, &self.calls[ci].method_name),
        }
    }

    /// Applies a load constraint `dst = base.f` for each base location in
    /// `bits`.
    fn eval_load(&mut self, bits: &BitSet, f: FieldId, dst: NodeId) {
        for l in bits.iter() {
            let fnode = self.node(NodeKind::Field(LocId(l as u32), f));
            self.add_copy(fnode, dst);
        }
    }

    /// Applies a store constraint `base.f = src` for each base location in
    /// `bits`, unless the target cell is covered by an empty-contents
    /// annotation.
    fn eval_store(&mut self, program: &Program, bits: &BitSet, f: FieldId, src: NodeId) {
        for l in bits.iter() {
            let lid = LocId(l as u32);
            if self.is_blocked_cell(program, lid, f) {
                continue;
            }
            let fnode = self.node(NodeKind::Field(lid, f));
            self.add_copy(src, fnode);
        }
    }

    /// Dispatches receiver-indexed call `ci` on each receiver location in
    /// `bits` not yet seen.
    pub(crate) fn eval_recv_call(&mut self, program: &Program, ci: usize, bits: &BitSet) {
        for l in bits.iter() {
            if self.calls[ci].seen.contains(l) {
                continue;
            }
            self.calls[ci].seen.insert(l);
            let lid = LocId(l as u32);
            let Some(target) = self.dispatch_target(program, ci, lid) else {
                continue;
            };
            let call = self.calls[ci].clone();
            let ctx = self.callee_ctx(program, target, lid, call.cmd);
            let callee_inst = self.instance(program, target, ctx);
            self.calls[ci].dispatched.push((l, callee_inst));
            self.bind_call(
                program,
                call.caller,
                call.cmd,
                callee_inst,
                target,
                Some(lid),
                call.dst,
                &call.args,
            );
        }
    }

    pub(crate) fn solve(&mut self, program: &Program, entry: MethodId) {
        let _span = obs::span(obs::SpanKind::Pta, "points-to solve");
        match self.options.solver {
            SolverKind::Reference => self.solve_reference(program, entry),
            _ => self.solve_delta(program, entry),
        }
    }

    /// The textbook worklist: re-propagates a node's *full* points-to set
    /// to every copy successor and re-evaluates every complex constraint
    /// against the full set on each round.
    fn solve_reference(&mut self, program: &Program, entry: MethodId) {
        self.instance(program, entry, Ctx::None);
        while let Some(node) = self.worklist.pop_front() {
            self.propagations += 1;
            if obs::enabled() {
                obs::add(obs::Counter::PtaPropagations, 1);
                obs::observe(obs::Hist::PtaWorklist, self.worklist.len() as u64 + 1);
            }
            let i = node.0 as usize;
            let pts = self.pts[i].clone();
            let succs = self.copy_succs[i].clone();
            for s in succs {
                if self.pts[s.0 as usize].union_with(&pts) {
                    self.worklist.push_back(s);
                }
            }
            let loads = self.loads[i].clone();
            for (f, dst) in loads {
                self.eval_load(&pts, f, dst);
            }
            let stores = self.stores[i].clone();
            for (f, src) in stores {
                self.eval_store(program, &pts, f, src);
            }
            let call_ids = self.recv_calls[i].clone();
            for ci in call_ids {
                self.eval_recv_call(program, ci, &pts);
            }
        }
    }

    /// Difference propagation: each round drains one node's delta, merges
    /// it into the node's old set, pushes only the delta along copy edges,
    /// and re-evaluates complex constraints against the delta alone. A
    /// copy edge that propagates nothing between equal sets triggers lazy
    /// cycle detection ([`Solver::try_collapse`]).
    fn solve_delta(&mut self, program: &Program, entry: MethodId) {
        self.instance(program, entry, Ctx::None);
        self.drain_delta(program);
    }

    /// The delta-propagation pop loop, runnable from any consistent
    /// mid-solve state (initial solve, or after an incremental rebuild's
    /// boundary scan has seeded the worklist).
    pub(crate) fn drain_delta(&mut self, program: &Program) {
        'pop: while let Some(node) = self.worklist.pop_front() {
            let n = self.find(node);
            let i = n.0 as usize;
            if self.delta[i].is_empty() {
                continue; // stale entry: already drained or collapsed away
            }
            let d = std::mem::take(&mut self.delta[i]);
            self.pts[i].union_with(&d);
            self.propagations += 1;
            if let Some(log) = self.drain_log.as_mut() {
                log.push(n);
                let cap = self.options.drain_log_cap;
                if cap != 0 && log.len() >= cap.max(self.drain_log_floor * 2) {
                    self.compact_drain_log();
                }
            }
            if obs::enabled() {
                obs::add(obs::Counter::PtaPropagations, 1);
                obs::observe(obs::Hist::PtaWorklist, self.worklist.len() as u64 + 1);
                obs::observe(obs::Hist::PtaDeltaLen, d.len() as u64);
            }
            let mut succs = std::mem::take(&mut self.scratch_succs);
            succs.clear();
            succs.extend_from_slice(&self.copy_succs[i]);
            let mut collapsed = false;
            for &s_raw in &succs {
                let s = self.find(s_raw);
                if s == n {
                    continue;
                }
                if !self.push_delta(s, &d) && self.try_collapse(n, s) {
                    // `n` was swallowed by a cycle collapse. Its
                    // representative was re-enqueued with the full merged
                    // set (which includes `d`), so the rest of this round
                    // — remaining successors and complex constraints — is
                    // subsumed by the representative's next round.
                    collapsed = true;
                    break;
                }
            }
            self.scratch_succs = succs;
            if collapsed {
                continue 'pop;
            }
            let mut fields = std::mem::take(&mut self.scratch_fields);
            fields.clear();
            fields.extend_from_slice(&self.loads[i]);
            for &(f, dst) in &fields {
                self.eval_load(&d, f, dst);
            }
            fields.clear();
            fields.extend_from_slice(&self.stores[i]);
            for &(f, src) in &fields {
                self.eval_store(program, &d, f, src);
            }
            self.scratch_fields = fields;
            let mut calls = std::mem::take(&mut self.scratch_calls);
            calls.clear();
            calls.extend_from_slice(&self.recv_calls[i]);
            for &ci in &calls {
                self.eval_recv_call(program, ci, &d);
            }
            self.scratch_calls = calls;
        }
    }

    /// Compacts the drain log in place: entries resolve to their current
    /// union-find representative, duplicates collapse to one, and entries
    /// whose owning `Var`/`Ret` instance is suspended are dropped (a
    /// suspended owner's facts are invisible to the published result, and
    /// reachability flips are charged to the changed set separately by the
    /// incremental solver). Consumers only ever read the log as a
    /// representative-resolved *set*, so this is semantics-preserving.
    pub(crate) fn compact_drain_log(&mut self) {
        let Some(log) = self.drain_log.take() else { return };
        let mut seen: HashSet<usize> = HashSet::with_capacity(log.len());
        let mut out: Vec<NodeId> = Vec::new();
        for n in log {
            let r = self.find_read(n.0 as usize);
            if !seen.insert(r) {
                continue;
            }
            let live = match self.nodes[r] {
                NodeKind::Var(i, _) | NodeKind::Ret(i) => !self.suspended.contains(&i),
                _ => true,
            };
            if live {
                out.push(NodeId(r as u32));
            }
        }
        obs::add(obs::Counter::PtaDrainlogCompactions, 1);
        self.drain_log_floor = out.len();
        self.drain_log = Some(out);
    }

    /// Lazy cycle detection, fired when propagating `n → s` added nothing:
    /// if the endpoint sets are equal — the cheap necessary condition for
    /// `n` and `s` to sit on a common copy cycle — probe the copy graph
    /// from `n` and collapse every SCC found. The equality test gates the
    /// probe ledger: an edge whose sets are still unequal stays eligible
    /// (its sets may converge later and then deserve the probe), and the
    /// common near-fixpoint miss costs one word-wise compare instead of a
    /// hash insert. Each (n, s) edge runs the Tarjan probe at most once.
    /// Returns true if `n` itself was collapsed.
    fn try_collapse(&mut self, n: NodeId, s: NodeId) -> bool {
        if !self.sets_equal(n, s) {
            return false;
        }
        if !self.lcd_attempted.insert(((n.0 as u64) << 32) | s.0 as u64) {
            return false;
        }
        self.collapse_cycles_from(n)
    }

    /// Element-wise equality of the full (old ∪ delta) sets, computed word
    /// by word without materializing either union. Word vectors can differ
    /// by trailing zero words, so derived `Eq` is not usable.
    fn sets_equal(&self, a: NodeId, b: NodeId) -> bool {
        let (ai, bi) = (a.0 as usize, b.0 as usize);
        BitSet::pair_union_eq(&self.pts[ai], &self.delta[ai], &self.pts[bi], &self.delta[bi])
    }

    /// The current successors of `v`, union-find-resolved with self-loops
    /// dropped, in deterministic (stored) order.
    fn resolved_succs(&mut self, v: NodeId) -> Vec<NodeId> {
        let raw = self.copy_succs[v.0 as usize].clone();
        let mut out = Vec::with_capacity(raw.len());
        for s in raw {
            let r = self.find(s);
            if r != v {
                out.push(r);
            }
        }
        out
    }

    /// Runs (iterative) Tarjan over the resolved copy graph reachable from
    /// `origin` and collapses every SCC of size ≥ 2 into its minimum-id
    /// member — the deterministic representative choice. Merged state:
    /// points-to sets, deltas, successor lists (re-sorted and dedup'd, so
    /// propagation order stays canonical), and pending complex
    /// constraints. The representative's old set is flushed back into its
    /// delta and the node re-enqueued: every member's constraints must see
    /// the locations the other members had already propagated. Returns
    /// true if `origin` was part of a collapsed SCC.
    fn collapse_cycles_from(&mut self, origin: NodeId) -> bool {
        let root = self.find(origin);
        let mut index: HashMap<NodeId, u32> = HashMap::new();
        let mut lowlink: HashMap<NodeId, u32> = HashMap::new();
        let mut on_stack: HashSet<NodeId> = HashSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut sccs: Vec<Vec<NodeId>> = Vec::new();
        let mut next_index = 0u32;
        let mut frames: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();

        index.insert(root, next_index);
        lowlink.insert(root, next_index);
        next_index += 1;
        stack.push(root);
        on_stack.insert(root);
        let root_succs = self.resolved_succs(root);
        frames.push((root, root_succs, 0));

        while let Some(top) = frames.last_mut() {
            let v = top.0;
            let next_child = if top.2 < top.1.len() {
                let w = top.1[top.2];
                top.2 += 1;
                Some(w)
            } else {
                None
            };
            match next_child {
                Some(w) => {
                    if let Some(&wi) = index.get(&w) {
                        if on_stack.contains(&w) {
                            let low = lowlink[&v].min(wi);
                            lowlink.insert(v, low);
                        }
                    } else {
                        index.insert(w, next_index);
                        lowlink.insert(w, next_index);
                        next_index += 1;
                        stack.push(w);
                        on_stack.insert(w);
                        let succs = self.resolved_succs(w);
                        frames.push((w, succs, 0));
                    }
                }
                None => {
                    frames.pop();
                    let low = lowlink[&v];
                    if let Some(parent) = frames.last() {
                        let pv = parent.0;
                        if low < lowlink[&pv] {
                            lowlink.insert(pv, low);
                        }
                    }
                    if low == index[&v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack.remove(&w);
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if scc.len() > 1 {
                            sccs.push(scc);
                        }
                    }
                }
            }
        }

        let mut origin_collapsed = false;
        for scc in sccs {
            let rep = *scc.iter().min().expect("non-empty scc");
            obs::add(obs::Counter::PtaSccsCollapsed, 1);
            origin_collapsed |= scc.contains(&root);
            let ri = rep.0 as usize;
            for &m in &scc {
                if m == rep {
                    continue;
                }
                let mi = m.0 as usize;
                self.parent[mi] = rep.0;
                let mpts = std::mem::take(&mut self.pts[mi]);
                self.pts[ri].union_with(&mpts);
                let mdelta = std::mem::take(&mut self.delta[mi]);
                self.delta[ri].union_with(&mdelta);
                let msuccs = std::mem::take(&mut self.copy_succs[mi]);
                self.copy_succs[ri].extend(msuccs);
                let mloads = std::mem::take(&mut self.loads[mi]);
                self.loads[ri].extend(mloads);
                let mstores = std::mem::take(&mut self.stores[mi]);
                self.stores[ri].extend(mstores);
                let mcalls = std::mem::take(&mut self.recv_calls[mi]);
                self.recv_calls[ri].extend(mcalls);
            }
            // Normalize the merged successor list: resolve, drop edges
            // internal to the collapsed cycle, restore sorted-dedup'd
            // order.
            let mut succs = std::mem::take(&mut self.copy_succs[ri]);
            for s in succs.iter_mut() {
                *s = self.find(*s);
            }
            succs.retain(|&s| s != rep);
            succs.sort_unstable();
            succs.dedup();
            self.copy_succs[ri] = succs;
            // Flush old back into delta: one full re-evaluation round for
            // the merged node covers every member-to-member hand-off.
            let old = std::mem::take(&mut self.pts[ri]);
            self.delta[ri].union_with(&old);
            if !self.delta[ri].is_empty() {
                self.worklist.push_back(rep);
            }
        }
        origin_collapsed
    }

    fn finish(self, program: &Program) -> PtaResult {
        self.build_result(program, None)
    }

    /// Publishes the solver's current fixpoint as a [`PtaResult`] without
    /// consuming or mutating the solver, so a resident incremental solver
    /// can snapshot after every edit batch.
    ///
    /// `live` optionally supplies a replacement location table plus a map
    /// from the solver's (append-only) location ids into it; the
    /// incremental solver uses this to drop locations whose allocation
    /// sites edits have removed. `None` publishes every interned location
    /// (the full-solve path).
    ///
    /// The published table is canonically renumbered either way: interning
    /// order is a fixpoint-strategy artifact; the published numbering must
    /// not be.
    pub(crate) fn build_result(
        &self,
        program: &Program,
        live: Option<(LocTable, Vec<Option<LocId>>)>,
    ) -> PtaResult {
        let (mut table, map): (LocTable, Vec<Option<LocId>>) = match live {
            Some(x) => x,
            None => (self.locs.clone(), self.locs.ids().map(Some).collect()),
        };
        let perm = table.canonicalize(program);
        let final_loc = |l: usize| -> LocId {
            let fresh = map[l].expect("dead abstract location survived in a live set");
            perm[fresh.index()]
        };
        let remap = |bs: &BitSet| -> BitSet { bs.iter().map(|l| final_loc(l).index()).collect() };
        let n_nodes = self.nodes.len();
        let reps: Vec<usize> = (0..n_nodes).map(|i| self.find_read(i)).collect();
        let resolved: Vec<BitSet> = (0..n_nodes)
            .map(|i| if reps[i] == i { remap(&self.pts[i]) } else { BitSet::new() })
            .collect();

        // Conflate per-instance variable points-to sets. Collapsed members
        // read their representative's set under their own node kind.
        let mut var_pt: HashMap<VarId, BitSet> = HashMap::new();
        let mut global_pt: Vec<BitSet> = vec![BitSet::new(); program.global_ids().count()];
        let mut heap: HashMap<(LocId, FieldId), BitSet> = HashMap::new();
        for (i, kind) in self.nodes.iter().enumerate() {
            let pts = &resolved[reps[i]];
            if pts.is_empty() {
                continue;
            }
            match kind {
                NodeKind::Var(_, v) => {
                    var_pt.entry(*v).or_default().union_with(pts);
                }
                NodeKind::Global(g) => {
                    global_pt[g.index()].union_with(pts);
                }
                NodeKind::Field(l, f) => {
                    heap.entry((final_loc(l.index()), *f)).or_default().union_with(pts);
                }
                NodeKind::Ret(_) => {}
            }
        }

        // Producer map: which write commands may produce each heap edge.
        let mut producers: HashMap<HeapEdge, Vec<CmdId>> = HashMap::new();
        let empty = BitSet::new();
        let reached: Vec<MethodId> =
            program.method_ids().filter(|m| self.reached_methods.contains(m.index())).collect();
        for &m in &reached {
            for cmd_id in program.method_cmds(m) {
                match program.cmd(cmd_id) {
                    Command::WriteField { obj, field, src: Operand::Var(y) } => {
                        let base_pt = var_pt.get(obj).unwrap_or(&empty).clone();
                        let val_pt = var_pt.get(y).unwrap_or(&empty).clone();
                        record_producers(&mut producers, &base_pt, *field, &val_pt, cmd_id);
                    }
                    Command::WriteArray { arr, src: Operand::Var(y), .. } => {
                        let mut base_pt = var_pt.get(arr).unwrap_or(&empty).clone();
                        // Annotated arrays have no producible contents edges.
                        let blocked: Vec<usize> = base_pt
                            .iter()
                            .filter(|&l| {
                                // `base_pt` is already canonically numbered;
                                // blocked cells are keyed by allocation
                                // site, so resolve through the fresh table.
                                self.options
                                    .empty_contents_allocs
                                    .contains(&table.get(LocId(l as u32)).alloc)
                            })
                            .collect();
                        for l in blocked {
                            base_pt.remove(l);
                        }
                        let val_pt = var_pt.get(y).unwrap_or(&empty).clone();
                        record_producers(
                            &mut producers,
                            &base_pt,
                            program.contents_field,
                            &val_pt,
                            cmd_id,
                        );
                    }
                    Command::WriteGlobal { global, src: Operand::Var(y) } => {
                        let val_pt = var_pt.get(y).unwrap_or(&empty);
                        for t in val_pt.iter() {
                            producers
                                .entry(HeapEdge::Global {
                                    global: *global,
                                    target: LocId(t as u32),
                                })
                                .or_default()
                                .push(cmd_id);
                        }
                    }
                    _ => {}
                }
            }
        }

        // Call graph, conflated over contexts.
        let mut call_targets: HashMap<CmdId, Vec<MethodId>> = HashMap::new();
        let mut callers: HashMap<MethodId, Vec<CmdId>> = HashMap::new();
        for &(cmd, callee) in &self.call_edges {
            call_targets.entry(cmd).or_default().push(callee);
            callers.entry(callee).or_default().push(cmd);
        }
        for v in call_targets.values_mut() {
            v.sort();
            v.dedup();
        }
        for v in callers.values_mut() {
            v.sort();
            v.dedup();
        }

        let loc_class: Vec<ClassId> = table.ids().map(|l| table.class_of(l, program)).collect();
        let mut alloc_locs: HashMap<AllocId, BitSet> = HashMap::new();
        for l in table.ids() {
            alloc_locs.entry(table.get(l).alloc).or_default().insert(l.index());
        }

        PtaResult::new(
            table,
            var_pt,
            global_pt,
            heap,
            producers,
            call_targets,
            callers,
            self.reached_methods.clone(),
            loc_class,
            alloc_locs,
        )
    }
}

fn record_producers(
    producers: &mut HashMap<HeapEdge, Vec<CmdId>>,
    base_pt: &BitSet,
    field: FieldId,
    val_pt: &BitSet,
    cmd: CmdId,
) {
    for b in base_pt.iter() {
        for t in val_pt.iter() {
            producers
                .entry(HeapEdge::Field { base: LocId(b as u32), field, target: LocId(t as u32) })
                .or_default()
                .push(cmd);
        }
    }
}

/// Runs the points-to analysis on `program` from its entry method.
///
/// # Panics
///
/// Panics if `program` has no entry method.
pub fn analyze(program: &Program, policy: ContextPolicy) -> PtaResult {
    analyze_with(program, policy, &PtaOptions::default())
}

/// Which fixpoint engine [`analyze_with`] runs. Both produce the same
/// [`PtaResult`], bit for bit; only the amount of work differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverKind {
    /// Difference propagation with online cycle collapsing: nodes keep an
    /// old/delta split, only deltas flow along copy edges, and copy cycles
    /// are merged into a representative node via union-find.
    #[default]
    Delta,
    /// The textbook full-set worklist solver, kept as the differential-
    /// testing reference for [`SolverKind::Delta`].
    Reference,
    /// The delta fixpoint plus a demand-driven *query* tier
    /// ([`crate::DemandPta`]): per-query CFL-reachability over the solved
    /// constraint graph computes only the query-relevant slice, gated
    /// fact-by-fact against the exhaustive result. The whole-program
    /// result is identical to [`SolverKind::Delta`]'s.
    Demand,
}

impl SolverKind {
    /// Stable lowercase name, used in run-report meta and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Delta => "delta",
            SolverKind::Reference => "reference",
            SolverKind::Demand => "demand",
        }
    }
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "delta" => Ok(SolverKind::Delta),
            "reference" => Ok(SolverKind::Reference),
            "demand" => Ok(SolverKind::Demand),
            other => Err(format!("unknown solver {other:?} (expected delta|reference|demand)")),
        }
    }
}

/// Extra inputs to the analysis.
#[derive(Clone, Debug)]
pub struct PtaOptions {
    /// Allocation sites whose array `contents` are trusted to stay empty —
    /// the `EMPTY_TABLE` annotation of the paper's `Ann?=Y` configuration.
    /// Stores into (and hence loads out of) the `contents` field of these
    /// arrays are suppressed.
    pub empty_contents_allocs: Vec<tir::AllocId>,
    /// Fixpoint engine selection; [`SolverKind::Delta`] unless overridden.
    pub solver: SolverKind,
    /// Soft cap on the incremental drain log: once a batch's log reaches
    /// this many entries it is compacted in place (entries resolved to
    /// their representatives, duplicates and suspended-owner entries
    /// dropped). 0 disables compaction.
    pub drain_log_cap: usize,
    /// Demand-query exploration budget: the maximum number of
    /// constraint-graph representatives one query may traverse before it
    /// abandons the slice and falls back to the exhaustive result.
    /// 0 means unbounded.
    pub demand_budget: usize,
}

impl Default for PtaOptions {
    fn default() -> Self {
        PtaOptions {
            empty_contents_allocs: Vec::new(),
            solver: SolverKind::default(),
            drain_log_cap: 4096,
            demand_budget: 0,
        }
    }
}

/// Runs the points-to analysis with annotations (see [`PtaOptions`]).
///
/// # Panics
///
/// Panics if `program` has no entry method.
pub fn analyze_with(program: &Program, policy: ContextPolicy, options: &PtaOptions) -> PtaResult {
    let mut solver = Solver::new(policy);
    solver.options = options.clone();
    solver.solve(program, program.entry());
    let result = solver.finish(program);
    result.check_types(program);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::parse;

    fn run(src: &str) -> (Program, PtaResult) {
        let p = parse(src).expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        (p, r)
    }

    #[test]
    fn tracks_direct_assignment() {
        let (p, r) = run(r#"
fn main() {
  var x: Object;
  var y: Object;
  x = new Object @o0;
  y = x;
}
entry main;
"#);
        let main = p.entry();
        let y = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "y").unwrap();
        let pt = r.pt_var(y);
        assert_eq!(pt.len(), 1);
        let l = LocId(pt.iter().next().unwrap() as u32);
        assert_eq!(r.loc_name(&p, l), "o0");
    }

    #[test]
    fn field_writes_flow_to_reads() {
        let (p, r) = run(r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var o: Object;
  var got: Object;
  b = new Box @box0;
  o = new Object @obj0;
  b.item = o;
  got = b.item;
}
entry main;
"#);
        let main = p.entry();
        let got = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "got").unwrap();
        let names: Vec<String> =
            r.pt_var(got).iter().map(|l| r.loc_name(&p, LocId(l as u32))).collect();
        assert_eq!(names, vec!["obj0"]);
    }

    #[test]
    fn virtual_dispatch_selects_targets_per_loc() {
        let (p, r) = run(r#"
class A {
  method mk(this: A): Object {
    var o: Object;
    o = new Object @fromA;
    return o;
  }
}
class B extends A {
  method mk(this: B): Object {
    var o: Object;
    o = new Object @fromB;
    return o;
  }
}
fn main() {
  var a: A;
  var got: Object;
  a = new B @b0;
  got = call a.mk();
}
entry main;
"#);
        let main = p.entry();
        let got = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "got").unwrap();
        let names: Vec<String> =
            r.pt_var(got).iter().map(|l| r.loc_name(&p, LocId(l as u32))).collect();
        // Only B::mk is a dispatch target since a only points to b0.
        assert_eq!(names, vec!["fromB"]);
        let a_cls = p.class_by_name("A").unwrap();
        let a_mk = p.method_on(a_cls, "mk").unwrap();
        assert!(!r.is_reached(a_mk));
    }

    #[test]
    fn globals_flow_interprocedurally() {
        let (p, r) = run(r#"
global G: Object;
fn put() {
  var o: Object;
  o = new Object @stored;
  $G = o;
}
fn main() {
  var got: Object;
  call put();
  got = $G;
}
entry main;
"#);
        let g = p.global_by_name("G").unwrap();
        let names: Vec<String> =
            r.pt_global(g).iter().map(|l| r.loc_name(&p, LocId(l as u32))).collect();
        assert_eq!(names, vec!["stored"]);
        let main = p.entry();
        let got = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "got").unwrap();
        assert_eq!(r.pt_var(got).len(), 1);
    }

    #[test]
    fn arrays_conflate_contents() {
        let (p, r) = run(r#"
fn main() {
  var a: array;
  var x: Object;
  var y: Object;
  a = newarray @arr0 [2];
  x = new Object @o0;
  a[0] = x;
  y = a[1];
}
entry main;
"#);
        let main = p.entry();
        let y = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "y").unwrap();
        let names: Vec<String> =
            r.pt_var(y).iter().map(|l| r.loc_name(&p, LocId(l as u32))).collect();
        assert_eq!(names, vec!["o0"]);
    }

    #[test]
    fn container_sensitivity_splits_allocations() {
        let src = r#"
class Holder {
  field item: Object;
  method fill(this: Holder) {
    var o: Object;
    o = new Object @inner;
    this.item = o;
  }
}
fn main() {
  var h1: Holder;
  var h2: Holder;
  var a: Object;
  var b: Object;
  h1 = new Holder @h1;
  h2 = new Holder @h2;
  call h1.fill();
  call h2.fill();
  a = h1.item;
  b = h2.item;
}
entry main;
"#;
        let p = parse(src).expect("parse");
        // Insensitive: both reads see the same `inner` loc.
        let r0 = analyze(&p, ContextPolicy::Insensitive);
        let main = p.entry();
        let var =
            |n: &str| p.method(main).locals.iter().copied().find(|&v| p.var(v).name == n).unwrap();
        assert_eq!(r0.pt_var(var("a")), r0.pt_var(var("b")));

        // Container-sensitive on Holder: the allocations split.
        let policy = ContextPolicy::containers_named(&p, &["Holder"]);
        let r1 = analyze(&p, policy);
        let a_names: Vec<String> =
            r1.pt_var(var("a")).iter().map(|l| r1.loc_name(&p, LocId(l as u32))).collect();
        let b_names: Vec<String> =
            r1.pt_var(var("b")).iter().map(|l| r1.loc_name(&p, LocId(l as u32))).collect();
        assert_eq!(a_names, vec!["h1.inner"]);
        assert_eq!(b_names, vec!["h2.inner"]);
    }

    #[test]
    fn producer_map_names_field_writes() {
        let (p, r) = run(r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  b.item = o;
}
entry main;
"#);
        let box_cls = p.class_by_name("Box").unwrap();
        let item = p.resolve_field(box_cls, "item").unwrap();
        let (box_loc, obj_loc) = {
            let mut box_loc = None;
            let mut obj_loc = None;
            for l in r.locs().ids() {
                match r.loc_name(&p, l).as_str() {
                    "box0" => box_loc = Some(l),
                    "obj0" => obj_loc = Some(l),
                    _ => {}
                }
            }
            (box_loc.unwrap(), obj_loc.unwrap())
        };
        let edge = HeapEdge::Field { base: box_loc, field: item, target: obj_loc };
        let prods = r.producers(&edge);
        assert_eq!(prods.len(), 1);
        assert!(matches!(p.cmd(prods[0]), Command::WriteField { .. }));
    }

    #[test]
    fn call_graph_records_callers() {
        let (p, r) = run(r#"
fn helper() { return; }
fn main() {
  call helper();
  call helper();
}
entry main;
"#);
        let helper = p.free_function("helper").unwrap();
        assert_eq!(r.callers(helper).len(), 2);
        assert!(r.is_reached(helper));
    }

    #[test]
    fn copy_cycles_collapse_to_one_set() {
        // x → y → z → x via assignments in a loop body: all three share
        // one fixpoint set; the delta solver must collapse the cycle and
        // still agree with the reference solver.
        let src = r#"
fn main() {
  var x: Object;
  var y: Object;
  var z: Object;
  x = new Object @a0;
  while (0 == 0) {
    y = x;
    z = y;
    x = z;
  }
  y = new Object @b0;
}
entry main;
"#;
        let p = parse(src).expect("parse");
        for solver in [SolverKind::Delta, SolverKind::Reference] {
            let opts = PtaOptions { solver, ..PtaOptions::default() };
            let r = analyze_with(&p, ContextPolicy::Insensitive, &opts);
            let main = p.entry();
            let var = |n: &str| {
                p.method(main).locals.iter().copied().find(|&v| p.var(v).name == n).unwrap()
            };
            let names = |v| {
                let mut ns: Vec<String> =
                    r.pt_var(v).iter().map(|l| r.loc_name(&p, LocId(l as u32))).collect();
                ns.sort();
                ns
            };
            assert_eq!(names(var("x")), vec!["a0", "b0"], "{solver:?}");
            assert_eq!(names(var("z")), vec!["a0", "b0"], "{solver:?}");
            assert_eq!(names(var("y")), vec!["a0", "b0"], "{solver:?}");
        }
    }

    #[test]
    fn solvers_agree_on_recursive_flows() {
        // Mutual recursion threads a parameter cycle through calls and a
        // field; both solvers must reach the same result.
        let src = r#"
class Cell { field item: Object; }
global OUT: Object;
fn ping(o: Object, c: Cell): Object {
  var r: Object;
  c.item = o;
  r = call pong(o, c);
  return r;
}
fn pong(o: Object, c: Cell): Object {
  var r: Object;
  var got: Object;
  got = c.item;
  if (0 == 0) {
    r = call ping(o, c);
    got = r;
  }
  return got;
}
fn main() {
  var o: Object;
  var c: Cell;
  var out: Object;
  o = new Object @seed;
  c = new Cell @cell;
  out = call ping(o, c);
  $OUT = out;
}
entry main;
"#;
        let p = parse(src).expect("parse");
        let delta = analyze_with(
            &p,
            ContextPolicy::Insensitive,
            &PtaOptions { solver: SolverKind::Delta, ..PtaOptions::default() },
        );
        let reference = analyze_with(
            &p,
            ContextPolicy::Insensitive,
            &PtaOptions { solver: SolverKind::Reference, ..PtaOptions::default() },
        );
        let g = p.global_by_name("OUT").unwrap();
        assert_eq!(delta.pt_global(g), reference.pt_global(g));
        assert!(!delta.pt_global(g).is_empty());
        let names: Vec<String> =
            delta.pt_global(g).iter().map(|l| delta.loc_name(&p, LocId(l as u32))).collect();
        assert_eq!(names, vec!["seed"]);
    }
}
