//! The flow-insensitive Andersen-style points-to analysis with on-the-fly
//! call-graph construction.
//!
//! Subset constraints are solved with a worklist over a node graph:
//! variable nodes (per method instance), global nodes, heap field nodes
//! (per abstract location), and return-value nodes. Field reads/writes and
//! virtual calls are *complex* constraints indexed on their base/receiver
//! node and re-processed as that node's points-to set grows.

use std::collections::{HashMap, HashSet, VecDeque};

use tir::{
    AllocId, Callee, ClassId, CmdId, Command, FieldId, GlobalId, MethodId, Operand, Program, VarId,
};

use crate::bitset::BitSet;
use crate::context::ContextPolicy;
use crate::loc::{AbsLoc, LocId, LocTable};
use crate::result::{HeapEdge, PtaResult};

/// A method-analysis context: the receiver's abstract location (object
/// sensitivity), the call site (1-CFA), or nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Ctx {
    /// Context-insensitive instance.
    None,
    /// Keyed by receiver location (object/container sensitivity).
    Recv(LocId),
    /// Keyed by call site (1-CFA).
    Site(CmdId),
}

/// Interned (method, context) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct InstId(u32);

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum NodeKind {
    /// A local variable of a method instance.
    Var(InstId, VarId),
    /// A global variable.
    Global(GlobalId),
    /// Field `f` of objects abstracted by a location.
    Field(LocId, FieldId),
    /// The return value of a method instance.
    Ret(InstId),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct NodeId(u32);

/// A pending receiver-indexed call: dispatch is re-run as the receiver's
/// points-to set grows.
#[derive(Clone, Debug)]
struct RecvCall {
    caller: InstId,
    cmd: CmdId,
    /// `None` for virtual dispatch by name; `Some` for a direct call to an
    /// instance method (constructor-style), which skips re-resolution.
    fixed_target: Option<MethodId>,
    method_name: String,
    dst: Option<VarId>,
    args: Vec<Operand>,
    /// Receiver locations already dispatched.
    seen: BitSet,
}

struct Solver<'p> {
    program: &'p Program,
    policy: ContextPolicy,
    locs: LocTable,
    insts: Vec<(MethodId, Ctx)>,
    inst_index: HashMap<(MethodId, Ctx), InstId>,
    nodes: Vec<NodeKind>,
    node_index: HashMap<NodeKind, NodeId>,
    pts: Vec<BitSet>,
    copy_succs: Vec<HashSet<NodeId>>,
    loads: Vec<Vec<(FieldId, NodeId)>>,
    stores: Vec<Vec<(FieldId, NodeId)>>,
    recv_calls: Vec<Vec<usize>>,
    calls: Vec<RecvCall>,
    worklist: VecDeque<NodeId>,
    /// (caller cmd, callee method) call-graph edges.
    call_edges: HashSet<(CmdId, MethodId)>,
    reached_methods: BitSet,
    options: PtaOptions,
}

impl<'p> Solver<'p> {
    fn new(program: &'p Program, policy: ContextPolicy) -> Self {
        Solver {
            program,
            policy,
            locs: LocTable::new(),
            insts: Vec::new(),
            inst_index: HashMap::new(),
            nodes: Vec::new(),
            node_index: HashMap::new(),
            pts: Vec::new(),
            copy_succs: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            recv_calls: Vec::new(),
            calls: Vec::new(),
            worklist: VecDeque::new(),
            call_edges: HashSet::new(),
            reached_methods: BitSet::new(),
            options: PtaOptions::default(),
        }
    }

    fn node(&mut self, kind: NodeKind) -> NodeId {
        if let Some(&id) = self.node_index.get(&kind) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node overflow"));
        obs::add(obs::Counter::PtaNodes, 1);
        self.nodes.push(kind);
        self.node_index.insert(kind, id);
        self.pts.push(BitSet::new());
        self.copy_succs.push(HashSet::new());
        self.loads.push(Vec::new());
        self.stores.push(Vec::new());
        self.recv_calls.push(Vec::new());
        id
    }

    fn add_loc(&mut self, node: NodeId, loc: LocId) {
        if self.pts[node.0 as usize].insert(loc.index()) {
            self.worklist.push_back(node);
        }
    }

    fn add_copy(&mut self, from: NodeId, to: NodeId) {
        if self.copy_succs[from.0 as usize].insert(to) && !self.pts[from.0 as usize].is_empty() {
            self.worklist.push_back(from);
        }
    }

    /// Gets or creates the instance of `method` under `ctx`, analyzing its
    /// body on first creation.
    fn instance(&mut self, method: MethodId, ctx: Ctx) -> InstId {
        if let Some(&id) = self.inst_index.get(&(method, ctx)) {
            return id;
        }
        let id = InstId(u32::try_from(self.insts.len()).expect("instance overflow"));
        obs::add(obs::Counter::PtaInstances, 1);
        self.insts.push((method, ctx));
        self.inst_index.insert((method, ctx), id);
        self.reached_methods.insert(method.index());
        self.process_body(id);
        id
    }

    fn is_ref(&self, v: VarId) -> bool {
        self.program.var(v).ty.is_ref()
    }

    fn var_node(&mut self, inst: InstId, v: VarId) -> NodeId {
        self.node(NodeKind::Var(inst, v))
    }

    /// The abstract location for an allocation executed in instance `inst`.
    /// Only receiver contexts qualify the heap abstraction (1-CFA keeps
    /// allocation-site locations).
    fn alloc_loc(&mut self, inst: InstId, alloc: AllocId) -> LocId {
        let (method, ctx) = self.insts[inst.0 as usize];
        let qualifies = match self.program.method(method).class {
            Some(c) => self.policy.qualifies(self.program, c),
            None => false,
        };
        let ctx = match ctx {
            Ctx::Recv(l) if qualifies => Some(l),
            _ => None,
        };
        self.locs.intern(AbsLoc { alloc, ctx })
    }

    fn process_body(&mut self, inst: InstId) {
        let (method, _) = self.insts[inst.0 as usize];
        let cmds = self.program.method_cmds(method);
        for cmd_id in cmds {
            let cmd = self.program.cmd(cmd_id).clone();
            self.process_cmd(inst, cmd_id, &cmd);
        }
    }

    fn process_cmd(&mut self, inst: InstId, cmd_id: CmdId, cmd: &Command) {
        let contents = self.program.contents_field;
        match cmd {
            Command::Assign { dst, src: Operand::Var(y) }
                if self.is_ref(*dst) && self.is_ref(*y) =>
            {
                let from = self.var_node(inst, *y);
                let to = self.var_node(inst, *dst);
                self.add_copy(from, to);
            }
            Command::ReadField { dst, obj, field } if self.is_ref(*dst) => {
                let base = self.var_node(inst, *obj);
                let to = self.var_node(inst, *dst);
                self.loads[base.0 as usize].push((*field, to));
                if !self.pts[base.0 as usize].is_empty() {
                    self.worklist.push_back(base);
                }
            }
            Command::WriteField { obj, field, src: Operand::Var(y) } if self.is_ref(*y) => {
                let base = self.var_node(inst, *obj);
                let from = self.var_node(inst, *y);
                self.stores[base.0 as usize].push((*field, from));
                if !self.pts[base.0 as usize].is_empty() {
                    self.worklist.push_back(base);
                }
            }
            Command::ReadGlobal { dst, global } if self.is_ref(*dst) => {
                let from = self.node(NodeKind::Global(*global));
                let to = self.var_node(inst, *dst);
                self.add_copy(from, to);
            }
            Command::WriteGlobal { global, src: Operand::Var(y) } if self.is_ref(*y) => {
                let from = self.var_node(inst, *y);
                let to = self.node(NodeKind::Global(*global));
                self.add_copy(from, to);
            }
            Command::ReadArray { dst, arr, .. } if self.is_ref(*dst) => {
                let base = self.var_node(inst, *arr);
                let to = self.var_node(inst, *dst);
                self.loads[base.0 as usize].push((contents, to));
                if !self.pts[base.0 as usize].is_empty() {
                    self.worklist.push_back(base);
                }
            }
            Command::WriteArray { arr, src: Operand::Var(y), .. } if self.is_ref(*y) => {
                let base = self.var_node(inst, *arr);
                let from = self.var_node(inst, *y);
                self.stores[base.0 as usize].push((contents, from));
                if !self.pts[base.0 as usize].is_empty() {
                    self.worklist.push_back(base);
                }
            }
            Command::New { dst, alloc, .. } => {
                let loc = self.alloc_loc(inst, *alloc);
                let node = self.var_node(inst, *dst);
                self.add_loc(node, loc);
            }
            Command::NewArray { dst, alloc, .. } => {
                let loc = self.alloc_loc(inst, *alloc);
                let node = self.var_node(inst, *dst);
                self.add_loc(node, loc);
            }
            Command::Call { dst, callee, args } => match callee {
                Callee::Virtual { receiver, method } => {
                    let recv = self.var_node(inst, *receiver);
                    let idx = self.calls.len();
                    self.calls.push(RecvCall {
                        caller: inst,
                        cmd: cmd_id,
                        fixed_target: None,
                        method_name: method.clone(),
                        dst: *dst,
                        args: args.clone(),
                        seen: BitSet::new(),
                    });
                    self.recv_calls[recv.0 as usize].push(idx);
                    if !self.pts[recv.0 as usize].is_empty() {
                        self.worklist.push_back(recv);
                    }
                }
                Callee::Static { method } => {
                    let callee_m = self.program.method(*method);
                    if callee_m.class.is_some() {
                        // Direct call to an instance method (constructor
                        // style): the receiver is args[0]. Context depends
                        // on the receiver's locations, so treat it as a
                        // receiver-indexed call with a fixed target.
                        let recv_var = match args.first() {
                            Some(Operand::Var(v)) => *v,
                            _ => return, // receiver null/constant: no-op call
                        };
                        let recv = self.var_node(inst, recv_var);
                        let idx = self.calls.len();
                        self.calls.push(RecvCall {
                            caller: inst,
                            cmd: cmd_id,
                            fixed_target: Some(*method),
                            method_name: callee_m.name.clone(),
                            dst: *dst,
                            args: args[1..].to_vec(),
                            seen: BitSet::new(),
                        });
                        self.recv_calls[recv.0 as usize].push(idx);
                        if !self.pts[recv.0 as usize].is_empty() {
                            self.worklist.push_back(recv);
                        }
                    } else {
                        // Free function: per-site under 1-CFA, otherwise
                        // context-insensitive.
                        let ctx = if self.policy.call_site_sensitive() {
                            Ctx::Site(cmd_id)
                        } else {
                            Ctx::None
                        };
                        let callee = self.instance(*method, ctx);
                        self.bind_call(inst, cmd_id, callee, *method, None, *dst, args);
                    }
                }
            },
            Command::Return { val: Some(Operand::Var(v)) } if self.is_ref(*v) => {
                let from = self.var_node(inst, *v);
                let to = self.node(NodeKind::Ret(inst));
                self.add_copy(from, to);
            }
            _ => {}
        }
    }

    /// Wires actual arguments and return value between a call site and a
    /// callee instance. `this_loc` carries the dispatched receiver location
    /// for instance methods.
    #[allow(clippy::too_many_arguments)]
    fn bind_call(
        &mut self,
        caller: InstId,
        cmd: CmdId,
        callee_inst: InstId,
        callee: MethodId,
        this_loc: Option<LocId>,
        dst: Option<VarId>,
        args: &[Operand],
    ) {
        self.call_edges.insert((cmd, callee));
        let callee_m = self.program.method(callee).clone();
        let mut params = callee_m.params.iter();
        if callee_m.class.is_some() {
            let this_param = *params.next().expect("instance method has this");
            let this_node = self.var_node(callee_inst, this_param);
            if let Some(l) = this_loc {
                self.add_loc(this_node, l);
            }
        }
        for (param, arg) in params.zip(args.iter()) {
            if let Operand::Var(a) = arg {
                if self.is_ref(*a) && self.is_ref(*param) {
                    let from = self.var_node(caller, *a);
                    let to = self.var_node(callee_inst, *param);
                    self.add_copy(from, to);
                }
            }
        }
        if let Some(d) = dst {
            if self.is_ref(d) {
                let from = self.node(NodeKind::Ret(callee_inst));
                let to = self.var_node(caller, d);
                self.add_copy(from, to);
            }
        }
    }

    /// True if writes into `l.f` are suppressed by an annotation.
    fn is_blocked_cell(&self, l: LocId, f: FieldId) -> bool {
        f == self.program.contents_field
            && self.options.empty_contents_allocs.contains(&self.locs.get(l).alloc)
    }

    /// Context for a callee dispatched on receiver location `l` at call
    /// site `cmd`.
    fn callee_ctx(&mut self, callee: MethodId, l: LocId, cmd: CmdId) -> Ctx {
        if self.policy.call_site_sensitive() {
            return Ctx::Site(cmd);
        }
        let Some(class) = self.program.method(callee).class else {
            return Ctx::None;
        };
        if !self.policy.qualifies(self.program, class) {
            return Ctx::None;
        }
        if self.locs.depth(l) + 1 > self.policy.max_depth() {
            return Ctx::None;
        }
        Ctx::Recv(l)
    }

    fn solve(&mut self, entry: MethodId) {
        let _span = obs::span(obs::SpanKind::Pta, "points-to solve");
        self.instance(entry, Ctx::None);
        while let Some(node) = self.worklist.pop_front() {
            if obs::enabled() {
                obs::add(obs::Counter::PtaPropagations, 1);
                obs::observe(obs::Hist::PtaWorklist, self.worklist.len() as u64 + 1);
            }
            let pts = self.pts[node.0 as usize].clone();
            // Copy edges, in node order: the successor set iterates in hash
            // order, which varies per process and would make propagation
            // counts — and on-demand node/location numbering — differ
            // between otherwise identical runs.
            let mut succs: Vec<NodeId> = self.copy_succs[node.0 as usize].iter().copied().collect();
            succs.sort_unstable();
            for s in succs {
                if self.pts[s.0 as usize].union_with(&pts) {
                    self.worklist.push_back(s);
                }
            }
            // Loads: x = base.f — add copy Field(l, f) → x for each l.
            let loads = self.loads[node.0 as usize].clone();
            for (f, dst) in loads {
                for l in pts.iter() {
                    let fnode = self.node(NodeKind::Field(LocId(l as u32), f));
                    self.add_copy(fnode, dst);
                }
            }
            // Stores: base.f = y — add copy y → Field(l, f), unless the
            // target cell is covered by an empty-contents annotation.
            let stores = self.stores[node.0 as usize].clone();
            for (f, src) in stores {
                for l in pts.iter() {
                    let lid = LocId(l as u32);
                    if self.is_blocked_cell(lid, f) {
                        continue;
                    }
                    let fnode = self.node(NodeKind::Field(lid, f));
                    self.add_copy(src, fnode);
                }
            }
            // Receiver-indexed calls.
            let call_ids = self.recv_calls[node.0 as usize].clone();
            for ci in call_ids {
                for l in pts.iter() {
                    if self.calls[ci].seen.contains(l) {
                        continue;
                    }
                    self.calls[ci].seen.insert(l);
                    let lid = LocId(l as u32);
                    let class = self.locs.class_of(lid, self.program);
                    let call = self.calls[ci].clone();
                    let target = match call.fixed_target {
                        Some(t) => {
                            // Only dispatch if the receiver location's class
                            // is compatible with the target's class.
                            let tc = self.program.method(t).class.expect("instance method");
                            if !self.program.is_subclass(class, tc) {
                                continue;
                            }
                            t
                        }
                        None => match self.program.resolve_method(class, &call.method_name) {
                            Some(t) => t,
                            None => continue,
                        },
                    };
                    let ctx = self.callee_ctx(target, lid, self.calls[ci].cmd);
                    let callee_inst = self.instance(target, ctx);
                    self.bind_call(
                        call.caller,
                        call.cmd,
                        callee_inst,
                        target,
                        Some(lid),
                        call.dst,
                        &call.args,
                    );
                }
            }
        }
    }

    fn finish(mut self) -> PtaResult {
        // Conflate per-instance variable points-to sets.
        let mut var_pt: HashMap<VarId, BitSet> = HashMap::new();
        let mut global_pt: Vec<BitSet> = vec![BitSet::new(); self.program.global_ids().count()];
        let mut heap: HashMap<(LocId, FieldId), BitSet> = HashMap::new();
        for (i, kind) in self.nodes.iter().enumerate() {
            let pts = &self.pts[i];
            if pts.is_empty() {
                continue;
            }
            match kind {
                NodeKind::Var(_, v) => {
                    var_pt.entry(*v).or_default().union_with(pts);
                }
                NodeKind::Global(g) => {
                    global_pt[g.index()].union_with(pts);
                }
                NodeKind::Field(l, f) => {
                    heap.entry((*l, *f)).or_default().union_with(pts);
                }
                NodeKind::Ret(_) => {}
            }
        }

        // Producer map: which write commands may produce each heap edge.
        let mut producers: HashMap<HeapEdge, Vec<CmdId>> = HashMap::new();
        let empty = BitSet::new();
        let reached: Vec<MethodId> = self
            .program
            .method_ids()
            .filter(|m| self.reached_methods.contains(m.index()))
            .collect();
        for &m in &reached {
            for cmd_id in self.program.method_cmds(m) {
                match self.program.cmd(cmd_id) {
                    Command::WriteField { obj, field, src: Operand::Var(y) } => {
                        let base_pt = var_pt.get(obj).unwrap_or(&empty).clone();
                        let val_pt = var_pt.get(y).unwrap_or(&empty).clone();
                        record_producers(&mut producers, &base_pt, *field, &val_pt, cmd_id);
                    }
                    Command::WriteArray { arr, src: Operand::Var(y), .. } => {
                        let mut base_pt = var_pt.get(arr).unwrap_or(&empty).clone();
                        // Annotated arrays have no producible contents edges.
                        let blocked: Vec<usize> = base_pt
                            .iter()
                            .filter(|&l| {
                                self.is_blocked_cell(LocId(l as u32), self.program.contents_field)
                            })
                            .collect();
                        for l in blocked {
                            base_pt.remove(l);
                        }
                        let val_pt = var_pt.get(y).unwrap_or(&empty).clone();
                        record_producers(
                            &mut producers,
                            &base_pt,
                            self.program.contents_field,
                            &val_pt,
                            cmd_id,
                        );
                    }
                    Command::WriteGlobal { global, src: Operand::Var(y) } => {
                        let val_pt = var_pt.get(y).unwrap_or(&empty);
                        for t in val_pt.iter() {
                            producers
                                .entry(HeapEdge::Global {
                                    global: *global,
                                    target: LocId(t as u32),
                                })
                                .or_default()
                                .push(cmd_id);
                        }
                    }
                    _ => {}
                }
            }
        }

        // Call graph, conflated over contexts.
        let mut call_targets: HashMap<CmdId, Vec<MethodId>> = HashMap::new();
        let mut callers: HashMap<MethodId, Vec<CmdId>> = HashMap::new();
        for &(cmd, callee) in &self.call_edges {
            call_targets.entry(cmd).or_default().push(callee);
            callers.entry(callee).or_default().push(cmd);
        }
        for v in call_targets.values_mut() {
            v.sort();
            v.dedup();
        }
        for v in callers.values_mut() {
            v.sort();
            v.dedup();
        }

        let loc_class: Vec<ClassId> =
            self.locs.ids().map(|l| self.locs.class_of(l, self.program)).collect();
        let mut alloc_locs: HashMap<AllocId, BitSet> = HashMap::new();
        for l in self.locs.ids() {
            alloc_locs.entry(self.locs.get(l).alloc).or_default().insert(l.index());
        }

        PtaResult::new(
            std::mem::take(&mut self.locs),
            var_pt,
            global_pt,
            heap,
            producers,
            call_targets,
            callers,
            self.reached_methods.clone(),
            loc_class,
            alloc_locs,
        )
    }
}

fn record_producers(
    producers: &mut HashMap<HeapEdge, Vec<CmdId>>,
    base_pt: &BitSet,
    field: FieldId,
    val_pt: &BitSet,
    cmd: CmdId,
) {
    for b in base_pt.iter() {
        for t in val_pt.iter() {
            producers
                .entry(HeapEdge::Field { base: LocId(b as u32), field, target: LocId(t as u32) })
                .or_default()
                .push(cmd);
        }
    }
}

/// Runs the points-to analysis on `program` from its entry method.
///
/// # Panics
///
/// Panics if `program` has no entry method.
pub fn analyze(program: &Program, policy: ContextPolicy) -> PtaResult {
    analyze_with(program, policy, &PtaOptions::default())
}

/// Extra inputs to the analysis.
#[derive(Clone, Debug, Default)]
pub struct PtaOptions {
    /// Allocation sites whose array `contents` are trusted to stay empty —
    /// the `EMPTY_TABLE` annotation of the paper's `Ann?=Y` configuration.
    /// Stores into (and hence loads out of) the `contents` field of these
    /// arrays are suppressed.
    pub empty_contents_allocs: Vec<tir::AllocId>,
}

/// Runs the points-to analysis with annotations (see [`PtaOptions`]).
///
/// # Panics
///
/// Panics if `program` has no entry method.
pub fn analyze_with(program: &Program, policy: ContextPolicy, options: &PtaOptions) -> PtaResult {
    let mut solver = Solver::new(program, policy);
    solver.options = options.clone();
    solver.solve(program.entry());
    let result = solver.finish();
    result.check_types(program);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::parse;

    fn run(src: &str) -> (Program, PtaResult) {
        let p = parse(src).expect("parse");
        let r = analyze(&p, ContextPolicy::Insensitive);
        (p, r)
    }

    #[test]
    fn tracks_direct_assignment() {
        let (p, r) = run(r#"
fn main() {
  var x: Object;
  var y: Object;
  x = new Object @o0;
  y = x;
}
entry main;
"#);
        let main = p.entry();
        let y = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "y").unwrap();
        let pt = r.pt_var(y);
        assert_eq!(pt.len(), 1);
        let l = LocId(pt.iter().next().unwrap() as u32);
        assert_eq!(r.loc_name(&p, l), "o0");
    }

    #[test]
    fn field_writes_flow_to_reads() {
        let (p, r) = run(r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var o: Object;
  var got: Object;
  b = new Box @box0;
  o = new Object @obj0;
  b.item = o;
  got = b.item;
}
entry main;
"#);
        let main = p.entry();
        let got = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "got").unwrap();
        let names: Vec<String> =
            r.pt_var(got).iter().map(|l| r.loc_name(&p, LocId(l as u32))).collect();
        assert_eq!(names, vec!["obj0"]);
    }

    #[test]
    fn virtual_dispatch_selects_targets_per_loc() {
        let (p, r) = run(r#"
class A {
  method mk(this: A): Object {
    var o: Object;
    o = new Object @fromA;
    return o;
  }
}
class B extends A {
  method mk(this: B): Object {
    var o: Object;
    o = new Object @fromB;
    return o;
  }
}
fn main() {
  var a: A;
  var got: Object;
  a = new B @b0;
  got = call a.mk();
}
entry main;
"#);
        let main = p.entry();
        let got = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "got").unwrap();
        let names: Vec<String> =
            r.pt_var(got).iter().map(|l| r.loc_name(&p, LocId(l as u32))).collect();
        // Only B::mk is a dispatch target since a only points to b0.
        assert_eq!(names, vec!["fromB"]);
        let a_cls = p.class_by_name("A").unwrap();
        let a_mk = p.method_on(a_cls, "mk").unwrap();
        assert!(!r.is_reached(a_mk));
    }

    #[test]
    fn globals_flow_interprocedurally() {
        let (p, r) = run(r#"
global G: Object;
fn put() {
  var o: Object;
  o = new Object @stored;
  $G = o;
}
fn main() {
  var got: Object;
  call put();
  got = $G;
}
entry main;
"#);
        let g = p.global_by_name("G").unwrap();
        let names: Vec<String> =
            r.pt_global(g).iter().map(|l| r.loc_name(&p, LocId(l as u32))).collect();
        assert_eq!(names, vec!["stored"]);
        let main = p.entry();
        let got = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "got").unwrap();
        assert_eq!(r.pt_var(got).len(), 1);
    }

    #[test]
    fn arrays_conflate_contents() {
        let (p, r) = run(r#"
fn main() {
  var a: array;
  var x: Object;
  var y: Object;
  a = newarray @arr0 [2];
  x = new Object @o0;
  a[0] = x;
  y = a[1];
}
entry main;
"#);
        let main = p.entry();
        let y = p.method(main).locals.iter().copied().find(|&v| p.var(v).name == "y").unwrap();
        let names: Vec<String> =
            r.pt_var(y).iter().map(|l| r.loc_name(&p, LocId(l as u32))).collect();
        assert_eq!(names, vec!["o0"]);
    }

    #[test]
    fn container_sensitivity_splits_allocations() {
        let src = r#"
class Holder {
  field item: Object;
  method fill(this: Holder) {
    var o: Object;
    o = new Object @inner;
    this.item = o;
  }
}
fn main() {
  var h1: Holder;
  var h2: Holder;
  var a: Object;
  var b: Object;
  h1 = new Holder @h1;
  h2 = new Holder @h2;
  call h1.fill();
  call h2.fill();
  a = h1.item;
  b = h2.item;
}
entry main;
"#;
        let p = parse(src).expect("parse");
        // Insensitive: both reads see the same `inner` loc.
        let r0 = analyze(&p, ContextPolicy::Insensitive);
        let main = p.entry();
        let var =
            |n: &str| p.method(main).locals.iter().copied().find(|&v| p.var(v).name == n).unwrap();
        assert_eq!(r0.pt_var(var("a")), r0.pt_var(var("b")));

        // Container-sensitive on Holder: the allocations split.
        let policy = ContextPolicy::containers_named(&p, &["Holder"]);
        let r1 = analyze(&p, policy);
        let a_names: Vec<String> =
            r1.pt_var(var("a")).iter().map(|l| r1.loc_name(&p, LocId(l as u32))).collect();
        let b_names: Vec<String> =
            r1.pt_var(var("b")).iter().map(|l| r1.loc_name(&p, LocId(l as u32))).collect();
        assert_eq!(a_names, vec!["h1.inner"]);
        assert_eq!(b_names, vec!["h2.inner"]);
    }

    #[test]
    fn producer_map_names_field_writes() {
        let (p, r) = run(r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  b.item = o;
}
entry main;
"#);
        let box_cls = p.class_by_name("Box").unwrap();
        let item = p.resolve_field(box_cls, "item").unwrap();
        let (box_loc, obj_loc) = {
            let mut box_loc = None;
            let mut obj_loc = None;
            for l in r.locs().ids() {
                match r.loc_name(&p, l).as_str() {
                    "box0" => box_loc = Some(l),
                    "obj0" => obj_loc = Some(l),
                    _ => {}
                }
            }
            (box_loc.unwrap(), obj_loc.unwrap())
        };
        let edge = HeapEdge::Field { base: box_loc, field: item, target: obj_loc };
        let prods = r.producers(&edge);
        assert_eq!(prods.len(), 1);
        assert!(matches!(p.cmd(prods[0]), Command::WriteField { .. }));
    }

    #[test]
    fn call_graph_records_callers() {
        let (p, r) = run(r#"
fn helper() { return; }
fn main() {
  call helper();
  call helper();
}
entry main;
"#);
        let helper = p.free_function("helper").unwrap();
        assert_eq!(r.callers(helper).len(), 2);
        assert!(r.is_reached(helper));
    }
}
