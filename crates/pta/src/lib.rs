//! # pta — flow-insensitive points-to analysis
//!
//! An Andersen-style, field-sensitive, flow-insensitive points-to analysis
//! for [`tir`] programs, with on-the-fly call-graph construction and
//! selectable context sensitivity (the paper uses WALA's 0-1-Container-CFA;
//! see [`ContextPolicy`]).
//!
//! Outputs, all consumed by the Thresher refutation engine:
//! - the points-to graph ([`PtaResult`]): `pt(x)`, `pt(global)`,
//!   `pt(loc.field)`;
//! - the *producer map*: for each may heap edge, the write commands that may
//!   produce it (where witness searches start);
//! - the call graph (forward targets and reverse callers);
//! - mod/ref summaries ([`ModRef`]);
//! - a deletable graph view ([`HeapGraphView`]) used by clients to remove
//!   refuted edges and re-query reachability.
//!
//! ```
//! use pta::{analyze, ContextPolicy};
//!
//! let program = tir::parse(r#"
//! global G: Object;
//! fn main() {
//!   var o: Object;
//!   o = new Object @o0;
//!   $G = o;
//! }
//! entry main;
//! "#)?;
//! let result = analyze(&program, ContextPolicy::Insensitive);
//! let g = program.global_by_name("G").unwrap();
//! assert_eq!(result.pt_global(g).len(), 1);
//! # Ok::<(), tir::ParseError>(())
//! ```

#![warn(missing_docs)]

mod analysis;
mod bitset;
mod context;
mod demand;
mod graph;
mod incremental;
mod loc;
mod modref;
mod result;
mod view;

pub use analysis::{analyze, analyze_with, PtaOptions, SolverKind};
pub use bitset::BitSet;
pub use context::ContextPolicy;
pub use demand::{DemandPta, DemandQueryStats, DemandStats, PartialPtaResult};
pub use graph::HeapGraphView;
pub use incremental::{EditSolveStats, IncrementalPta};
pub use loc::{AbsLoc, LocId, LocTable};
pub use modref::ModRef;
pub use result::{canonical_text, HeapEdge, PtaResult};
pub use view::PtaView;
