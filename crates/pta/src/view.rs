//! The read interface the refutation engine consumes, abstracted over
//! exhaustive and demand-computed points-to results.
//!
//! [`PtaView`] is object-safe: the symbolic engine, the parallel
//! scheduler, and [`crate::HeapGraphView`] all hold `&dyn PtaView`, so one
//! compiled engine serves both a full [`PtaResult`](crate::PtaResult) and a
//! query-sliced [`PartialPtaResult`](crate::PartialPtaResult) (whose
//! out-of-slice lookups resolve on demand against the resident exhaustive
//! result). The `Sync` supertrait lets a `&dyn PtaView` cross into the
//! scheduler's scoped worker threads.

use tir::{AllocId, ClassId, CmdId, FieldId, GlobalId, MethodId, Program, VarId};

use crate::bitset::BitSet;
use crate::loc::{LocId, LocTable};
use crate::result::{HeapEdge, PtaResult};

/// Read access to a points-to analysis result (full or query-sliced).
pub trait PtaView: Sync {
    /// Points-to set of a local variable, conflated over calling contexts.
    fn pt_var(&self, v: VarId) -> &BitSet;

    /// Points-to set of a global.
    fn pt_global(&self, g: GlobalId) -> &BitSet;

    /// Points-to set of field `f` of location `base`.
    fn pt_field(&self, base: LocId, f: FieldId) -> &BitSet;

    /// Points-to set of `y.f` — union of `pt_field(l, f)` over `l ∈ pt(y)`.
    fn pt_var_field(&self, y: VarId, f: FieldId) -> BitSet {
        let mut out = BitSet::new();
        for l in self.pt_var(y).iter() {
            out.union_with(self.pt_field(LocId(l as u32), f));
        }
        out
    }

    /// All heap field edges visible through this view, as
    /// (base, field, targets) rows. A partial view returns only its slice;
    /// an exhaustive result returns every edge. (Materialized `Vec` rather
    /// than an iterator to stay object-safe.)
    fn heap_rows(&self) -> Vec<(LocId, FieldId, &BitSet)>;

    /// Commands that may produce `edge`.
    fn producers(&self, edge: &HeapEdge) -> &[CmdId];

    /// Possible callees of a call command, conflated over contexts.
    fn call_targets(&self, cmd: CmdId) -> &[MethodId];

    /// Call commands that may invoke `m`.
    fn callers(&self, m: MethodId) -> &[CmdId];

    /// True if `m` is reachable from the entry method.
    fn is_reached(&self, m: MethodId) -> bool;

    /// The class of objects abstracted by `l`.
    fn class_of(&self, l: LocId) -> ClassId;

    /// All locations whose class is `base` or a subclass of it.
    fn locs_of_class(&self, program: &Program, base: ClassId) -> BitSet;

    /// All (possibly context-qualified) locations born at allocation site
    /// `a`.
    fn alloc_locs(&self, a: AllocId) -> &BitSet;

    /// The abstract-location table.
    fn locs(&self) -> &LocTable;

    /// The exhaustive result underlying this view: itself for a full
    /// [`PtaResult`], the resident oracle for a demand-computed slice.
    /// Persistent-cache fingerprints derive from this, so warm-start keys
    /// never depend on which slice happened to answer a query.
    fn exhaustive(&self) -> &PtaResult;

    /// Human-readable location name (e.g. `vec0.arr1`).
    fn loc_name(&self, program: &Program, l: LocId) -> String {
        self.locs().name(l, program)
    }

    /// Total number of abstract locations.
    fn num_locs(&self) -> usize {
        self.locs().len()
    }
}

impl PtaView for PtaResult {
    fn pt_var(&self, v: VarId) -> &BitSet {
        PtaResult::pt_var(self, v)
    }

    fn pt_global(&self, g: GlobalId) -> &BitSet {
        PtaResult::pt_global(self, g)
    }

    fn pt_field(&self, base: LocId, f: FieldId) -> &BitSet {
        PtaResult::pt_field(self, base, f)
    }

    fn heap_rows(&self) -> Vec<(LocId, FieldId, &BitSet)> {
        self.heap_entries().collect()
    }

    fn producers(&self, edge: &HeapEdge) -> &[CmdId] {
        PtaResult::producers(self, edge)
    }

    fn call_targets(&self, cmd: CmdId) -> &[MethodId] {
        PtaResult::call_targets(self, cmd)
    }

    fn callers(&self, m: MethodId) -> &[CmdId] {
        PtaResult::callers(self, m)
    }

    fn is_reached(&self, m: MethodId) -> bool {
        PtaResult::is_reached(self, m)
    }

    fn class_of(&self, l: LocId) -> ClassId {
        PtaResult::class_of(self, l)
    }

    fn locs_of_class(&self, program: &Program, base: ClassId) -> BitSet {
        PtaResult::locs_of_class(self, program, base)
    }

    fn alloc_locs(&self, a: AllocId) -> &BitSet {
        PtaResult::alloc_locs(self, a)
    }

    fn locs(&self) -> &LocTable {
        PtaResult::locs(self)
    }

    fn exhaustive(&self) -> &PtaResult {
        self
    }
}
