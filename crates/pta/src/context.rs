//! Context-sensitivity policies for the points-to analysis.

use tir::{ClassId, Program};

/// How method analysis and heap abstraction are context-qualified.
///
/// The paper's evaluation uses WALA's *0-1-Container-CFA*: Andersen's
/// analysis with one level of object sensitivity applied (with unbounded
/// nesting) to container classes. [`ContextPolicy::ContainerSensitive`]
/// reproduces that shape; [`ContextPolicy::ObjectSensitive`] applies the
/// same receiver-qualification to all classes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContextPolicy {
    /// Classic context-insensitive Andersen's analysis.
    Insensitive,
    /// Receiver-object sensitivity for the listed container classes (and
    /// their subclasses). Allocations inside a container method instance are
    /// qualified by the receiver's abstract location, producing names like
    /// `vec0.arr1`.
    ContainerSensitive {
        /// The container base classes.
        containers: Vec<ClassId>,
        /// Maximum context-qualification nesting depth (guards against
        /// containers-of-containers recursion).
        max_depth: usize,
    },
    /// Receiver-object sensitivity for every instance method.
    ObjectSensitive {
        /// Maximum context-qualification nesting depth.
        max_depth: usize,
    },
    /// Classic 1-CFA: methods are analyzed once per call site (the heap
    /// abstraction stays allocation-site based). Useful as a baseline
    /// comparison — the paper notes the refutation engine "does not fix
    /// the heap abstraction".
    CallSiteSensitive,
}

impl ContextPolicy {
    /// Builds a [`ContextPolicy::ContainerSensitive`] from class names,
    /// ignoring names not present in `program`.
    pub fn containers_named(program: &Program, names: &[&str]) -> ContextPolicy {
        let containers = names.iter().filter_map(|n| program.class_by_name(n)).collect();
        ContextPolicy::ContainerSensitive { containers, max_depth: 3 }
    }

    /// True if methods of `class` are analyzed per receiver location.
    pub fn qualifies(&self, program: &Program, class: ClassId) -> bool {
        match self {
            ContextPolicy::Insensitive | ContextPolicy::CallSiteSensitive => false,
            ContextPolicy::ContainerSensitive { containers, .. } => {
                containers.iter().any(|&c| program.is_subclass(class, c))
            }
            ContextPolicy::ObjectSensitive { .. } => true,
        }
    }

    /// True if method instances are keyed by call site (1-CFA).
    pub fn call_site_sensitive(&self) -> bool {
        matches!(self, ContextPolicy::CallSiteSensitive)
    }

    /// Maximum context nesting depth (0 when insensitive).
    pub fn max_depth(&self) -> usize {
        match self {
            ContextPolicy::Insensitive | ContextPolicy::CallSiteSensitive => 0,
            ContextPolicy::ContainerSensitive { max_depth, .. }
            | ContextPolicy::ObjectSensitive { max_depth } => *max_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::ProgramBuilder;

    #[test]
    fn container_policy_covers_subclasses() {
        let mut b = ProgramBuilder::new();
        let vec = b.class("AVec", None);
        let stack = b.class("AStack", Some(vec));
        let other = b.class("Other", None);
        let p = b.finish();

        let policy = ContextPolicy::containers_named(&p, &["AVec", "Missing"]);
        assert!(policy.qualifies(&p, vec));
        assert!(policy.qualifies(&p, stack));
        assert!(!policy.qualifies(&p, other));
        assert_eq!(policy.max_depth(), 3);
    }

    #[test]
    fn insensitive_never_qualifies() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        let p = b.finish();
        assert!(!ContextPolicy::Insensitive.qualifies(&p, c));
    }

    #[test]
    fn object_sensitive_always_qualifies() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        let p = b.finish();
        let policy = ContextPolicy::ObjectSensitive { max_depth: 2 };
        assert!(policy.qualifies(&p, c));
        assert_eq!(policy.max_depth(), 2);
    }
}
