//! Abstract locations and heap-abstraction contexts.
//!
//! An abstract location names a set of concrete heap objects. In the base
//! (context-insensitive) abstraction each allocation site is one location;
//! context-sensitive policies additionally qualify a site by the abstract
//! location of the receiver whose method performed the allocation, yielding
//! names like `vec0.arr1` — "the `arr1` instances allocated on behalf of
//! `vec0`" (cf. Figure 2 of the paper).

use std::collections::HashMap;

use tir::{AllocId, ClassId, Program};

/// Identifies an abstract location within a [`LocTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub u32);

impl LocId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for LocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LocId({})", self.0)
    }
}

/// An abstract location: an allocation site, optionally qualified by the
/// receiver location under which it was allocated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AbsLoc {
    /// The allocation site.
    pub alloc: AllocId,
    /// Context qualifier: the receiver's abstract location, if the active
    /// context policy qualifies this site.
    pub ctx: Option<LocId>,
}

/// Interning table for abstract locations.
#[derive(Clone, Debug, Default)]
pub struct LocTable {
    locs: Vec<AbsLoc>,
    index: HashMap<AbsLoc, LocId>,
}

impl LocTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a location, returning its id.
    pub fn intern(&mut self, loc: AbsLoc) -> LocId {
        if let Some(&id) = self.index.get(&loc) {
            return id;
        }
        let id = LocId(u32::try_from(self.locs.len()).expect("too many abstract locations"));
        self.locs.push(loc);
        self.index.insert(loc, id);
        id
    }

    /// Looks up a location by id.
    pub fn get(&self, id: LocId) -> AbsLoc {
        self.locs[id.index()]
    }

    /// Looks up the id of an already-interned location, if present.
    pub fn lookup(&self, loc: AbsLoc) -> Option<LocId> {
        self.index.get(&loc).copied()
    }

    /// Number of interned locations.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// True if no locations have been interned.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Iterates over all interned location ids.
    pub fn ids(&self) -> impl Iterator<Item = LocId> {
        (0..self.locs.len()).map(|i| LocId(i as u32))
    }

    /// The class of objects represented by `id`.
    pub fn class_of(&self, id: LocId, program: &Program) -> ClassId {
        program.alloc(self.get(id).alloc).class
    }

    /// The context-qualification depth of `id` (0 for unqualified).
    pub fn depth(&self, id: LocId) -> usize {
        let mut d = 0;
        let mut cur = self.get(id).ctx;
        while let Some(c) = cur {
            d += 1;
            cur = self.get(c).ctx;
        }
        d
    }

    /// Renumbers every location into a canonical order independent of the
    /// order in which the solver interned them, and returns the permutation
    /// `perm[old.index()] = new id`.
    ///
    /// The sort key is the chain of allocation-site names (index-qualified
    /// as a tiebreaker) from the outermost context qualifier down to the
    /// site itself. The index chain is unique per location (two locations
    /// with equal chains would be the same `AbsLoc`), so the order is
    /// total and every fixpoint strategy arrives at the same numbering
    /// regardless of interning order; leading with names keeps the
    /// numbering stable across print/parse round trips, which renumber
    /// allocation sites but preserve their labels.
    pub(crate) fn canonicalize(&mut self, program: &Program) -> Vec<LocId> {
        let chains: Vec<(Vec<&str>, Vec<usize>)> = (0..self.locs.len())
            .map(|i| {
                let mut names = Vec::new();
                let mut chain = Vec::new();
                let mut cur = Some(LocId(i as u32));
                while let Some(c) = cur {
                    let loc = self.get(c);
                    names.push(program.alloc(loc.alloc).name.as_str());
                    chain.push(loc.alloc.index());
                    cur = loc.ctx;
                }
                names.reverse(); // outermost qualifier first
                chain.reverse();
                (names, chain)
            })
            .collect();
        let mut order: Vec<usize> = (0..self.locs.len()).collect();
        order.sort_unstable_by(|&a, &b| chains[a].cmp(&chains[b]));
        let mut perm = vec![LocId(0); self.locs.len()];
        for (new, &old) in order.iter().enumerate() {
            perm[old] = LocId(new as u32);
        }
        self.locs = order
            .iter()
            .map(|&old| {
                let loc = self.locs[old];
                AbsLoc { alloc: loc.alloc, ctx: loc.ctx.map(|c| perm[c.index()]) }
            })
            .collect();
        self.index = self.locs.iter().enumerate().map(|(i, &l)| (l, LocId(i as u32))).collect();
        perm
    }

    /// Human-readable name, e.g. `vec0` or `vec0.arr1`.
    pub fn name(&self, id: LocId, program: &Program) -> String {
        let loc = self.get(id);
        let base = program.alloc(loc.alloc).name.clone();
        match loc.ctx {
            Some(c) => format!("{}.{}", self.name(c, program), base),
            None => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tir::{ProgramBuilder, Ty};

    fn tiny_program() -> (Program, AllocId, AllocId) {
        let mut b = ProgramBuilder::new();
        let c = b.class("Vec", None);
        let mut a0 = None;
        let mut a1 = None;
        let main = b.method(None, "main", &[], None, |mb| {
            let x = mb.var("x", Ty::Ref(c));
            a0 = Some(mb.new_obj(x, c, "vec0"));
            a1 = Some(mb.new_array(x, "arr1", 1));
            mb.ret_void();
        });
        b.set_entry(main);
        (b.finish(), a0.unwrap(), a1.unwrap())
    }

    #[test]
    fn interning_dedupes() {
        let (_, a0, _) = tiny_program();
        let mut t = LocTable::new();
        let l1 = t.intern(AbsLoc { alloc: a0, ctx: None });
        let l2 = t.intern(AbsLoc { alloc: a0, ctx: None });
        assert_eq!(l1, l2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn qualified_names_chain() {
        let (p, a0, a1) = tiny_program();
        let mut t = LocTable::new();
        let base = t.intern(AbsLoc { alloc: a0, ctx: None });
        let qualified = t.intern(AbsLoc { alloc: a1, ctx: Some(base) });
        assert_eq!(t.name(base, &p), "vec0");
        assert_eq!(t.name(qualified, &p), "vec0.arr1");
        assert_eq!(t.depth(base), 0);
        assert_eq!(t.depth(qualified), 1);
    }

    #[test]
    fn class_of_resolves_alloc_class() {
        let (p, a0, a1) = tiny_program();
        let mut t = LocTable::new();
        let l0 = t.intern(AbsLoc { alloc: a0, ctx: None });
        let l1 = t.intern(AbsLoc { alloc: a1, ctx: None });
        assert_eq!(p.class(t.class_of(l0, &p)).name, "Vec");
        assert_eq!(p.class(t.class_of(l1, &p)).name, "Array");
    }
}
