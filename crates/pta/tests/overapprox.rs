//! Points-to over-approximation property test: every heap edge produced by
//! a concrete execution of a random straight-line program appears in the
//! flow-insensitive points-to graph.

use minicheck::{run_cases, Rng};
use std::collections::HashMap;

use pta::{BitSet, ContextPolicy};
use tir::{FieldId, GlobalId, Operand, Program, ProgramBuilder, Ty, VarId};

#[derive(Clone, Debug)]
enum Op {
    New(usize),
    Copy(usize, usize),
    Write(usize, usize, usize),
    Read(usize, usize, usize),
    GWrite(usize, usize),
    GRead(usize, usize),
}

const NV: usize = 4;
const NF: usize = 2;
const NG: usize = 2;

fn arb_ops(rng: &mut Rng) -> Vec<Op> {
    let len = rng.usize_in(1, 19);
    (0..len)
        .map(|_| match rng.below(6) {
            0 => Op::New(rng.below(NV)),
            1 => Op::Copy(rng.below(NV), rng.below(NV)),
            2 => Op::Write(rng.below(NV), rng.below(NF), rng.below(NV)),
            3 => Op::Read(rng.below(NV), rng.below(NV), rng.below(NF)),
            4 => Op::GWrite(rng.below(NG), rng.below(NV)),
            _ => Op::GRead(rng.below(NV), rng.below(NG)),
        })
        .collect()
}

struct Built {
    program: Program,
    fields: Vec<FieldId>,
    globals: Vec<GlobalId>,
}

fn build(ops: &[Op]) -> Built {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let cell = b.class("Cell", None);
    let fields: Vec<FieldId> =
        (0..NF).map(|i| b.field(cell, &format!("f{i}"), Ty::Ref(object))).collect();
    let globals: Vec<GlobalId> =
        (0..NG).map(|i| b.global(&format!("G{i}"), Ty::Ref(object))).collect();
    let f2 = fields.clone();
    let g2 = globals.clone();
    let main = b.method(None, "main", &[], None, |mb| {
        let vars: Vec<VarId> = (0..NV).map(|i| mb.var(&format!("v{i}"), Ty::Ref(cell))).collect();
        for (i, &v) in vars.iter().enumerate() {
            mb.new_obj(v, cell, &format!("init{i}"));
        }
        for (n, op) in ops.iter().enumerate() {
            match op {
                Op::New(a) => {
                    mb.new_obj(vars[*a], cell, &format!("s{n}"));
                }
                Op::Copy(a, b2) => {
                    mb.assign(vars[*a], Operand::Var(vars[*b2]));
                }
                Op::Write(a, f, b2) => {
                    mb.write_field(vars[*a], f2[*f], vars[*b2]);
                }
                Op::Read(a, b2, f) => {
                    mb.read_field(vars[*a], vars[*b2], f2[*f]);
                }
                Op::GWrite(g, a) => {
                    mb.write_global(g2[*g], vars[*a]);
                }
                Op::GRead(a, g) => {
                    mb.read_global(vars[*a], g2[*g]);
                }
            }
        }
    });
    b.set_entry(main);
    Built { program: b.finish(), fields, globals }
}

/// (owner alloc-name, field, value alloc-name) edges and
/// (global, value alloc-name) edges.
type ConcreteEdges = (Vec<(String, FieldId, String)>, Vec<(GlobalId, String)>);

/// Concrete execution collecting the produced edges.
fn run_concrete(built: &Built, ops: &[Op]) -> ConcreteEdges {
    // Objects are numbered in allocation order; names follow the builder.
    let mut names: Vec<String> = Vec::new();
    let mut vars: Vec<Option<usize>> = vec![None; NV];
    let mut heap: HashMap<(usize, FieldId), Option<usize>> = HashMap::new();
    let mut globals: Vec<Option<usize>> = vec![None; NG];
    let mut field_edges = Vec::new();
    let mut global_edges = Vec::new();

    for (i, var) in vars.iter_mut().enumerate() {
        names.push(format!("init{i}"));
        *var = Some(names.len() - 1);
    }
    for (n, op) in ops.iter().enumerate() {
        match op {
            Op::New(a) => {
                names.push(format!("s{n}"));
                vars[*a] = Some(names.len() - 1);
            }
            Op::Copy(a, b) => vars[*a] = vars[*b],
            Op::Write(a, f, b) => {
                if let Some(o) = vars[*a] {
                    heap.insert((o, built.fields[*f]), vars[*b]);
                    if let Some(val) = vars[*b] {
                        field_edges.push((names[o].clone(), built.fields[*f], names[val].clone()));
                    }
                }
            }
            Op::Read(a, b, f) => {
                vars[*a] =
                    vars[*b].and_then(|o| heap.get(&(o, built.fields[*f])).copied()).flatten();
            }
            Op::GWrite(g, a) => {
                globals[*g] = vars[*a];
                if let Some(val) = vars[*a] {
                    global_edges.push((built.globals[*g], names[val].clone()));
                }
            }
            Op::GRead(a, g) => vars[*a] = globals[*g],
        }
    }
    (field_edges, global_edges)
}

#[test]
fn pta_over_approximates_concrete_edges() {
    run_cases(256, |rng| {
        let ops = arb_ops(rng);
        let built = build(&ops);
        let (field_edges, global_edges) = run_concrete(&built, &ops);
        let r = pta::analyze(&built.program, ContextPolicy::Insensitive);
        let loc_by_name = |name: &str| {
            r.locs()
                .ids()
                .find(|&l| r.loc_name(&built.program, l) == name)
                .unwrap_or_else(|| panic!("missing loc {name}"))
        };
        for (owner, f, value) in &field_edges {
            let lo = loc_by_name(owner);
            let lv = loc_by_name(value);
            assert!(
                r.pt_field(lo, *f).contains(lv.index()),
                "missing pta edge {owner}.{f:?} -> {value}\n{}",
                r.dump(&built.program)
            );
            // The producer map must name at least one statement for the
            // edge (the witness search needs a starting point).
            let edge = pta::HeapEdge::Field { base: lo, field: *f, target: lv };
            assert!(!r.producers(&edge).is_empty(), "no producers for real edge");
        }
        for (g, value) in &global_edges {
            let lv = loc_by_name(value);
            assert!(r.pt_global(*g).contains(lv.index()), "missing pta global edge -> {value}");
        }
    });
}

/// Context-sensitive runs only ever shrink points-to sets relative to
/// the insensitive baseline (for this call-free fragment they must be
/// identical; the property guards the conflation code path).
#[test]
fn object_sensitivity_never_adds_edges() {
    run_cases(256, |rng| {
        let ops = arb_ops(rng);
        let built = build(&ops);
        let base = pta::analyze(&built.program, ContextPolicy::Insensitive);
        let obj = pta::analyze(&built.program, ContextPolicy::ObjectSensitive { max_depth: 2 });
        for g in built.program.global_ids() {
            let base_names: BitSet = base.pt_global(g).clone();
            let obj_names: BitSet = obj.pt_global(g).clone();
            // Straight-line main has no receivers, so locations coincide.
            assert_eq!(base_names.iter().count(), obj_names.iter().count());
        }
    });
}
