//! Virtual-dispatch corner cases for the call-graph construction.

use pta::{analyze, ContextPolicy};
use tir::parse;

#[test]
fn three_level_override_chain() {
    let p = parse(
        r#"
class A {
  method mk(this: A): Object {
    var o: Object;
    o = new Object @fromA;
    return o;
  }
}
class B extends A { }
class C extends B {
  method mk(this: C): Object {
    var o: Object;
    o = new Object @fromC;
    return o;
  }
}
global OUT: Object;
fn main() {
  var x: A;
  var got: Object;
  choice { x = new B @b0; } or { x = new C @c0; }
  got = call x.mk();
  $OUT = got;
}
entry main;
"#,
    )
    .expect("parse");
    let r = analyze(&p, ContextPolicy::Insensitive);
    let g = p.global_by_name("OUT").unwrap();
    let names: Vec<String> =
        r.pt_global(g).iter().map(|l| r.loc_name(&p, pta::LocId(l as u32))).collect();
    // B inherits A::mk; C overrides: both results flow.
    assert!(names.contains(&"fromA".to_owned()), "{names:?}");
    assert!(names.contains(&"fromC".to_owned()), "{names:?}");
}

#[test]
fn dispatch_target_set_tracks_receiver_classes() {
    let p = parse(
        r#"
class A {
  method go(this: A) { return; }
}
class B extends A {
  method go(this: B) { return; }
}
fn main() {
  var x: A;
  x = new A @a0;
  call x.go();
}
entry main;
"#,
    )
    .expect("parse");
    let r = analyze(&p, ContextPolicy::Insensitive);
    let a = p.class_by_name("A").unwrap();
    let b = p.class_by_name("B").unwrap();
    let a_go = p.method_on(a, "go").unwrap();
    let b_go = p.method_on(b, "go").unwrap();
    assert!(r.is_reached(a_go));
    assert!(!r.is_reached(b_go), "B::go has no receiver instances");

    // The call site's target set matches.
    let main = p.entry();
    let call_cmd = p
        .method_cmds(main)
        .into_iter()
        .find(|&c| matches!(p.cmd(c), tir::Command::Call { .. }))
        .unwrap();
    assert_eq!(r.call_targets(call_cmd), &[a_go]);
}

#[test]
fn constructor_style_call_dispatches_to_subclass_receivers_only() {
    let p = parse(
        r#"
class Base {
  field tag: Object;
  method init(this: Base, o: Object) {
    this.tag = o;
  }
}
class Sub extends Base { }
class Unrelated { }
fn main() {
  var s: Sub;
  var u: Unrelated;
  var o: Object;
  s = new Sub @sub0;
  u = new Unrelated @un0;
  o = new Object @obj0;
  call Base::init(s, o);
}
entry main;
"#,
    )
    .expect("parse");
    let r = analyze(&p, ContextPolicy::Insensitive);
    let base = p.class_by_name("Base").unwrap();
    let tag = p.resolve_field(base, "tag").unwrap();
    let sub0 = r.locs().ids().find(|&l| r.loc_name(&p, l) == "sub0").unwrap();
    let un0 = r.locs().ids().find(|&l| r.loc_name(&p, l) == "un0").unwrap();
    assert!(!r.pt_field(sub0, tag).is_empty());
    assert!(r.pt_field(un0, tag).is_empty());
}

#[test]
fn unreachable_methods_contribute_no_producers() {
    let p = parse(
        r#"
class Box { field item: Object; }
fn never_called(b: Box, o: Object) {
  b.item = o;
}
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
}
entry main;
"#,
    )
    .expect("parse");
    let r = analyze(&p, ContextPolicy::Insensitive);
    let never = p.free_function("never_called").unwrap();
    assert!(!r.is_reached(never));
    // No heap edge at all since the writer never runs.
    let box_cls = p.class_by_name("Box").unwrap();
    let item = p.resolve_field(box_cls, "item").unwrap();
    let box0 = r.locs().ids().find(|&l| r.loc_name(&p, l) == "box0").unwrap();
    assert!(r.pt_field(box0, item).is_empty());
}

#[test]
fn recursive_virtual_calls_terminate() {
    let p = parse(
        r#"
class Node {
  field next: Node;
  method last(this: Node): Node {
    var n: Node;
    var out: Node;
    n = this.next;
    out = this;
    if (n != null) {
      out = call n.last();
    }
    return out;
  }
}
global TAIL: Node;
fn main() {
  var a: Node;
  var b: Node;
  var t: Node;
  a = new Node @n_a;
  b = new Node @n_b;
  a.next = b;
  t = call a.last();
  $TAIL = t;
}
entry main;
"#,
    )
    .expect("parse");
    let r = analyze(&p, ContextPolicy::Insensitive);
    let g = p.global_by_name("TAIL").unwrap();
    // Both nodes may be the tail, flow-insensitively.
    assert_eq!(r.pt_global(g).len(), 2);
}

#[test]
fn object_sensitive_receiver_contexts_bound_depth() {
    // Nested containers: Outer holds Inner holds payload. Depth-limited
    // object sensitivity must terminate and still resolve flows.
    let p = parse(
        r#"
class Inner {
  field item: Object;
  method set(this: Inner, o: Object) {
    this.item = o;
  }
}
class Outer {
  field inner: Inner;
  method fill(this: Outer, o: Object) {
    var i: Inner;
    i = new Inner @inner_alloc;
    this.inner = i;
    call i.set(o);
  }
}
global OUT: Object;
fn main() {
  var a: Outer;
  var b: Outer;
  var p1: Object;
  var p2: Object;
  var got: Inner;
  var v: Object;
  a = new Outer @outer_a;
  b = new Outer @outer_b;
  p1 = new Object @pay1;
  p2 = new Object @pay2;
  call a.fill(p1);
  call b.fill(p2);
  got = a.inner;
  v = got.item;
  $OUT = v;
}
entry main;
"#,
    )
    .expect("parse");
    let insens = analyze(&p, ContextPolicy::Insensitive);
    let objsens = analyze(&p, ContextPolicy::ObjectSensitive { max_depth: 2 });
    let g = p.global_by_name("OUT").unwrap();
    // Insensitive conflates the two payloads.
    assert_eq!(insens.pt_global(g).len(), 2);
    // Object sensitivity splits the Inner allocations per Outer receiver,
    // so a.inner.item is just pay1.
    let names: Vec<String> =
        objsens.pt_global(g).iter().map(|l| objsens.loc_name(&p, pta::LocId(l as u32))).collect();
    assert_eq!(names, vec!["pay1"], "{}", objsens.dump(&p));
}

#[test]
fn call_site_sensitivity_splits_identity_returns() {
    // id() called from two sites with different objects: 1-CFA keeps the
    // returns apart; the insensitive analysis conflates them.
    let p = parse(
        r#"
fn id(o: Object): Object {
  return o;
}
global A: Object;
global B: Object;
fn main() {
  var x: Object;
  var y: Object;
  var rx: Object;
  var ry: Object;
  x = new Object @ox;
  y = new Object @oy;
  rx = call id(x);
  ry = call id(y);
  $A = rx;
  $B = ry;
}
entry main;
"#,
    )
    .expect("parse");
    let insens = analyze(&p, ContextPolicy::Insensitive);
    let cfa = analyze(&p, ContextPolicy::CallSiteSensitive);
    let a = p.global_by_name("A").unwrap();
    let b = p.global_by_name("B").unwrap();
    // Insensitive: both globals may hold both objects.
    assert_eq!(insens.pt_global(a).len(), 2);
    assert_eq!(insens.pt_global(b).len(), 2);
    // 1-CFA: each global holds exactly its own object.
    assert_eq!(cfa.pt_global(a).len(), 1, "{}", cfa.dump(&p));
    assert_eq!(cfa.pt_global(b).len(), 1);
    let name = |r: &pta::PtaResult, g: tir::GlobalId| {
        r.loc_name(&p, pta::LocId(r.pt_global(g).iter().next().unwrap() as u32))
    };
    assert_eq!(name(&cfa, a), "ox");
    assert_eq!(name(&cfa, b), "oy");
}

#[test]
fn call_site_sensitivity_terminates_on_recursion() {
    let p = parse(
        r#"
global G: Object;
fn rec(o: Object, n: int) {
  var m: int;
  if (n > 0) {
    m = n - 1;
    call rec(o, m);
  }
  $G = o;
}
fn main() {
  var o: Object;
  o = new Object @obj0;
  call rec(o, 5);
}
entry main;
"#,
    )
    .expect("parse");
    // 1-CFA on recursion: finitely many call sites, so this terminates.
    let r = analyze(&p, ContextPolicy::CallSiteSensitive);
    let g = p.global_by_name("G").unwrap();
    assert_eq!(r.pt_global(g).len(), 1);
}
