//! Demand-vs-exhaustive differential property test: on random programs,
//! every fact a demand query answers — the queried global's points-to
//! set, every heap cell in the slice closure, and every local variable's
//! set — is byte-identical to a from-scratch [`pta::SolverKind::Reference`]
//! solve, under all four context policies, with and without a
//! budget that forces fallback. Fallback may change *cost*, never the
//! answer.

use std::collections::BTreeSet;

use minicheck::{run_cases, Rng};
use pta::{BitSet, ContextPolicy, DemandPta, PtaOptions, PtaView, SolverKind};
use tir::{FieldId, GlobalId, MethodId, Operand, Program, ProgramBuilder, Ty, VarId};

#[derive(Clone, Debug)]
enum Op {
    New(usize),
    NewSub(usize),
    Copy(usize, usize),
    Write(usize, usize, usize),
    Read(usize, usize, usize),
    GWrite(usize, usize),
    GRead(usize, usize),
    Call(usize, usize, usize),
}

const NV: usize = 4;
const NF: usize = 2;
const NG: usize = 3;

fn arb_ops(rng: &mut Rng) -> Vec<Op> {
    let len = rng.usize_in(2, 24);
    (0..len)
        .map(|_| match rng.below(8) {
            0 => Op::New(rng.below(NV)),
            1 => Op::NewSub(rng.below(NV)),
            2 => Op::Copy(rng.below(NV), rng.below(NV)),
            3 => Op::Write(rng.below(NV), rng.below(NF), rng.below(NV)),
            4 => Op::Read(rng.below(NV), rng.below(NV), rng.below(NF)),
            5 => Op::GWrite(rng.below(NG), rng.below(NV)),
            6 => Op::GRead(rng.below(NV), rng.below(NG)),
            _ => Op::Call(rng.below(NV), rng.below(NV), rng.below(NV)),
        })
        .collect()
}

struct Built {
    program: Program,
    globals: Vec<GlobalId>,
    main: MethodId,
}

/// Builds a program with virtual dispatch (`Cell::mix` vs `Sub::mix`
/// write different fields), so the demand tier's this-binding seeds and
/// every context policy's dispatch behavior are exercised, not just
/// straight-line copies.
fn build(ops: &[Op]) -> Built {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let cell = b.class("Cell", None);
    let sub = b.class("Sub", Some(cell));
    let fields: Vec<FieldId> =
        (0..NF).map(|i| b.field(cell, &format!("f{i}"), Ty::Ref(object))).collect();
    let globals: Vec<GlobalId> =
        (0..NG).map(|i| b.global(&format!("G{i}"), Ty::Ref(object))).collect();
    let f0 = fields[0];
    let f1 = fields[1];
    b.method(Some(cell), "mix", &[("p", Ty::Ref(object))], Some(Ty::Ref(object)), |mb| {
        let this = mb.this();
        let p = mb.param(0);
        let r = mb.var("r", Ty::Ref(object));
        mb.write_field(this, f0, p);
        mb.read_field(r, this, f0);
        mb.ret(Operand::Var(r));
    });
    b.method(Some(sub), "mix", &[("p", Ty::Ref(object))], Some(Ty::Ref(object)), |mb| {
        let this = mb.this();
        let p = mb.param(0);
        let r = mb.var("r", Ty::Ref(object));
        mb.write_field(this, f1, p);
        mb.read_field(r, this, f1);
        mb.ret(Operand::Var(r));
    });
    let f2 = fields.clone();
    let g2 = globals.clone();
    let main = b.method(None, "main", &[], None, |mb| {
        let vars: Vec<VarId> = (0..NV).map(|i| mb.var(&format!("v{i}"), Ty::Ref(cell))).collect();
        for (i, &v) in vars.iter().enumerate() {
            mb.new_obj(v, cell, &format!("init{i}"));
        }
        for (n, op) in ops.iter().enumerate() {
            match op {
                Op::New(a) => {
                    mb.new_obj(vars[*a], cell, &format!("s{n}"));
                }
                Op::NewSub(a) => {
                    mb.new_obj(vars[*a], sub, &format!("t{n}"));
                }
                Op::Copy(a, c) => {
                    mb.assign(vars[*a], Operand::Var(vars[*c]));
                }
                Op::Write(a, f, c) => {
                    mb.write_field(vars[*a], f2[*f], vars[*c]);
                }
                Op::Read(a, c, f) => {
                    mb.read_field(vars[*a], vars[*c], f2[*f]);
                }
                Op::GWrite(g, a) => {
                    mb.write_global(g2[*g], vars[*a]);
                }
                Op::GRead(a, g) => {
                    mb.read_global(vars[*a], g2[*g]);
                }
                Op::Call(d, r, a) => {
                    mb.call_virtual(Some(vars[*d]), vars[*r], "mix", &[Operand::Var(vars[*a])]);
                }
            }
        }
    });
    b.set_entry(main);
    Built { program: b.finish(), globals, main }
}

fn policies(program: &Program) -> Vec<ContextPolicy> {
    vec![
        ContextPolicy::Insensitive,
        ContextPolicy::ObjectSensitive { max_depth: 2 },
        ContextPolicy::CallSiteSensitive,
        ContextPolicy::containers_named(program, &["AVec", "AHashMap"]),
    ]
}

/// A points-to set as canonical location names — index-free, so results
/// from independently-built solver states compare exactly.
fn names(view: &dyn PtaView, program: &Program, set: &BitSet) -> BTreeSet<String> {
    set.iter().map(|l| view.loc_name(program, pta::LocId(l as u32))).collect()
}

/// Queries every global and every `main` local through `demand`, checking
/// each answered fact byte-exact (as canonical name sets) against
/// `reference`. `expect_exact_cost` additionally requires drift-free
/// traversals (an unbudgeted demand run must never need the gate).
fn check_against_reference(
    built: &Built,
    demand: &mut DemandPta,
    reference: &pta::PtaResult,
    expect_no_drift: bool,
) {
    let p = &built.program;
    for &g in &built.globals {
        let (partial, stats) = demand.query_global(p, g);
        assert_eq!(
            names(&*partial, p, partial.pt_global(g)),
            names(reference, p, reference.pt_global(g)),
            "demand pt(global) diverged from reference"
        );
        if expect_no_drift {
            assert_eq!(stats.drift, 0, "unbudgeted demand traversal needed the oracle gate");
            assert!(!stats.fallback, "unbudgeted demand query fell back");
        }
        // Every heap cell the slice closed over must match the reference
        // cell exactly (the closure is the part a refutation walks).
        for (base, field, targets) in partial.heap_rows() {
            let base_name = partial.loc_name(p, base);
            let ref_base = reference
                .locs()
                .ids()
                .find(|&l| reference.loc_name(p, l) == base_name)
                .expect("slice base exists in reference");
            assert_eq!(
                names(&*partial, p, targets),
                names(reference, p, reference.pt_field(ref_base, field)),
                "demand heap cell {base_name}.{field:?} diverged from reference"
            );
        }
    }
    for &v in &built.program.method(built.main).locals {
        let (set, _) = demand.pt_var_query(v);
        assert_eq!(
            names(reference, p, &set),
            names(reference, p, reference.pt_var(v)),
            "demand pt(var) diverged from reference"
        );
    }
}

#[test]
fn demand_matches_reference_under_all_policies() {
    run_cases(48, |rng| {
        let ops = arb_ops(rng);
        let built = build(&ops);
        for policy in policies(&built.program) {
            let reference = pta::analyze_with(
                &built.program,
                policy.clone(),
                &PtaOptions { solver: SolverKind::Reference, ..Default::default() },
            );
            let mut demand = DemandPta::analyze(
                &built.program,
                policy.clone(),
                &PtaOptions { solver: SolverKind::Demand, ..Default::default() },
            );
            check_against_reference(&built, &mut demand, &reference, true);
        }
    });
}

#[test]
fn budget_exhaustion_changes_cost_never_answers() {
    run_cases(48, |rng| {
        let ops = arb_ops(rng);
        let built = build(&ops);
        for policy in policies(&built.program) {
            let reference = pta::analyze_with(
                &built.program,
                policy.clone(),
                &PtaOptions { solver: SolverKind::Reference, ..Default::default() },
            );
            // A one-node budget exhausts on any non-trivial traversal; the
            // answers must still be byte-identical to the reference —
            // fallback resolves against the retained exhaustive result.
            let mut demand = DemandPta::analyze(
                &built.program,
                policy.clone(),
                &PtaOptions {
                    solver: SolverKind::Demand,
                    demand_budget: 1,
                    ..Default::default()
                },
            );
            check_against_reference(&built, &mut demand, &reference, false);
        }
    });
}
