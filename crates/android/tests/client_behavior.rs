//! Behavioural tests for the leak client's edge cache, stats accounting,
//! and report aggregation.

use android::{harness::ActivitySpec, library, ClientStats, LeakClient};
use pta::{ContextPolicy, ModRef};
use symex::SymexConfig;
use tir::{ProgramBuilder, Ty};

fn two_field_app() -> tir::Program {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("App", Some(lib.activity));
    // Two static fields both pointing at the same adapter object, so they
    // share the adapter.mContext -> activity edge.
    let f1 = b.global("S1", Ty::Ref(lib.adapter));
    let f2 = b.global("S2", Ty::Ref(lib.adapter));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let a = mb.var("a", Ty::Ref(lib.adapter));
        mb.new_obj(a, lib.adapter, "ad0");
        mb.write_field(a, lib.adapter_context, this);
        mb.write_global(f1, a);
        mb.write_global(f2, a);
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "app0")]);
    b.finish()
}

#[test]
fn shared_edges_are_decided_once() {
    let program = two_field_app();
    let policy = ContextPolicy::containers_named(&program, library::CONTAINER_CLASSES);
    let pta = pta::analyze(&program, policy);
    let modref = ModRef::compute(&program, &pta);
    let mut client = LeakClient::new(&program, &pta, &modref, SymexConfig::default());
    let alarms = client.find_alarms();
    assert_eq!(alarms.len(), 2, "one alarm per static field");
    let mut stats = ClientStats::default();
    for a in alarms {
        let r = client.triage(a, &mut stats);
        assert!(!r.is_refuted(), "both leaks are real");
    }
    // Three distinct edges decided: S1->ad0, S2->ad0, ad0.mContext->app0.
    // The shared mContext edge is decided once thanks to the cache.
    assert_eq!(stats.edges_witnessed, 3);
    assert_eq!(stats.edges_refuted, 0);
    assert_eq!(stats.edge_timeouts, 0);
}

#[test]
fn report_aggregates_by_field() {
    let program = two_field_app();
    let report = android::ActivityLeakChecker::new(&program).check();
    assert_eq!(report.num_alarms(), 2);
    assert_eq!(report.num_fields(), 2);
    assert_eq!(report.num_refuted_fields(), 0);
    assert_eq!(report.num_witnessed(), 2);
}

#[test]
fn alarm_description_is_readable() {
    let program = two_field_app();
    let policy = ContextPolicy::containers_named(&program, library::CONTAINER_CLASSES);
    let pta = pta::analyze(&program, policy);
    let modref = ModRef::compute(&program, &pta);
    let client = LeakClient::new(&program, &pta, &modref, SymexConfig::default());
    let alarms = client.find_alarms();
    let d = client.describe_alarm(&alarms[0]);
    assert!(d.contains("~>"), "{d}");
    assert!(d.contains("app0"), "{d}");
}

#[test]
fn engine_stats_accessible_through_client() {
    let program = two_field_app();
    let policy = ContextPolicy::containers_named(&program, library::CONTAINER_CLASSES);
    let pta = pta::analyze(&program, policy);
    let modref = ModRef::compute(&program, &pta);
    let mut client = LeakClient::new(&program, &pta, &modref, SymexConfig::default());
    let mut stats = ClientStats::default();
    for a in client.find_alarms() {
        let _ = client.triage(a, &mut stats);
    }
    assert!(client.engine_stats().cmds_executed > 0);
    assert!(client.engine_stats().path_programs > 0);
}

#[test]
fn timeouts_are_not_refutations() {
    // With a budget of zero every searched edge times out: nothing may be
    // (unsoundly) refuted, so all alarms survive.
    let program = two_field_app();
    let policy = ContextPolicy::containers_named(&program, library::CONTAINER_CLASSES);
    let pta = pta::analyze(&program, policy);
    let modref = ModRef::compute(&program, &pta);
    let mut client =
        LeakClient::new(&program, &pta, &modref, SymexConfig::default().with_budget(0));
    let mut stats = ClientStats::default();
    let alarms = client.find_alarms();
    for a in alarms {
        let r = client.triage(a, &mut stats);
        assert!(!r.is_refuted());
    }
    assert_eq!(stats.edges_refuted, 0);
    assert!(stats.edge_timeouts > 0);
}
