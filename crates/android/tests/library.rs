//! Behavioural tests for the Android model library: collection flows,
//! the adapter constructor chain, and harness coverage.

use android::{harness::ActivitySpec, library};
use pta::{ContextPolicy, LocId};
use tir::{Operand, ProgramBuilder, Ty};

fn loc(p: &tir::Program, r: &pta::PtaResult, name: &str) -> LocId {
    r.locs().ids().find(|&l| r.loc_name(p, l) == name).unwrap_or_else(|| panic!("no loc {name}"))
}

#[test]
fn hashmap_put_then_get_flows_values() {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("App", Some(lib.activity));
    let out = b.global("OUT", Ty::Ref(b.object_class()));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let m = mb.var("m", Ty::Ref(lib.hashmap));
        let k = mb.var("k", Ty::Ref(lib.string));
        let v = mb.var("v", Ty::Ref(lib.string));
        let got = mb.var("got", Ty::Ref(mb.program_builder().object_class()));
        mb.new_obj(m, lib.hashmap, "m0");
        mb.call_static(None, lib.hashmap_init, &[Operand::Var(m)]);
        mb.new_obj(k, lib.string, "k0");
        mb.new_obj(v, lib.string, "v0");
        mb.call_virtual(None, m, "put", &[Operand::Var(k), Operand::Var(v)]);
        mb.call_virtual(Some(got), m, "get", &[Operand::Var(k)]);
        mb.write_global(out, got);
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "app0")]);
    let p = b.finish();
    let r = pta::analyze(&p, ContextPolicy::Insensitive);
    // The stored value flows out through get (entry chains).
    let g = p.global_by_name("OUT").unwrap();
    let v0 = loc(&p, &r, "v0");
    assert!(
        r.pt_global(g).contains(v0.index()),
        "get() must return stored values:\n{}",
        r.dump(&p)
    );
}

#[test]
fn adapter_ctor_chain_lands_in_mcontext() {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("App", Some(lib.activity));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let a = mb.var("a", Ty::Ref(lib.resource_cursor_adapter));
        mb.new_obj(a, lib.resource_cursor_adapter, "ad0");
        mb.call_static(
            None,
            lib.resource_cursor_adapter_ctor,
            &[Operand::Var(a), Operand::Var(this)],
        );
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "app0")]);
    let p = b.finish();
    let r = pta::analyze(&p, ContextPolicy::Insensitive);
    // Two-superclass propagation: ad0.mContext -> app0.
    let ad0 = loc(&p, &r, "ad0");
    let app0 = loc(&p, &r, "app0");
    assert!(r.pt_field(ad0, lib.adapter_context).contains(app0.index()));
}

#[test]
fn vec_get_returns_pushed_values() {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("App", Some(lib.activity));
    let out = b.global("OUT", Ty::Ref(b.object_class()));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let v = mb.var("v", Ty::Ref(lib.vec));
        let s = mb.var("s", Ty::Ref(lib.string));
        let got = mb.var("got", Ty::Ref(mb.program_builder().object_class()));
        mb.new_obj(v, lib.vec, "v0");
        mb.call_static(None, lib.vec_init, &[Operand::Var(v)]);
        mb.new_obj(s, lib.string, "s0");
        mb.call_virtual(None, v, "push", &[Operand::Var(s)]);
        mb.call_virtual(Some(got), v, "get", &[Operand::Int(0)]);
        mb.write_global(out, got);
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "app0")]);
    let p = b.finish();
    let r = pta::analyze(&p, ContextPolicy::Insensitive);
    let g = p.global_by_name("OUT").unwrap();
    assert!(r.pt_global(g).contains(loc(&p, &r, "s0").index()));
}

#[test]
fn container_policy_splits_per_receiver() {
    // Two vecs grown separately: container sensitivity distinguishes their
    // grown arrays (the vec0.arr1 naming of Figure 2).
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("App", Some(lib.activity));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let v1 = mb.var("v1", Ty::Ref(lib.vec));
        let v2 = mb.var("v2", Ty::Ref(lib.vec));
        let s = mb.var("s", Ty::Ref(lib.string));
        mb.new_obj(v1, lib.vec, "vecA");
        mb.call_static(None, lib.vec_init, &[Operand::Var(v1)]);
        mb.new_obj(v2, lib.vec, "vecB");
        mb.call_static(None, lib.vec_init, &[Operand::Var(v2)]);
        mb.new_obj(s, lib.string, "s0");
        mb.call_virtual(None, v1, "push", &[Operand::Var(s)]);
        mb.call_virtual(None, v2, "push", &[Operand::Var(s)]);
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "app0")]);
    let p = b.finish();
    let policy = ContextPolicy::containers_named(&p, library::CONTAINER_CLASSES);
    let r = pta::analyze(&p, policy);
    let names: Vec<String> = r.locs().ids().map(|l| r.loc_name(&p, l)).collect();
    assert!(names.iter().any(|n| n == "vecA.vec_grown"), "{names:?}");
    assert!(names.iter().any(|n| n == "vecB.vec_grown"), "{names:?}");
}

#[test]
fn harness_handlers_all_reached_and_entry_has_no_params() {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("App", Some(lib.activity));
    for h in ["onCreate", "onResume", "onPause", "onDestroy"] {
        b.method(Some(act), h, &[], None, |mb| {
            mb.ret_void();
        });
    }
    let spec = ActivitySpec::new(act, "app0")
        .with_handler("onResume")
        .with_handler("onPause")
        .with_handler("onDestroy");
    let main = android::harness::generate_main(&mut b, &lib, &[spec]);
    let p = b.finish();
    assert!(p.method(main).params.is_empty());
    let r = pta::analyze(&p, ContextPolicy::Insensitive);
    for h in ["onCreate", "onResume", "onPause", "onDestroy"] {
        let m = p.method_on(act, h).unwrap();
        assert!(r.is_reached(m), "{h} not reached by harness");
    }
}

#[test]
fn static_init_populates_shared_arrays() {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("App", Some(lib.activity));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        mb.ret_void();
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "app0")]);
    let p = b.finish();
    let r = pta::analyze(&p, ContextPolicy::Insensitive);
    assert_eq!(r.pt_global(lib.vec_empty).len(), 1);
    assert_eq!(r.pt_global(lib.map_empty_table).len(), 1);
}

#[test]
fn vec_clear_does_not_release_contents() {
    // clear() resets size but the backing array keeps its pointers — the
    // classic retention hazard: the object stays heap-reachable.
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("App", Some(lib.activity));
    let hold = b.global("HOLD", Ty::Ref(lib.vec));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let v = mb.var("v", Ty::Ref(lib.vec));
        mb.new_obj(v, lib.vec, "v0");
        mb.call_static(None, lib.vec_init, &[Operand::Var(v)]);
        mb.call_virtual(None, v, "push", &[Operand::Var(this)]);
        mb.call_virtual(None, v, "clear", &[]);
        mb.write_global(hold, v);
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "app0")]);
    let p = b.finish();
    let report = android::ActivityLeakChecker::new(&p).check();
    // The activity stays reachable through the retained array: a true
    // (retention) leak, not refuted.
    assert!(report.num_witnessed() >= 1, "clear() must not hide retention");
}

#[test]
fn hashmap_remove_keeps_graph_sound() {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("App", Some(lib.activity));
    let hold = b.global("HOLD", Ty::Ref(lib.hashmap));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let m = mb.var("m", Ty::Ref(lib.hashmap));
        let k = mb.var("k", Ty::Ref(lib.string));
        mb.new_obj(m, lib.hashmap, "m0");
        mb.call_static(None, lib.hashmap_init, &[Operand::Var(m)]);
        mb.new_obj(k, lib.string, "k0");
        mb.call_virtual(None, m, "put", &[Operand::Var(k), Operand::Var(this)]);
        mb.call_virtual(None, m, "remove", &[Operand::Var(k)]);
        mb.write_global(hold, m);
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "app0")]);
    let p = b.finish();
    // remove() is flow-sensitive behaviour the flow-insensitive property
    // ignores: the alarm survives (sound — the entry existed at some
    // point), mirroring the paper's flow-insensitive client.
    let report = android::ActivityLeakChecker::new(&p).check();
    assert!(report.num_witnessed() >= 1);
    // And the remove method itself is reached and analyzed.
    let r = pta::analyze(&p, ContextPolicy::Insensitive);
    let remove = p.method_on(lib.hashmap, "remove").unwrap();
    assert!(r.is_reached(remove));
}
