//! End-to-end leak-client tests: false alarms filtered, real leaks
//! witnessed, annotations honoured.

use android::{harness::ActivitySpec, library, paper_annotations, ActivityLeakChecker};
use tir::{Operand, ProgramBuilder, Ty};

/// The Figure 1 false alarm, end to end: an activity pushed into a local
/// `AVec` pollutes the shared empty array; a static field points to another
/// `AVec` holding only strings. The flow-insensitive analysis connects the
/// static field to the activity through the shared array; Thresher refutes
/// it.
fn vec_false_alarm_app() -> tir::Program {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("Act", Some(lib.activity));
    let objs = b.global("OBJS", Ty::Ref(lib.vec));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let acts = mb.var("acts", Ty::Ref(lib.vec));
        let hello = mb.var("hello", Ty::Ref(lib.string));
        let objs_v = mb.var("objs", Ty::Ref(lib.vec));
        mb.new_obj(acts, lib.vec, "vec1");
        mb.call_static(None, lib.vec_init, &[Operand::Var(acts)]);
        mb.call_virtual(None, acts, "push", &[Operand::Var(this)]);
        mb.new_obj(hello, lib.string, "hello0");
        mb.read_global(objs_v, objs);
        mb.call_virtual(None, objs_v, "push", &[Operand::Var(hello)]);
    });
    // Static initializer for OBJS, invoked from a free function the
    // harness's static init can't see — do it in a handler-like setup
    // method called first from main via an extra activity-free route:
    // simplest is to initialize OBJS inside onCreate of a setup activity.
    let setup = b.class("SetupAct", Some(lib.activity));
    b.method(Some(setup), "onCreate", &[], None, |mb| {
        let v = mb.var("v", Ty::Ref(lib.vec));
        mb.new_obj(v, lib.vec, "vec0");
        mb.call_static(None, lib.vec_init, &[Operand::Var(v)]);
        mb.write_global(objs, v);
    });
    android::harness::generate_main(
        &mut b,
        &lib,
        &[ActivitySpec::new(setup, "setup0"), ActivitySpec::new(act, "act0")],
    );
    b.finish()
}

#[test]
fn fig1_false_alarm_is_filtered() {
    let program = vec_false_alarm_app();
    let report = ActivityLeakChecker::new(&program).check();
    // The flow-insensitive analysis raises alarms (OBJS ~> activities);
    // every one of them is refuted.
    assert!(report.num_alarms() >= 1, "expected pollution alarms");
    assert_eq!(
        report.num_refuted(),
        report.num_alarms(),
        "all alarms should be filtered: {:?}",
        report.alarms.iter().map(|(a, r)| (a, r.is_refuted())).collect::<Vec<_>>()
    );
    assert_eq!(report.num_refuted_fields(), report.num_fields());
    assert!(report.stats.edges_refuted > 0);
}

/// The Figure 5 singleton leak: `getInstance(activity)` stores the activity
/// into a static adapter's `mContext` through two superclass constructors.
fn singleton_leak_app() -> tir::Program {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let email_adapter = b.class("EmailAddressAdapter", Some(lib.resource_cursor_adapter));
    let s_instance = b.global("EmailAddressAdapter.sInstance", Ty::Ref(email_adapter));

    // getInstance(context): if (sInstance == null) sInstance = new ...
    let get_instance = b.method(
        None,
        "getInstance",
        &[("context", Ty::Ref(lib.context))],
        Some(Ty::Ref(email_adapter)),
        |mb| {
            let ctx = mb.param(0);
            let cur = mb.var("cur", Ty::Ref(email_adapter));
            let fresh = mb.var("fresh", Ty::Ref(email_adapter));
            let out = mb.var("out", Ty::Ref(email_adapter));
            mb.read_global(cur, s_instance);
            mb.if_then(tir::Cond::cmp(tir::CmpOp::Eq, cur, Operand::Null), |mb| {
                mb.new_obj(fresh, email_adapter, "adr0");
                mb.call_static(
                    None,
                    lib.resource_cursor_adapter_ctor,
                    &[Operand::Var(fresh), Operand::Var(ctx)],
                );
                mb.write_global(s_instance, fresh);
            });
            mb.read_global(out, s_instance);
            mb.ret(out);
        },
    );

    let act = b.class("MessageCompose", Some(lib.activity));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let a = mb.var("a", Ty::Ref(email_adapter));
        mb.call_static(Some(a), get_instance, &[Operand::Var(this)]);
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "compose0")]);
    b.finish()
}

#[test]
fn fig5_singleton_leak_is_witnessed() {
    let program = singleton_leak_app();
    let report = ActivityLeakChecker::new(&program).check();
    assert!(report.num_alarms() >= 1);
    // The leak is real: at least the sInstance alarms survive.
    assert!(
        report.num_witnessed() >= 1,
        "the singleton leak must not be refuted: {:?}",
        report.alarms.iter().map(|(a, r)| (a, r.is_refuted())).collect::<Vec<_>>()
    );
    // Witnessed alarms carry paths for triage, and every recorded witness
    // trace is structurally consistent with the call graph (§4: path
    // program witnesses are the triage artifact).
    let pta = pta::analyze(
        &program,
        pta::ContextPolicy::containers_named(&program, android::library::CONTAINER_CLASSES),
    );
    for (_, r) in &report.alarms {
        if let android::AlarmResult::Witnessed { path, witness } = r {
            assert!(!path.is_empty());
            if let Some(w) = witness {
                assert_eq!(
                    symex::validate_witness(&program, &pta, w),
                    symex::ReplayVerdict::Consistent
                );
            }
        }
    }
}

/// A latent leak behind a provably-false flag (the StandupTimer case):
/// the path-sensitive search refutes the alarm.
#[test]
fn latent_flag_guarded_leak_is_refuted() {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("TimerAct", Some(lib.activity));
    let cache = b.global("DAO.cachedInstance", Ty::Ref(lib.activity));
    let flag = b.global("DAO.cacheDAOInstances", Ty::Int);
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let f = mb.var("f", Ty::Int);
        mb.write_global(flag, 0); // configuration: caching disabled
        mb.read_global(f, flag);
        mb.if_then(tir::Cond::cmp(tir::CmpOp::Eq, f, 1), |mb| {
            mb.write_global(cache, this);
        });
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "timer0")]);
    let program = b.finish();
    let report = ActivityLeakChecker::new(&program).check();
    assert_eq!(report.num_alarms(), 1);
    assert_eq!(report.num_refuted(), 1, "the guarded leak is latent, not real");
}

/// HashMap pollution: storing activities in one map and strings in a
/// static map connects the static map to activities through the shared
/// EMPTY_TABLE. The annotation severs those edges up front.
fn hashmap_pollution_app() -> (tir::Program, Vec<android::Annotation>) {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("MapAct", Some(lib.activity));
    let config_map = b.global("CONFIG", Ty::Ref(lib.hashmap));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let local = mb.var("local", Ty::Ref(lib.hashmap));
        let k1 = mb.var("k1", Ty::Ref(lib.string));
        let cfg = mb.var("cfg", Ty::Ref(lib.hashmap));
        let v1 = mb.var("v1", Ty::Ref(lib.string));
        // Local map holding the activity.
        mb.new_obj(local, lib.hashmap, "localMap");
        mb.call_static(None, lib.hashmap_init, &[Operand::Var(local)]);
        mb.new_obj(k1, lib.string, "key1");
        mb.call_virtual(None, local, "put", &[Operand::Var(k1), Operand::Var(this)]);
        // Static map holding only strings.
        mb.new_obj(cfg, lib.hashmap, "configMap");
        mb.call_static(None, lib.hashmap_init, &[Operand::Var(cfg)]);
        mb.new_obj(v1, lib.string, "val1");
        mb.call_virtual(None, cfg, "put", &[Operand::Var(k1), Operand::Var(v1)]);
        mb.write_global(config_map, cfg);
    });
    android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "mapact0")]);
    let anns = paper_annotations(&lib);
    (b.finish(), anns)
}

#[test]
fn hashmap_annotation_reduces_alarms() {
    let (program, anns) = hashmap_pollution_app();
    let unannotated = ActivityLeakChecker::new(&program).check();
    let annotated = ActivityLeakChecker::new(&program).with_annotations(anns).check();
    // The annotation can only reduce (or keep) the alarm count.
    assert!(annotated.num_alarms() <= unannotated.num_alarms());
    // Under the annotation, the string-only static map is clean.
    assert_eq!(
        annotated.num_witnessed(),
        0,
        "annotated run must filter everything: {} alarms, {} refuted",
        annotated.num_alarms(),
        annotated.num_refuted()
    );
}
