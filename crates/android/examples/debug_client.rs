//! Debug probe for the client tests.
use android::{harness::ActivitySpec, library};
use pta::{ContextPolicy, HeapEdge, ModRef};
use symex::{Engine, SymexConfig};
use tir::{Operand, ProgramBuilder, Ty};

fn main() {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);
    let act = b.class("Act", Some(lib.activity));
    let objs = b.global("OBJS", Ty::Ref(lib.vec));
    b.method(Some(act), "onCreate", &[], None, |mb| {
        let this = mb.this();
        let acts = mb.var("acts", Ty::Ref(lib.vec));
        let hello = mb.var("hello", Ty::Ref(lib.string));
        let objs_v = mb.var("objs", Ty::Ref(lib.vec));
        mb.new_obj(acts, lib.vec, "vec1");
        mb.call_static(None, lib.vec_init, &[Operand::Var(acts)]);
        mb.call_virtual(None, acts, "push", &[Operand::Var(this)]);
        mb.new_obj(hello, lib.string, "hello0");
        mb.read_global(objs_v, objs);
        mb.call_virtual(None, objs_v, "push", &[Operand::Var(hello)]);
    });
    let setup = b.class("SetupAct", Some(lib.activity));
    b.method(Some(setup), "onCreate", &[], None, |mb| {
        let v = mb.var("v", Ty::Ref(lib.vec));
        mb.new_obj(v, lib.vec, "vec0");
        mb.call_static(None, lib.vec_init, &[Operand::Var(v)]);
        mb.write_global(objs, v);
    });
    android::harness::generate_main(
        &mut b,
        &lib,
        &[ActivitySpec::new(setup, "setup0"), ActivitySpec::new(act, "act0")],
    );
    let p = b.finish();
    let policy = ContextPolicy::containers_named(&p, library::CONTAINER_CLASSES);
    let pta = pta::analyze(&p, policy);
    let modref = ModRef::compute(&p, &pta);
    eprintln!("== points-to graph ==\n{}", pta.dump(&p));
    let empty = pta.locs().ids().find(|&l| pta.loc_name(&p, l) == "vec_empty_arr").unwrap();
    let act0 = pta.locs().ids().find(|&l| pta.loc_name(&p, l) == "act0").unwrap();
    let edge = HeapEdge::Field { base: empty, field: p.contents_field, target: act0 };
    let mut engine = Engine::new(&p, &pta, &modref, SymexConfig::default());
    let t = std::time::Instant::now();
    let out = engine.refute_edge(&edge);
    match &out {
        symex::SearchOutcome::Witnessed(w) => println!("WITNESS {}", w.describe(&p)),
        other => println!("{other:?}"),
    }
    println!(
        "time={:?} paths={} cmds={}",
        t.elapsed(),
        engine.stats.path_programs,
        engine.stats.cmds_executed
    );
}
