//! Library annotations (the `Ann?=Y` configuration of §4).
//!
//! The paper adds a single annotation to the Android `HashMap` class stating
//! that the shared `EMPTY_TABLE` "can never point to anything", because the
//! null-object pollution it causes dominates the false-alarm count. The
//! annotation is applied *inside* the points-to analysis (as in the paper,
//! where it informs WALA): stores into the annotated array's `contents` are
//! suppressed, so the pollution never reaches the graph, grown copies, or
//! producer maps.

use pta::PtaOptions;
use tir::AllocId;

/// A trusted fact about the library, applied to the points-to analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Annotation {
    /// The array allocated at this site never contains anything — the
    /// `EMPTY_TABLE` annotation of §4.
    EmptyContents(AllocId),
}

/// Converts annotations into points-to analysis options.
pub fn to_pta_options(annotations: &[Annotation]) -> PtaOptions {
    let mut opts = PtaOptions::default();
    for a in annotations {
        match a {
            Annotation::EmptyContents(alloc) => opts.empty_contents_allocs.push(*alloc),
        }
    }
    opts
}

/// The `Ann?=Y` configuration. The paper annotates the one library class
/// whose shared empty table causes the pollution (`HashMap.EMPTY_TABLE`);
/// our model library implements *both* collections with the null-object
/// pattern, so the analogous configuration trusts both shared arrays.
pub fn paper_annotations(lib: &crate::library::AndroidLib) -> Vec<Annotation> {
    vec![
        Annotation::EmptyContents(lib.map_empty_alloc),
        Annotation::EmptyContents(lib.vec_empty_alloc),
    ]
}

/// Only the `HashMap` table annotation (the literal single annotation of
/// the paper), for ablations.
pub fn map_only_annotations(lib: &crate::library::AndroidLib) -> Vec<Annotation> {
    vec![Annotation::EmptyContents(lib.map_empty_alloc)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{harness::ActivitySpec, library};
    use tir::{Operand, ProgramBuilder, Ty};

    #[test]
    fn empty_contents_suppresses_pollution_in_pta() {
        let mut b = ProgramBuilder::new();
        let lib = library::install(&mut b);
        let act = b.class("LeakyAct", Some(lib.activity));
        let cache = b.global("CACHE", Ty::Ref(lib.hashmap));
        b.method(Some(act), "onCreate", &[], None, |mb| {
            let this = mb.this();
            let m = mb.var("m", Ty::Ref(lib.hashmap));
            let k = mb.var("k", Ty::Ref(lib.string));
            mb.new_obj(m, lib.hashmap, "map0");
            mb.call_static(None, lib.hashmap_init, &[Operand::Var(m)]);
            mb.new_obj(k, lib.string, "key0");
            mb.call_virtual(None, m, "put", &[Operand::Var(k), Operand::Var(this)]);
            mb.write_global(cache, m);
        });
        crate::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "leaky0")]);
        let p = b.finish();

        // Unannotated: the empty table's contents are polluted.
        let plain = pta::analyze(&p, pta::ContextPolicy::Insensitive);
        let empty = plain.locs().ids().find(|&l| plain.loc_name(&p, l) == "map_empty_arr").unwrap();
        assert!(!plain.pt_field(empty, p.contents_field).is_empty());

        // Annotated: the pollution never enters the graph.
        let opts = to_pta_options(&paper_annotations(&lib));
        let ann = pta::analyze_with(&p, pta::ContextPolicy::Insensitive, &opts);
        let empty = ann.locs().ids().find(|&l| ann.loc_name(&p, l) == "map_empty_arr").unwrap();
        assert!(ann.pt_field(empty, p.contents_field).is_empty(), "{}", ann.dump(&p));
    }
}
