//! Top-level harness generation.
//!
//! Android apps are event-driven: handlers may run in (almost) any order.
//! Like the paper (§4 "Implementation"), the harness invokes every event
//! handler of every registered activity, each at most once — modelled as a
//! fixed-order sequence of non-deterministic *maybe* blocks after the
//! mandatory `onCreate`. Restricting each handler to one invocation
//! prevents termination issues, exactly as in the paper.

use tir::{ClassId, MethodId, ProgramBuilder, Ty};

use crate::library::AndroidLib;

/// One registered activity: its class, the allocation-site name the
/// harness uses, and its event handlers (simple method names resolved
/// virtually).
#[derive(Clone, Debug)]
pub struct ActivitySpec {
    /// The activity subclass.
    pub class: ClassId,
    /// Allocation-site name (e.g. `mainAct0`).
    pub alloc_name: String,
    /// Handler method names invoked by the harness; `onCreate` is called
    /// unconditionally first if present.
    pub handlers: Vec<String>,
}

impl ActivitySpec {
    /// Creates a spec with the standard `onCreate` handler.
    pub fn new(class: ClassId, alloc_name: impl Into<String>) -> Self {
        ActivitySpec { class, alloc_name: alloc_name.into(), handlers: vec!["onCreate".to_owned()] }
    }

    /// Adds a handler (builder style).
    pub fn with_handler(mut self, name: impl Into<String>) -> Self {
        self.handlers.push(name.into());
        self
    }
}

/// Generates the harness `main`: library static initialization, then
/// per-activity allocation and handler invocation. Returns the entry
/// method (already set on the builder).
pub fn generate_main(
    b: &mut ProgramBuilder,
    lib: &AndroidLib,
    activities: &[ActivitySpec],
) -> MethodId {
    let specs = activities.to_vec();
    let static_init = lib.static_init;
    let main = b.method(None, "main", &[], None, |mb| {
        mb.call_static(None, static_init, &[]);
        for (i, spec) in specs.iter().enumerate() {
            let var = mb.var(&format!("act{i}"), Ty::Ref(spec.class));
            mb.new_obj(var, spec.class, &spec.alloc_name);
            let mut handlers = spec.handlers.iter();
            if let Some(first) = handlers.next() {
                mb.call_virtual(None, var, first, &[]);
            }
            for h in handlers {
                let h = h.clone();
                mb.maybe(move |mb| {
                    mb.call_virtual(None, var, &h, &[]);
                });
            }
        }
    });
    b.set_entry(main);
    main
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn harness_invokes_all_handlers() {
        let mut b = ProgramBuilder::new();
        let lib = library::install(&mut b);
        let my_act = b.class("MyActivity", Some(lib.activity));
        b.method(Some(my_act), "onCreate", &[], None, |mb| {
            mb.ret_void();
        });
        b.method(Some(my_act), "onDestroy", &[], None, |mb| {
            mb.ret_void();
        });
        let spec = ActivitySpec::new(my_act, "myact0").with_handler("onDestroy");
        let main = generate_main(&mut b, &lib, &[spec]);
        let p = b.finish();
        assert_eq!(p.entry(), main);

        let r = pta::analyze(&p, pta::ContextPolicy::Insensitive);
        let on_create = p.method_on(my_act, "onCreate").unwrap();
        let on_destroy = p.method_on(my_act, "onDestroy").unwrap();
        assert!(r.is_reached(on_create));
        assert!(r.is_reached(on_destroy));
    }
}
