//! The Activity-leak client (§2 "Formulate Queries", §4).
//!
//! An *alarm* is a pair (static field, Activity abstract location) connected
//! in the flow-insensitive points-to graph. The client asks the
//! witness-refutation engine about each edge of a connecting heap path; a
//! refuted edge is deleted and an alternative path is sought. The alarm is
//! *filtered* when source and sink become disconnected, and *reported* when
//! every edge of some path is witnessed (or times out, which is soundly
//! treated as witnessed).
//!
//! Edge decisions are delegated to the [`RefutationScheduler`], which owns
//! the shared edge-decision cache and can fan independent decisions over
//! worker threads ([`LeakClient::with_jobs`]) without changing any reported
//! number.

use std::collections::HashMap;

use pta::{BitSet, HeapEdge, HeapGraphView, LocId, ModRef, PtaResult};
use symex::{
    AbortCounts, EdgeAnswer, JobVerdict, ReachJob, RefutationScheduler, StopReason, SymexConfig,
    Tally, Witness,
};
use tir::{GlobalId, Program};

// Annotations are applied at the points-to level (see
// [`crate::annotations`]); the client consumes the already-annotated
// analysis result.

/// One (static field, Activity location) pair reported by the
/// flow-insensitive analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Alarm {
    /// The static field (global) at the path source.
    pub field: GlobalId,
    /// The Activity instance location at the path sink.
    pub activity: LocId,
}

/// Outcome of triaging one alarm.
#[derive(Clone, Debug)]
pub enum AlarmResult {
    /// Every heap path was severed: the alarm is a proven false positive.
    Refuted,
    /// A path survived with all edges witnessed: a real (or at least
    /// unrefuted) leak, with one witness per edge.
    Witnessed {
        /// The surviving path.
        path: Vec<HeapEdge>,
        /// A representative witness for the last edge decided.
        witness: Option<Witness>,
    },
}

impl AlarmResult {
    /// True if the alarm was filtered out.
    pub fn is_refuted(&self) -> bool {
        matches!(self, AlarmResult::Refuted)
    }
}

/// Per-run counters matching the Table 1 column groups, extended with
/// abort/degradation provenance.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Edges refuted (`RefEdg`).
    pub edges_refuted: usize,
    /// Edges witnessed (`WitEdg`).
    pub edges_witnessed: usize,
    /// Edge timeouts (`TO`): edges whose search aborted for any reason.
    pub edge_timeouts: usize,
    /// Abort counts by reason (`edge_timeouts` broken down).
    pub aborts: AbortCounts,
    /// Extra (degraded) refutation attempts beyond the strict first pass.
    pub retries: usize,
    /// Edges decided only by a coarsened retry.
    pub degraded_decisions: usize,
    /// Pending path edges descheduled because an earlier edge of their path
    /// was refuted (never searched — distinct from aborted).
    pub edges_descheduled: usize,
    /// Committed decisions reused from the persistent cache (zero without
    /// an attached store).
    pub cache_hits: usize,
    /// Committed decisions computed live for lack of a cache record.
    pub cache_misses: usize,
    /// Committed decisions recomputed because an edit invalidated their
    /// cache record.
    pub cache_invalidated: usize,
    /// Path programs explored by live (non-cache) computation; zero on a
    /// fully warm run.
    pub fresh_path_programs: u64,
    /// Total symbolic-execution compute time (summed per edge; under
    /// `--jobs N` the wall clock is smaller).
    pub symex_time: std::time::Duration,
}

impl ClientStats {
    /// Folds one scheduler [`Tally`] into these counters.
    fn absorb(&mut self, t: &Tally) {
        self.edges_refuted += t.edges_refuted as usize;
        self.edges_witnessed += t.edges_witnessed as usize;
        self.edge_timeouts += t.edge_timeouts as usize;
        self.aborts.merge(&t.aborts);
        self.retries += t.retries as usize;
        self.degraded_decisions += t.degraded_decisions as usize;
        self.edges_descheduled += t.edges_descheduled as usize;
        self.cache_hits += t.cache_hits as usize;
        self.cache_misses += t.cache_misses as usize;
        self.cache_invalidated += t.cache_invalidated as usize;
        self.fresh_path_programs += t.fresh_path_programs;
        self.symex_time += t.symex_time;
    }
}

/// The full leak report for one app/configuration.
#[derive(Debug)]
pub struct LeakReport {
    /// Each alarm with its outcome, in discovery order.
    pub alarms: Vec<(Alarm, AlarmResult)>,
    /// Edge/time counters.
    pub stats: ClientStats,
}

impl LeakReport {
    /// Number of alarms reported by the flow-insensitive analysis
    /// (`Alarms`).
    pub fn num_alarms(&self) -> usize {
        self.alarms.len()
    }

    /// Number of refuted alarms (`RefA`).
    pub fn num_refuted(&self) -> usize {
        self.alarms.iter().filter(|(_, r)| r.is_refuted()).count()
    }

    /// Number of surviving alarms.
    pub fn num_witnessed(&self) -> usize {
        self.num_alarms() - self.num_refuted()
    }

    /// Distinct leaky fields reported by the points-to analysis (`Flds`).
    pub fn num_fields(&self) -> usize {
        let mut fields: Vec<GlobalId> = self.alarms.iter().map(|(a, _)| a.field).collect();
        fields.sort();
        fields.dedup();
        fields.len()
    }

    /// Fields whose every alarm was refuted (`RefFlds`): proven to never
    /// point to any Activity.
    pub fn num_refuted_fields(&self) -> usize {
        let mut by_field: HashMap<GlobalId, bool> = HashMap::new();
        for (a, r) in &self.alarms {
            let e = by_field.entry(a.field).or_insert(true);
            *e &= r.is_refuted();
        }
        by_field.values().filter(|&&all| all).count()
    }
}

/// The leak-detection client. Owns the deletion overlay and the refutation
/// scheduler (and through it the shared edge-decision cache); borrows the
/// analysis results.
pub struct LeakClient<'a> {
    program: &'a Program,
    pta: &'a PtaResult,
    view: HeapGraphView<'a>,
    sched: RefutationScheduler<'a>,
    activity_locs: BitSet,
}

impl<'a> LeakClient<'a> {
    /// Creates a client over an (optionally annotation-aware) analysis
    /// result. Runs sequentially by default; see [`LeakClient::with_jobs`].
    pub fn new(
        program: &'a Program,
        pta: &'a PtaResult,
        modref: &'a ModRef,
        config: SymexConfig,
    ) -> Self {
        let view = HeapGraphView::new(pta);
        let activity_class =
            program.class_by_name("Activity").expect("Android library model not installed");
        let activity_locs = pta.locs_of_class(program, activity_class);
        LeakClient {
            program,
            pta,
            view,
            sched: RefutationScheduler::new(program, pta, modref, config, 1),
            activity_locs,
        }
    }

    /// Sets the scheduler thread count (1 = sequential; reported numbers
    /// are identical for every setting).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.sched.set_jobs(jobs);
        self
    }

    /// Attaches a persistent decision store: decisions are warm-started
    /// from disk when their fingerprint matches and (in read-write mode)
    /// written through on commit.
    pub fn with_store(mut self, store: std::sync::Arc<symex::DecisionStore>) -> Self {
        self.sched.set_store(store);
        self
    }

    /// Read access to the merged engine statistics (across all decisions
    /// committed so far, whichever thread computed them).
    pub fn engine_stats(&self) -> &symex::SearchStats {
        self.sched.stats()
    }

    /// Enumerates the (field, Activity) alarms of the annotated points-to
    /// graph.
    pub fn find_alarms(&self) -> Vec<Alarm> {
        let mut out = Vec::new();
        for g in self.program.global_ids() {
            for target in self.activity_locs.iter() {
                let t: BitSet = BitSet::singleton(target);
                if self.view.is_reachable(self.program, g, &t) {
                    out.push(Alarm { field: g, activity: LocId(target as u32) });
                }
            }
        }
        out
    }

    /// Decides one edge, consulting and filling the shared decision cache.
    /// Refuted edges are deleted from the view. The search is
    /// fault-contained and, when the configuration allows, retried under
    /// coarser precision on abort.
    pub fn decide_edge(&mut self, edge: HeapEdge, stats: &mut ClientStats) -> CachedView {
        let mut tally = Tally::default();
        let answer = self.sched.decide_edge(edge, &mut tally);
        stats.absorb(&tally);
        match answer {
            EdgeAnswer::Refuted => {
                self.view.delete(edge);
                CachedView::Refuted
            }
            EdgeAnswer::Witnessed(w) => CachedView::Witnessed(w),
            EdgeAnswer::Aborted(r) => CachedView::Aborted(r),
        }
    }

    /// Triages one alarm: refute edges along paths until the alarm's
    /// endpoints are disconnected, or some path is fully witnessed.
    pub fn triage(&mut self, alarm: Alarm, stats: &mut ClientStats) -> AlarmResult {
        let _span = obs::span_with(obs::SpanKind::Alarm, || self.describe_alarm(&alarm));
        let job =
            ReachJob { source: alarm.field, targets: BitSet::singleton(alarm.activity.index()) };
        let outcome = self.sched.run(&mut self.view, std::slice::from_ref(&job));
        stats.absorb(&outcome.tally);
        match outcome.verdicts.into_iter().next().expect("one verdict per job") {
            JobVerdict::Refuted { .. } => AlarmResult::Refuted,
            JobVerdict::Witnessed { path, witness } => AlarmResult::Witnessed { path, witness },
        }
    }

    /// Runs the full pipeline: enumerate alarms, triage all of them in one
    /// scheduler batch (so worker threads can speculate across alarms),
    /// aggregate.
    pub fn run(mut self) -> LeakReport {
        let _span = obs::span(obs::SpanKind::Client, "activity-leak");
        let alarms = self.find_alarms();
        obs::add(obs::Counter::AlarmsFound, alarms.len() as u64);
        let jobs: Vec<ReachJob> = alarms
            .iter()
            .map(|a| ReachJob { source: a.field, targets: BitSet::singleton(a.activity.index()) })
            .collect();
        let outcome = self.sched.run(&mut self.view, &jobs);
        let mut stats = ClientStats::default();
        stats.absorb(&outcome.tally);
        let mut results = Vec::new();
        for (alarm, verdict) in alarms.into_iter().zip(outcome.verdicts) {
            let r = match verdict {
                JobVerdict::Refuted { .. } => AlarmResult::Refuted,
                JobVerdict::Witnessed { path, witness } => AlarmResult::Witnessed { path, witness },
            };
            obs::add(
                if r.is_refuted() {
                    obs::Counter::AlarmsRefuted
                } else {
                    obs::Counter::AlarmsWitnessed
                },
                1,
            );
            results.push((alarm, r));
        }
        LeakReport { alarms: results, stats }
    }

    /// Renders an alarm for diagnostics.
    pub fn describe_alarm(&self, alarm: &Alarm) -> String {
        format!(
            "{} ~> {}",
            self.program.global(alarm.field).name,
            self.pta.loc_name(self.program, alarm.activity)
        )
    }
}

/// View of a cached edge decision.
#[derive(Debug)]
pub enum CachedView {
    /// The edge is refuted (and now deleted).
    Refuted,
    /// The edge is witnessed; carries the witness on first decision.
    Witnessed(Option<Witness>),
    /// The search gave up for the stated reason; not refuted.
    Aborted(StopReason),
}
