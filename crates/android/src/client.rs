//! The Activity-leak client (§2 "Formulate Queries", §4).
//!
//! An *alarm* is a pair (static field, Activity abstract location) connected
//! in the flow-insensitive points-to graph. The client asks the
//! witness-refutation engine about each edge of a connecting heap path; a
//! refuted edge is deleted and an alternative path is sought. The alarm is
//! *filtered* when source and sink become disconnected, and *reported* when
//! every edge of some path is witnessed (or times out, which is soundly
//! treated as witnessed).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use pta::{BitSet, HeapEdge, HeapGraphView, LocId, ModRef, PtaResult};
use symex::{AbortCounts, Engine, SearchOutcome, StopReason, SymexConfig, Witness};
use tir::{GlobalId, Program};

// Annotations are applied at the points-to level (see
// [`crate::annotations`]); the client consumes the already-annotated
// analysis result.

/// One (static field, Activity location) pair reported by the
/// flow-insensitive analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Alarm {
    /// The static field (global) at the path source.
    pub field: GlobalId,
    /// The Activity instance location at the path sink.
    pub activity: LocId,
}

/// Outcome of triaging one alarm.
#[derive(Clone, Debug)]
pub enum AlarmResult {
    /// Every heap path was severed: the alarm is a proven false positive.
    Refuted,
    /// A path survived with all edges witnessed: a real (or at least
    /// unrefuted) leak, with one witness per edge.
    Witnessed {
        /// The surviving path.
        path: Vec<HeapEdge>,
        /// A representative witness for the last edge decided.
        witness: Option<Witness>,
    },
}

impl AlarmResult {
    /// True if the alarm was filtered out.
    pub fn is_refuted(&self) -> bool {
        matches!(self, AlarmResult::Refuted)
    }
}

/// Per-run counters matching the Table 1 column groups, extended with
/// abort/degradation provenance.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Edges refuted (`RefEdg`).
    pub edges_refuted: usize,
    /// Edges witnessed (`WitEdg`).
    pub edges_witnessed: usize,
    /// Edge timeouts (`TO`): edges whose search aborted for any reason.
    pub edge_timeouts: usize,
    /// Abort counts by reason (`edge_timeouts` broken down).
    pub aborts: AbortCounts,
    /// Extra (degraded) refutation attempts beyond the strict first pass.
    pub retries: usize,
    /// Edges decided only by a coarsened retry.
    pub degraded_decisions: usize,
    /// Wall time of the symbolic-execution phase.
    pub symex_time: Duration,
}

/// The full leak report for one app/configuration.
#[derive(Debug)]
pub struct LeakReport {
    /// Each alarm with its outcome, in discovery order.
    pub alarms: Vec<(Alarm, AlarmResult)>,
    /// Edge/time counters.
    pub stats: ClientStats,
}

impl LeakReport {
    /// Number of alarms reported by the flow-insensitive analysis
    /// (`Alarms`).
    pub fn num_alarms(&self) -> usize {
        self.alarms.len()
    }

    /// Number of refuted alarms (`RefA`).
    pub fn num_refuted(&self) -> usize {
        self.alarms.iter().filter(|(_, r)| r.is_refuted()).count()
    }

    /// Number of surviving alarms.
    pub fn num_witnessed(&self) -> usize {
        self.num_alarms() - self.num_refuted()
    }

    /// Distinct leaky fields reported by the points-to analysis (`Flds`).
    pub fn num_fields(&self) -> usize {
        let mut fields: Vec<GlobalId> = self.alarms.iter().map(|(a, _)| a.field).collect();
        fields.sort();
        fields.dedup();
        fields.len()
    }

    /// Fields whose every alarm was refuted (`RefFlds`): proven to never
    /// point to any Activity.
    pub fn num_refuted_fields(&self) -> usize {
        let mut by_field: HashMap<GlobalId, bool> = HashMap::new();
        for (a, r) in &self.alarms {
            let e = by_field.entry(a.field).or_insert(true);
            *e &= r.is_refuted();
        }
        by_field.values().filter(|&&all| all).count()
    }
}

/// The leak-detection client. Owns the edge-result cache and the deletion
/// overlay; borrows the analysis results.
pub struct LeakClient<'a> {
    program: &'a Program,
    pta: &'a PtaResult,
    view: HeapGraphView<'a>,
    engine: Engine<'a>,
    cache: HashMap<HeapEdge, CachedOutcome>,
    activity_locs: BitSet,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum CachedOutcome {
    Refuted,
    Witnessed,
    Aborted(StopReason),
}

impl<'a> LeakClient<'a> {
    /// Creates a client over an (optionally annotation-aware) analysis
    /// result.
    pub fn new(
        program: &'a Program,
        pta: &'a PtaResult,
        modref: &'a ModRef,
        config: SymexConfig,
    ) -> Self {
        let view = HeapGraphView::new(pta);
        let activity_class =
            program.class_by_name("Activity").expect("Android library model not installed");
        let activity_locs = pta.locs_of_class(program, activity_class);
        LeakClient {
            program,
            pta,
            view,
            engine: Engine::new(program, pta, modref, config),
            cache: HashMap::new(),
            activity_locs,
        }
    }

    /// Read access to the engine statistics.
    pub fn engine_stats(&self) -> &symex::SearchStats {
        &self.engine.stats
    }

    /// Enumerates the (field, Activity) alarms of the annotated points-to
    /// graph.
    pub fn find_alarms(&self) -> Vec<Alarm> {
        let mut out = Vec::new();
        for g in self.program.global_ids() {
            for target in self.activity_locs.iter() {
                let t: BitSet = BitSet::singleton(target);
                if self.view.is_reachable(self.program, g, &t) {
                    out.push(Alarm { field: g, activity: LocId(target as u32) });
                }
            }
        }
        out
    }

    /// Decides one edge, consulting and filling the cache. Refuted edges
    /// are deleted from the view. The search is fault-contained and, when
    /// the configuration allows, retried under coarser precision on abort.
    pub fn decide_edge(&mut self, edge: HeapEdge, stats: &mut ClientStats) -> CachedView {
        if let Some(c) = self.cache.get(&edge) {
            return match c {
                CachedOutcome::Refuted => CachedView::Refuted,
                CachedOutcome::Witnessed => CachedView::Witnessed(None),
                CachedOutcome::Aborted(r) => CachedView::Aborted(r.clone()),
            };
        }
        let t0 = Instant::now();
        let decision = self.engine.refute_edge_resilient(&edge);
        stats.symex_time += t0.elapsed();
        stats.retries += (decision.attempts - 1) as usize;
        if decision.degraded {
            stats.degraded_decisions += 1;
        }
        match decision.outcome {
            SearchOutcome::Refuted => {
                stats.edges_refuted += 1;
                self.cache.insert(edge, CachedOutcome::Refuted);
                self.view.delete(edge);
                CachedView::Refuted
            }
            SearchOutcome::Witnessed(w) => {
                stats.edges_witnessed += 1;
                self.cache.insert(edge, CachedOutcome::Witnessed);
                CachedView::Witnessed(Some(w))
            }
            SearchOutcome::Aborted(reason) => {
                stats.edge_timeouts += 1;
                stats.aborts.record(&reason);
                self.cache.insert(edge, CachedOutcome::Aborted(reason.clone()));
                CachedView::Aborted(reason)
            }
        }
    }

    /// Triages one alarm: refute edges along paths until the alarm's
    /// endpoints are disconnected, or some path is fully witnessed.
    pub fn triage(&mut self, alarm: Alarm, stats: &mut ClientStats) -> AlarmResult {
        let _span = obs::span_with(obs::SpanKind::Alarm, || self.describe_alarm(&alarm));
        let target = BitSet::singleton(alarm.activity.index());
        'paths: loop {
            let Some(path) = self.view.find_path(self.program, alarm.field, &target) else {
                return AlarmResult::Refuted;
            };
            let mut last_witness = None;
            for &edge in &path {
                match self.decide_edge(edge, stats) {
                    CachedView::Refuted => continue 'paths,
                    CachedView::Witnessed(w) => last_witness = w.or(last_witness),
                    // An abort is soundly treated as not-refuted.
                    CachedView::Aborted(_) => {}
                }
            }
            return AlarmResult::Witnessed { path, witness: last_witness };
        }
    }

    /// Runs the full pipeline: enumerate alarms, triage each, aggregate.
    pub fn run(mut self) -> LeakReport {
        let _span = obs::span(obs::SpanKind::Client, "activity-leak");
        let alarms = self.find_alarms();
        obs::add(obs::Counter::AlarmsFound, alarms.len() as u64);
        let mut stats = ClientStats::default();
        let mut results = Vec::new();
        for alarm in alarms {
            let r = self.triage(alarm, &mut stats);
            obs::add(
                if r.is_refuted() {
                    obs::Counter::AlarmsRefuted
                } else {
                    obs::Counter::AlarmsWitnessed
                },
                1,
            );
            results.push((alarm, r));
        }
        LeakReport { alarms: results, stats }
    }

    /// Renders an alarm for diagnostics.
    pub fn describe_alarm(&self, alarm: &Alarm) -> String {
        format!(
            "{} ~> {}",
            self.program.global(alarm.field).name,
            self.pta.loc_name(self.program, alarm.activity)
        )
    }
}

/// View of a cached edge decision.
#[derive(Debug)]
pub enum CachedView {
    /// The edge is refuted (and now deleted).
    Refuted,
    /// The edge is witnessed; carries the witness on first decision.
    Witnessed(Option<Witness>),
    /// The search gave up for the stated reason; not refuted.
    Aborted(StopReason),
}
