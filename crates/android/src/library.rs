//! The Android library model.
//!
//! The paper analyzes Android 2.3.3's custom implementations of the core
//! collection classes; the precision-critical feature is the *null object
//! pattern* (§2): every fresh container shares one static `EMPTY` backing
//! array, and carefully guarded code avoids ever storing into it. A
//! flow-insensitive points-to analysis conflates all containers through that
//! shared array; Thresher's job is to un-conflate them.
//!
//! This module builds the model into a [`ProgramBuilder`]:
//! - `Context` / `Activity` / `View` / `Adapter` / `CursorAdapter` /
//!   `ResourceCursorAdapter` — the hierarchy exercised by the K9Mail leak of
//!   Figure 5 (adapters keep `mContext` pointers to their Activity);
//! - `AString` — stand-in for `java.lang.String` allocations;
//! - `AVec` — the growable array of Figure 1 (`sz`/`cap`/`tbl` + shared
//!   `VEC_EMPTY`);
//! - `AHashMap` — open-hashing map with a shared `MAP_EMPTY_TABLE` backing
//!   array and chained `HMEntry` nodes.

use tir::{ClassId, CmpOp, Cond, FieldId, GlobalId, MethodId, Operand, ProgramBuilder, Ty};

/// Ids of everything the library model declares.
#[derive(Clone, Debug)]
pub struct AndroidLib {
    /// Root of all app classes (Java `Object` is the builtin root; `Context`
    /// sits directly under it).
    pub context: ClassId,
    /// The `Activity` class; leak targets are its subclasses' instances.
    pub activity: ClassId,
    /// A view holding an `mContext` pointer.
    pub view: ClassId,
    /// `View.mContext`.
    pub view_context: FieldId,
    /// Adapter base class holding `mContext`.
    pub adapter: ClassId,
    /// `Adapter.mContext`.
    pub adapter_context: FieldId,
    /// `CursorAdapter extends Adapter`.
    pub cursor_adapter: ClassId,
    /// `ResourceCursorAdapter extends CursorAdapter` (Figure 5 chain).
    pub resource_cursor_adapter: ClassId,
    /// Constructor chain entry: `Adapter::ctor(this, ctx)`.
    pub adapter_ctor: MethodId,
    /// `CursorAdapter::ctor(this, ctx)` — calls up the chain.
    pub cursor_adapter_ctor: MethodId,
    /// `ResourceCursorAdapter::ctor(this, ctx)`.
    pub resource_cursor_adapter_ctor: MethodId,
    /// String stand-in.
    pub string: ClassId,
    /// A generic one-field holder (used by shared-helper patterns).
    pub holder: ClassId,
    /// `Holder.obj`.
    pub holder_obj: FieldId,
    /// The `AVec` growable array (Figure 1).
    pub vec: ClassId,
    /// `AVec::init`.
    pub vec_init: MethodId,
    /// `AVec::push`.
    pub vec_push: MethodId,
    /// `AVec::get`.
    pub vec_get: MethodId,
    /// `AVec::clear` (resets size; the backing array keeps its contents —
    /// a realistic retention hazard).
    pub vec_clear: MethodId,
    /// The shared empty backing array of `AVec` (`Vec.EMPTY` of Figure 1).
    pub vec_empty: GlobalId,
    /// The `AHashMap` map class.
    pub hashmap: ClassId,
    /// `AHashMap::init`.
    pub hashmap_init: MethodId,
    /// `AHashMap::put`.
    pub hashmap_put: MethodId,
    /// `AHashMap::get`.
    pub hashmap_get: MethodId,
    /// `AHashMap::remove` (unlinks the first matching chain entry).
    pub hashmap_remove: MethodId,
    /// The shared empty backing table (`HashMap.EMPTY_TABLE` of §4).
    pub map_empty_table: GlobalId,
    /// Allocation site of the shared `AVec` empty array.
    pub vec_empty_alloc: tir::AllocId,
    /// Allocation site of the shared `AHashMap` empty table.
    pub map_empty_alloc: tir::AllocId,
    /// The map entry class.
    pub hm_entry: ClassId,
    /// `HMEntry.key`.
    pub entry_key: FieldId,
    /// `HMEntry.value`.
    pub entry_value: FieldId,
    /// `HMEntry.next`.
    pub entry_next: FieldId,
    /// Initializes the library statics; the harness calls it first.
    pub static_init: MethodId,
}

/// Names of the container classes, for
/// [`ContextPolicy::containers_named`](pta::ContextPolicy::containers_named).
pub const CONTAINER_CLASSES: &[&str] = &["AVec", "AHashMap"];

/// Declares the Android library model into `b`.
pub fn install(b: &mut ProgramBuilder) -> AndroidLib {
    let object = b.object_class();

    // ---- UI hierarchy -------------------------------------------------
    let context = b.class("Context", Some(object));
    let activity = b.class("Activity", Some(context));
    let view = b.class("View", Some(object));
    let view_context = b.field(view, "mContext", Ty::Ref(context));
    let adapter = b.class("Adapter", Some(object));
    let adapter_context = b.field(adapter, "mContext", Ty::Ref(context));
    let cursor_adapter = b.class("CursorAdapter", Some(adapter));
    let resource_cursor_adapter = b.class("ResourceCursorAdapter", Some(cursor_adapter));
    let string = b.class("AString", Some(object));
    let holder = b.class("Holder", Some(object));
    let holder_obj = b.field(holder, "obj", Ty::Ref(object));

    // Constructor chain: ResourceCursorAdapter -> CursorAdapter -> Adapter,
    // passing the context parameter backwards until it lands in mContext
    // (exactly the Figure 5 propagation).
    let adapter_ctor = b.method(Some(adapter), "ctor", &[("ctx", Ty::Ref(context))], None, |mb| {
        let this = mb.this();
        let ctx = mb.param(0);
        mb.write_field(this, adapter_context, ctx);
    });
    let cursor_adapter_ctor =
        b.method(Some(cursor_adapter), "ctorCursor", &[("ctx", Ty::Ref(context))], None, |mb| {
            let this = mb.this();
            let ctx = mb.param(0);
            mb.call_static(None, adapter_ctor, &[Operand::Var(this), Operand::Var(ctx)]);
        });
    let resource_cursor_adapter_ctor = b.method(
        Some(resource_cursor_adapter),
        "ctorResource",
        &[("ctx", Ty::Ref(context))],
        None,
        |mb| {
            let this = mb.this();
            let ctx = mb.param(0);
            mb.call_static(None, cursor_adapter_ctor, &[Operand::Var(this), Operand::Var(ctx)]);
        },
    );

    // ---- AVec (Figure 1) ----------------------------------------------
    let vec = b.class("AVec", Some(object));
    let vec_sz = b.field(vec, "sz", Ty::Int);
    let vec_cap = b.field(vec, "cap", Ty::Int);
    let vec_tbl = b.field(vec, "tbl", Ty::Ref(b.array_class()));
    let vec_empty = b.global("VEC_EMPTY", Ty::Ref(b.array_class()));

    let vec_init = b.method(Some(vec), "init", &[], None, |mb| {
        let this = mb.this();
        let e = mb.var("e", Ty::Ref(mb.program_builder().array_class()));
        mb.write_field(this, vec_sz, 0);
        mb.write_field(this, vec_cap, -1);
        mb.read_global(e, vec_empty);
        mb.write_field(this, vec_tbl, e);
    });

    let vec_push = b.method(Some(vec), "push", &[("val", Ty::Ref(object))], None, |mb| {
        let arr_ty = Ty::Ref(mb.program_builder().array_class());
        let this = mb.this();
        let val = mb.param(0);
        let oldtbl = mb.var("oldtbl", arr_ty);
        let sz = mb.var("sz", Ty::Int);
        let cap = mb.var("cap", Ty::Int);
        let t = mb.var("t", Ty::Int);
        let t2 = mb.var("t2", Ty::Int);
        let newtbl = mb.var("newtbl", arr_ty);
        let i = mb.var("i", Ty::Int);
        let x = mb.var("x", Ty::Ref(object));
        let tbl2 = mb.var("tbl2", arr_ty);
        let sz2 = mb.var("sz2", Ty::Int);
        let sz3 = mb.var("sz3", Ty::Int);

        mb.read_field(oldtbl, this, vec_tbl);
        mb.read_field(sz, this, vec_sz);
        mb.read_field(cap, this, vec_cap);
        mb.if_then(Cond::cmp(CmpOp::Ge, sz, cap), |mb| {
            mb.array_len(t, oldtbl);
            mb.binop(t2, tir::BinOp::Mul, t, 2);
            mb.write_field(this, vec_cap, t2);
            mb.new_array(newtbl, "vec_grown", t2);
            mb.write_field(this, vec_tbl, newtbl);
            mb.assign(i, 0);
            mb.while_(Cond::cmp(CmpOp::Lt, i, sz), |mb| {
                mb.read_array(x, oldtbl, i);
                mb.write_array(newtbl, i, x);
                mb.binop(i, tir::BinOp::Add, i, 1);
            });
        });
        mb.read_field(tbl2, this, vec_tbl);
        mb.read_field(sz2, this, vec_sz);
        mb.write_array(tbl2, sz2, val);
        mb.binop(sz3, tir::BinOp::Add, sz2, 1);
        mb.write_field(this, vec_sz, sz3);
    });

    let vec_get = b.method(Some(vec), "get", &[("idx", Ty::Int)], Some(Ty::Ref(object)), |mb| {
        let arr_ty = Ty::Ref(mb.program_builder().array_class());
        let this = mb.this();
        let idx = mb.param(0);
        let tbl = mb.var("tbl", arr_ty);
        let out = mb.var("out", Ty::Ref(object));
        mb.read_field(tbl, this, vec_tbl);
        mb.read_array(out, tbl, idx);
        mb.ret(out);
    });

    let vec_clear = b.method(Some(vec), "clear", &[], None, |mb| {
        let this = mb.this();
        mb.write_field(this, vec_sz, 0);
    });

    // ---- AHashMap ------------------------------------------------------
    let hm_entry = b.class("HMEntry", Some(object));
    let entry_key = b.field(hm_entry, "key", Ty::Ref(object));
    let entry_value = b.field(hm_entry, "value", Ty::Ref(object));
    let entry_next = b.field(hm_entry, "next", Ty::Ref(hm_entry));

    let hashmap = b.class("AHashMap", Some(object));
    let map_size = b.field(hashmap, "size", Ty::Int);
    let map_threshold = b.field(hashmap, "threshold", Ty::Int);
    let map_table = b.field(hashmap, "table", Ty::Ref(b.array_class()));
    let map_empty_table = b.global("MAP_EMPTY_TABLE", Ty::Ref(b.array_class()));

    let hashmap_init = b.method(Some(hashmap), "init", &[], None, |mb| {
        let this = mb.this();
        let e = mb.var("e", Ty::Ref(mb.program_builder().array_class()));
        mb.write_field(this, map_size, 0);
        mb.write_field(this, map_threshold, -1);
        mb.read_global(e, map_empty_table);
        mb.write_field(this, map_table, e);
    });

    let hashmap_put = b.method(
        Some(hashmap),
        "put",
        &[("key", Ty::Ref(object)), ("value", Ty::Ref(object))],
        None,
        |mb| {
            let arr_ty = Ty::Ref(mb.program_builder().array_class());
            let this = mb.this();
            let key = mb.param(0);
            let value = mb.param(1);
            let size = mb.var("size", Ty::Int);
            let threshold = mb.var("threshold", Ty::Int);
            let newtab = mb.var("newtab", arr_ty);
            let cap2 = mb.var("cap2", Ty::Int);
            let tab = mb.var("tab", arr_ty);
            let h = mb.var("h", Ty::Int);
            let head = mb.var("head", Ty::Ref(hm_entry));
            let entry = mb.var("entry", Ty::Ref(hm_entry));
            let size2 = mb.var("size2", Ty::Int);

            mb.read_field(size, this, map_size);
            mb.read_field(threshold, this, map_threshold);
            mb.if_then(Cond::cmp(CmpOp::Ge, size, threshold), |mb| {
                // Grow: allocate a fresh table (rehashing of old entries is
                // modelled by the table copy loop).
                let old = mb.var("old", arr_ty);
                let j = mb.var("j", Ty::Int);
                let moved = mb.var("moved", Ty::Ref(object));
                let oldlen = mb.var("oldlen", Ty::Int);
                mb.read_field(old, this, map_table);
                mb.array_len(oldlen, old);
                mb.binop(cap2, tir::BinOp::Add, oldlen, 8);
                mb.new_array(newtab, "map_grown", cap2);
                mb.write_field(this, map_table, newtab);
                mb.write_field(this, map_threshold, cap2);
                mb.assign(j, 0);
                mb.while_(Cond::cmp(CmpOp::Lt, j, oldlen), |mb| {
                    mb.read_array(moved, old, j);
                    mb.write_array(newtab, j, moved);
                    mb.binop(j, tir::BinOp::Add, j, 1);
                });
            });
            mb.read_field(tab, this, map_table);
            // Hash: model as a non-deterministic in-bounds index.
            mb.array_len(h, tab);
            mb.assume(Cond::Nondet);
            mb.read_array(head, tab, h);
            let new_entry = mb.var("ne", Ty::Ref(hm_entry));
            mb.new_obj(new_entry, hm_entry, "hm_entry");
            mb.write_field(new_entry, entry_key, key);
            mb.write_field(new_entry, entry_value, value);
            mb.write_field(new_entry, entry_next, head);
            mb.write_array(tab, h, new_entry);
            let _ = entry;
            mb.read_field(size2, this, map_size);
            mb.binop(size2, tir::BinOp::Add, size2, 1);
            mb.write_field(this, map_size, size2);
        },
    );

    let hashmap_get =
        b.method(Some(hashmap), "get", &[("key", Ty::Ref(object))], Some(Ty::Ref(object)), |mb| {
            let arr_ty = Ty::Ref(mb.program_builder().array_class());
            let this = mb.this();
            let key = mb.param(0);
            let tab = mb.var("tab", arr_ty);
            let h = mb.var("h", Ty::Int);
            let cur = mb.var("cur", Ty::Ref(hm_entry));
            let k = mb.var("k", Ty::Ref(object));
            let out = mb.var("out", Ty::Ref(object));
            mb.read_field(tab, this, map_table);
            mb.array_len(h, tab);
            mb.read_array(cur, tab, h);
            mb.assign_null(out);
            mb.loop_(|mb| {
                mb.read_field(k, cur, entry_key);
                mb.if_then(Cond::cmp(CmpOp::Eq, k, key), |mb| {
                    mb.read_field(out, cur, entry_value);
                });
                mb.read_field(cur, cur, entry_next);
            });
            mb.ret(out);
        });

    let hashmap_remove =
        b.method(Some(hashmap), "remove", &[("key", Ty::Ref(object))], None, |mb| {
            let arr_ty = Ty::Ref(mb.program_builder().array_class());
            let this = mb.this();
            let key = mb.param(0);
            let tab = mb.var("tab", arr_ty);
            let h = mb.var("h", Ty::Int);
            let head = mb.var("head", Ty::Ref(hm_entry));
            let k = mb.var("k", Ty::Ref(object));
            let nxt = mb.var("nxt", Ty::Ref(hm_entry));
            let size = mb.var("size", Ty::Int);
            mb.read_field(tab, this, map_table);
            mb.array_len(h, tab);
            mb.read_array(head, tab, h);
            mb.if_then(Cond::cmp(CmpOp::Ne, head, Operand::Null), |mb| {
                mb.read_field(k, head, entry_key);
                mb.if_then(Cond::cmp(CmpOp::Eq, k, key), |mb| {
                    // Unlink the head entry.
                    mb.read_field(nxt, head, entry_next);
                    mb.write_array(tab, h, nxt);
                    mb.read_field(size, this, map_size);
                    mb.binop(size, tir::BinOp::Sub, size, 1);
                    mb.write_field(this, map_size, size);
                });
            });
        });

    // ---- Static initializer --------------------------------------------
    let mut vec_empty_alloc = None;
    let mut map_empty_alloc = None;
    let static_init = b.method(None, "android_static_init", &[], None, |mb| {
        let arr_ty = Ty::Ref(mb.program_builder().array_class());
        let e1 = mb.var("e1", arr_ty);
        let e2 = mb.var("e2", arr_ty);
        vec_empty_alloc = Some(mb.new_array(e1, "vec_empty_arr", 1));
        mb.write_global(vec_empty, e1);
        map_empty_alloc = Some(mb.new_array(e2, "map_empty_arr", 1));
        mb.write_global(map_empty_table, e2);
    });
    let vec_empty_alloc = vec_empty_alloc.expect("static init built");
    let map_empty_alloc = map_empty_alloc.expect("static init built");

    AndroidLib {
        context,
        activity,
        view,
        view_context,
        adapter,
        adapter_context,
        cursor_adapter,
        resource_cursor_adapter,
        adapter_ctor,
        cursor_adapter_ctor,
        resource_cursor_adapter_ctor,
        string,
        holder,
        holder_obj,
        vec,
        vec_init,
        vec_push,
        vec_get,
        vec_clear,
        vec_empty,
        hashmap,
        hashmap_init,
        hashmap_put,
        hashmap_get,
        hashmap_remove,
        map_empty_table,
        vec_empty_alloc,
        map_empty_alloc,
        hm_entry,
        entry_key,
        entry_value,
        entry_next,
        static_init,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_installs_and_validates() {
        let mut b = ProgramBuilder::new();
        let lib = install(&mut b);
        let main = b.method(None, "main", &[], None, |mb| {
            mb.call_static(None, lib.static_init, &[]);
        });
        b.set_entry(main);
        let p = b.finish();
        assert!(p.class_by_name("AVec").is_some());
        assert!(p.class_by_name("AHashMap").is_some());
        assert!(p.is_subclass(lib.activity, lib.context));
        assert!(p.is_subclass(lib.resource_cursor_adapter, lib.adapter));
    }

    #[test]
    fn vec_empty_pollution_under_flow_insensitive_analysis() {
        // Mirrors Figure 2: after one push, the flow-insensitive analysis
        // believes the shared empty array may contain the pushed object.
        let mut b = ProgramBuilder::new();
        let lib = install(&mut b);
        let main = b.method(None, "main", &[], None, |mb| {
            let v = mb.var("v", Ty::Ref(lib.vec));
            let o = mb.var("o", Ty::Ref(mb.program_builder().object_class()));
            mb.call_static(None, lib.static_init, &[]);
            mb.new_obj(v, lib.vec, "vec0");
            mb.call_static(None, lib.vec_init, &[Operand::Var(v)]);
            mb.new_obj(o, mb.program_builder().object_class(), "obj0");
            mb.call_virtual(None, v, "push", &[Operand::Var(o)]);
        });
        b.set_entry(main);
        let p = b.finish();
        let r = pta::analyze(&p, pta::ContextPolicy::Insensitive);
        let empty_arr = r
            .locs()
            .ids()
            .find(|&l| r.loc_name(&p, l) == "vec_empty_arr")
            .expect("empty array loc");
        let obj0 = r.locs().ids().find(|&l| r.loc_name(&p, l) == "obj0").unwrap();
        assert!(
            r.pt_field(empty_arr, p.contents_field).contains(obj0.index()),
            "expected the null-object pollution:\n{}",
            r.dump(&p)
        );
    }
}
