//! # android — the Android substrate model and Activity-leak client
//!
//! The paper's evaluation targets Activity leaks in Android apps: an
//! `Activity` reachable from a static field outlives its lifecycle and can
//! never be garbage-collected (§4). This crate provides everything that the
//! real evaluation took from the Android platform:
//!
//! - [`library`]: model library classes — the `Activity`/`Adapter`/`View`
//!   hierarchy (adapters hold `mContext` back-pointers, the root cause of
//!   the Figure 5 leak), plus `AVec` and `AHashMap` collections implemented
//!   with the null-object pattern that pollutes flow-insensitive analyses
//!   (§2, footnote 1);
//! - [`harness`]: event-handler harness generation (every handler invoked
//!   at most once, mirroring §4 "Implementation");
//! - [`annotations`]: the `EMPTY_TABLE` annotation of the `Ann?=Y`
//!   configuration;
//! - [`client`]: alarm enumeration and the edge-by-edge witness-refutation
//!   loop producing a [`LeakReport`] with the Table 1 counters.
//!
//! ```
//! use android::{harness::ActivitySpec, ActivityLeakChecker};
//! use tir::{ProgramBuilder, Ty};
//!
//! let mut b = ProgramBuilder::new();
//! let lib = android::library::install(&mut b);
//! let act = b.class("MainActivity", Some(lib.activity));
//! let sink = b.global("SINK", Ty::Ref(lib.activity));
//! b.method(Some(act), "onCreate", &[], None, |mb| {
//!     let this = mb.this();
//!     mb.write_global(sink, this);  // a blatant leak
//! });
//! android::harness::generate_main(&mut b, &lib, &[ActivitySpec::new(act, "main0")]);
//! let program = b.finish();
//!
//! let report = ActivityLeakChecker::new(&program).check();
//! assert_eq!(report.num_alarms(), 1);
//! assert_eq!(report.num_refuted(), 0); // the leak is real: witnessed
//! ```

#![warn(missing_docs)]

pub mod annotations;
pub mod client;
pub mod harness;
pub mod library;

pub use annotations::{map_only_annotations, paper_annotations, to_pta_options, Annotation};
pub use client::{Alarm, AlarmResult, ClientStats, LeakClient, LeakReport};

use std::path::PathBuf;
use std::sync::Arc;

use pta::{ContextPolicy, ModRef, PtaResult};
use symex::{CacheMode, DecisionStore, SymexConfig};
use tir::Program;

/// Convenience front door: run the points-to analysis, mod/ref, and the
/// leak client with a given configuration in one call.
///
/// For repeated runs over the same program (e.g. ablations), build the
/// analyses once and use [`LeakClient`] directly.
pub struct ActivityLeakChecker<'a> {
    program: &'a Program,
    policy: ContextPolicy,
    config: SymexConfig,
    annotations: Vec<Annotation>,
    jobs: usize,
    cache: Option<(PathBuf, CacheMode)>,
}

impl<'a> ActivityLeakChecker<'a> {
    /// Creates a checker with the paper's default configuration
    /// (container-sensitive points-to analysis, mixed representation,
    /// un-annotated library, sequential refutation).
    pub fn new(program: &'a Program) -> Self {
        ActivityLeakChecker {
            program,
            policy: ContextPolicy::containers_named(program, library::CONTAINER_CLASSES),
            config: SymexConfig::default(),
            annotations: Vec::new(),
            jobs: 1,
            cache: None,
        }
    }

    /// Overrides the points-to context policy.
    pub fn with_policy(mut self, policy: ContextPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the refutation-scheduler thread count (1 = sequential; the
    /// report is identical for every setting).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides the engine configuration.
    pub fn with_config(mut self, config: SymexConfig) -> Self {
        self.config = config;
        self
    }

    /// Adds library annotations (the `Ann?=Y` configuration).
    pub fn with_annotations(mut self, annotations: Vec<Annotation>) -> Self {
        self.annotations = annotations;
        self
    }

    /// Attaches a persistent refutation cache rooted at `dir` (see
    /// `symex::persist`): decisions whose fingerprint matches a stored
    /// record are warm-started without symbolic execution. An unopenable
    /// store degrades to a cold (cache-free) run with a warning — it never
    /// fails the check. [`CacheMode::Off`] is a no-op.
    pub fn with_cache(mut self, dir: impl Into<PathBuf>, mode: CacheMode) -> Self {
        self.cache = if mode == CacheMode::Off { None } else { Some((dir.into(), mode)) };
        self
    }

    /// Runs the full pipeline and returns the leak report.
    pub fn check(self) -> LeakReport {
        let (report, _, _) = self.check_with_analyses();
        report
    }

    /// Runs the pipeline, also returning the underlying analyses for
    /// clients that need the points-to graph (e.g. benchmark tables).
    pub fn check_with_analyses(self) -> (LeakReport, PtaResult, ModRef) {
        let opts = annotations::to_pta_options(&self.annotations);
        let pta = pta::analyze_with(self.program, self.policy, &opts);
        let modref = ModRef::compute(self.program, &pta);
        let report = {
            let mut client = LeakClient::new(self.program, &pta, &modref, self.config.clone())
                .with_jobs(self.jobs);
            if let Some((dir, mode)) = &self.cache {
                match DecisionStore::open(dir, *mode, self.program) {
                    Ok(store) => client = client.with_store(Arc::new(store)),
                    Err(e) => {
                        eprintln!(
                            "warning: cannot open cache {}: {e}; running cold",
                            dir.display()
                        );
                    }
                }
            }
            client.run()
        };
        (report, pta, modref)
    }
}
