//! # minicheck — a dependency-free randomized-testing harness
//!
//! A minimal, deterministic substitute for an external property-testing
//! crate, vendored so the workspace builds and tests with **no network
//! access**. It provides two things:
//!
//! 1. [`Rng`] — a SplitMix64 pseudo-random generator with convenience
//!    samplers for the kinds of values the test suites need (bounded
//!    integers, booleans, weighted choices).
//! 2. [`run_cases`] — a case runner that executes a closure `n` times with
//!    deterministically derived seeds and, on panic, reports the failing
//!    case's seed so the exact input can be replayed with
//!    [`run_seed`].
//!
//! Generation is intentionally plain: each test module writes its own
//! `arb_*` functions taking `&mut Rng`. There is no shrinking — failing
//! seeds are reported instead, and generators are kept small enough that
//! raw counterexamples stay readable.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// SplitMix64: a tiny, high-quality, splittable PRNG (public-domain
/// algorithm by Sebastiano Vigna). Deterministic across platforms.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below(0)");
        // Modulo bias is irrelevant at test-suite bounds (all << 2^64).
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Picks an index by integer weight: `weights[i]` out of `sum(weights)`.
    pub fn weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "Rng::weighted with zero total weight");
        let mut roll = self.next_u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            if roll < w {
                return i;
            }
            roll -= w;
        }
        unreachable!()
    }
}

/// Derives the seed for case `i` of a run with base seed `base`.
fn case_seed(base: u64, i: u64) -> u64 {
    // One SplitMix64 output step keyed by the case index: decorrelates
    // neighbouring cases while staying reproducible.
    Rng::new(base ^ i.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

/// Runs `f` once per case with a deterministically derived [`Rng`].
///
/// On panic, re-panics with a message that carries the case index, the
/// seed (replayable via [`run_seed`]), and the original assertion text —
/// one combined payload instead of a stray `eprintln!` plus re-raise, so
/// nothing is printed outside the test harness.
pub fn run_cases<F: FnMut(&mut Rng)>(cases: u64, mut f: F) {
    // A fixed base keeps CI deterministic; vary it locally by setting
    // MINICHECK_SEED to explore fresh inputs.
    let base = std::env::var("MINICHECK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7468_7265_7368_6572); // "thresher"
    for i in 0..cases {
        let seed = case_seed(base, i);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            f(&mut rng);
        }));
        if let Err(payload) = result {
            let original = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            panic!(
                "minicheck: case {i}/{cases} failed (seed {seed:#x}); \
                 replay with minicheck::run_seed({seed:#x}, ...): {original}"
            );
        }
    }
}

/// Replays a single case by seed — for debugging a failure reported by
/// [`run_cases`].
pub fn run_seed<F: FnOnce(&mut Rng)>(seed: u64, f: F) {
    let mut rng = Rng::new(seed);
    f(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_respected() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.usize_in(2, 5);
            assert!((2..=5).contains(&v));
            let w = rng.i64_in(-3, 3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn weighted_hits_all_arms() {
        let mut rng = Rng::new(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.weighted(&[4, 1, 1])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn run_cases_executes_all() {
        let mut n = 0;
        run_cases(16, |_| n += 1);
        assert_eq!(n, 16);
    }
}
