//! # obs — tracing, metrics, and machine-readable run reports
//!
//! A zero-dependency observability layer for the refutation pipeline. It
//! provides three cooperating pieces:
//!
//! - **hierarchical spans** ([`span`]/[`SpanGuard`]) with monotonic
//!   timestamps taken from one process-wide epoch, recorded into a bounded
//!   in-memory ring buffer and exportable as Chrome trace-event JSON
//!   (loadable in Perfetto or `chrome://tracing`);
//! - **typed counters and log-scale histograms** ([`Counter`], [`Hist`])
//!   aggregated into a versioned machine-readable [`RunReport`];
//! - a pluggable [`Recorder`] trait with a no-op default, so every
//!   instrumented hot path costs exactly one relaxed atomic load and one
//!   branch — and performs **no allocation** — when no recorder is
//!   installed.
//!
//! ## Design
//!
//! The recorder is process-global, like the `log` crate's logger: library
//! crates emit events unconditionally and the binary decides whether (and
//! how) to record them. [`install`] leaks the recorder to obtain a
//! `'static` borrow, which keeps the hot-path read a single atomic pointer
//! load with no reference counting; [`uninstall`] merely flips the enabled
//! flag (the few bytes per install are only ever paid by tests that cycle
//! recorders).
//!
//! Spans are recorded as *complete* events (start + duration) when the
//! guard drops, so the ring buffer sees one entry per span and balance is
//! structural rather than enforced. Nesting is carried both implicitly
//! (timestamp containment per thread) and explicitly (a per-thread depth
//! counter stored in each event).
//!
//! ```
//! use obs::{Counter, Hist, MemRecorder, SpanKind};
//!
//! let _serial = obs::test_lock(); // tests share the global recorder
//! let rec = MemRecorder::install_static(obs::RingCapacity::default());
//! {
//!     let _run = obs::span(SpanKind::Run, "demo");
//!     obs::add(Counter::EdgesRefuted, 2);
//!     obs::observe(Hist::HeapCells, 7);
//! }
//! assert_eq!(rec.counter(Counter::EdgesRefuted), 2);
//! let report = rec.run_report(&[("program", "demo.tir")]);
//! assert_eq!(report.counter("edges_refuted"), Some(2));
//! obs::uninstall();
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod prom;

mod delta;
mod event;
mod mem;
mod metrics;
mod report;
mod trace;
mod window;

pub use delta::{capture, MetricsDelta};
pub use event::{SpanKind, TraceEvent};
pub use mem::{MemRecorder, RingCapacity};
pub use metrics::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Counter, Hist, HistSnapshot, Registry,
};
pub use report::RunReport;
pub use trace::chrome_trace_json;
pub use window::SlidingWindow;

use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// The sink for everything the instrumentation emits. Implementations must
/// be cheap and non-blocking: they run inline on analysis hot paths.
pub trait Recorder: Send + Sync {
    /// Adds `n` to counter `c`.
    fn add(&self, c: Counter, n: u64);
    /// Records one observation `v` into histogram `h`.
    fn observe(&self, h: Hist, v: u64);
    /// Records one completed span or instant event.
    fn event(&self, ev: TraceEvent);
    /// Whether spans of `kind` should be materialized at all. Returning
    /// `false` skips label formatting for high-frequency kinds.
    fn span_enabled(&self, kind: SpanKind) -> bool {
        let _ = kind;
        true
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Thin pointer to a leaked fat `&'static dyn Recorder` (an `AtomicPtr`
/// cannot hold the fat pointer directly).
static RECORDER: AtomicPtr<&'static dyn Recorder> = AtomicPtr::new(ptr::null_mut());

/// Installs `recorder` as the process-global sink. The reference is stored
/// by leaking one word per call; see the crate docs for why.
pub fn install(recorder: &'static dyn Recorder) {
    let cell: &'static mut &'static dyn Recorder = Box::leak(Box::new(recorder));
    RECORDER.store(cell, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
}

/// Disables recording. The previously installed recorder stays reachable
/// to in-flight callers (it is never freed), so this is race-free.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
}

/// True when a recorder is installed and enabled. This is the one branch
/// every disabled-path instrumentation site pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed recorder, if recording is enabled.
#[inline]
pub fn installed() -> Option<&'static dyn Recorder> {
    if !enabled() {
        return None;
    }
    let p = RECORDER.load(Ordering::Acquire);
    if p.is_null() {
        None
    } else {
        // SAFETY: `p` was produced by `Box::leak` in `install` and is never
        // freed, so it is valid for the rest of the process lifetime.
        Some(unsafe { *p })
    }
}

/// Adds `n` to counter `c` on the installed recorder, if any. Inside an
/// active [`capture`] on this thread, the add is buffered into the capture's
/// [`MetricsDelta`] instead.
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() {
        return;
    }
    if delta::buffered_add(c, n) {
        return;
    }
    if let Some(r) = installed() {
        r.add(c, n);
    }
}

/// Records observation `v` into histogram `h` on the installed recorder.
/// Inside an active [`capture`] on this thread, the observation is buffered
/// into the capture's [`MetricsDelta`] instead.
#[inline]
pub fn observe(h: Hist, v: u64) {
    if !enabled() {
        return;
    }
    if delta::buffered_observe(h, v) {
        return;
    }
    if let Some(r) = installed() {
        r.observe(h, v);
    }
}

/// Starts a timer iff recording is enabled (so the disabled path never
/// reads the clock). Pair with [`observe_elapsed_ns`]/[`observe_elapsed_us`].
#[inline]
pub fn timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Records the nanoseconds elapsed since [`timer`] into `h`.
#[inline]
pub fn observe_elapsed_ns(h: Hist, t: Option<Instant>) {
    if let Some(t0) = t {
        observe(h, u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Records the microseconds elapsed since [`timer`] into `h`.
#[inline]
pub fn observe_elapsed_us(h: Hist, t: Option<Instant>) {
    if let Some(t0) = t {
        observe(h, u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
}

// ---------------------------------------------------------------------
// Timestamps and per-thread state
// ---------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process-wide epoch (the first call wins the
/// epoch). Monotonic across all threads.
pub fn now_us() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_micros()).unwrap_or(u64::MAX)
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// A small dense id for the current thread (stable for the thread's
/// lifetime), used as the Chrome trace `tid`.
pub fn thread_tid() -> u32 {
    TID.with(|c| {
        let v = c.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// RAII guard for one span: records a complete trace event (start time +
/// duration) when dropped. Inert (and allocation-free) when no recorder is
/// installed.
#[must_use = "a span ends when the guard drops; binding it to _ ends it immediately"]
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    kind: SpanKind,
    label: String,
    start_us: u64,
    depth: u16,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if let Some(r) = installed() {
            r.event(TraceEvent {
                kind: a.kind,
                label: a.label,
                ts_us: a.start_us,
                dur_us: now_us().saturating_sub(a.start_us),
                tid: thread_tid(),
                depth: a.depth,
                instant: false,
            });
        }
    }
}

/// Starts a span with a static label. See [`span_with`] for computed
/// labels.
#[inline]
pub fn span(kind: SpanKind, label: &str) -> SpanGuard {
    span_with(kind, || label.to_owned())
}

/// Starts a span whose label is computed only when a recorder is installed
/// and accepts spans of this `kind` — the disabled path never runs `label`.
#[inline]
pub fn span_with(kind: SpanKind, label: impl FnOnce() -> String) -> SpanGuard {
    let Some(r) = installed() else { return SpanGuard(None) };
    if !r.span_enabled(kind) {
        return SpanGuard(None);
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v.saturating_add(1));
        v
    });
    SpanGuard(Some(ActiveSpan { kind, label: label(), start_us: now_us(), depth }))
}

/// Records an instant (zero-duration) event, e.g. a diagnostic message.
/// The label closure only runs when a recorder accepts the event.
#[inline]
pub fn instant_with(kind: SpanKind, label: impl FnOnce() -> String) {
    let Some(r) = installed() else { return };
    if !r.span_enabled(kind) {
        return;
    }
    r.event(TraceEvent {
        kind,
        label: label(),
        ts_us: now_us(),
        dur_us: 0,
        tid: thread_tid(),
        depth: DEPTH.with(|d| d.get()),
        instant: true,
    });
}

// ---------------------------------------------------------------------
// Test support
// ---------------------------------------------------------------------

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests that install a global recorder. Every test touching
/// [`install`]/[`uninstall`] must hold this guard for its whole body, or
/// concurrently running tests will observe each other's events.
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_paths_are_inert() {
        let _serial = test_lock();
        uninstall();
        assert!(!enabled());
        assert!(installed().is_none());
        add(Counter::EdgesRefuted, 1);
        observe(Hist::HeapCells, 3);
        assert!(timer().is_none());
        observe_elapsed_ns(Hist::SolverNanos, None);
        let g = span(SpanKind::Edge, "nope");
        drop(g);
        instant_with(SpanKind::Message, || unreachable!("label must not be computed"));
    }

    #[test]
    fn span_with_skips_label_when_disabled() {
        let _serial = test_lock();
        uninstall();
        let g = span_with(SpanKind::Edge, || unreachable!("label must not be computed"));
        drop(g);
    }

    #[test]
    fn thread_ids_are_nonzero_and_stable() {
        let a = thread_tid();
        let b = thread_tid();
        assert_ne!(a, 0);
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_tid).join().unwrap();
        assert_ne!(other, a);
    }

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
