//! Chrome trace-event (Trace Event Format) export.

use crate::json::Value;
use crate::TraceEvent;

/// Serializes events as a Chrome trace-event JSON document (the object
/// form, `{"traceEvents": [...]}`), loadable in Perfetto or
/// `chrome://tracing`. Spans become complete (`"ph": "X"`) events; instants
/// become `"ph": "i"` with thread scope. The span kind is the event
/// category, the label the event name, and the recorded nesting depth rides
/// along in `args.depth`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let trace_events: Vec<Value> = events.iter().map(event_value).collect();
    Value::Obj(vec![
        ("traceEvents".to_owned(), Value::Arr(trace_events)),
        ("displayTimeUnit".to_owned(), Value::str("ms")),
    ])
    .to_json()
}

fn event_value(ev: &TraceEvent) -> Value {
    let mut fields = vec![
        ("name".to_owned(), Value::str(ev.label.clone())),
        ("cat".to_owned(), Value::str(ev.kind.name())),
        ("ph".to_owned(), Value::str(if ev.instant { "i" } else { "X" })),
        ("ts".to_owned(), Value::uint(ev.ts_us)),
    ];
    if ev.instant {
        fields.push(("s".to_owned(), Value::str("t")));
    } else {
        fields.push(("dur".to_owned(), Value::uint(ev.dur_us)));
    }
    fields.push(("pid".to_owned(), Value::Int(1)));
    fields.push(("tid".to_owned(), Value::uint(u64::from(ev.tid))));
    fields.push((
        "args".to_owned(),
        Value::Obj(vec![("depth".to_owned(), Value::uint(u64::from(ev.depth)))]),
    ));
    Value::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::SpanKind;

    #[test]
    fn trace_shape() {
        let events = vec![
            TraceEvent {
                kind: SpanKind::Edge,
                label: "e0".into(),
                ts_us: 10,
                dur_us: 5,
                tid: 1,
                depth: 1,
                instant: false,
            },
            TraceEvent {
                kind: SpanKind::Message,
                label: "note".into(),
                ts_us: 12,
                dur_us: 0,
                tid: 1,
                depth: 2,
                instant: true,
            },
        ];
        let parsed = json::parse(&chrome_trace_json(&events)).expect("trace JSON parses");
        let items = parsed.get("traceEvents").and_then(Value::as_arr).expect("traceEvents");
        assert_eq!(items.len(), 2);

        let span = &items[0];
        assert_eq!(span.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(span.get("cat").and_then(Value::as_str), Some("edge"));
        assert_eq!(span.get("name").and_then(Value::as_str), Some("e0"));
        assert_eq!(span.get("ts").and_then(Value::as_u64), Some(10));
        assert_eq!(span.get("dur").and_then(Value::as_u64), Some(5));
        assert_eq!(span.get("args").and_then(|a| a.get("depth")).and_then(Value::as_u64), Some(1));

        let instant = &items[1];
        assert_eq!(instant.get("ph").and_then(Value::as_str), Some("i"));
        assert_eq!(instant.get("s").and_then(Value::as_str), Some("t"));
        assert!(instant.get("dur").is_none());
    }

    #[test]
    fn empty_trace_is_valid() {
        let parsed = json::parse(&chrome_trace_json(&[])).expect("parses");
        assert_eq!(parsed.get("traceEvents").and_then(Value::as_arr).map(<[Value]>::len), Some(0));
    }
}
