//! Trace events and the span taxonomy.

/// The span taxonomy, ordered roughly from coarse to fine. The hierarchy
/// on a healthy run is:
///
/// ```text
/// run > setup | client > alarm | query > edge > attempt > path >
///     loop-fixpoint | solver-call
/// ```
///
/// `message` is not a span: it is the kind used for instant diagnostic
/// events (the replacement for ad-hoc `eprintln!` sites).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One whole tool invocation.
    Run,
    /// Up-front analyses (points-to, mod/ref).
    Setup,
    /// The flow-insensitive points-to constraint solve.
    Pta,
    /// One client run (leak client, escape checker).
    Client,
    /// Triage of one alarm.
    Alarm,
    /// One refined reachability query.
    Query,
    /// Refutation of one heap edge (all attempts).
    Edge,
    /// One refutation attempt at a fixed precision (degradation ladder).
    Attempt,
    /// One witness search from one producing statement.
    Path,
    /// One loop-invariant fixed point.
    LoopFixpoint,
    /// One decision-procedure call.
    SolverCall,
    /// An instant diagnostic message.
    Message,
}

impl SpanKind {
    /// Stable kebab-case name, used as the Chrome trace category.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Setup => "setup",
            SpanKind::Pta => "pta",
            SpanKind::Client => "client",
            SpanKind::Alarm => "alarm",
            SpanKind::Query => "query",
            SpanKind::Edge => "edge",
            SpanKind::Attempt => "attempt",
            SpanKind::Path => "path",
            SpanKind::LoopFixpoint => "loop-fixpoint",
            SpanKind::SolverCall => "solver-call",
            SpanKind::Message => "message",
        }
    }

    /// Kinds fine enough that a coarse recorder may want to skip them.
    pub fn is_fine_grained(self) -> bool {
        matches!(
            self,
            SpanKind::Path | SpanKind::LoopFixpoint | SpanKind::SolverCall | SpanKind::Message
        )
    }
}

/// One recorded event: a completed span (`dur_us` > 0 possible) or an
/// instant message (`instant` set, `dur_us` = 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span taxonomy kind (Chrome trace category).
    pub kind: SpanKind,
    /// Human-readable label (Chrome trace name).
    pub label: String,
    /// Start time, microseconds since the process epoch.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Dense per-process thread id.
    pub tid: u32,
    /// Nesting depth at the time the span started (0 = top level).
    pub depth: u16,
    /// True for instant events.
    pub instant: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let all = [
            SpanKind::Run,
            SpanKind::Setup,
            SpanKind::Pta,
            SpanKind::Client,
            SpanKind::Alarm,
            SpanKind::Query,
            SpanKind::Edge,
            SpanKind::Attempt,
            SpanKind::Path,
            SpanKind::LoopFixpoint,
            SpanKind::SolverCall,
            SpanKind::Message,
        ];
        let mut names: Vec<&str> = all.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn fine_grained_partition() {
        assert!(SpanKind::SolverCall.is_fine_grained());
        assert!(!SpanKind::Edge.is_fine_grained());
    }
}
