//! Dependency-free JSON encoding and parsing.
//!
//! The writer side is shared by the [`RunReport`](crate::RunReport) and
//! Chrome-trace serializers (and the bench snapshot writer); the parser
//! exists so tests can assert schema validity without external crates. The
//! parser accepts exactly RFC 8259 JSON with a nesting-depth cap.

use std::fmt::Write as _;

/// A JSON value. Integers are kept exact (separately from floats) because
/// the report schema is dominated by `u64` counters.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (all counters; negatives from parsing).
    Int(i64),
    /// An integer in `(i64::MAX, u64::MAX]`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a [`Value::UInt`]/[`Value::Int`] from a `u64`, keeping it
    /// exact either way.
    pub fn uint(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(v),
        }
    }

    /// Builds a [`Value::Str`].
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Object field lookup (linear; objects are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes the value into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_into(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes the value to a fresh string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset for diagnosis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth the parser accepts (guards the stack).
const MAX_DEPTH: usize = 128;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else { return Err(self.err("unterminated string")) };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else { return Err(self.err("bad escape")) };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode or reject.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-walk the UTF-8 sequence starting at the byte we
                    // consumed; input is a &str so sequences are valid.
                    let start = self.pos - 1;
                    let s = unsafe { std::str::from_utf8_unchecked(&self.bytes[start..]) };
                    let c = s.chars().next().expect("non-empty");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else { return Err(self.err("short \\u escape")) };
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + u32::from(d);
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("bad number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("bad fraction"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("bad exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("unparseable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::str("thresher \"quoted\" \\ \n \u{1} ok")),
            ("n".into(), Value::Int(-42)),
            ("big".into(), Value::uint(u64::MAX)),
            ("pi".into(), Value::Float(1.5)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            ("arr".into(), Value::Arr(vec![Value::Int(0), Value::str("x")])),
            ("empty_obj".into(), Value::Obj(Vec::new())),
            ("empty_arr".into(), Value::Arr(Vec::new())),
        ]);
        let text = v.to_json();
        let back = parse(&text).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn uint_boundary() {
        assert_eq!(Value::uint(5), Value::Int(5));
        assert_eq!(Value::uint(i64::MAX as u64), Value::Int(i64::MAX));
        assert_eq!(Value::uint(i64::MAX as u64 + 1), Value::UInt(i64::MAX as u64 + 1));
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn unicode_and_escapes() {
        assert_eq!(parse(r#""A\n\t\" \\ é""#).unwrap(), Value::str("A\n\t\" \\ é"));
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(parse(r#""𝄞""#).unwrap(), Value::str("𝄞"));
        assert!(parse(r#""\ud834""#).is_err());
        assert!(parse(r#""\udd1e""#).is_err());
        // Non-ASCII passes through unescaped.
        assert_eq!(parse("\"héllo→\"").unwrap(), Value::str("héllo→"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in
            ["", "{", "[1,", "{\"a\":}", "01", "1.", "1e", "tru", "\"\u{1}\"", "[1] extra", "nan"]
        {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_cap() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("0").unwrap(), Value::Int(0));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("1.25e2").unwrap(), Value::Float(125.0));
        assert_eq!(parse("-0.5").unwrap(), Value::Float(-0.5));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }
}
