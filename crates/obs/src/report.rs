//! The versioned machine-readable run report.

use crate::json::Value;
use crate::{Counter, Hist, HistSnapshot, Registry};

/// Schema identifier written into every report. Renaming a metric or
/// restructuring the report is a schema break: bump the `/1`.
pub const SCHEMA: &str = "thresher.run_report/1";

/// An aggregated, versioned snapshot of one run's metrics, serializable to
/// JSON without any external dependency. Shape:
///
/// ```json
/// {
///   "schema": "thresher.run_report/1",
///   "meta": {"program": "...", ...},
///   "counters": {"edges_refuted": 3, ...},
///   "histograms": {
///     "solver_call_ns": {"count": 9, "sum": 120, "max": 40,
///                        "buckets": [[0, 2], [32, 7]]},
///     ...
///   },
///   "dropped_trace_events": 0,
///   "trace_threads": 1
/// }
/// ```
///
/// Every counter and histogram appears, including zero ones — consumers can
/// rely on key presence across runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Free-form identification pairs (program, client, config...).
    pub meta: Vec<(String, String)>,
    /// `(name, value)` for every [`Counter`], in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, snapshot)` for every [`Hist`], in declaration order.
    pub histograms: Vec<(&'static str, HistSnapshot)>,
    /// Trace events discarded because the recorder ring was full.
    pub dropped_trace_events: u64,
    /// Distinct threads that emitted trace events during the run.
    pub trace_threads: u64,
}

impl RunReport {
    /// Snapshots `registry` into a report.
    pub fn from_registry(
        registry: &Registry,
        meta: &[(&str, &str)],
        dropped: u64,
        trace_threads: u64,
    ) -> RunReport {
        RunReport {
            meta: meta.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            counters: Counter::ALL.iter().map(|c| (c.name(), registry.counter(*c))).collect(),
            histograms: Hist::ALL.iter().map(|h| (h.name(), registry.histogram(*h))).collect(),
            dropped_trace_events: dropped,
            trace_threads,
        }
    }

    /// Looks up a counter by its schema name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by its schema name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// The report as a JSON value (see the type docs for the shape).
    pub fn to_value(&self) -> Value {
        let meta =
            self.meta.iter().map(|(k, v)| (k.clone(), Value::str(v.clone()))).collect::<Vec<_>>();
        let counters =
            self.counters.iter().map(|(n, v)| ((*n).to_owned(), Value::uint(*v))).collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, s)| ((*n).to_owned(), hist_value(s)))
            .collect::<Vec<_>>();
        Value::Obj(vec![
            ("schema".to_owned(), Value::str(SCHEMA)),
            ("meta".to_owned(), Value::Obj(meta)),
            ("counters".to_owned(), Value::Obj(counters)),
            ("histograms".to_owned(), Value::Obj(histograms)),
            ("dropped_trace_events".to_owned(), Value::uint(self.dropped_trace_events)),
            ("trace_threads".to_owned(), Value::uint(self.trace_threads)),
        ])
    }

    /// The report as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

fn hist_value(s: &HistSnapshot) -> Value {
    let buckets = s
        .buckets
        .iter()
        .map(|(lo, n)| Value::Arr(vec![Value::uint(*lo), Value::uint(*n)]))
        .collect();
    Value::Obj(vec![
        ("count".to_owned(), Value::uint(s.count)),
        ("sum".to_owned(), Value::uint(s.sum)),
        ("max".to_owned(), Value::uint(s.max)),
        ("buckets".to_owned(), Value::Arr(buckets)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn report_round_trips_through_json() {
        let reg = Registry::new();
        reg.add(Counter::EdgesRefuted, 3);
        reg.add(Counter::SolverCalls, 7);
        reg.observe(Hist::SolverNanos, 0);
        reg.observe(Hist::SolverNanos, 40);
        let report = RunReport::from_registry(&reg, &[("program", "fig1.tir")], 2, 3);

        assert_eq!(report.counter("edges_refuted"), Some(3));
        assert_eq!(report.counter("no_such_counter"), None);
        assert_eq!(report.histogram("solver_call_ns").unwrap().count, 2);

        let parsed = json::parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(parsed.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert_eq!(
            parsed.get("meta").and_then(|m| m.get("program")).and_then(Value::as_str),
            Some("fig1.tir")
        );
        let counters = parsed.get("counters").expect("counters");
        assert_eq!(counters.get("edges_refuted").and_then(Value::as_u64), Some(3));
        // All counters present, zeros included.
        for c in Counter::ALL {
            assert!(counters.get(c.name()).is_some(), "missing {}", c.name());
        }
        let hist = parsed.get("histograms").and_then(|h| h.get("solver_call_ns")).expect("hist");
        assert_eq!(hist.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(hist.get("max").and_then(Value::as_u64), Some(40));
        let buckets = hist.get("buckets").and_then(Value::as_arr).expect("buckets");
        assert_eq!(buckets.len(), 2);
        assert_eq!(parsed.get("dropped_trace_events").and_then(Value::as_u64), Some(2));
        assert_eq!(parsed.get("trace_threads").and_then(Value::as_u64), Some(3));
    }
}
