//! Typed counters, log-scale histograms, and the atomic registry backing
//! them.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! metric_enum {
    ($(#[$meta:meta])* $vis:vis enum $enum_name:ident {
        $($(#[$vmeta:meta])* $variant:ident => $name:literal,)+
    }) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        $vis enum $enum_name {
            $($(#[$vmeta])* $variant,)+
        }

        impl $enum_name {
            /// Every variant, in declaration (and report) order.
            pub const ALL: &'static [$enum_name] = &[$($enum_name::$variant,)+];

            /// Number of variants.
            pub const COUNT: usize = $enum_name::ALL.len();

            /// Stable snake_case name used in the [`RunReport`] schema.
            ///
            /// [`RunReport`]: crate::RunReport
            pub fn name(self) -> &'static str {
                match self {
                    $($enum_name::$variant => $name,)+
                }
            }

            /// Dense index of the variant.
            #[inline]
            pub fn index(self) -> usize {
                self as usize
            }

            /// Inverse of [`Self::name`]: resolves a stable snake_case
            /// name back to its variant (for deserializing persisted
            /// metric records).
            pub fn from_name(name: &str) -> Option<Self> {
                match name {
                    $($name => Some($enum_name::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

metric_enum! {
    /// Every counter the pipeline maintains. Adding a variant extends the
    /// report schema; renaming one is a schema break (bump the report
    /// version).
    pub enum Counter {
        // --- edge decisions (driver level) ---
        /// Edges proven infeasible.
        EdgesRefuted => "edges_refuted",
        /// Edges with a surviving path-program witness.
        EdgesWitnessed => "edges_witnessed",
        /// Edges whose search gave up (any [`StopReason`]).
        ///
        /// [`StopReason`]: https://docs.rs/thresher
        EdgesAborted => "edges_aborted",
        /// Path edges descheduled because an earlier edge of their path was
        /// already refuted (the path died before they were needed).
        EdgesDescheduled => "edges_descheduled",
        /// Aborts: fork budget exhausted.
        AbortForkBudget => "aborts_fork_budget",
        /// Aborts: work budget exhausted.
        AbortWorkBudget => "aborts_work_budget",
        /// Aborts: wall-clock deadline.
        AbortWallClock => "aborts_wall_clock",
        /// Aborts: caller depth cap.
        AbortCallerDepth => "aborts_caller_depth",
        /// Aborts: contained panic.
        AbortPanic => "aborts_panic",
        /// Aborts: solver failure.
        AbortSolverFailure => "aborts_solver_failure",
        /// Aborts: hard heap-cell cap.
        AbortHeapCap => "aborts_heap_cap",
        /// Degradation-ladder retries beyond the strict first attempt.
        DegradedRetries => "degraded_retries",
        /// Edges decided only by a coarsened retry.
        DegradedDecisions => "degraded_decisions",
        // --- search internals (engine level) ---
        /// Path programs (query forks) explored.
        PathPrograms => "path_programs",
        /// Backwards command transfers applied.
        CmdsExecuted => "cmds_executed",
        /// Queries dropped by history subsumption.
        Subsumed => "subsumed",
        /// Loop-invariant fixed points run.
        LoopFixpoints => "loop_fixpoints",
        /// Loop widenings (pure constraints dropped past the iteration cap).
        LoopWidenings => "loop_widenings",
        /// Loop drop-all fallbacks (far past the iteration cap).
        LoopDropAllFallbacks => "loop_drop_all_fallbacks",
        /// Calls skipped via the frame rule (irrelevant mod/ref).
        CallsSkippedIrrelevant => "calls_skipped_irrelevant",
        /// Calls skipped for exceeding the stack bound.
        CallsSkippedDepth => "calls_skipped_depth",
        /// Refutations: empty `from` region.
        RefutedEmptyRegion => "refuted_empty_region",
        /// Refutations: separation contradiction.
        RefutedSeparation => "refuted_separation",
        /// Refutations: pure-constraint contradiction.
        RefutedPure => "refuted_pure",
        /// Refutations: pre-allocation contradiction.
        RefutedAllocation => "refuted_allocation",
        /// Refutations: contradiction at program entry.
        RefutedEntry => "refuted_entry",
        // --- decision procedure ---
        /// Satisfiability/entailment queries answered.
        SolverCalls => "solver_calls",
        /// Satisfiable verdicts.
        SolverSat => "solver_sat",
        /// Unsatisfiable verdicts.
        SolverUnsat => "solver_unsat",
        /// Solver failures (overflow, oversized sets).
        SolverFailures => "solver_failures",
        // --- points-to analysis ---
        /// Worklist propagation rounds.
        PtaPropagations => "pta_propagations",
        /// Constraint-graph nodes created.
        PtaNodes => "pta_nodes",
        /// Method instances analyzed (method × context).
        PtaInstances => "pta_instances",
        /// Delta pushes along copy edges that added at least one location.
        PtaDeltasPushed => "pta_deltas_pushed",
        /// Copy-graph strongly connected components collapsed online.
        PtaSccsCollapsed => "pta_sccs_collapsed",
        /// Incremental drain-log compactions (cap exceeded; dead and
        /// duplicate entries dropped).
        PtaDrainlogCompactions => "pta_drainlog_compactions",
        /// Demand-tier points-to queries answered.
        PtaDemandQueries => "pta_demand_queries",
        /// Demand queries that exhausted their exploration budget and fell
        /// back to the exhaustive result.
        PtaDemandFallbacks => "pta_demand_fallbacks",
        /// Demand-computed facts that disagreed with the exhaustive oracle
        /// and were replaced by it (answer stays exact; nonzero means the
        /// traversal lost precision or soundness somewhere).
        PtaDemandDrift => "pta_demand_drift",
        /// Constraint-graph node representatives traversed by demand
        /// queries.
        PtaDemandNodesTouched => "pta_demand_nodes_touched",
        // --- persistent refutation cache ---
        /// Disk-cache decisions reused verbatim (committed by the
        /// coordinator from a valid, current-fingerprint record).
        CacheHits => "cache_hits",
        /// Edge decisions computed live because no disk record existed.
        CacheMisses => "cache_misses",
        /// Edge decisions recomputed because the stored fingerprint no
        /// longer matched the program slice (stale after an edit).
        CacheInvalidated => "cache_invalidated",
        /// Cache records or files skipped as corrupt, truncated, or
        /// version-mismatched (each skip degrades that lookup to cold).
        CacheSkippedCorrupt => "cache_skipped_corrupt",
        /// Read-write store opens that lost the advisory lock to another
        /// process and degraded to read-only.
        CacheLockContended => "cache_lock_contended",
        /// Store compactions run because the JSONL exceeded its size cap.
        CacheCompactions => "cache_compactions",
        /// Records dropped (least-recently-hit first) by compactions.
        CacheRecordsDropped => "cache_records_dropped",
        // --- clients ---
        /// Alarms reported by the flow-insensitive analysis.
        AlarmsFound => "alarms_found",
        /// Alarms fully refuted.
        AlarmsRefuted => "alarms_refuted",
        /// Alarms with a surviving witnessed path.
        AlarmsWitnessed => "alarms_witnessed",
        // --- resident service (thresher-serve) ---
        /// Requests accepted into the daemon's pending queue.
        RequestsAdmitted => "requests_admitted",
        /// Admitted requests that completed with an `ok` response.
        RequestsCompleted => "requests_completed",
        /// Requests rejected by admission control (queue full, rate
        /// limited, or draining).
        RequestsShed => "requests_shed",
        /// Requests whose handler panicked; the panic was contained and
        /// answered with a structured error.
        RequestsPanicked => "requests_panicked",
        /// Requests rejected or failed because their deadline expired.
        RequestsTimedOut => "requests_timed_out",
        /// Resident programs evicted by the LRU residency cap.
        ProgramsEvicted => "programs_evicted",
        /// Requests whose wall time crossed the daemon's slow-request
        /// threshold and were appended to the slow log.
        RequestsSlow => "requests_slow",
    }
}

metric_enum! {
    /// Every histogram the pipeline maintains. Buckets are powers of two
    /// (see [`bucket_index`]).
    pub enum Hist {
        /// Latency of one decision-procedure call, nanoseconds.
        SolverNanos => "solver_call_ns",
        /// Latency of one full edge refutation (all attempts), microseconds.
        EdgeMicros => "edge_refutation_us",
        /// Exact heap cells held by a query at each command transfer.
        HeapCells => "query_heap_cells",
        /// Points-to worklist length at each propagation round.
        PtaWorklist => "pta_worklist_len",
        /// Delta-set size drained at each difference-propagation round.
        PtaDeltaLen => "pta_delta_size",
        /// Path-program witness trace length at discharge.
        WitnessTraceLen => "witness_trace_len",
        /// Daemon pending-queue depth sampled at each admission.
        QueueDepth => "serve_queue_depth",
        /// Daemon request wall time from dequeue to response, microseconds.
        /// (The `_us` suffix keeps it out of `--diff-reports` identity.)
        RequestMicros => "serve_request_us",
        /// Daemon time spent queued before a worker picked the request up,
        /// microseconds.
        QueueWaitMicros => "serve_queue_wait_us",
    }
}

/// Number of log₂ buckets: one for zero plus one per bit of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket an observation lands in: `0 → 0`, otherwise
/// `⌊log₂ v⌋ + 1` — so bucket `i ≥ 1` covers `[2^(i-1), 2^i)` and
/// `u64::MAX` lands in bucket 64.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0, else `2^(i-1)`).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of the bucket whose lower bound is `lb`: 0 for
/// the zero bucket, `u64::MAX` for the top bucket, otherwise `2·lb − 1`.
#[inline]
pub fn bucket_upper_bound(lb: u64) -> u64 {
    if lb == 0 {
        0
    } else if lb >= 1u64 << 63 {
        u64::MAX
    } else {
        2 * lb - 1
    }
}

struct HistCells {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: the sum is diagnostic, wrap-around would mislead.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self.sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_lower_bound(i), n));
            }
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time view of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// `(bucket lower bound, count)` pairs for non-empty buckets, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) of the
    /// recorded distribution, or `None` when nothing was observed.
    ///
    /// The estimate is the nearest-rank order statistic resolved to bucket
    /// precision: the rank's log₂ bucket is found exactly, then the value
    /// is linearly interpolated across the bucket by rank.
    ///
    /// **Error bound.** The true nearest-rank quantile and the returned
    /// estimate always lie in the same bucket `[2^(i−1), 2^i)`, so the
    /// estimate is within a factor of two of the truth (`est/true` in
    /// `(1/2, 2)`), and the *additive* error is below the bucket width
    /// `2^(i−1)`. Exact cases: a quantile landing in the zero bucket
    /// returns exactly 0, the last rank returns the exact recorded
    /// maximum (so `quantile(1.0) == max`), and no estimate ever exceeds
    /// the maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank, 1-based: the smallest r with r ≥ q·count.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for &(lb, n) in &self.buckets {
            seen += n;
            if seen < target {
                continue;
            }
            if lb == 0 {
                return Some(0);
            }
            let ub = bucket_upper_bound(lb);
            // Spread the bucket's n ranks evenly across [lb, ub].
            let rank_in_bucket = target - (seen - n); // 1-based
            let frac = (rank_in_bucket - 1) as f64 / n as f64;
            let est = lb as f64 + frac * (ub - lb) as f64;
            return Some((est as u64).min(self.max));
        }
        Some(self.max)
    }
}

/// Atomic storage for every [`Counter`] and [`Hist`]. Thread-safe; all
/// operations are relaxed atomics (per-metric totals are exact, cross-
/// metric consistency is not promised mid-run).
pub struct Registry {
    counters: [AtomicU64; Counter::COUNT],
    hists: Vec<HistCells>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Registry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: (0..Hist::COUNT).map(|_| HistCells::new()).collect(),
        }
    }

    /// Adds `n` to `c`.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Records `v` into `h`.
    #[inline]
    pub fn observe(&self, h: Hist, v: u64) {
        self.hists[h.index()].observe(v);
    }

    /// Current value of `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// Snapshot of `h`.
    pub fn histogram(&self, h: Hist) -> HistSnapshot {
        self.hists[h.index()].snapshot()
    }

    /// Zeroes every metric.
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
        let mut hnames: Vec<&str> = Hist::ALL.iter().map(|h| h.name()).collect();
        hnames.sort_unstable();
        hnames.dedup();
        assert_eq!(hnames.len(), Hist::COUNT);
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for &c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        for &h in Hist::ALL {
            assert_eq!(Hist::from_name(h.name()), Some(h));
        }
        assert_eq!(Counter::from_name("no_such_counter"), None);
        assert_eq!(Hist::from_name("no_such_hist"), None);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(64), 1u64 << 63);
        // Every value lands in the bucket whose range covers it.
        for v in [0u64, 1, 2, 3, 5, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v >= bucket_lower_bound(i), "{v} below bucket {i}");
            if i < 64 {
                assert!(v < bucket_lower_bound(i + 1), "{v} above bucket {i}");
            }
        }
    }

    #[test]
    fn quantile_exact_on_synthetic_distributions() {
        // Empty histogram: no quantile.
        assert_eq!(HistSnapshot::default().quantile(0.5), None);

        // All zeros: every quantile is exactly 0.
        let r = Registry::new();
        for _ in 0..10 {
            r.observe(Hist::HeapCells, 0);
        }
        let s = r.histogram(Hist::HeapCells);
        assert_eq!(s.quantile(0.0), Some(0));
        assert_eq!(s.quantile(0.5), Some(0));
        assert_eq!(s.quantile(1.0), Some(0));

        // One observation per power of two: each bucket holds one rank, so
        // interpolation puts every rank at its bucket's lower bound.
        let r = Registry::new();
        for i in 0..8u32 {
            r.observe(Hist::HeapCells, 1 << i); // 1, 2, 4, ..., 128
        }
        let s = r.histogram(Hist::HeapCells);
        assert_eq!(s.quantile(1.0 / 8.0), Some(1));
        assert_eq!(s.quantile(0.5), Some(8));
        assert_eq!(s.quantile(1.0), Some(128)); // exact max

        // A single value repeated: every quantile collapses onto it. Low
        // ranks interpolate inside [4096, 8191] (where 5000 lives) and the
        // max clamp caps everything at the true value.
        let r = Registry::new();
        for _ in 0..100 {
            r.observe(Hist::SolverNanos, 5000);
        }
        let s = r.histogram(Hist::SolverNanos);
        assert_eq!(s.quantile(0.01), Some(4096)); // rank 1, bucket floor
        assert_eq!(s.quantile(0.5), Some(5000)); // interpolates past max, clamped
        assert_eq!(s.quantile(0.99), Some(5000));
        assert_eq!(s.quantile(1.0), Some(5000));
    }

    #[test]
    fn quantile_error_bound_property() {
        // For random distributions, the estimate must share a log₂ bucket
        // with the true nearest-rank order statistic (factor-2 bound).
        minicheck::run_cases(200, |rng| {
            let r = Registry::new();
            let n = rng.usize_in(1, 400);
            let mut vals: Vec<u64> = (0..n)
                .map(|_| match rng.below(3) {
                    0 => rng.next_u64() % 16,      // small values, zero bucket
                    1 => rng.next_u64() % 100_000, // mid range
                    _ => rng.next_u64(),           // full u64 range
                })
                .collect();
            for &v in &vals {
                r.observe(Hist::HeapCells, v);
            }
            vals.sort_unstable();
            let s = r.histogram(Hist::HeapCells);
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let est = s.quantile(q).expect("non-empty");
                let target = ((q * n as f64).ceil() as usize).clamp(1, n);
                let truth = vals[target - 1];
                assert_eq!(
                    bucket_index(est),
                    bucket_index(truth),
                    "q={q} est={est} truth={truth} (n={n})"
                );
                if truth > 0 {
                    let ratio = est as f64 / truth as f64;
                    assert!(ratio > 0.5 && ratio < 2.0, "q={q} ratio={ratio}");
                } else {
                    assert_eq!(est, 0);
                }
            }
            assert_eq!(s.quantile(1.0), Some(*vals.last().unwrap()));
        });
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let r = Registry::new();
        r.add(Counter::SolverCalls, 2);
        r.add(Counter::SolverCalls, 3);
        assert_eq!(r.counter(Counter::SolverCalls), 5);
        assert_eq!(r.counter(Counter::SolverSat), 0);

        r.observe(Hist::HeapCells, 0);
        r.observe(Hist::HeapCells, 1);
        r.observe(Hist::HeapCells, 7);
        r.observe(Hist::HeapCells, u64::MAX);
        let s = r.histogram(Hist::HeapCells);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, u64::MAX);
        // 0 + 1 + 7 + MAX saturates.
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (4, 1), (1u64 << 63, 1)]);

        r.reset();
        assert_eq!(r.counter(Counter::SolverCalls), 0);
        assert_eq!(r.histogram(Hist::HeapCells).count, 0);
    }
}
