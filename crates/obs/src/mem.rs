//! The in-memory recorder: a metric registry plus a bounded event ring.

use crate::{Counter, Hist, HistSnapshot, Recorder, Registry, RunReport, SpanKind, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the [`MemRecorder`] event ring, in events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingCapacity(pub usize);

impl Default for RingCapacity {
    /// 64k events — enough for every corpus program at full span
    /// granularity, ~6 MiB worst case.
    fn default() -> Self {
        RingCapacity(64 * 1024)
    }
}

/// The standard [`Recorder`]: metrics land in an atomic [`Registry`],
/// trace events in a bounded ring that keeps the *oldest* events (the run
/// skeleton — outer spans complete last but start first, and dropping the
/// newest keeps the drop set contiguous). Dropped events are counted so the
/// exporter can say so.
pub struct MemRecorder {
    registry: Registry,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
    /// When false, fine-grained span kinds are skipped at the source.
    record_fine: bool,
}

struct Ring {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Distinct thread ids that emitted events (dropped ones included).
    tids: std::collections::HashSet<u32>,
}

impl MemRecorder {
    /// Creates a recorder with the given ring capacity, recording all span
    /// kinds.
    pub fn new(capacity: RingCapacity) -> Self {
        MemRecorder {
            registry: Registry::new(),
            ring: Mutex::new(Ring {
                events: Vec::new(),
                capacity: capacity.0,
                tids: std::collections::HashSet::new(),
            }),
            dropped: AtomicU64::new(0),
            record_fine: true,
        }
    }

    /// Creates a recorder that skips fine-grained span kinds
    /// ([`SpanKind::is_fine_grained`]); metrics are unaffected.
    pub fn coarse(capacity: RingCapacity) -> Self {
        MemRecorder { record_fine: false, ..MemRecorder::new(capacity) }
    }

    /// Leaks a fresh recorder, installs it globally, and returns it — the
    /// one-line setup for binaries and tests. Callers that cycle recorders
    /// (tests) must hold [`crate::test_lock`].
    pub fn install_static(capacity: RingCapacity) -> &'static MemRecorder {
        let rec: &'static MemRecorder = Box::leak(Box::new(MemRecorder::new(capacity)));
        crate::install(rec);
        rec
    }

    /// The metric registry (shared with any other readers).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Current value of counter `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.registry.counter(c)
    }

    /// Snapshot of histogram `h`.
    pub fn histogram(&self, h: Hist) -> HistSnapshot {
        self.registry.histogram(h)
    }

    /// A copy of the recorded events, in completion order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).events.clone()
    }

    /// Events discarded because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Distinct threads that emitted trace events (dropped events count the
    /// thread too) — with worker pools this tells whether trace truncation
    /// hit a run that fanned out.
    pub fn trace_threads(&self) -> u64 {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).tids.len() as u64
    }

    /// Builds a versioned [`RunReport`] from the current metrics. `meta`
    /// carries free-form run identification (program name, client, config).
    pub fn run_report(&self, meta: &[(&str, &str)]) -> RunReport {
        RunReport::from_registry(&self.registry, meta, self.dropped_events(), self.trace_threads())
    }

    /// Serializes the recorded events as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        crate::chrome_trace_json(&self.events())
    }

    /// Zeroes metrics, the ring, and the dropped-event count.
    pub fn reset(&self) {
        self.registry.reset();
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.events.clear();
        ring.tids.clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl Recorder for MemRecorder {
    fn add(&self, c: Counter, n: u64) {
        self.registry.add(c, n);
    }

    fn observe(&self, h: Hist, v: u64) {
        self.registry.observe(h, v);
    }

    fn event(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.tids.insert(ev.tid);
        if ring.events.len() < ring.capacity {
            ring.events.push(ev);
        } else {
            drop(ring);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn span_enabled(&self, kind: SpanKind) -> bool {
        self.record_fine || !kind.is_fine_grained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &str, ts_us: u64) -> TraceEvent {
        TraceEvent {
            kind: SpanKind::Edge,
            label: label.to_owned(),
            ts_us,
            dur_us: 1,
            tid: 1,
            depth: 0,
            instant: false,
        }
    }

    #[test]
    fn ring_keeps_oldest_and_counts_drops() {
        let rec = MemRecorder::new(RingCapacity(2));
        rec.event(ev("a", 0));
        rec.event(ev("b", 1));
        rec.event(ev("c", 2));
        let kept: Vec<String> = rec.events().into_iter().map(|e| e.label).collect();
        assert_eq!(kept, ["a", "b"]);
        assert_eq!(rec.dropped_events(), 1);
        rec.reset();
        assert!(rec.events().is_empty());
        assert_eq!(rec.dropped_events(), 0);
    }

    #[test]
    fn coarse_recorder_skips_fine_kinds() {
        let rec = MemRecorder::coarse(RingCapacity::default());
        assert!(rec.span_enabled(SpanKind::Edge));
        assert!(!rec.span_enabled(SpanKind::SolverCall));
        let full = MemRecorder::new(RingCapacity::default());
        assert!(full.span_enabled(SpanKind::SolverCall));
    }

    #[test]
    fn metrics_flow_through_recorder() {
        let rec = MemRecorder::new(RingCapacity::default());
        Recorder::add(&rec, Counter::SolverCalls, 3);
        Recorder::observe(&rec, Hist::SolverNanos, 100);
        assert_eq!(rec.counter(Counter::SolverCalls), 3);
        assert_eq!(rec.histogram(Hist::SolverNanos).count, 1);
    }
}
