//! Hand-rolled Prometheus text exposition (format 0.0.4), zero deps.
//!
//! [`PromText`] renders counters, gauges, labeled samples, and the
//! registry's log₂ histograms into the plain-text scrape format. Escaping
//! follows the same minimal-and-explicit convention as [`crate::json`]:
//! label values escape exactly `\`, `"`, and newline, nothing else.
//!
//! Histogram buckets are **cumulative** `le` buckets, derived exactly from
//! the log₂ layout: bucket `i ≥ 1` covers `[2^(i−1), 2^i)`, so its
//! inclusive upper bound is the integer `2^i − 1` (the zero bucket gets
//! `le="0"`, the top bucket `le="18446744073709551615"`), followed by the
//! mandatory `+Inf` bucket, `_sum`, and `_count` series.
//!
//! [`parse`] is the matching minimal reader used by tests and CI scrape
//! gates to prove the exposition round-trips.

use crate::metrics::{bucket_upper_bound, Counter, Hist, HistSnapshot, Registry};

/// Incremental builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

/// True for names Prometheus accepts: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_owned()
        } else {
            "-Inf".to_owned()
        }
    } else if v.is_nan() {
        "NaN".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        if !help.is_empty() {
            // HELP text escapes `\` and newline only (no quotes involved).
            let help = help.replace('\\', "\\\\").replace('\n', "\\n");
            self.out.push_str(&format!("# HELP {name} {help}\n"));
        }
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// A monotonically increasing counter (name should end in `_total`).
    pub fn counter(&mut self, name: &str, help: &str, v: u64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {v}\n"));
    }

    /// A point-in-time gauge.
    pub fn gauge(&mut self, name: &str, help: &str, v: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {}\n", fmt_f64(v)));
    }

    /// One raw sample line with labels, no HELP/TYPE header — for series
    /// families the caller headers once (e.g. windowed quantiles).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, val)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                debug_assert!(valid_name(k), "invalid label name {k:?}");
                self.out.push_str(&format!("{k}=\"{}\"", escape_label(val)));
            }
            self.out.push('}');
        }
        self.out.push_str(&format!(" {}\n", fmt_f64(v)));
    }

    /// A TYPE header without samples (for labeled families emitted via
    /// [`Self::sample`]).
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        self.header(name, help, kind);
    }

    /// A full log₂ histogram as cumulative `le` buckets + `_sum`/`_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistSnapshot) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for &(lb, n) in &snap.buckets {
            cumulative += n;
            let le = bucket_upper_bound(lb);
            self.out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        self.out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
        self.out.push_str(&format!("{name}_sum {}\n", snap.sum));
        self.out.push_str(&format!("{name}_count {}\n", snap.count));
    }

    /// Every counter (as `<prefix><name>_total`) and histogram (as
    /// `<prefix><name>`) in `registry`, in declaration order. Zero-valued
    /// counters are emitted too: the exposition is the wire form of the
    /// run report, which also keeps zeros.
    pub fn registry(&mut self, prefix: &str, registry: &Registry) {
        for &c in Counter::ALL {
            self.counter(&format!("{prefix}{}_total", c.name()), "", registry.counter(c));
        }
        for &h in Hist::ALL {
            self.histogram(&format!("{prefix}{}", h.name()), "", &registry.histogram(h));
        }
    }

    /// The rendered document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs in document order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parses an exposition document back into samples (comments and blank
/// lines skipped). Errors name the offending line. This is the test/CI
/// round-trip reader, not a general Prometheus client.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line)?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let err = |m: &str| format!("{m}: {line:?}");
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .ok_or_else(|| err("sample has no value"))?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(err("invalid metric name"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(stripped) = rest.strip_prefix('{') {
        let mut chars = stripped.char_indices().peekable();
        let mut key = String::new();
        let mut state = 0u8; // 0 = key, 1 = value, 2 = after value
        let mut val = String::new();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match state {
                0 => match c {
                    '=' => {
                        match chars.next() {
                            Some((_, '"')) => {}
                            _ => return Err(err("label value must be quoted")),
                        }
                        state = 1;
                    }
                    '}' if key.is_empty() => {
                        end = Some(i + 1);
                        break;
                    }
                    c if c.is_ascii_alphanumeric() || c == '_' || c == ':' => key.push(c),
                    _ => return Err(err("invalid label name")),
                },
                1 => match c {
                    '\\' => match chars.next() {
                        Some((_, 'n')) => val.push('\n'),
                        Some((_, e @ ('\\' | '"'))) => val.push(e),
                        _ => return Err(err("bad escape in label value")),
                    },
                    '"' => {
                        labels.push((std::mem::take(&mut key), std::mem::take(&mut val)));
                        state = 2;
                    }
                    _ => val.push(c),
                },
                _ => match c {
                    ',' => state = 0,
                    '}' => {
                        end = Some(i + 1);
                        break;
                    }
                    _ => return Err(err("expected , or } after label")),
                },
            }
        }
        let end = end.ok_or_else(|| err("unterminated label set"))?;
        rest = &stripped[end..];
    }
    let value_text = rest.trim();
    if value_text.is_empty() {
        return Err(err("sample has no value"));
    }
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        t => t.parse::<f64>().map_err(|_| err("bad sample value"))?,
    };
    Ok(Sample { name: name.to_owned(), labels, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Hist, Registry};

    #[test]
    fn names_and_escaping() {
        assert!(valid_name("thresher_requests_total"));
        assert!(valid_name("_x:y"));
        assert!(!valid_name("9lives"));
        assert!(!valid_name("has-dash"));
        assert!(!valid_name(""));
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn document_round_trips_through_parse() {
        let mut p = PromText::new();
        p.counter("demo_requests_total", "requests served", 42);
        p.gauge("demo_uptime_seconds", "", 1.5);
        p.family("demo_latency_us", "windowed latency", "gauge");
        p.sample("demo_latency_us", &[("method", "analyze"), ("quantile", "0.99")], 7.0);
        p.sample("demo_note", &[("text", "a\"b\\c\nd")], 0.0);
        let text = p.finish();
        let samples = parse(&text).unwrap();
        assert_eq!(samples.len(), 4);
        assert_eq!(
            samples[0],
            Sample { name: "demo_requests_total".into(), labels: vec![], value: 42.0 }
        );
        assert_eq!(samples[2].label("method"), Some("analyze"));
        assert_eq!(samples[2].label("quantile"), Some("0.99"));
        assert_eq!(samples[3].label("text"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_log2_bounds() {
        let r = Registry::new();
        for v in [0, 1, 3, 3, 9] {
            r.observe(Hist::HeapCells, v);
        }
        let mut p = PromText::new();
        p.histogram("h", "", &r.histogram(Hist::HeapCells));
        let samples = parse(&p.finish()).unwrap();
        let bucket = |le: &str| {
            samples
                .iter()
                .find(|s| s.name == "h_bucket" && s.label("le") == Some(le))
                .unwrap_or_else(|| panic!("no le={le}"))
                .value
        };
        // 0 → le=0; 1 → le=1; 3,3 → bucket [2,4) le=3; 9 → bucket [8,16) le=15.
        assert_eq!(bucket("0"), 1.0);
        assert_eq!(bucket("1"), 2.0);
        assert_eq!(bucket("3"), 4.0);
        assert_eq!(bucket("15"), 5.0);
        assert_eq!(bucket("+Inf"), 5.0);
        let sum = samples.iter().find(|s| s.name == "h_sum").unwrap().value;
        let count = samples.iter().find(|s| s.name == "h_count").unwrap().value;
        assert_eq!(sum, 16.0);
        assert_eq!(count, 5.0);
    }

    #[test]
    fn registry_exposition_covers_every_metric_including_zeros() {
        let r = Registry::new();
        r.add(Counter::SolverCalls, 3);
        r.observe(Hist::SolverNanos, 100);
        let mut p = PromText::new();
        p.registry("thresher_", &r);
        let samples = parse(&p.finish()).unwrap();
        let get = |n: &str| samples.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("thresher_solver_calls_total"), Some(3.0));
        assert_eq!(get("thresher_edges_refuted_total"), Some(0.0));
        assert_eq!(get("thresher_solver_call_ns_count"), Some(1.0));
        // Every counter appears.
        for &c in Counter::ALL {
            assert!(get(&format!("thresher_{}_total", c.name())).is_some(), "missing {}", c.name());
        }
    }
}
