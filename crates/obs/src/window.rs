//! Fixed-capacity sliding windows over recent observations.
//!
//! The log₂ histograms in [`metrics`](crate::Registry) aggregate the whole
//! process lifetime; a serving daemon also needs *recent* behavior ("p99
//! over the last N requests") so drift is visible while the process stays
//! up. [`SlidingWindow`] keeps the last `cap` raw `u64` samples in a ring
//! and answers **exact** nearest-rank quantiles over that window (the
//! window is small, so sorting a copy is cheap) — unlike
//! [`HistSnapshot::quantile`](crate::HistSnapshot::quantile), which trades
//! a factor-2 error bound for O(1) memory over unbounded streams.

/// A ring of the most recent `cap` observations.
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    cap: usize,
    buf: Vec<u64>,
    next: usize,
    pushed: u64,
}

impl SlidingWindow {
    /// An empty window holding at most `cap` samples (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SlidingWindow { cap, buf: Vec::with_capacity(cap.min(4096)), next: 0, pushed: 0 }
    }

    /// Records one sample, evicting the oldest once the window is full.
    pub fn push(&mut self, v: u64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
        }
        self.next = (self.next + 1) % self.cap;
        self.pushed = self.pushed.saturating_add(1);
    }

    /// Samples currently held (at most the capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no sample was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Lifetime count of pushes (including samples already evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Largest sample currently in the window.
    pub fn max(&self) -> Option<u64> {
        self.buf.iter().copied().max()
    }

    /// The exact nearest-rank `q`-quantile (`q` in `[0, 1]`, clamped) of
    /// the samples currently in the window, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_quantiles() {
        let w = SlidingWindow::new(8);
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.5), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let mut w = SlidingWindow::new(100);
        for v in 1..=10 {
            w.push(v);
        }
        assert_eq!(w.quantile(0.0), Some(1));
        assert_eq!(w.quantile(0.1), Some(1));
        assert_eq!(w.quantile(0.5), Some(5));
        assert_eq!(w.quantile(0.91), Some(10));
        assert_eq!(w.quantile(1.0), Some(10));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut w = SlidingWindow::new(4);
        for v in [100, 200, 1, 2, 3, 4] {
            w.push(v);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.pushed(), 6);
        // 100 and 200 were evicted.
        assert_eq!(w.max(), Some(4));
        assert_eq!(w.quantile(1.0), Some(4));
        assert_eq!(w.quantile(0.25), Some(1));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut w = SlidingWindow::new(0);
        w.push(7);
        w.push(9);
        assert_eq!(w.len(), 1);
        assert_eq!(w.quantile(0.5), Some(9));
    }

    #[test]
    fn window_matches_exact_quantiles_on_random_streams() {
        minicheck::run_cases(100, |rng| {
            let cap = rng.usize_in(1, 64);
            let n = rng.usize_in(1, 200);
            let mut w = SlidingWindow::new(cap);
            let mut all: Vec<u64> = Vec::new();
            for _ in 0..n {
                let v = rng.next_u64() % 10_000;
                w.push(v);
                all.push(v);
            }
            // The window must agree with a from-scratch computation over
            // the last `cap` samples.
            let mut tail: Vec<u64> = all[all.len().saturating_sub(cap)..].to_vec();
            tail.sort_unstable();
            for q in [0.0, 0.5, 0.99, 1.0] {
                let rank = ((q * tail.len() as f64).ceil() as usize).clamp(1, tail.len());
                assert_eq!(w.quantile(q), Some(tail[rank - 1]), "cap={cap} n={n} q={q}");
            }
        });
    }
}
