//! Captured metric deltas for deferred, deterministic accounting.
//!
//! The parallel refutation scheduler computes edge decisions speculatively
//! on worker threads, but only *commits* them — in the canonical sequential
//! order — on the coordinator. To keep report totals byte-identical across
//! thread counts, the metrics a speculative computation emits must not hit
//! the global [`Recorder`](crate::Recorder) immediately: [`capture`] runs a
//! closure with a thread-local buffer installed, collecting every
//! [`add`](crate::add)/[`observe`](crate::observe) into a [`MetricsDelta`],
//! and [`MetricsDelta::replay`] applies the batch to the global recorder at
//! commit time. Trace events (spans, instants) are *not* buffered — they
//! pass straight to the ring and are excluded from determinism guarantees.

use std::cell::RefCell;

use crate::{Counter, Hist};

/// A batch of counter increments and raw (unbucketed) histogram
/// observations, captured on one thread and replayable later. Replaying the
/// delta produces exactly the same registry state as recording the
/// original calls directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsDelta {
    counters: [u64; Counter::COUNT],
    observations: Vec<(Hist, u64)>,
}

impl Default for MetricsDelta {
    fn default() -> Self {
        MetricsDelta { counters: [0; Counter::COUNT], observations: Vec::new() }
    }
}

impl MetricsDelta {
    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty() && self.counters.iter().all(|&n| n == 0)
    }

    /// Captured total for counter `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Captured observations, in emission order.
    pub fn observations(&self) -> &[(Hist, u64)] {
        &self.observations
    }

    /// Rebuilds a delta from previously-serialized parts: per-counter
    /// totals as `(counter, n)` pairs plus ordered histogram
    /// observations. Replaying the result produces the same registry
    /// state as replaying the original — this is the deserialization
    /// counterpart of [`Self::counter`]/[`Self::observations`] used by
    /// the persistent refutation cache.
    pub fn from_parts(
        counters: impl IntoIterator<Item = (Counter, u64)>,
        observations: Vec<(Hist, u64)>,
    ) -> Self {
        let mut d = MetricsDelta { counters: [0; Counter::COUNT], observations };
        for (c, n) in counters {
            d.add(c, n);
        }
        d
    }

    fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.index()] = self.counters[c.index()].saturating_add(n);
    }

    fn observe(&mut self, h: Hist, v: u64) {
        self.observations.push((h, v));
    }

    /// Applies the batch through [`add`](crate::add)/[`observe`](crate::observe)
    /// (a no-op when recording is disabled). A [`capture`] active on the
    /// calling thread therefore buffers the replayed metrics like any other
    /// emission — exactly once — so a higher-level consumer (e.g. a
    /// per-request report in `thresher-serve`) sees everything the
    /// scheduler commits beneath it. With no capture active, the batch goes
    /// straight to the installed recorder as before.
    pub fn replay(&self) {
        if !crate::enabled() {
            return;
        }
        for (i, &n) in self.counters.iter().enumerate() {
            if n > 0 {
                crate::add(Counter::ALL[i], n);
            }
        }
        for &(h, v) in &self.observations {
            crate::observe(h, v);
        }
    }

    /// Applies the batch to an explicit registry, independent of the
    /// global recorder or any capture — the rendering step for building a
    /// standalone [`RunReport`](crate::RunReport) out of captured deltas.
    pub fn replay_into(&self, registry: &crate::Registry) {
        for (i, &n) in self.counters.iter().enumerate() {
            if n > 0 {
                registry.add(Counter::ALL[i], n);
            }
        }
        for &(h, v) in &self.observations {
            registry.observe(h, v);
        }
    }
}

thread_local! {
    static CAPTURE: RefCell<Option<Box<MetricsDelta>>> = const { RefCell::new(None) };
}

/// Routes `add` into the active capture buffer, if any. Returns `true`
/// when the value was buffered (the caller must then skip the recorder).
#[inline]
pub(crate) fn buffered_add(c: Counter, n: u64) -> bool {
    CAPTURE.with(|cell| match cell.borrow_mut().as_mut() {
        Some(d) => {
            d.add(c, n);
            true
        }
        None => false,
    })
}

/// Routes `observe` into the active capture buffer, if any.
#[inline]
pub(crate) fn buffered_observe(h: Hist, v: u64) -> bool {
    CAPTURE.with(|cell| match cell.borrow_mut().as_mut() {
        Some(d) => {
            d.observe(h, v);
            true
        }
        None => false,
    })
}

/// Runs `f` with metric capture active on this thread: every counter add
/// and histogram observation `f` emits lands in the returned
/// [`MetricsDelta`] instead of the global recorder. Captures nest (the
/// innermost buffer wins). When recording is disabled, `f` runs without any
/// buffering and the delta is empty — the delta only matters for what the
/// recorder would have seen.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, MetricsDelta) {
    if !crate::enabled() {
        return (f(), MetricsDelta::default());
    }
    let prev = CAPTURE.with(|c| c.borrow_mut().replace(Box::default()));
    // Restore the previous buffer even if `f` unwinds, or every later
    // metric on this thread would be swallowed by a leaked buffer.
    struct Restore(Option<Box<MetricsDelta>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CAPTURE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let restore = Restore(prev);
    let r = f();
    let delta = CAPTURE.with(|c| c.borrow_mut().take()).map(|b| *b).unwrap_or_default();
    drop(restore);
    (r, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemRecorder, RingCapacity};

    #[test]
    fn capture_buffers_and_replay_applies() {
        let _serial = crate::test_lock();
        let rec = MemRecorder::install_static(RingCapacity::default());
        rec.reset();

        let ((), delta) = capture(|| {
            crate::add(Counter::EdgesRefuted, 2);
            crate::observe(Hist::HeapCells, 5);
        });
        // Nothing reached the recorder yet.
        assert_eq!(rec.counter(Counter::EdgesRefuted), 0);
        assert_eq!(rec.histogram(Hist::HeapCells).count, 0);
        assert_eq!(delta.counter(Counter::EdgesRefuted), 2);
        assert_eq!(delta.observations(), &[(Hist::HeapCells, 5)]);
        assert!(!delta.is_empty());

        delta.replay();
        assert_eq!(rec.counter(Counter::EdgesRefuted), 2);
        assert_eq!(rec.histogram(Hist::HeapCells).count, 1);
        assert_eq!(rec.histogram(Hist::HeapCells).sum, 5);
        crate::uninstall();
    }

    #[test]
    fn captures_nest_and_restore() {
        let _serial = crate::test_lock();
        let rec = MemRecorder::install_static(RingCapacity::default());
        rec.reset();

        let ((), outer) = capture(|| {
            crate::add(Counter::SolverCalls, 1);
            let ((), inner) = capture(|| crate::add(Counter::SolverCalls, 10));
            assert_eq!(inner.counter(Counter::SolverCalls), 10);
            crate::add(Counter::SolverCalls, 2);
        });
        assert_eq!(outer.counter(Counter::SolverCalls), 3);
        assert_eq!(rec.counter(Counter::SolverCalls), 0);

        // After capture ends, metrics flow to the recorder again.
        crate::add(Counter::SolverCalls, 7);
        assert_eq!(rec.counter(Counter::SolverCalls), 7);
        crate::uninstall();
    }

    #[test]
    fn replay_respects_active_capture() {
        let _serial = crate::test_lock();
        let rec = MemRecorder::install_static(RingCapacity::default());
        rec.reset();

        let ((), inner) = capture(|| {
            crate::add(Counter::EdgesRefuted, 4);
            crate::observe(Hist::HeapCells, 9);
        });
        // Replaying inside an outer capture buffers instead of committing,
        // so a per-request capture sees scheduler-committed metrics.
        let ((), outer) = capture(|| inner.replay());
        assert_eq!(rec.counter(Counter::EdgesRefuted), 0);
        assert_eq!(outer.counter(Counter::EdgesRefuted), 4);
        assert_eq!(outer.observations(), &[(Hist::HeapCells, 9)]);

        outer.replay();
        assert_eq!(rec.counter(Counter::EdgesRefuted), 4);
        crate::uninstall();
    }

    #[test]
    fn replay_into_targets_explicit_registry() {
        let _serial = crate::test_lock();
        let rec = MemRecorder::install_static(RingCapacity::default());
        rec.reset();
        let ((), delta) = capture(|| {
            crate::add(Counter::SolverCalls, 3);
            crate::observe(Hist::HeapCells, 2);
        });
        let reg = crate::Registry::new();
        delta.replay_into(&reg);
        assert_eq!(reg.counter(Counter::SolverCalls), 3);
        assert_eq!(reg.histogram(Hist::HeapCells).count, 1);
        // The global recorder stays untouched.
        assert_eq!(rec.counter(Counter::SolverCalls), 0);
        crate::uninstall();
    }

    #[test]
    fn capture_disabled_is_passthrough() {
        let _serial = crate::test_lock();
        crate::uninstall();
        let (v, delta) = capture(|| {
            crate::add(Counter::SolverCalls, 1);
            42
        });
        assert_eq!(v, 42);
        assert!(delta.is_empty());
    }
}
