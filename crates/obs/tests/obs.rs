//! Integration tests exercising the global recorder end to end: span
//! nesting and ordering invariants, ring overflow, report schema, and the
//! disabled-recorder fast path.

use obs::{chrome_trace_json, Counter, Hist, MemRecorder, RingCapacity, SpanKind, TraceEvent};

#[test]
fn spans_nest_and_timestamps_are_monotonic() {
    let _serial = obs::test_lock();
    let rec = MemRecorder::install_static(RingCapacity::default());
    rec.reset();

    {
        let _run = obs::span(SpanKind::Run, "run");
        {
            let _client = obs::span(SpanKind::Client, "client");
            let _edge = obs::span(SpanKind::Edge, "edge-0");
        }
        let _edge = obs::span(SpanKind::Edge, "edge-1");
    }
    obs::uninstall();

    let events = rec.events();
    // Complete events are recorded when the guard drops, so completion
    // order is innermost-first.
    let labels: Vec<&str> = events.iter().map(|e| e.label.as_str()).collect();
    assert_eq!(labels, ["edge-0", "client", "edge-1", "run"]);

    let by_label = |l: &str| -> &TraceEvent { events.iter().find(|e| e.label == l).unwrap() };
    let run = by_label("run");
    let client = by_label("client");
    let edge0 = by_label("edge-0");
    let edge1 = by_label("edge-1");

    // Explicit depth mirrors lexical nesting.
    assert_eq!(run.depth, 0);
    assert_eq!(client.depth, 1);
    assert_eq!(edge0.depth, 2);
    assert_eq!(edge1.depth, 1);

    // Timestamp containment: each child interval lies within its parent.
    let contains = |outer: &TraceEvent, inner: &TraceEvent| {
        outer.ts_us <= inner.ts_us && inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us
    };
    assert!(contains(run, client), "run must contain client");
    assert!(contains(client, edge0), "client must contain edge-0");
    assert!(contains(run, edge1), "run must contain edge-1");

    // Start times never go backwards in program order.
    assert!(run.ts_us <= client.ts_us);
    assert!(client.ts_us <= edge0.ts_us);
    assert!(edge0.ts_us <= edge1.ts_us);

    // And none of the spans is an instant.
    assert!(events.iter().all(|e| !e.instant));
}

#[test]
fn ring_overflow_keeps_oldest_and_reports_drops() {
    let _serial = obs::test_lock();
    let rec: &'static MemRecorder = Box::leak(Box::new(MemRecorder::new(RingCapacity(3))));
    obs::install(rec);

    for i in 0..5 {
        let _s = obs::span_with(SpanKind::Path, || format!("p{i}"));
    }
    obs::uninstall();

    let labels: Vec<String> = rec.events().into_iter().map(|e| e.label).collect();
    assert_eq!(labels, ["p0", "p1", "p2"]);
    assert_eq!(rec.dropped_events(), 2);
    // The drop count surfaces in the report.
    assert_eq!(rec.run_report(&[]).dropped_trace_events, 2);
}

#[test]
fn report_matches_recorded_metrics_and_schema() {
    let _serial = obs::test_lock();
    let rec = MemRecorder::install_static(RingCapacity::default());
    rec.reset();

    obs::add(Counter::EdgesRefuted, 2);
    obs::add(Counter::EdgesWitnessed, 1);
    obs::observe(Hist::HeapCells, 0);
    obs::observe(Hist::HeapCells, 9);
    obs::uninstall();

    let report = rec.run_report(&[("program", "golden.tir"), ("client", "test")]);
    let parsed = obs::json::parse(&report.to_json()).expect("report is valid JSON");
    assert_eq!(
        parsed.get("schema").and_then(obs::json::Value::as_str),
        Some("thresher.run_report/1")
    );
    let counters = parsed.get("counters").expect("counters object");
    assert_eq!(counters.get("edges_refuted").and_then(obs::json::Value::as_u64), Some(2));
    assert_eq!(counters.get("edges_witnessed").and_then(obs::json::Value::as_u64), Some(1));
    assert_eq!(counters.get("edges_aborted").and_then(obs::json::Value::as_u64), Some(0));
    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("query_heap_cells"))
        .expect("heap-cells histogram");
    assert_eq!(hist.get("count").and_then(obs::json::Value::as_u64), Some(2));
    assert_eq!(hist.get("max").and_then(obs::json::Value::as_u64), Some(9));
    assert_eq!(
        parsed.get("meta").and_then(|m| m.get("program")).and_then(obs::json::Value::as_str),
        Some("golden.tir")
    );
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let _serial = obs::test_lock();
    let rec = MemRecorder::install_static(RingCapacity::default());
    rec.reset();

    {
        let _run = obs::span(SpanKind::Run, "run");
        obs::instant_with(SpanKind::Message, || "hello".to_owned());
    }
    obs::uninstall();

    let text = chrome_trace_json(&rec.events());
    let parsed = obs::json::parse(&text).expect("trace is valid JSON");
    let items = parsed.get("traceEvents").and_then(obs::json::Value::as_arr).expect("traceEvents");
    assert_eq!(items.len(), 2);
    // One instant message, one complete run span.
    let phases: Vec<&str> =
        items.iter().filter_map(|e| e.get("ph").and_then(obs::json::Value::as_str)).collect();
    assert!(phases.contains(&"X"));
    assert!(phases.contains(&"i"));
}

#[test]
fn coarse_recorder_suppresses_fine_spans_but_not_metrics() {
    let _serial = obs::test_lock();
    let rec: &'static MemRecorder =
        Box::leak(Box::new(MemRecorder::coarse(RingCapacity::default())));
    obs::install(rec);

    {
        let _edge = obs::span(SpanKind::Edge, "edge");
        let _call = obs::span_with(SpanKind::SolverCall, || {
            unreachable!("fine-grained label must not be computed")
        });
        obs::add(Counter::SolverCalls, 1);
    }
    obs::uninstall();

    let kinds: Vec<SpanKind> = rec.events().into_iter().map(|e| e.kind).collect();
    assert_eq!(kinds, [SpanKind::Edge]);
    assert_eq!(rec.counter(Counter::SolverCalls), 1);
}

/// The acceptance bar is "no measurable overhead" (< 2%) when disabled; a
/// cross-machine-safe proxy is an absolute ceiling far above what a single
/// branch-and-return could ever cost. 20M disabled counter bumps in well
/// under a second ≈ tens of ns per call budget; the real cost is ~1 ns.
#[test]
fn disabled_recorder_fast_path_is_cheap() {
    let _serial = obs::test_lock();
    obs::uninstall();

    let start = std::time::Instant::now();
    for i in 0..20_000_000u64 {
        obs::add(Counter::CmdsExecuted, 1);
        if i % 4 == 0 {
            obs::observe(Hist::HeapCells, i);
        }
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "disabled-recorder path too slow: {elapsed:?} for 25M calls"
    );
    // And it must never read the clock.
    assert!(obs::timer().is_none());
}
