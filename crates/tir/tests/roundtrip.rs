//! Printer/parser round-trip property tests: random programs built through
//! the builder API survive `print → parse → print` unchanged.

use minicheck::{run_cases, Rng};
use tir::{BinOp, CmpOp, Cond, MethodBuilder, Operand, ProgramBuilder, Ty, VarId};

#[derive(Clone, Debug)]
enum GStmt {
    NewObj(usize),
    NewArr(usize),
    Copy(usize, usize),
    WriteField(usize, usize, usize),
    ReadField(usize, usize, usize),
    WriteGlobal(usize, usize),
    ReadGlobal(usize, usize),
    SetInt(usize, i8),
    Arith(usize, usize, u8, i8),
    ArrRead(usize, usize, usize),
    ArrWrite(usize, usize, usize),
    Len(usize, usize),
    Assume(u8, usize, i8),
    If(u8, usize, i8, Vec<GStmt>, Vec<GStmt>),
    While(u8, usize, i8, Vec<GStmt>),
    Choice(Vec<GStmt>, Vec<GStmt>),
}

const NOBJ: usize = 3;
const NARR: usize = 2;
const NINT: usize = 3;
const NFIELD: usize = 2;
const NGLOB: usize = 2;

fn arb_i8(rng: &mut Rng) -> i8 {
    rng.i64_in(i64::from(i8::MIN), i64::from(i8::MAX)) as i8
}

fn arb_leaf(rng: &mut Rng) -> GStmt {
    match rng.below(13) {
        0 => GStmt::NewObj(rng.below(NOBJ)),
        1 => GStmt::NewArr(rng.below(NARR)),
        2 => GStmt::Copy(rng.below(NOBJ), rng.below(NOBJ)),
        3 => GStmt::WriteField(rng.below(NOBJ), rng.below(NFIELD), rng.below(NOBJ)),
        4 => GStmt::ReadField(rng.below(NOBJ), rng.below(NOBJ), rng.below(NFIELD)),
        5 => GStmt::WriteGlobal(rng.below(NGLOB), rng.below(NOBJ)),
        6 => GStmt::ReadGlobal(rng.below(NOBJ), rng.below(NGLOB)),
        7 => GStmt::SetInt(rng.below(NINT), arb_i8(rng)),
        8 => GStmt::Arith(rng.below(NINT), rng.below(NINT), rng.below(3) as u8, arb_i8(rng)),
        9 => GStmt::ArrRead(rng.below(NOBJ), rng.below(NARR), rng.below(NINT)),
        10 => GStmt::ArrWrite(rng.below(NARR), rng.below(NINT), rng.below(NOBJ)),
        11 => GStmt::Len(rng.below(NINT), rng.below(NARR)),
        _ => GStmt::Assume(rng.below(6) as u8, rng.below(NINT), arb_i8(rng)),
    }
}

fn arb_leaf_vec(rng: &mut Rng) -> Vec<GStmt> {
    let n = rng.usize_in(1, 4);
    (0..n).map(|_| arb_leaf(rng)).collect()
}

fn arb_stmts(rng: &mut Rng, depth: u32) -> Vec<GStmt> {
    if depth == 0 {
        return arb_leaf_vec(rng);
    }
    match rng.weighted(&[3, 1, 1, 1]) {
        0 => arb_leaf_vec(rng),
        1 => vec![GStmt::If(
            rng.below(6) as u8,
            rng.below(NINT),
            arb_i8(rng),
            arb_stmts(rng, depth - 1),
            arb_stmts(rng, depth - 1),
        )],
        2 => vec![GStmt::While(
            rng.below(6) as u8,
            rng.below(NINT),
            arb_i8(rng),
            arb_stmts(rng, depth - 1),
        )],
        _ => vec![GStmt::Choice(arb_stmts(rng, depth - 1), arb_stmts(rng, depth - 1))],
    }
}

fn cmp_of(op: u8) -> CmpOp {
    match op % 6 {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

struct Vars {
    objs: Vec<VarId>,
    arrs: Vec<VarId>,
    ints: Vec<VarId>,
}

fn emit(
    mb: &mut MethodBuilder,
    v: &Vars,
    stmts: &[GStmt],
    fresh: &mut usize,
    fields: &[tir::FieldId],
    globals: &[tir::GlobalId],
    cell: tir::ClassId,
) {
    for s in stmts {
        *fresh += 1;
        match s {
            GStmt::NewObj(a) => {
                mb.new_obj(v.objs[*a], cell, &format!("o{fresh}"));
            }
            GStmt::NewArr(a) => {
                mb.new_array(v.arrs[*a], &format!("a{fresh}"), 4);
            }
            GStmt::Copy(a, b) => {
                mb.assign(v.objs[*a], v.objs[*b]);
            }
            GStmt::WriteField(a, f, b) => {
                mb.write_field(v.objs[*a], fields[*f], v.objs[*b]);
            }
            GStmt::ReadField(a, b, f) => {
                mb.read_field(v.objs[*a], v.objs[*b], fields[*f]);
            }
            GStmt::WriteGlobal(g, a) => {
                mb.write_global(globals[*g], v.objs[*a]);
            }
            GStmt::ReadGlobal(a, g) => {
                mb.read_global(v.objs[*a], globals[*g]);
            }
            GStmt::SetInt(i, c) => {
                mb.assign(v.ints[*i], i64::from(*c));
            }
            GStmt::Arith(d, s2, op, c) => {
                let op = match op % 3 {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    _ => BinOp::Mul,
                };
                mb.binop(v.ints[*d], op, v.ints[*s2], i64::from(*c));
            }
            GStmt::ArrRead(d, a, i) => {
                mb.read_array(v.objs[*d], v.arrs[*a], v.ints[*i]);
            }
            GStmt::ArrWrite(a, i, s2) => {
                mb.write_array(v.arrs[*a], v.ints[*i], v.objs[*s2]);
            }
            GStmt::Len(d, a) => {
                mb.array_len(v.ints[*d], v.arrs[*a]);
            }
            GStmt::Assume(op, a, c) => {
                mb.assume(Cond::cmp(cmp_of(*op), v.ints[*a], Operand::Int(i64::from(*c))));
            }
            GStmt::If(op, a, c, t, e) => {
                let cond = Cond::cmp(cmp_of(*op), v.ints[*a], Operand::Int(i64::from(*c)));
                mb.begin_block();
                emit(mb, v, t, fresh, fields, globals, cell);
                let tb = mb.end_block();
                mb.begin_block();
                emit(mb, v, e, fresh, fields, globals, cell);
                let eb = mb.end_block();
                mb.push_if(cond, tb, eb);
            }
            GStmt::While(op, a, c, b) => {
                let cond = Cond::cmp(cmp_of(*op), v.ints[*a], Operand::Int(i64::from(*c)));
                mb.begin_block();
                emit(mb, v, b, fresh, fields, globals, cell);
                let body = mb.end_block();
                mb.push_while(cond, body);
            }
            GStmt::Choice(l, r) => {
                mb.begin_block();
                emit(mb, v, l, fresh, fields, globals, cell);
                let lb = mb.end_block();
                mb.begin_block();
                emit(mb, v, r, fresh, fields, globals, cell);
                let rb = mb.end_block();
                mb.push_choice(lb, rb);
            }
        }
    }
}

fn build(stmts: &[GStmt]) -> tir::Program {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let cell = b.class("Cell", None);
    let fields: Vec<_> =
        (0..NFIELD).map(|i| b.field(cell, &format!("f{i}"), Ty::Ref(object))).collect();
    let globals: Vec<_> = (0..NGLOB).map(|i| b.global(&format!("G{i}"), Ty::Ref(object))).collect();
    let arr = b.array_class();
    let main = b.method(None, "main", &[], None, |mb| {
        let vars = Vars {
            objs: (0..NOBJ).map(|i| mb.var(&format!("o{i}"), Ty::Ref(cell))).collect(),
            arrs: (0..NARR).map(|i| mb.var(&format!("r{i}"), Ty::Ref(arr))).collect(),
            ints: (0..NINT).map(|i| mb.var(&format!("n{i}"), Ty::Int)).collect(),
        };
        let mut fresh = 0usize;
        emit(mb, &vars, stmts, &mut fresh, &fields, &globals, cell);
    });
    b.set_entry(main);
    b.finish()
}

/// `print(parse(print(p))) == print(p)` for random builder programs.
#[test]
fn print_parse_roundtrip() {
    run_cases(128, |rng| {
        let stmts = arb_stmts(rng, 2);
        let p1 = build(&stmts);
        let text1 = tir::print_program(&p1);
        let p2 = tir::parse(&text1).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text1}"));
        let text2 = tir::print_program(&p2);
        assert_eq!(&text1, &text2, "unstable roundtrip");
        // Structural invariants carried across.
        assert_eq!(p1.num_cmds(), p2.num_cmds());
        assert_eq!(p1.alloc_ids().count(), p2.alloc_ids().count());
        assert_eq!(p1.global_ids().count(), p2.global_ids().count());
    });
}

/// The points-to analysis gives identical graphs on both sides of the
/// round trip (names identify locations).
#[test]
fn pta_stable_under_roundtrip() {
    run_cases(128, |rng| {
        let stmts = arb_stmts(rng, 1);
        let p1 = build(&stmts);
        let text = tir::print_program(&p1);
        let p2 = tir::parse(&text).expect("re-parse");
        let r1 = pta::analyze(&p1, pta::ContextPolicy::Insensitive);
        let r2 = pta::analyze(&p2, pta::ContextPolicy::Insensitive);
        assert_eq!(r1.dump(&p1), r2.dump(&p2));
    });
}
