//! Integer-backed identifiers for every arena-allocated entity in a
//! [`Program`](crate::Program).
//!
//! All ids are plain `u32` newtypes that index into the owning program's
//! arenas. Ids are only meaningful relative to the [`Program`](crate::Program)
//! that created them.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw arena index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("arena index overflow"))
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "#{}", self.0)
            }
        }
    };
}

id_type! {
    /// Identifies a class declaration.
    ClassId
}
id_type! {
    /// Identifies an instance field declaration.
    FieldId
}
id_type! {
    /// Identifies a global variable (the encoding of a Java static field).
    GlobalId
}
id_type! {
    /// Identifies a method.
    MethodId
}
id_type! {
    /// Identifies a local variable or parameter. Scoped to its owning method
    /// but unique program-wide.
    VarId
}
id_type! {
    /// Identifies an allocation site (`new`/`newarray` command).
    AllocId
}
id_type! {
    /// Identifies an atomic command. Unique program-wide; used by analyses to
    /// name program points.
    CmdId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = ClassId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, ClassId(42));
    }

    #[test]
    fn debug_and_display() {
        let id = VarId(7);
        assert_eq!(format!("{id:?}"), "VarId(7)");
        assert_eq!(format!("{id}"), "#7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(FieldId(1) < FieldId(2));
    }

    #[test]
    #[should_panic(expected = "arena index overflow")]
    fn from_index_overflow_panics() {
        let _ = CmdId::from_index(u32::MAX as usize + 1);
    }
}
