//! A concrete interpreter for the IR.
//!
//! Used for differential testing of the static analyses (an analysis must
//! over-approximate every behaviour the interpreter can exhibit) and for
//! executing example programs. Non-determinism (`choice`, `loop`,
//! `assume *`) is resolved by a caller-provided [`Oracle`]; execution is
//! fuel-bounded so looping programs terminate.
//!
//! ```
//! use tir::interp::{Interp, Oracle};
//!
//! let program = tir::parse(r#"
//! class Box { field item: Object; }
//! global G: Box;
//! fn main() {
//!   var b: Box;
//!   var o: Object;
//!   b = new Box @box0;
//!   o = new Object @obj0;
//!   b.item = o;
//!   $G = b;
//! }
//! entry main;
//! "#)?;
//! let mut interp = Interp::new(&program, Oracle::always_first(), 10_000);
//! let trace = interp.run().expect("fuel suffices");
//! assert_eq!(trace.field_edges.len(), 1);
//! assert_eq!(trace.global_edges.len(), 1);
//! # Ok::<(), tir::ParseError>(())
//! ```

use std::collections::HashMap;

use crate::ids::{AllocId, CmdId, FieldId, GlobalId, MethodId, VarId};
use crate::program::{Program, Ty};
use crate::stmt::{BinOp, Callee, Command, Cond, Operand, Stmt};

/// A runtime value: null, an integer, or a heap object (by object id).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CVal {
    /// The null reference / default.
    Null,
    /// An integer.
    Int(i64),
    /// A heap object.
    Obj(usize),
}

/// Resolves the non-deterministic constructs.
#[derive(Clone, Debug)]
pub enum Oracle {
    /// Always take the first alternative; run `loop` bodies zero times;
    /// treat `assume *` as true.
    AlwaysFirst,
    /// Consume decisions from the list (bit per `choice`: false = left;
    /// for `loop`, the number of iterations is drawn from `loop_iters`).
    /// Falls back to [`Oracle::AlwaysFirst`] behaviour when exhausted.
    Scripted {
        /// Branch decisions for `choice` (true = right branch).
        choices: Vec<bool>,
        /// Iteration counts for non-deterministic `loop`s.
        loop_iters: Vec<u32>,
    },
}

impl Oracle {
    /// The deterministic default oracle.
    pub fn always_first() -> Oracle {
        Oracle::AlwaysFirst
    }

    /// A scripted oracle.
    pub fn scripted(choices: Vec<bool>, loop_iters: Vec<u32>) -> Oracle {
        Oracle::Scripted { choices, loop_iters }
    }

    fn next_choice(&mut self) -> bool {
        match self {
            Oracle::AlwaysFirst => false,
            Oracle::Scripted { choices, .. } => {
                if choices.is_empty() {
                    false
                } else {
                    choices.remove(0)
                }
            }
        }
    }

    fn next_loop_iters(&mut self) -> u32 {
        match self {
            Oracle::AlwaysFirst => 0,
            Oracle::Scripted { loop_iters, .. } => {
                if loop_iters.is_empty() {
                    0
                } else {
                    loop_iters.remove(0)
                }
            }
        }
    }
}

/// What a run produced: every heap/global edge created during execution, in
/// order, plus the final state.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// `(owner allocation site, field, value allocation site)` per field or
    /// array store of a non-null object.
    pub field_edges: Vec<(AllocId, FieldId, AllocId)>,
    /// `(global, value allocation site)` per global store of a non-null
    /// object.
    pub global_edges: Vec<(GlobalId, AllocId)>,
    /// Total objects allocated.
    pub allocations: usize,
    /// Commands executed.
    pub steps: u64,
}

/// Errors terminating a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The fuel budget ran out.
    OutOfFuel,
    /// A field/array access or virtual call on null (the IR has no
    /// exceptions; analyses treat these paths as unreachable, so the
    /// interpreter stops). Carries the id of the faulting command so
    /// differential oracles can assert *which* dereference fired.
    NullDereference(CmdId),
    /// A virtual call could not be resolved.
    NoSuchMethod(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::OutOfFuel => f.write_str("out of fuel"),
            InterpError::NullDereference(c) => write!(f, "null dereference at command {c}"),
            InterpError::NoSuchMethod(m) => write!(f, "no such method {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

struct Object {
    alloc: AllocId,
    class: crate::ids::ClassId,
    fields: HashMap<FieldId, CVal>,
    elements: Vec<CVal>,
}

/// The interpreter. One instance runs one program once.
pub struct Interp<'p> {
    program: &'p Program,
    oracle: Oracle,
    fuel: u64,
    heap: Vec<Object>,
    globals: HashMap<GlobalId, CVal>,
    trace: Trace,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with the given oracle and fuel budget.
    pub fn new(program: &'p Program, oracle: Oracle, fuel: u64) -> Self {
        Interp {
            program,
            oracle,
            fuel,
            heap: Vec::new(),
            globals: HashMap::new(),
            trace: Trace::default(),
        }
    }

    /// Runs the entry method to completion.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on fuel exhaustion, null dereference, or
    /// unresolvable dispatch. The partial trace up to the fault stays
    /// available through [`Interp::trace`] — everything it records did
    /// concretely happen.
    pub fn run(&mut self) -> Result<Trace, InterpError> {
        let entry = self.program.entry();
        let mut frame = Frame::new(self.program, entry);
        let body = self.program.method(entry).body.clone();
        self.exec_stmt(&body, &mut frame)?;
        Ok(std::mem::take(&mut self.trace))
    }

    /// The trace recorded so far (useful after a failed [`Interp::run`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn alloc(&mut self, alloc: AllocId, class: crate::ids::ClassId, len: usize) -> CVal {
        self.heap.push(Object {
            alloc,
            class,
            fields: HashMap::new(),
            elements: vec![CVal::Null; len],
        });
        self.trace.allocations += 1;
        CVal::Obj(self.heap.len() - 1)
    }

    fn exec_stmt(&mut self, s: &Stmt, frame: &mut Frame) -> Result<Flow, InterpError> {
        match s {
            Stmt::Seq(ss) => {
                for child in ss {
                    if let Flow::Return(v) = self.exec_stmt(child, frame)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::Skip => Ok(Flow::Continue),
            Stmt::If { cond, then_br, else_br } => {
                if self.eval_cond(cond, frame) {
                    self.exec_stmt(then_br, frame)
                } else {
                    self.exec_stmt(else_br, frame)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval_cond(cond, frame) {
                    self.spend(1)?;
                    if let Flow::Return(v) = self.exec_stmt(body, frame)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::Loop(body) => {
                let iters = self.oracle.next_loop_iters();
                for _ in 0..iters {
                    self.spend(1)?;
                    if let Flow::Return(v) = self.exec_stmt(body, frame)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::Choice(a, b) => {
                if self.oracle.next_choice() {
                    self.exec_stmt(b, frame)
                } else {
                    self.exec_stmt(a, frame)
                }
            }
            Stmt::Cmd(c) => self.exec_cmd(*c, frame),
        }
    }

    fn spend(&mut self, n: u64) -> Result<(), InterpError> {
        if self.fuel < n {
            return Err(InterpError::OutOfFuel);
        }
        self.fuel -= n;
        Ok(())
    }

    fn eval_operand(&self, o: &Operand, frame: &Frame) -> CVal {
        match o {
            Operand::Int(c) => CVal::Int(*c),
            Operand::Null => CVal::Null,
            Operand::Var(v) => frame.get(*v),
        }
    }

    fn eval_cond(&mut self, c: &Cond, frame: &Frame) -> bool {
        match c {
            Cond::True | Cond::Nondet => true,
            Cond::Cmp { op, lhs, rhs } => {
                let l = self.eval_operand(lhs, frame);
                let r = self.eval_operand(rhs, frame);
                match (l, r) {
                    (CVal::Int(a), CVal::Int(b)) => op.eval(a, b),
                    // Reference comparison: identity; null encodes as a
                    // distinguished value.
                    (a, b) => match op {
                        crate::stmt::CmpOp::Eq => a == b,
                        crate::stmt::CmpOp::Ne => a != b,
                        // Ordered comparison involving references/null:
                        // compare the integer views (null = 0).
                        _ => {
                            let as_int = |v: CVal| match v {
                                CVal::Int(i) => i,
                                CVal::Null => 0,
                                CVal::Obj(o) => o as i64 + 1,
                            };
                            op.eval(as_int(a), as_int(b))
                        }
                    },
                }
            }
        }
    }

    fn record_field_edge(&mut self, obj: usize, field: FieldId, val: CVal) {
        if let CVal::Obj(v) = val {
            let owner = self.heap[obj].alloc;
            let value = self.heap[v].alloc;
            self.trace.field_edges.push((owner, field, value));
        }
    }

    fn exec_cmd(&mut self, c: crate::ids::CmdId, frame: &mut Frame) -> Result<Flow, InterpError> {
        self.spend(1)?;
        self.trace.steps += 1;
        let program = self.program;
        match program.cmd(c).clone() {
            Command::Assign { dst, src } => {
                let v = self.eval_operand(&src, frame);
                frame.set(dst, v);
            }
            Command::BinOp { dst, op, lhs, rhs } => {
                let l = self.eval_operand(&lhs, frame);
                let r = self.eval_operand(&rhs, frame);
                let (CVal::Int(a), CVal::Int(b)) = (l, r) else {
                    frame.set(dst, CVal::Int(0));
                    return Ok(Flow::Continue);
                };
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                };
                frame.set(dst, CVal::Int(v));
            }
            Command::New { dst, class, alloc } => {
                let v = self.alloc(alloc, class, 0);
                frame.set(dst, v);
            }
            Command::NewArray { dst, alloc, len } => {
                let n = match self.eval_operand(&len, frame) {
                    CVal::Int(n) if n >= 0 => n as usize,
                    _ => 0,
                };
                let v = self.alloc(alloc, program.array_class, n.min(1_024));
                frame.set(dst, v);
            }
            Command::ReadField { dst, obj, field } => {
                let CVal::Obj(o) = frame.get(obj) else {
                    return Err(InterpError::NullDereference(c));
                };
                let v = self.heap[o].fields.get(&field).copied().unwrap_or(CVal::Null);
                frame.set(dst, v);
            }
            Command::WriteField { obj, field, src } => {
                let CVal::Obj(o) = frame.get(obj) else {
                    return Err(InterpError::NullDereference(c));
                };
                let v = self.eval_operand(&src, frame);
                self.heap[o].fields.insert(field, v);
                self.record_field_edge(o, field, v);
            }
            Command::ReadGlobal { dst, global } => {
                let v = self.globals.get(&global).copied().unwrap_or_else(|| {
                    if program.global(global).ty.is_ref() {
                        CVal::Null
                    } else {
                        CVal::Int(0)
                    }
                });
                frame.set(dst, v);
            }
            Command::WriteGlobal { global, src } => {
                let v = self.eval_operand(&src, frame);
                self.globals.insert(global, v);
                if let CVal::Obj(o) = v {
                    let value = self.heap[o].alloc;
                    self.trace.global_edges.push((global, value));
                }
            }
            Command::ReadArray { dst, arr, idx } => {
                let CVal::Obj(o) = frame.get(arr) else {
                    return Err(InterpError::NullDereference(c));
                };
                let i = match self.eval_operand(&idx, frame) {
                    CVal::Int(i) => i,
                    _ => 0,
                };
                let v = self.heap[o]
                    .elements
                    .get(usize::try_from(i).unwrap_or(usize::MAX))
                    .copied()
                    .unwrap_or(CVal::Null);
                frame.set(dst, v);
            }
            Command::WriteArray { arr, idx, src } => {
                let CVal::Obj(o) = frame.get(arr) else {
                    return Err(InterpError::NullDereference(c));
                };
                let v = self.eval_operand(&src, frame);
                let i = match self.eval_operand(&idx, frame) {
                    CVal::Int(i) if i >= 0 => i as usize,
                    _ => 0,
                };
                if i >= self.heap[o].elements.len() {
                    self.heap[o].elements.resize(i.min(4_096) + 1, CVal::Null);
                }
                self.heap[o].elements[i] = v;
                self.record_field_edge(o, program.contents_field, v);
            }
            Command::ArrayLen { dst, arr } => {
                let CVal::Obj(o) = frame.get(arr) else {
                    return Err(InterpError::NullDereference(c));
                };
                frame.set(dst, CVal::Int(self.heap[o].elements.len() as i64));
            }
            Command::Call { dst, callee, args } => {
                let (target, bound_args) = self.resolve_call(c, &callee, &args, frame)?;
                let ret = self.invoke(target, bound_args)?;
                if let Some(d) = dst {
                    frame.set(d, ret.unwrap_or(CVal::Null));
                }
            }
            Command::Return { val } => {
                let v = val.map(|o| self.eval_operand(&o, frame));
                return Ok(Flow::Return(v));
            }
            Command::Assume { cond } => {
                // Concretely, a failed assume means the path is infeasible;
                // the interpreter simply stops making progress on it by
                // returning (harmless for trace collection, which only ever
                // under-approximates).
                if !self.eval_cond(&cond, frame) {
                    return Ok(Flow::Return(None));
                }
            }
        }
        Ok(Flow::Continue)
    }

    fn resolve_call(
        &self,
        at: CmdId,
        callee: &Callee,
        args: &[Operand],
        frame: &Frame,
    ) -> Result<(MethodId, Vec<CVal>), InterpError> {
        match callee {
            Callee::Static { method } => {
                let vals: Vec<CVal> = args.iter().map(|a| self.eval_operand(a, frame)).collect();
                Ok((*method, vals))
            }
            Callee::Virtual { receiver, method } => {
                let recv = frame.get(*receiver);
                let CVal::Obj(o) = recv else { return Err(InterpError::NullDereference(at)) };
                let class = self.heap[o].class;
                let target = self
                    .program
                    .resolve_method(class, method)
                    .ok_or_else(|| InterpError::NoSuchMethod(method.clone()))?;
                let mut vals = vec![recv];
                vals.extend(args.iter().map(|a| self.eval_operand(a, frame)));
                Ok((target, vals))
            }
        }
    }

    fn invoke(&mut self, m: MethodId, args: Vec<CVal>) -> Result<Option<CVal>, InterpError> {
        self.spend(1)?;
        let mut frame = Frame::new(self.program, m);
        let params = self.program.method(m).params.clone();
        for (p, v) in params.iter().zip(args) {
            frame.set(*p, v);
        }
        let body = self.program.method(m).body.clone();
        match self.exec_stmt(&body, &mut frame)? {
            Flow::Return(v) => Ok(v),
            Flow::Continue => Ok(None),
        }
    }
}

enum Flow {
    Continue,
    Return(Option<CVal>),
}

struct Frame {
    vals: HashMap<VarId, CVal>,
}

impl Frame {
    fn new(program: &Program, m: MethodId) -> Frame {
        let mut vals = HashMap::new();
        for &v in &program.method(m).locals {
            let init = match program.var(v).ty {
                Ty::Int => CVal::Int(0),
                Ty::Ref(_) => CVal::Null,
            };
            vals.insert(v, init);
        }
        Frame { vals }
    }

    fn get(&self, v: VarId) -> CVal {
        self.vals.get(&v).copied().unwrap_or(CVal::Null)
    }

    fn set(&mut self, v: VarId, val: CVal) {
        self.vals.insert(v, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> Trace {
        let p = crate::parse(src).expect("parse");
        Interp::new(&p, Oracle::always_first(), 100_000).run().expect("run")
    }

    #[test]
    fn records_field_and_global_edges() {
        let t = run_src(
            r#"
class Box { field item: Object; }
global G: Box;
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  b.item = o;
  $G = b;
}
entry main;
"#,
        );
        assert_eq!(t.field_edges.len(), 1);
        assert_eq!(t.global_edges.len(), 1);
        assert_eq!(t.allocations, 2);
    }

    #[test]
    fn while_loops_run_concretely() {
        let t = run_src(
            r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var o: Object;
  var i: int;
  b = new Box @box0;
  o = new Object @obj0;
  i = 0;
  while (i < 3) {
    b.item = o;
    i = i + 1;
  }
}
entry main;
"#,
        );
        assert_eq!(t.field_edges.len(), 3);
    }

    #[test]
    fn virtual_dispatch_selects_dynamic_class() {
        let src = r#"
class A {
  method tag(this: A): int { return 1; }
}
class B extends A {
  method tag(this: B): int { return 2; }
}
global OUT: Object;
fn main() {
  var a: A;
  var t: int;
  var o: Object;
  a = new B @b0;
  t = call a.tag();
  if (t == 2) {
    o = new Object @picked;
    $OUT = o;
  }
}
entry main;
"#;
        let t = run_src(src);
        assert_eq!(t.global_edges.len(), 1, "dispatch must pick B::tag");
    }

    #[test]
    fn scripted_oracle_takes_right_branch() {
        let src = r#"
global G: Object;
fn main() {
  var o: Object;
  choice {
    o = new Object @left;
  } or {
    o = new Object @right;
  }
  $G = o;
}
entry main;
"#;
        let p = crate::parse(src).expect("parse");
        let t = Interp::new(&p, Oracle::scripted(vec![true], vec![]), 1000).run().expect("run");
        let (_, alloc) = t.global_edges[0];
        assert_eq!(p.alloc(alloc).name, "right");
    }

    #[test]
    fn fuel_exhaustion_reported() {
        let src = r#"
fn main() {
  var i: int;
  i = 0;
  while (i < 100) {
    i = i + 0;
  }
}
entry main;
"#;
        let p = crate::parse(src).expect("parse");
        let err = Interp::new(&p, Oracle::always_first(), 50).run().unwrap_err();
        assert_eq!(err, InterpError::OutOfFuel);
    }

    /// The first command of `p` satisfying `pred`, for pinning fault sites.
    fn find_cmd(p: &Program, pred: impl Fn(&Command) -> bool) -> CmdId {
        (0..p.num_cmds())
            .map(CmdId::from_index)
            .find(|&c| pred(p.cmd(c)))
            .expect("no matching command")
    }

    #[test]
    fn null_dereference_detected() {
        let src = r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var o: Object;
  o = b.item;
}
entry main;
"#;
        let p = crate::parse(src).expect("parse");
        let err = Interp::new(&p, Oracle::always_first(), 1000).run().unwrap_err();
        let read = find_cmd(&p, |c| matches!(c, Command::ReadField { .. }));
        assert_eq!(err, InterpError::NullDereference(read));
    }

    #[test]
    fn null_trap_names_scripted_site() {
        // Two dereference sites; the scripted oracle decides which one
        // fires. The trap must name the command that actually faulted.
        let src = r#"
class Box { field item: Object; }
fn main() {
  var b: Box;
  var o: Object;
  choice {
    b = new Box @box0;
  } or {
    b = null;
  }
  choice {
    o = b.item;
  } or {
    b.item = o;
  }
}
entry main;
"#;
        let p = crate::parse(src).expect("parse");
        let read = find_cmd(&p, |c| matches!(c, Command::ReadField { .. }));
        let write = find_cmd(&p, |c| matches!(c, Command::WriteField { .. }));

        // Null box, read site.
        let err =
            Interp::new(&p, Oracle::scripted(vec![true, false], vec![]), 1000).run().unwrap_err();
        assert_eq!(err, InterpError::NullDereference(read));
        // Null box, write site.
        let err =
            Interp::new(&p, Oracle::scripted(vec![true, true], vec![]), 1000).run().unwrap_err();
        assert_eq!(err, InterpError::NullDereference(write));
        // Allocated box: no fault on either site.
        for site in [false, true] {
            Interp::new(&p, Oracle::scripted(vec![false, site], vec![]), 1000)
                .run()
                .expect("allocated receiver never faults");
        }
    }

    #[test]
    fn null_trap_names_virtual_call_site() {
        let src = r#"
class A {
  method tag(this: A): int { return 1; }
}
fn main() {
  var a: A;
  var t: int;
  t = call a.tag();
}
entry main;
"#;
        let p = crate::parse(src).expect("parse");
        let call = find_cmd(&p, |c| matches!(c, Command::Call { .. }));
        let err = Interp::new(&p, Oracle::always_first(), 1000).run().unwrap_err();
        assert_eq!(err, InterpError::NullDereference(call));
    }

    #[test]
    fn null_trap_partial_trace_survives() {
        // Everything recorded before the fault stays observable.
        let src = r#"
class Box { field item: Object; }
global G: Box;
fn main() {
  var b: Box;
  var n: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  b.item = o;
  $G = b;
  n.item = o;
}
entry main;
"#;
        let p = crate::parse(src).expect("parse");
        let mut interp = Interp::new(&p, Oracle::always_first(), 1000);
        let err = interp.run().unwrap_err();
        assert!(matches!(err, InterpError::NullDereference(_)));
        assert_eq!(interp.trace().field_edges.len(), 1);
        assert_eq!(interp.trace().global_edges.len(), 1);
    }

    #[test]
    fn arrays_grow_and_report_len() {
        let t = run_src(
            r#"
fn main() {
  var a: array;
  var o: Object;
  var n: int;
  a = newarray @arr0 [2];
  o = new Object @obj0;
  a[1] = o;
  n = len(a);
  if (n == 2) {
    a[0] = o;
  }
}
entry main;
"#,
        );
        assert_eq!(t.field_edges.len(), 2);
    }
}
