//! Statements, commands, operands, and conditions of the IR.
//!
//! The statement language mirrors the formal language of the Thresher paper
//! (§3): atomic commands plus sequencing, (non-)deterministic branching, and
//! looping. `if`/`while` keep their guards structurally (rather than being
//! pre-lowered to `assume`) so the backwards analysis can decide per-query
//! whether a guard is relevant.

use crate::ids::{AllocId, ClassId, CmdId, FieldId, GlobalId, MethodId, VarId};

/// A value operand: a local variable, an integer literal, or `null`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A local variable or parameter.
    Var(VarId),
    /// An integer constant (booleans are encoded as 0/1).
    Int(i64),
    /// The null reference.
    Null,
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Int(v)
    }
}

/// Comparison operators usable in conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator describing the negation of `self` (e.g. `<` ↦ `>=`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with its arguments swapped (e.g. `<` ↦ `>`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluates the comparison on two concrete integers.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// Symbol for pretty-printing.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Integer binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

impl BinOp {
    /// Symbol for pretty-printing.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
        }
    }
}

/// A branch/loop condition.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Always true (used for `loop` desugaring and trivial guards).
    True,
    /// Non-deterministic choice; neither branch carries a constraint.
    Nondet,
    /// A comparison between two operands.
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
}

impl Cond {
    /// Convenience constructor for a comparison condition.
    pub fn cmp(op: CmpOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Cond {
        Cond::Cmp { op, lhs: lhs.into(), rhs: rhs.into() }
    }

    /// The negation of this condition. `Nondet` negates to itself.
    pub fn negate(&self) -> Cond {
        match self {
            Cond::True => Cond::Cmp { op: CmpOp::Ne, lhs: Operand::Int(0), rhs: Operand::Int(0) },
            Cond::Nondet => Cond::Nondet,
            Cond::Cmp { op, lhs, rhs } => Cond::Cmp { op: op.negate(), lhs: *lhs, rhs: *rhs },
        }
    }

    /// Variables read by this condition.
    pub fn vars(&self) -> Vec<VarId> {
        match self {
            Cond::True | Cond::Nondet => Vec::new(),
            Cond::Cmp { lhs, rhs, .. } => {
                let mut out = Vec::new();
                if let Operand::Var(v) = lhs {
                    out.push(*v);
                }
                if let Operand::Var(v) = rhs {
                    out.push(*v);
                }
                out
            }
        }
    }
}

/// The callee of a [`Command::Call`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// Virtual dispatch on the dynamic class of `receiver`.
    Virtual {
        /// Receiver variable; bound to the callee's `this` parameter.
        receiver: VarId,
        /// Simple method name resolved against the receiver's class chain.
        method: String,
    },
    /// A direct call to a known method (static methods, constructors).
    Static {
        /// The callee.
        method: MethodId,
    },
}

/// An atomic command.
///
/// Commands are stored in the program-wide command arena; statements refer to
/// them by [`CmdId`], which doubles as the program-point name used by
/// analyses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `dst = src`
    Assign {
        /// Destination local.
        dst: VarId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = lhs op rhs` (integer arithmetic)
    BinOp {
        /// Destination local.
        dst: VarId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = obj.field`
    ReadField {
        /// Destination local.
        dst: VarId,
        /// Base object.
        obj: VarId,
        /// Field read.
        field: FieldId,
    },
    /// `obj.field = src`
    WriteField {
        /// Base object.
        obj: VarId,
        /// Field written.
        field: FieldId,
        /// Stored value.
        src: Operand,
    },
    /// `dst = $global`
    ReadGlobal {
        /// Destination local.
        dst: VarId,
        /// Global read.
        global: GlobalId,
    },
    /// `$global = src`
    WriteGlobal {
        /// Global written.
        global: GlobalId,
        /// Stored value.
        src: Operand,
    },
    /// `dst = arr[idx]`
    ReadArray {
        /// Destination local.
        dst: VarId,
        /// Array object.
        arr: VarId,
        /// Index operand.
        idx: Operand,
    },
    /// `arr[idx] = src`
    WriteArray {
        /// Array object.
        arr: VarId,
        /// Index operand.
        idx: Operand,
        /// Stored value.
        src: Operand,
    },
    /// `dst = len(arr)`
    ArrayLen {
        /// Destination local.
        dst: VarId,
        /// Array object.
        arr: VarId,
    },
    /// `dst = new C @site`
    New {
        /// Destination local.
        dst: VarId,
        /// Allocated class.
        class: ClassId,
        /// Allocation site.
        alloc: AllocId,
    },
    /// `dst = newarray @site [len]`
    NewArray {
        /// Destination local.
        dst: VarId,
        /// Allocation site.
        alloc: AllocId,
        /// Array length.
        len: Operand,
    },
    /// `dst = call callee(args)` — `dst` optional.
    Call {
        /// Destination local for the return value, if any.
        dst: Option<VarId>,
        /// Call target.
        callee: Callee,
        /// Actual arguments (excluding the receiver for virtual calls).
        args: Vec<Operand>,
    },
    /// `return val` — must be the final command of a method body.
    Return {
        /// Returned value, if any.
        val: Option<Operand>,
    },
    /// `assume cond` — prunes executions where `cond` is false.
    Assume {
        /// The assumed condition.
        cond: Cond,
    },
}

impl Command {
    /// The local variable defined (written) by this command, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Command::Assign { dst, .. }
            | Command::BinOp { dst, .. }
            | Command::ReadField { dst, .. }
            | Command::ReadGlobal { dst, .. }
            | Command::ReadArray { dst, .. }
            | Command::ArrayLen { dst, .. }
            | Command::New { dst, .. }
            | Command::NewArray { dst, .. } => Some(*dst),
            Command::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// The local variables read by this command.
    pub fn uses(&self) -> Vec<VarId> {
        fn op(out: &mut Vec<VarId>, o: &Operand) {
            if let Operand::Var(v) = o {
                out.push(*v);
            }
        }
        let mut out = Vec::new();
        match self {
            Command::Assign { src, .. } => op(&mut out, src),
            Command::BinOp { lhs, rhs, .. } => {
                op(&mut out, lhs);
                op(&mut out, rhs);
            }
            Command::ReadField { obj, .. } => out.push(*obj),
            Command::WriteField { obj, src, .. } => {
                out.push(*obj);
                op(&mut out, src);
            }
            Command::ReadGlobal { .. } => {}
            Command::WriteGlobal { src, .. } => op(&mut out, src),
            Command::ReadArray { arr, idx, .. } => {
                out.push(*arr);
                op(&mut out, idx);
            }
            Command::WriteArray { arr, idx, src } => {
                out.push(*arr);
                op(&mut out, idx);
                op(&mut out, src);
            }
            Command::ArrayLen { arr, .. } => out.push(*arr),
            Command::New { .. } => {}
            Command::NewArray { len, .. } => op(&mut out, len),
            Command::Call { callee, args, .. } => {
                if let Callee::Virtual { receiver, .. } = callee {
                    out.push(*receiver);
                }
                for a in args {
                    op(&mut out, a);
                }
            }
            Command::Return { val } => {
                if let Some(v) = val {
                    op(&mut out, v);
                }
            }
            Command::Assume { cond } => out.extend(cond.vars()),
        }
        out
    }
}

/// A structured statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// Deterministic branch on `cond`.
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken when `cond` holds.
        then_br: Box<Stmt>,
        /// Taken when `cond` fails.
        else_br: Box<Stmt>,
    },
    /// Loop while `cond` holds.
    While {
        /// Loop guard.
        cond: Cond,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// Non-deterministic loop: execute the body zero or more times.
    Loop(Box<Stmt>),
    /// Non-deterministic branch.
    Choice(Box<Stmt>, Box<Stmt>),
    /// No-op.
    Skip,
    /// An atomic command, by reference into the program command arena.
    Cmd(CmdId),
}

impl Stmt {
    /// Iterates over every command id in this statement tree, in program
    /// order, invoking `f` on each.
    pub fn for_each_cmd(&self, f: &mut impl FnMut(CmdId)) {
        match self {
            Stmt::Seq(ss) => {
                for s in ss {
                    s.for_each_cmd(f);
                }
            }
            Stmt::If { then_br, else_br, .. } => {
                then_br.for_each_cmd(f);
                else_br.for_each_cmd(f);
            }
            Stmt::While { body, .. } | Stmt::Loop(body) => body.for_each_cmd(f),
            Stmt::Choice(a, b) => {
                a.for_each_cmd(f);
                b.for_each_cmd(f);
            }
            Stmt::Skip => {}
            Stmt::Cmd(c) => f(*c),
        }
    }

    /// Finds the tree path (sequence of child indices) leading to `target`.
    ///
    /// Child indices: `Seq` children are numbered positionally; `If` and
    /// `Choice` use 0 for then/left and 1 for else/right; `While`/`Loop`
    /// bodies are child 0.
    pub fn path_to(&self, target: CmdId) -> Option<Vec<usize>> {
        fn go(s: &Stmt, target: CmdId, path: &mut Vec<usize>) -> bool {
            match s {
                Stmt::Seq(ss) => {
                    for (i, child) in ss.iter().enumerate() {
                        path.push(i);
                        if go(child, target, path) {
                            return true;
                        }
                        path.pop();
                    }
                    false
                }
                Stmt::If { then_br, else_br, .. } => {
                    path.push(0);
                    if go(then_br, target, path) {
                        return true;
                    }
                    path.pop();
                    path.push(1);
                    if go(else_br, target, path) {
                        return true;
                    }
                    path.pop();
                    false
                }
                Stmt::While { body, .. } | Stmt::Loop(body) => {
                    path.push(0);
                    if go(body, target, path) {
                        return true;
                    }
                    path.pop();
                    false
                }
                Stmt::Choice(a, b) => {
                    path.push(0);
                    if go(a, target, path) {
                        return true;
                    }
                    path.pop();
                    path.push(1);
                    if go(b, target, path) {
                        return true;
                    }
                    path.pop();
                    false
                }
                Stmt::Skip => false,
                Stmt::Cmd(c) => *c == target,
            }
        }
        let mut path = Vec::new();
        if go(self, target, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    /// The child statement at index `i` (see [`Stmt::path_to`] numbering).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for this node kind.
    pub fn child(&self, i: usize) -> &Stmt {
        match self {
            Stmt::Seq(ss) => &ss[i],
            Stmt::If { then_br, else_br, .. } => match i {
                0 => then_br,
                1 => else_br,
                _ => panic!("if has two children, asked for {i}"),
            },
            Stmt::While { body, .. } | Stmt::Loop(body) => {
                assert_eq!(i, 0, "loop has one child");
                body
            }
            Stmt::Choice(a, b) => match i {
                0 => a,
                1 => b,
                _ => panic!("choice has two children, asked for {i}"),
            },
            Stmt::Skip | Stmt::Cmd(_) => panic!("leaf statement has no children"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negate_roundtrip() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negate().negate(), op);
            // negation must invert evaluation on all sample pairs
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-3, 3)] {
                assert_ne!(op.eval(a, b), op.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn cmp_flip_matches_swapped_eval() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-3, 3)] {
                assert_eq!(op.eval(a, b), op.flip().eval(b, a));
            }
        }
    }

    #[test]
    fn cond_vars_collects_operands() {
        let c = Cond::cmp(CmpOp::Lt, VarId(1), VarId(2));
        assert_eq!(c.vars(), vec![VarId(1), VarId(2)]);
        let c = Cond::cmp(CmpOp::Eq, VarId(3), Operand::Null);
        assert_eq!(c.vars(), vec![VarId(3)]);
        assert!(Cond::Nondet.vars().is_empty());
    }

    #[test]
    fn command_def_and_uses() {
        let c =
            Command::WriteField { obj: VarId(0), field: FieldId(0), src: Operand::Var(VarId(1)) };
        assert_eq!(c.def(), None);
        assert_eq!(c.uses(), vec![VarId(0), VarId(1)]);

        let c = Command::ReadField { dst: VarId(2), obj: VarId(0), field: FieldId(0) };
        assert_eq!(c.def(), Some(VarId(2)));
        assert_eq!(c.uses(), vec![VarId(0)]);
    }

    #[test]
    fn path_to_finds_nested_command() {
        let s = Stmt::Seq(vec![
            Stmt::Cmd(CmdId(0)),
            Stmt::If {
                cond: Cond::Nondet,
                then_br: Box::new(Stmt::Cmd(CmdId(1))),
                else_br: Box::new(Stmt::Seq(vec![Stmt::Skip, Stmt::Cmd(CmdId(2))])),
            },
        ]);
        assert_eq!(s.path_to(CmdId(0)), Some(vec![0]));
        assert_eq!(s.path_to(CmdId(1)), Some(vec![1, 0]));
        assert_eq!(s.path_to(CmdId(2)), Some(vec![1, 1, 1]));
        assert_eq!(s.path_to(CmdId(9)), None);
    }

    #[test]
    fn for_each_cmd_visits_in_order() {
        let s = Stmt::Seq(vec![
            Stmt::Cmd(CmdId(3)),
            Stmt::While { cond: Cond::True, body: Box::new(Stmt::Cmd(CmdId(4))) },
        ]);
        let mut seen = Vec::new();
        s.for_each_cmd(&mut |c| seen.push(c));
        assert_eq!(seen, vec![CmdId(3), CmdId(4)]);
    }
}
