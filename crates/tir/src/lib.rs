//! # tir — the Thresher intermediate representation
//!
//! A small Java-like object-oriented language serving as the analysis
//! substrate for the Thresher reproduction. It mirrors the formal language
//! of the paper (§3): classes with instance fields, methods with virtual
//! dispatch, globals (Java static fields), structured statements (`seq`,
//! `if`, `while`, non-deterministic `choice`/`loop`), and atomic commands
//! (assignment, field/array/global reads and writes, allocation, calls,
//! `assume`, `return`).
//!
//! Programs are built either programmatically via [`ProgramBuilder`]:
//!
//! ```
//! use tir::{ProgramBuilder, Ty};
//!
//! let mut b = ProgramBuilder::new();
//! let cell = b.class("Cell", None);
//! let main = b.method(None, "main", &[], None, |mb| {
//!     let c = mb.var("c", Ty::Ref(cell));
//!     mb.new_obj(c, cell, "cell0");
//!     mb.ret_void();
//! });
//! b.set_entry(main);
//! let program = b.finish();
//! assert_eq!(program.num_cmds(), 2);
//! ```
//!
//! or from the textual syntax via [`parse`]:
//!
//! ```
//! let program = tir::parse(r#"
//! fn main() {
//!   var x: Object;
//!   x = new Object @o0;
//! }
//! entry main;
//! "#)?;
//! assert_eq!(program.alloc_ids().count(), 1);
//! # Ok::<(), tir::ParseError>(())
//! ```
//!
//! The pretty-printer [`print_program`] emits the same syntax, and
//! round-trips through [`parse`].

#![warn(missing_docs)]

mod builder;
pub mod edit;
mod ids;
pub mod interp;
mod parser;
mod printer;
mod program;
mod stmt;
pub mod validate;

pub use builder::{MethodBuilder, ProgramBuilder};
pub use edit::{apply_edits, AppliedEdit, EditError, EditOp};
pub use ids::{AllocId, ClassId, CmdId, FieldId, GlobalId, MethodId, VarId};
pub use parser::{parse, ParseError};
pub use printer::{print_cmd, print_method_text, print_program};
pub use program::{AllocSite, Class, Field, Global, Method, Program, Ty, VarInfo};
pub use stmt::{BinOp, Callee, CmpOp, Command, Cond, Operand, Stmt};
