//! The program container: arenas for classes, fields, globals, methods,
//! variables, allocation sites, and commands.

use std::collections::HashMap;

use crate::ids::{AllocId, ClassId, CmdId, FieldId, GlobalId, MethodId, VarId};
use crate::stmt::{Command, Stmt};

/// A value type: integers or references to a class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Machine integer (also used for booleans).
    Int,
    /// Reference to an instance of `ClassId` (or a subclass), or null.
    Ref(ClassId),
}

impl Ty {
    /// True if this is a reference type.
    pub fn is_ref(self) -> bool {
        matches!(self, Ty::Ref(_))
    }
}

/// A class declaration.
#[derive(Clone, Debug)]
pub struct Class {
    /// Class name, unique program-wide.
    pub name: String,
    /// Direct superclass; `None` only for the root `Object` class.
    pub superclass: Option<ClassId>,
    /// Fields declared directly on this class.
    pub fields: Vec<FieldId>,
    /// Methods declared directly on this class.
    pub methods: Vec<MethodId>,
}

/// An instance field declaration.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name (unique within its class chain).
    pub name: String,
    /// Declaring class.
    pub owner: ClassId,
    /// Value type.
    pub ty: Ty,
}

/// A global variable — the encoding of a Java static field.
#[derive(Clone, Debug)]
pub struct Global {
    /// Global name, unique program-wide (conventionally `Class.field`).
    pub name: String,
    /// Value type.
    pub ty: Ty,
}

/// A method declaration with its body.
#[derive(Clone, Debug)]
pub struct Method {
    /// Simple method name (virtual dispatch key within a class chain).
    pub name: String,
    /// Declaring class; `None` for free (static) functions.
    pub class: Option<ClassId>,
    /// Parameters in order. For instance methods, `params[0]` is `this`.
    pub params: Vec<VarId>,
    /// All locals, including parameters.
    pub locals: Vec<VarId>,
    /// Return type, if the method returns a value.
    pub ret_ty: Option<Ty>,
    /// The method body. [`Command::Return`] may appear only as the final
    /// command of the body (enforced by [`crate::validate`]).
    pub body: Stmt,
    /// True if the method was deleted by a program edit. Removed methods
    /// stay in the arena (ids remain stable) but are invisible to name
    /// lookup, printing, and validation, and may not be called.
    pub removed: bool,
}

/// A local variable or parameter.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Owning method.
    pub method: MethodId,
}

/// An allocation site.
#[derive(Clone, Debug)]
pub struct AllocSite {
    /// Site name used in diagnostics and points-to graphs (e.g. `vec0`).
    pub name: String,
    /// Allocated class ([`Program::array_class`] for arrays).
    pub class: ClassId,
    /// Method containing the allocation.
    pub method: MethodId,
}

/// A whole program: class hierarchy, globals, methods, and an entry point.
///
/// Programs are constructed via [`crate::ProgramBuilder`] or parsed from the
/// textual syntax by [`crate::parse`], and are immutable afterwards.
#[derive(Clone, Debug)]
pub struct Program {
    pub(crate) classes: Vec<Class>,
    pub(crate) fields: Vec<Field>,
    pub(crate) globals: Vec<Global>,
    pub(crate) methods: Vec<Method>,
    pub(crate) vars: Vec<VarInfo>,
    pub(crate) allocs: Vec<AllocSite>,
    pub(crate) cmds: Vec<Command>,
    pub(crate) cmd_method: Vec<MethodId>,
    pub(crate) entry: Option<MethodId>,
    /// The root class every class derives from.
    pub object_class: ClassId,
    /// The builtin class used for all arrays.
    pub array_class: ClassId,
    /// The synthetic `contents` field modelling all array elements.
    pub contents_field: FieldId,
    /// The synthetic integer `len` field of arrays.
    pub len_field: FieldId,
}

impl Program {
    /// The program entry method (the harness `main`).
    ///
    /// # Panics
    ///
    /// Panics if no entry was set.
    pub fn entry(&self) -> MethodId {
        self.entry.expect("program has no entry method")
    }

    /// Entry method if one was declared.
    pub fn entry_opt(&self) -> Option<MethodId> {
        self.entry
    }

    /// Looks up a class by id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks up a field by id.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Looks up a global by id.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Looks up a method by id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Looks up a variable by id.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// Looks up an allocation site by id.
    pub fn alloc(&self, id: AllocId) -> &AllocSite {
        &self.allocs[id.index()]
    }

    /// Looks up a command by id.
    pub fn cmd(&self, id: CmdId) -> &Command {
        &self.cmds[id.index()]
    }

    /// The method containing command `id`.
    pub fn cmd_method(&self, id: CmdId) -> MethodId {
        self.cmd_method[id.index()]
    }

    /// Number of commands in the program (a proxy for program size,
    /// reported as "bytecodes" in benchmark tables).
    pub fn num_cmds(&self) -> usize {
        self.cmds.len()
    }

    /// Iterates over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len()).map(ClassId::from_index)
    }

    /// Iterates over all method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> {
        (0..self.methods.len()).map(MethodId::from_index)
    }

    /// Iterates over all global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> {
        (0..self.globals.len()).map(GlobalId::from_index)
    }

    /// Iterates over all allocation-site ids.
    pub fn alloc_ids(&self) -> impl Iterator<Item = AllocId> {
        (0..self.allocs.len()).map(AllocId::from_index)
    }

    /// Iterates over all field ids.
    pub fn field_ids(&self) -> impl Iterator<Item = FieldId> {
        (0..self.fields.len()).map(FieldId::from_index)
    }

    /// Finds a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes.iter().position(|c| c.name == name).map(ClassId::from_index)
    }

    /// Finds a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(GlobalId::from_index)
    }

    /// Finds the method named `name` declared directly on `class`.
    pub fn method_on(&self, class: ClassId, name: &str) -> Option<MethodId> {
        self.class(class)
            .methods
            .iter()
            .copied()
            .find(|&m| !self.method(m).removed && self.method(m).name == name)
    }

    /// Finds a free function by name.
    pub fn free_function(&self, name: &str) -> Option<MethodId> {
        self.method_ids().find(|&m| {
            let method = self.method(m);
            method.class.is_none() && !method.removed && method.name == name
        })
    }

    /// Resolves a virtual call `name` on dynamic class `class` by walking the
    /// superclass chain.
    pub fn resolve_method(&self, class: ClassId, name: &str) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(m) = self.method_on(c, name) {
                return Some(m);
            }
            cur = self.class(c).superclass;
        }
        None
    }

    /// Resolves a field named `name` visible on `class` (walking the chain).
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            for &f in &self.class(c).fields {
                if self.field(f).name == name {
                    return Some(f);
                }
            }
            cur = self.class(c).superclass;
        }
        None
    }

    /// True if `sub` equals `sup` or transitively derives from it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).superclass;
        }
        false
    }

    /// All classes (transitively) deriving from `base`, including `base`.
    pub fn subclasses(&self, base: ClassId) -> Vec<ClassId> {
        self.class_ids().filter(|&c| self.is_subclass(c, base)).collect()
    }

    /// All fields visible on `class`, including inherited ones.
    pub fn all_fields(&self, class: ClassId) -> Vec<FieldId> {
        let mut out = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            out.extend(self.class(c).fields.iter().copied());
            cur = self.class(c).superclass;
        }
        out
    }

    /// A human-readable name for a command, used in diagnostics.
    pub fn describe_cmd(&self, id: CmdId) -> String {
        let m = self.cmd_method(id);
        format!("{}:{}", self.method_name(m), id.0)
    }

    /// Qualified method name (`Class.name` or plain `name`).
    pub fn method_name(&self, id: MethodId) -> String {
        let m = self.method(id);
        match m.class {
            Some(c) => format!("{}.{}", self.class(c).name, m.name),
            None => m.name.clone(),
        }
    }

    /// Commands of a method body in program order.
    pub fn method_cmds(&self, id: MethodId) -> Vec<CmdId> {
        let mut out = Vec::new();
        self.method(id).body.for_each_cmd(&mut |c| out.push(c));
        out
    }

    /// Builds a map from simple method name to all methods with that name
    /// (used by dispatch diagnostics).
    pub fn methods_by_name(&self) -> HashMap<&str, Vec<MethodId>> {
        let mut out: HashMap<&str, Vec<MethodId>> = HashMap::new();
        for id in self.method_ids() {
            if self.method(id).removed {
                continue;
            }
            out.entry(self.method(id).name.as_str()).or_default().push(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::program::Ty;

    #[test]
    fn class_hierarchy_queries() {
        let mut b = ProgramBuilder::new();
        let animal = b.class("Animal", None);
        let dog = b.class("Dog", Some(animal));
        let pug = b.class("Pug", Some(dog));
        let f = b.field(animal, "tag", Ty::Int);
        let p = b.finish();

        assert!(p.is_subclass(pug, animal));
        assert!(p.is_subclass(dog, dog));
        assert!(!p.is_subclass(animal, dog));
        assert_eq!(p.resolve_field(pug, "tag"), Some(f));
        assert_eq!(p.resolve_field(animal, "nope"), None);

        let subs = p.subclasses(dog);
        assert!(subs.contains(&dog) && subs.contains(&pug) && !subs.contains(&animal));
    }

    #[test]
    fn method_resolution_walks_chain() {
        let mut b = ProgramBuilder::new();
        let base = b.class("Base", None);
        let derived = b.class("Derived", Some(base));
        let m_base = b.method(Some(base), "go", &[], None, |mb| {
            mb.ret_void();
        });
        let m_derived = b.method(Some(derived), "go", &[], None, |mb| {
            mb.ret_void();
        });
        let p = b.finish();

        assert_eq!(p.resolve_method(base, "go"), Some(m_base));
        assert_eq!(p.resolve_method(derived, "go"), Some(m_derived));
        assert_eq!(p.resolve_method(derived, "stop"), None);
    }

    #[test]
    fn array_builtins_exist() {
        let b = ProgramBuilder::new();
        let p = b.finish();
        assert_eq!(p.class(p.array_class).name, "Array");
        assert_eq!(p.field(p.contents_field).name, "contents");
        assert_eq!(p.field(p.len_field).ty, Ty::Int);
        assert!(p.is_subclass(p.array_class, p.object_class));
    }
}
