//! Pretty-printer emitting the textual syntax accepted by [`crate::parse`].

use std::fmt::Write as _;

use crate::ids::{ClassId, MethodId};
use crate::program::{Program, Ty};
use crate::stmt::{Callee, Command, Cond, Operand, Stmt};

/// Renders `program` in the textual IR syntax. The output round-trips
/// through [`crate::parse`].
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for c in program.class_ids() {
        if c == program.object_class || c == program.array_class {
            continue;
        }
        print_class(program, c, &mut out);
    }
    for g in program.global_ids() {
        let global = program.global(g);
        let _ = writeln!(out, "global {}: {};", global.name, ty_name(program, global.ty));
    }
    for m in program.method_ids() {
        let method = program.method(m);
        if method.class.is_none() && !method.removed {
            print_method(program, m, 0, &mut out);
        }
    }
    if let Some(e) = program.entry_opt() {
        let _ = writeln!(out, "entry {};", program.method(e).name);
    }
    out
}

fn ty_name(program: &Program, ty: Ty) -> String {
    match ty {
        Ty::Int => "int".to_owned(),
        Ty::Ref(c) if c == program.array_class => "array".to_owned(),
        Ty::Ref(c) => program.class(c).name.clone(),
    }
}

fn print_class(program: &Program, c: ClassId, out: &mut String) {
    let class = program.class(c);
    let sup = class.superclass.expect("non-root class");
    if sup == program.object_class {
        let _ = writeln!(out, "class {} {{", class.name);
    } else {
        let _ = writeln!(out, "class {} extends {} {{", class.name, program.class(sup).name);
    }
    for &f in &class.fields {
        let field = program.field(f);
        let _ = writeln!(out, "  field {}: {};", field.name, ty_name(program, field.ty));
    }
    for &m in &class.methods {
        print_method(program, m, 2, out);
    }
    let _ = writeln!(out, "}}");
}

/// Renders one method — signature and body — in the textual IR syntax.
/// The rendering is canonical (independent of numeric ids), which makes
/// it a stable content key for caches that must survive print/parse
/// round trips and edits to unrelated methods.
pub fn print_method_text(program: &Program, m: MethodId) -> String {
    let mut out = String::new();
    print_method(program, m, 0, &mut out);
    out
}

fn print_method(program: &Program, m: MethodId, indent: usize, out: &mut String) {
    let method = program.method(m);
    let pad = " ".repeat(indent);
    let kw = if method.class.is_some() { "method" } else { "fn" };
    let params: Vec<String> = method
        .params
        .iter()
        .map(|&p| format!("{}: {}", program.var(p).name, ty_name(program, program.var(p).ty)))
        .collect();
    let ret = match method.ret_ty {
        Some(t) => format!(": {}", ty_name(program, t)),
        None => String::new(),
    };
    let _ = writeln!(out, "{pad}{kw} {}({}){ret} {{", method.name, params.join(", "));
    // Declare non-parameter locals up front.
    for &v in &method.locals {
        if !method.params.contains(&v) {
            let var = program.var(v);
            let _ = writeln!(out, "{pad}  var {}: {};", var.name, ty_name(program, var.ty));
        }
    }
    print_stmt(program, &method.body, indent + 2, out);
    let _ = writeln!(out, "{pad}}}");
}

fn operand(program: &Program, o: Operand) -> String {
    match o {
        Operand::Var(v) => program.var(v).name.clone(),
        Operand::Int(i) => i.to_string(),
        Operand::Null => "null".to_owned(),
    }
}

fn cond(program: &Program, c: &Cond) -> String {
    match c {
        Cond::True => "true".to_owned(),
        Cond::Nondet => "*".to_owned(),
        Cond::Cmp { op, lhs, rhs } => {
            format!("{} {} {}", operand(program, *lhs), op.symbol(), operand(program, *rhs))
        }
    }
}

fn print_stmt(program: &Program, s: &Stmt, indent: usize, out: &mut String) {
    let pad = " ".repeat(indent);
    match s {
        Stmt::Seq(ss) => {
            for child in ss {
                print_stmt(program, child, indent, out);
            }
        }
        Stmt::If { cond: c, then_br, else_br } => {
            let _ = writeln!(out, "{pad}if ({}) {{", cond(program, c));
            print_stmt(program, then_br, indent + 2, out);
            if matches!(**else_br, Stmt::Seq(ref v) if v.is_empty())
                || matches!(**else_br, Stmt::Skip)
            {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                print_stmt(program, else_br, indent + 2, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While { cond: c, body } => {
            let _ = writeln!(out, "{pad}while ({}) {{", cond(program, c));
            print_stmt(program, body, indent + 2, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Loop(body) => {
            let _ = writeln!(out, "{pad}loop {{");
            print_stmt(program, body, indent + 2, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Choice(a, b) => {
            let _ = writeln!(out, "{pad}choice {{");
            print_stmt(program, a, indent + 2, out);
            let _ = writeln!(out, "{pad}}} or {{");
            print_stmt(program, b, indent + 2, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Skip => {}
        Stmt::Cmd(c) => {
            let _ = writeln!(out, "{pad}{};", print_cmd(program, program.cmd(*c)));
        }
    }
}

/// Renders a single command (without the trailing semicolon).
pub fn print_cmd(program: &Program, cmd: &Command) -> String {
    match cmd {
        Command::Assign { dst, src } => {
            format!("{} = {}", program.var(*dst).name, operand(program, *src))
        }
        Command::BinOp { dst, op, lhs, rhs } => format!(
            "{} = {} {} {}",
            program.var(*dst).name,
            operand(program, *lhs),
            op.symbol(),
            operand(program, *rhs)
        ),
        Command::ReadField { dst, obj, field } => format!(
            "{} = {}.{}",
            program.var(*dst).name,
            program.var(*obj).name,
            program.field(*field).name
        ),
        Command::WriteField { obj, field, src } => format!(
            "{}.{} = {}",
            program.var(*obj).name,
            program.field(*field).name,
            operand(program, *src)
        ),
        Command::ReadGlobal { dst, global } => {
            format!("{} = ${}", program.var(*dst).name, program.global(*global).name)
        }
        Command::WriteGlobal { global, src } => {
            format!("${} = {}", program.global(*global).name, operand(program, *src))
        }
        Command::ReadArray { dst, arr, idx } => format!(
            "{} = {}[{}]",
            program.var(*dst).name,
            program.var(*arr).name,
            operand(program, *idx)
        ),
        Command::WriteArray { arr, idx, src } => format!(
            "{}[{}] = {}",
            program.var(*arr).name,
            operand(program, *idx),
            operand(program, *src)
        ),
        Command::ArrayLen { dst, arr } => {
            format!("{} = len({})", program.var(*dst).name, program.var(*arr).name)
        }
        Command::New { dst, class, alloc } => format!(
            "{} = new {} @{}",
            program.var(*dst).name,
            program.class(*class).name,
            program.alloc(*alloc).name
        ),
        Command::NewArray { dst, alloc, len } => format!(
            "{} = newarray @{} [{}]",
            program.var(*dst).name,
            program.alloc(*alloc).name,
            operand(program, *len)
        ),
        Command::Call { dst, callee, args } => {
            let args_s: Vec<String> = args.iter().map(|a| operand(program, *a)).collect();
            let call = match callee {
                Callee::Virtual { receiver, method } => {
                    format!(
                        "call {}.{}({})",
                        program.var(*receiver).name,
                        method,
                        args_s.join(", ")
                    )
                }
                Callee::Static { method } => {
                    let m = program.method(*method);
                    let path = match m.class {
                        Some(c) => format!("{}::{}", program.class(c).name, m.name),
                        None => m.name.clone(),
                    };
                    // For instance methods called directly, the receiver is
                    // the first explicit argument.
                    format!("call {}({})", path, args_s.join(", "))
                }
            };
            match dst {
                Some(d) => format!("{} = {}", program.var(*d).name, call),
                None => call,
            }
        }
        Command::Return { val } => match val {
            Some(v) => format!("return {}", operand(program, *v)),
            None => "return".to_owned(),
        },
        Command::Assume { cond: c } => format!("assume {}", cond(program, c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stmt::{BinOp, CmpOp};

    #[test]
    fn prints_commands_readably() {
        let mut b = ProgramBuilder::new();
        let c = b.class("Cell", None);
        let f = b.field(c, "val", Ty::Int);
        let g = b.global("G", Ty::Ref(c));
        let main = b.method(None, "main", &[], None, |mb| {
            let x = mb.var("x", Ty::Ref(c));
            let n = mb.var("n", Ty::Int);
            mb.new_obj(x, c, "cell0");
            mb.write_field(x, f, 3);
            mb.read_field(n, x, f);
            mb.binop(n, BinOp::Add, n, 1);
            mb.write_global(g, x);
            mb.assume_cmp(CmpOp::Lt, n, 10);
            mb.ret_void();
        });
        b.set_entry(main);
        let p = b.finish();
        let text = print_program(&p);
        assert!(text.contains("x = new Cell @cell0;"));
        assert!(text.contains("x.val = 3;"));
        assert!(text.contains("n = x.val;"));
        assert!(text.contains("n = n + 1;"));
        assert!(text.contains("$G = x;"));
        assert!(text.contains("assume n < 10;"));
        assert!(text.contains("entry main;"));
    }
}
