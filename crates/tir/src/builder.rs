//! Programmatic construction of [`Program`]s.
//!
//! [`ProgramBuilder`] owns the arenas while building; [`MethodBuilder`] is a
//! statement-level DSL handed to method-body closures:
//!
//! ```
//! use tir::{ProgramBuilder, Ty, CmpOp, Cond, Operand};
//!
//! let mut b = ProgramBuilder::new();
//! let cell = b.class("Cell", None);
//! let val = b.field(cell, "val", Ty::Int);
//! let main = b.method(None, "main", &[], None, |mb| {
//!     let c = mb.var("c", Ty::Ref(cell));
//!     mb.new_obj(c, cell, "cell0");
//!     mb.write_field(c, val, 41);
//!     mb.ret_void();
//! });
//! b.set_entry(main);
//! let program = b.finish();
//! assert_eq!(program.entry(), main);
//! ```

use crate::ids::{AllocId, ClassId, CmdId, FieldId, GlobalId, MethodId, VarId};
use crate::program::{AllocSite, Class, Field, Global, Method, Program, Ty, VarInfo};
use crate::stmt::{BinOp, Callee, CmpOp, Command, Cond, Operand, Stmt};

/// Builds a [`Program`] incrementally (see the module-level documentation).
#[derive(Debug)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    fields: Vec<Field>,
    globals: Vec<Global>,
    methods: Vec<Method>,
    vars: Vec<VarInfo>,
    allocs: Vec<AllocSite>,
    cmds: Vec<Command>,
    cmd_method: Vec<MethodId>,
    entry: Option<MethodId>,
    object_class: ClassId,
    array_class: ClassId,
    contents_field: FieldId,
    len_field: FieldId,
    alloc_counter: usize,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder pre-populated with the builtin `Object` and `Array`
    /// classes.
    pub fn new() -> Self {
        let mut b = ProgramBuilder {
            classes: Vec::new(),
            fields: Vec::new(),
            globals: Vec::new(),
            methods: Vec::new(),
            vars: Vec::new(),
            allocs: Vec::new(),
            cmds: Vec::new(),
            cmd_method: Vec::new(),
            entry: None,
            object_class: ClassId(0),
            array_class: ClassId(0),
            contents_field: FieldId(0),
            len_field: FieldId(0),
            alloc_counter: 0,
        };
        let object = b.class_raw("Object", None);
        let array = b.class_raw("Array", Some(object));
        b.object_class = object;
        b.array_class = array;
        b.contents_field = b.field(array, "contents", Ty::Ref(object));
        b.len_field = b.field(array, "len", Ty::Int);
        b
    }

    /// The builtin root class.
    pub fn object_class(&self) -> ClassId {
        self.object_class
    }

    /// The builtin array class.
    pub fn array_class(&self) -> ClassId {
        self.array_class
    }

    /// The synthetic array `contents` field.
    pub fn contents_field(&self) -> FieldId {
        self.contents_field
    }

    /// The synthetic array `len` field.
    pub fn len_field(&self) -> FieldId {
        self.len_field
    }

    fn class_raw(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(Class {
            name: name.to_owned(),
            superclass,
            fields: Vec::new(),
            methods: Vec::new(),
        });
        id
    }

    /// Declares a class. `superclass = None` makes it derive from `Object`.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name already exists.
    pub fn class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        assert!(!self.classes.iter().any(|c| c.name == name), "duplicate class name {name}");
        let sup = superclass.unwrap_or(self.object_class);
        self.class_raw(name, Some(sup))
    }

    /// Re-points the superclass of `class` (used by the parser, where
    /// `extends` may reference a class declared later).
    pub fn set_superclass(&mut self, class: ClassId, superclass: ClassId) {
        self.classes[class.index()].superclass = Some(superclass);
    }

    /// Resolves a field named `name` visible on `class`, walking the
    /// superclass chain (builder-time mirror of
    /// [`Program::resolve_field`](crate::Program::resolve_field)).
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            for &f in &self.classes[c.index()].fields {
                if self.fields[f.index()].name == name {
                    return Some(f);
                }
            }
            cur = self.classes[c.index()].superclass;
        }
        None
    }

    /// Declares an instance field on `class`.
    pub fn field(&mut self, class: ClassId, name: &str, ty: Ty) -> FieldId {
        let id = FieldId::from_index(self.fields.len());
        self.fields.push(Field { name: name.to_owned(), owner: class, ty });
        self.classes[class.index()].fields.push(id);
        id
    }

    /// Declares a global variable (static field).
    ///
    /// # Panics
    ///
    /// Panics if a global with the same name already exists.
    pub fn global(&mut self, name: &str, ty: Ty) -> GlobalId {
        assert!(!self.globals.iter().any(|g| g.name == name), "duplicate global name {name}");
        let id = GlobalId::from_index(self.globals.len());
        self.globals.push(Global { name: name.to_owned(), ty });
        id
    }

    /// Declares a method without a body (for mutual recursion). Define the
    /// body later with [`ProgramBuilder::define_method`].
    ///
    /// For instance methods (`class = Some(..)`), a `this` parameter is
    /// created implicitly as `params[0]`.
    pub fn declare_method(
        &mut self,
        class: Option<ClassId>,
        name: &str,
        params: &[(&str, Ty)],
        ret_ty: Option<Ty>,
    ) -> MethodId {
        let id = MethodId::from_index(self.methods.len());
        let mut param_ids = Vec::new();
        if let Some(c) = class {
            let this = VarId::from_index(self.vars.len());
            self.vars.push(VarInfo { name: "this".to_owned(), ty: Ty::Ref(c), method: id });
            param_ids.push(this);
        }
        for (pname, pty) in params {
            let v = VarId::from_index(self.vars.len());
            self.vars.push(VarInfo { name: (*pname).to_owned(), ty: *pty, method: id });
            param_ids.push(v);
        }
        self.methods.push(Method {
            name: name.to_owned(),
            class,
            params: param_ids.clone(),
            locals: param_ids,
            ret_ty,
            body: Stmt::Skip,
            removed: false,
        });
        if let Some(c) = class {
            self.classes[c.index()].methods.push(id);
        }
        id
    }

    /// Defines the body of a previously declared method.
    pub fn define_method(&mut self, id: MethodId, f: impl FnOnce(&mut MethodBuilder)) {
        let mut mb = MethodBuilder { pb: self, method: id, current: Vec::new(), outer: Vec::new() };
        f(&mut mb);
        assert!(mb.outer.is_empty(), "unbalanced control-flow nesting");
        let stmts = std::mem::take(&mut mb.current);
        self.methods[id.index()].body = Stmt::Seq(stmts);
    }

    /// Declares and defines a method in one step.
    pub fn method(
        &mut self,
        class: Option<ClassId>,
        name: &str,
        params: &[(&str, Ty)],
        ret_ty: Option<Ty>,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> MethodId {
        let id = self.declare_method(class, name, params, ret_ty);
        self.define_method(id, f);
        id
    }

    /// Sets the entry method (the harness `main`).
    pub fn set_entry(&mut self, m: MethodId) {
        self.entry = Some(m);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation (see [`crate::validate`]).
    pub fn finish(self) -> Program {
        match self.try_finish() {
            Ok(p) => p,
            Err(e) => panic!("invalid program: {e}"),
        }
    }

    /// Finalizes the program, returning validation failures as errors.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::validate::ValidateError`] found.
    pub fn try_finish(self) -> Result<Program, crate::validate::ValidateError> {
        let p = Program {
            classes: self.classes,
            fields: self.fields,
            globals: self.globals,
            methods: self.methods,
            vars: self.vars,
            allocs: self.allocs,
            cmds: self.cmds,
            cmd_method: self.cmd_method,
            entry: self.entry,
            object_class: self.object_class,
            array_class: self.array_class,
            contents_field: self.contents_field,
            len_field: self.len_field,
        };
        crate::validate::validate(&p)?;
        Ok(p)
    }
}

/// Statement-level DSL for one method body. Obtained from
/// [`ProgramBuilder::method`] / [`ProgramBuilder::define_method`].
#[derive(Debug)]
pub struct MethodBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    method: MethodId,
    /// The statement frame currently receiving commands. Representing the
    /// innermost frame as a plain field (instead of the top of a stack)
    /// makes "no open frame" unrepresentable, so the builder never panics
    /// on frame access.
    current: Vec<Stmt>,
    /// Enclosing frames suspended by open nested blocks, outermost first.
    outer: Vec<Vec<Stmt>>,
}

impl<'a> MethodBuilder<'a> {
    /// The method being built.
    pub fn method_id(&self) -> MethodId {
        self.method
    }

    /// The implicit `this` parameter.
    ///
    /// # Panics
    ///
    /// Panics if the method is not an instance method.
    pub fn this(&self) -> VarId {
        let m = &self.pb.methods[self.method.index()];
        assert!(m.class.is_some(), "free function has no `this`");
        m.params[0]
    }

    /// The `i`-th declared parameter (0-based, *excluding* `this`).
    pub fn param(&self, i: usize) -> VarId {
        let m = &self.pb.methods[self.method.index()];
        let off = usize::from(m.class.is_some());
        m.params[off + i]
    }

    /// All parameters, including the implicit `this` if present.
    pub fn params(&self) -> &[VarId] {
        &self.pb.methods[self.method.index()].params
    }

    /// Source name of a variable.
    pub fn var_name(&self, v: VarId) -> String {
        self.pb.vars[v.index()].name.clone()
    }

    /// Declared type of a variable.
    pub fn var_ty(&self, v: VarId) -> Ty {
        self.pb.vars[v.index()].ty
    }

    /// Read-only access to the underlying program builder (for name lookups
    /// during parsing).
    pub fn program_builder(&self) -> &ProgramBuilder {
        self.pb
    }

    /// Resolves a field by name on `class` (walks the superclass chain).
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        self.pb.resolve_field(class, name)
    }

    /// Declares a fresh local variable.
    pub fn var(&mut self, name: &str, ty: Ty) -> VarId {
        let v = VarId::from_index(self.pb.vars.len());
        self.pb.vars.push(VarInfo { name: name.to_owned(), ty, method: self.method });
        self.pb.methods[self.method.index()].locals.push(v);
        v
    }

    fn push_cmd(&mut self, cmd: Command) -> CmdId {
        let id = CmdId::from_index(self.pb.cmds.len());
        self.pb.cmds.push(cmd);
        self.pb.cmd_method.push(self.method);
        self.current.push(Stmt::Cmd(id));
        id
    }

    /// `dst = src`
    pub fn assign(&mut self, dst: VarId, src: impl Into<Operand>) -> CmdId {
        self.push_cmd(Command::Assign { dst, src: src.into() })
    }

    /// `dst = null`
    pub fn assign_null(&mut self, dst: VarId) -> CmdId {
        self.push_cmd(Command::Assign { dst, src: Operand::Null })
    }

    /// `dst = lhs op rhs`
    pub fn binop(
        &mut self,
        dst: VarId,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> CmdId {
        self.push_cmd(Command::BinOp { dst, op, lhs: lhs.into(), rhs: rhs.into() })
    }

    /// `dst = obj.field`
    pub fn read_field(&mut self, dst: VarId, obj: VarId, field: FieldId) -> CmdId {
        self.push_cmd(Command::ReadField { dst, obj, field })
    }

    /// `obj.field = src`
    pub fn write_field(&mut self, obj: VarId, field: FieldId, src: impl Into<Operand>) -> CmdId {
        self.push_cmd(Command::WriteField { obj, field, src: src.into() })
    }

    /// `dst = $global`
    pub fn read_global(&mut self, dst: VarId, global: GlobalId) -> CmdId {
        self.push_cmd(Command::ReadGlobal { dst, global })
    }

    /// `$global = src`
    pub fn write_global(&mut self, global: GlobalId, src: impl Into<Operand>) -> CmdId {
        self.push_cmd(Command::WriteGlobal { global, src: src.into() })
    }

    /// `dst = arr[idx]`
    pub fn read_array(&mut self, dst: VarId, arr: VarId, idx: impl Into<Operand>) -> CmdId {
        self.push_cmd(Command::ReadArray { dst, arr, idx: idx.into() })
    }

    /// `arr[idx] = src`
    pub fn write_array(
        &mut self,
        arr: VarId,
        idx: impl Into<Operand>,
        src: impl Into<Operand>,
    ) -> CmdId {
        self.push_cmd(Command::WriteArray { arr, idx: idx.into(), src: src.into() })
    }

    /// `dst = len(arr)`
    pub fn array_len(&mut self, dst: VarId, arr: VarId) -> CmdId {
        self.push_cmd(Command::ArrayLen { dst, arr })
    }

    fn fresh_alloc(&mut self, name: &str, class: ClassId) -> AllocId {
        let name = if name.is_empty() {
            self.pb.alloc_counter += 1;
            format!(
                "{}{}",
                self.pb.classes[class.index()].name.to_lowercase(),
                self.pb.alloc_counter - 1
            )
        } else {
            name.to_owned()
        };
        let id = AllocId::from_index(self.pb.allocs.len());
        self.pb.allocs.push(AllocSite { name, class, method: self.method });
        id
    }

    /// `dst = new class @site`. Pass an empty `site` name to auto-generate
    /// one. Returns the allocation site id.
    pub fn new_obj(&mut self, dst: VarId, class: ClassId, site: &str) -> AllocId {
        let alloc = self.fresh_alloc(site, class);
        self.push_cmd(Command::New { dst, class, alloc });
        alloc
    }

    /// `dst = newarray @site [len]`. Returns the allocation site id.
    pub fn new_array(&mut self, dst: VarId, site: &str, len: impl Into<Operand>) -> AllocId {
        let class = self.pb.array_class;
        let alloc = self.fresh_alloc(site, class);
        self.push_cmd(Command::NewArray { dst, alloc, len: len.into() });
        alloc
    }

    /// `dst = call receiver.method(args)` (virtual dispatch).
    pub fn call_virtual(
        &mut self,
        dst: Option<VarId>,
        receiver: VarId,
        method: &str,
        args: &[Operand],
    ) -> CmdId {
        self.push_cmd(Command::Call {
            dst,
            callee: Callee::Virtual { receiver, method: method.to_owned() },
            args: args.to_vec(),
        })
    }

    /// `dst = call method(args)` (direct call).
    pub fn call_static(&mut self, dst: Option<VarId>, method: MethodId, args: &[Operand]) -> CmdId {
        self.push_cmd(Command::Call { dst, callee: Callee::Static { method }, args: args.to_vec() })
    }

    /// `return val`
    pub fn ret(&mut self, val: impl Into<Operand>) -> CmdId {
        self.push_cmd(Command::Return { val: Some(val.into()) })
    }

    /// `return` (void)
    pub fn ret_void(&mut self) -> CmdId {
        self.push_cmd(Command::Return { val: None })
    }

    /// `assume cond`
    pub fn assume(&mut self, cond: Cond) -> CmdId {
        self.push_cmd(Command::Assume { cond })
    }

    /// Shorthand for `assume lhs op rhs`.
    pub fn assume_cmp(
        &mut self,
        op: CmpOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> CmdId {
        self.assume(Cond::cmp(op, lhs, rhs))
    }

    fn nested(&mut self, f: impl FnOnce(&mut MethodBuilder)) -> Stmt {
        self.begin_block();
        f(self);
        self.end_block()
    }

    /// `if (cond) { then } else { else }`
    pub fn if_else(
        &mut self,
        cond: Cond,
        then_f: impl FnOnce(&mut MethodBuilder),
        else_f: impl FnOnce(&mut MethodBuilder),
    ) {
        let then_br = self.nested(then_f);
        let else_br = self.nested(else_f);
        self.push_if(cond, then_br, else_br);
    }

    /// `if (cond) { then }`
    pub fn if_then(&mut self, cond: Cond, then_f: impl FnOnce(&mut MethodBuilder)) {
        self.if_else(cond, then_f, |_| {});
    }

    /// `while (cond) { body }`
    pub fn while_(&mut self, cond: Cond, body_f: impl FnOnce(&mut MethodBuilder)) {
        let body = self.nested(body_f);
        self.push_while(cond, body);
    }

    /// Non-deterministic loop: run the body zero or more times.
    pub fn loop_(&mut self, body_f: impl FnOnce(&mut MethodBuilder)) {
        let body = self.nested(body_f);
        self.push_loop(body);
    }

    /// Non-deterministic branch.
    pub fn choice(
        &mut self,
        left_f: impl FnOnce(&mut MethodBuilder),
        right_f: impl FnOnce(&mut MethodBuilder),
    ) {
        let left = self.nested(left_f);
        let right = self.nested(right_f);
        self.push_choice(left, right);
    }

    /// Non-deterministically run `f` or skip it.
    pub fn maybe(&mut self, f: impl FnOnce(&mut MethodBuilder)) {
        self.choice(f, |_| {});
    }

    // ------------------------------------------------------------------
    // Explicit block primitives. These allow building nested control flow
    // without closures (used by the parser, where external state must be
    // threaded through block construction). Every `begin_block` must be
    // paired with an `end_block`, and the returned statement passed to one
    // of the `push_*` methods.
    // ------------------------------------------------------------------

    /// Opens a nested statement block.
    pub fn begin_block(&mut self) {
        self.outer.push(std::mem::take(&mut self.current));
    }

    /// Closes the innermost block opened by [`MethodBuilder::begin_block`]
    /// and returns it as a statement. Calling it with no open block simply
    /// drains the method-level frame (the parser and the closure-based
    /// combinators always keep begin/end balanced).
    pub fn end_block(&mut self) -> Stmt {
        let enclosing = self.outer.pop().unwrap_or_default();
        Stmt::Seq(std::mem::replace(&mut self.current, enclosing))
    }

    /// Appends `if (cond) then_br else else_br` built from explicit blocks.
    pub fn push_if(&mut self, cond: Cond, then_br: Stmt, else_br: Stmt) {
        self.current.push(Stmt::If {
            cond,
            then_br: Box::new(then_br),
            else_br: Box::new(else_br),
        });
    }

    /// Appends `while (cond) body` built from an explicit block.
    pub fn push_while(&mut self, cond: Cond, body: Stmt) {
        self.current.push(Stmt::While { cond, body: Box::new(body) });
    }

    /// Appends a non-deterministic loop built from an explicit block.
    pub fn push_loop(&mut self, body: Stmt) {
        self.current.push(Stmt::Loop(Box::new(body)));
    }

    /// Appends a non-deterministic choice built from explicit blocks.
    pub fn push_choice(&mut self, left: Stmt, right: Stmt) {
        self.current.push(Stmt::Choice(Box::new(left), Box::new(right)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::Stmt;

    #[test]
    fn builds_nested_control_flow() {
        let mut b = ProgramBuilder::new();
        let main = b.method(None, "main", &[], None, |mb| {
            let x = mb.var("x", Ty::Int);
            mb.assign(x, 0);
            mb.while_(Cond::cmp(CmpOp::Lt, x, 10), |mb| {
                mb.binop(x, BinOp::Add, x, 1);
            });
            mb.if_else(
                Cond::cmp(CmpOp::Eq, x, 10),
                |mb| {
                    mb.assign(x, 1);
                },
                |mb| {
                    mb.assign(x, 2);
                },
            );
            mb.ret_void();
        });
        b.set_entry(main);
        let p = b.finish();
        let body = &p.method(main).body;
        match body {
            Stmt::Seq(ss) => assert_eq!(ss.len(), 4),
            other => panic!("expected seq, got {other:?}"),
        }
        assert_eq!(p.method_cmds(main).len(), 5);
    }

    #[test]
    fn this_param_created_for_instance_methods() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        let m = b.method(Some(c), "id", &[("x", Ty::Int)], Some(Ty::Int), |mb| {
            let this = mb.this();
            assert_eq!(mb.pb.vars[this.index()].name, "this");
            let x = mb.param(0);
            mb.ret(x);
        });
        let p = b.finish();
        assert_eq!(p.method(m).params.len(), 2);
    }

    #[test]
    fn auto_alloc_names_are_unique() {
        let mut b = ProgramBuilder::new();
        let c = b.class("Widget", None);
        b.method(None, "main", &[], None, |mb| {
            let x = mb.var("x", Ty::Ref(c));
            let a0 = mb.new_obj(x, c, "");
            let a1 = mb.new_obj(x, c, "");
            assert_ne!(a0, a1);
            mb.ret_void();
        });
        let p = b.finish();
        let names: Vec<_> = p.alloc_ids().map(|a| p.alloc(a).name.clone()).collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn duplicate_class_panics() {
        let mut b = ProgramBuilder::new();
        b.class("C", None);
        b.class("C", None);
    }
}
