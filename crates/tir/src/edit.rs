//! Program edits: a statement/method-level mutation protocol for resident
//! [`Program`]s.
//!
//! An [`EditOp`] names its target symbolically (method names, command
//! ordinals, statement text in the surface syntax), so edit scripts survive
//! re-parses and can be shipped over the daemon protocol. [`apply_edits`]
//! applies a batch transactionally: either every op lands and the edited
//! program re-validates, or the program is left untouched.
//!
//! Arenas are append-only: removing a statement or method orphans its
//! commands in the arena (their [`CmdId`]s stay readable) rather than
//! renumbering live ones. This is what lets incremental analyses carry
//! state across edits keyed by stable ids.

use std::fmt;

use crate::ids::{AllocId, CmdId, MethodId, VarId};
use crate::parser::{
    lex, Parser, SCall, SCond, SLvalue, SMethod, SOperand, SRvalue, SStmt, STy, Tok,
};
use crate::program::{AllocSite, Method, Program, Ty, VarInfo};
use crate::stmt::{Callee, Command, Cond, Operand, Stmt};
use crate::validate;

/// One program edit. Statement ops address commands by their ordinal in
/// [`Program::method_cmds`] order (`at`); statement and method bodies are
/// given in the textual IR syntax of [`crate::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Insert a single statement before the `at`-th command of `method`
    /// (`at == num_cmds` appends at the end, before a trailing `return`).
    /// `text` is one statement, e.g. `"x = new Cell @c9;"` or
    /// `"var t: int;"`. Control flow is not allowed here.
    AddStmt {
        /// Target method, `"Class.name"` or a free function name.
        method: String,
        /// Command ordinal to insert before (0-based).
        at: usize,
        /// Statement text in the surface syntax.
        text: String,
    },
    /// Replace the `at`-th command of `method` with a new statement.
    ReplaceStmt {
        /// Target method.
        method: String,
        /// Command ordinal to replace (0-based).
        at: usize,
        /// Replacement statement text (must lower to a single command).
        text: String,
    },
    /// Remove the `at`-th command of `method`.
    RemoveStmt {
        /// Target method.
        method: String,
        /// Command ordinal to remove (0-based).
        at: usize,
    },
    /// Add a whole method. `text` is a `fn`/`method` item in the surface
    /// syntax; `class` names the declaring class for instance methods.
    AddMethod {
        /// Declaring class, or `None` for a free function.
        class: Option<String>,
        /// Full method text, e.g. `"fn helper(x: int): int { return x; }"`.
        text: String,
    },
    /// Remove a method. The method must not be the entry point and must not
    /// be statically called from surviving code.
    RemoveMethod {
        /// Target method, `"Class.name"` or a free function name.
        method: String,
    },
}

impl EditOp {
    /// Short tag naming the op kind (used in telemetry and bench output).
    pub fn kind(&self) -> &'static str {
        match self {
            EditOp::AddStmt { .. } => "add_stmt",
            EditOp::ReplaceStmt { .. } => "replace_stmt",
            EditOp::RemoveStmt { .. } => "remove_stmt",
            EditOp::AddMethod { .. } => "add_method",
            EditOp::RemoveMethod { .. } => "remove_method",
        }
    }
}

/// An edit that could not be applied. The whole batch is rolled back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EditError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EditError {}

fn err<T>(message: impl Into<String>) -> Result<T, EditError> {
    Err(EditError { message: message.into() })
}

/// The arena-level effect of one applied [`EditOp`], in terms of stable ids.
/// Incremental analyses consume this to seed their worklists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppliedEdit {
    /// A command was appended to the arena and spliced into `method`.
    AddedCmd {
        /// Owning method.
        method: MethodId,
        /// The new command.
        cmd: CmdId,
    },
    /// `old` was unlinked from `method`'s body and `new` spliced in its
    /// place (`old` stays in the arena, orphaned).
    ReplacedCmd {
        /// Owning method.
        method: MethodId,
        /// The unlinked command.
        old: CmdId,
        /// The replacement command.
        new: CmdId,
    },
    /// `cmd` was unlinked from `method`'s body.
    RemovedCmd {
        /// Owning method.
        method: MethodId,
        /// The unlinked command.
        cmd: CmdId,
    },
    /// A local variable declaration was added (no command involved).
    AddedVar {
        /// Owning method.
        method: MethodId,
        /// The new local.
        var: VarId,
    },
    /// A whole method was added; `cmds` lists its body commands.
    AddedMethod {
        /// The new method.
        method: MethodId,
        /// Its body commands in program order.
        cmds: Vec<CmdId>,
    },
    /// A whole method was marked removed; `cmds` lists its (now orphaned)
    /// body commands.
    RemovedMethod {
        /// The removed method.
        method: MethodId,
        /// Its former body commands.
        cmds: Vec<CmdId>,
    },
}

/// Applies an edit batch to `program` transactionally.
///
/// On success the program is mutated in place and the per-op arena effects
/// are returned in order. On failure the program is left byte-identical to
/// its pre-call state.
///
/// # Errors
///
/// Returns an [`EditError`] if any op fails to parse, resolve, or lower, or
/// if the edited program fails [`validate::validate`].
pub fn apply_edits(program: &mut Program, ops: &[EditOp]) -> Result<Vec<AppliedEdit>, EditError> {
    let mut next = program.clone();
    let mut applied = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        applied.push(
            apply_one(&mut next, op)
                .map_err(|e| EditError { message: format!("edit {i} ({}): {e}", op.kind()) })?,
        );
    }
    validate::validate(&next)
        .map_err(|e| EditError { message: format!("edit batch produces invalid program: {e}") })?;
    *program = next;
    Ok(applied)
}

fn apply_one(p: &mut Program, op: &EditOp) -> Result<AppliedEdit, EditError> {
    match op {
        EditOp::AddStmt { method, at, text } => add_stmt(p, method, *at, text),
        EditOp::ReplaceStmt { method, at, text } => replace_stmt(p, method, *at, text),
        EditOp::RemoveStmt { method, at } => remove_stmt(p, method, *at),
        EditOp::AddMethod { class, text } => add_method(p, class.as_deref(), text),
        EditOp::RemoveMethod { method } => remove_method(p, method),
    }
}

// ------------------------------------------------------------ resolution

/// Resolves `"Class.name"` or a bare free-function name to a live method.
pub fn find_method(p: &Program, spec: &str) -> Result<MethodId, EditError> {
    if let Some((cname, mname)) = spec.split_once('.') {
        let c = p
            .class_by_name(cname)
            .ok_or_else(|| EditError { message: format!("unknown class {cname}") })?;
        p.method_on(c, mname)
            .ok_or_else(|| EditError { message: format!("no method {mname} on class {cname}") })
    } else {
        p.free_function(spec)
            .ok_or_else(|| EditError { message: format!("unknown function {spec}") })
    }
}

fn local(p: &Program, m: MethodId, name: &str) -> Result<VarId, EditError> {
    p.method(m).locals.iter().copied().find(|&v| p.var(v).name == name).ok_or_else(|| EditError {
        message: format!("unknown variable {name} in {}", p.method_name(m)),
    })
}

fn lower_ty(p: &Program, t: &STy) -> Result<Ty, EditError> {
    Ok(match t {
        STy::Int => Ty::Int,
        STy::Array => Ty::Ref(p.array_class),
        STy::Class(name) => Ty::Ref(
            p.class_by_name(name)
                .ok_or_else(|| EditError { message: format!("unknown class {name}") })?,
        ),
    })
}

fn lower_operand(p: &Program, m: MethodId, o: &SOperand) -> Result<Operand, EditError> {
    Ok(match o {
        SOperand::Var(name) => Operand::Var(local(p, m, name)?),
        SOperand::Int(n) => Operand::Int(*n),
        SOperand::Null => Operand::Null,
    })
}

fn lower_cond(p: &Program, m: MethodId, c: &SCond) -> Result<Cond, EditError> {
    Ok(match c {
        SCond::Nondet => Cond::Nondet,
        SCond::True => Cond::True,
        SCond::Cmp(op, l, r) => {
            Cond::Cmp { op: *op, lhs: lower_operand(p, m, l)?, rhs: lower_operand(p, m, r)? }
        }
    })
}

fn field_of(
    p: &Program,
    _m: MethodId,
    base: VarId,
    fname: &str,
) -> Result<crate::ids::FieldId, EditError> {
    let class = match p.var(base).ty {
        Ty::Ref(c) => c,
        Ty::Int => {
            return err(format!("field access on integer variable {}", p.var(base).name));
        }
    };
    p.resolve_field(class, fname).ok_or_else(|| EditError {
        message: format!("no field {fname} on class of {}", p.var(base).name),
    })
}

fn fresh_alloc(
    p: &mut Program,
    m: MethodId,
    site: &str,
    class: crate::ids::ClassId,
) -> Result<AllocId, EditError> {
    if p.allocs.iter().any(|a| a.name == site) {
        return err(format!(
            "allocation site name @{site} already exists; site names must stay unique"
        ));
    }
    let id = AllocId::from_index(p.allocs.len());
    p.allocs.push(AllocSite { name: site.to_owned(), class, method: m });
    Ok(id)
}

// --------------------------------------------------------------- lowering

enum LoweredStmt {
    Var(VarId),
    Cmd(Command),
}

/// Lowers one surface statement against the live program. Control-flow
/// statements are rejected here (only whole added methods may introduce
/// branches/loops).
fn lower_simple(p: &mut Program, m: MethodId, s: &SStmt) -> Result<LoweredStmt, EditError> {
    match s {
        SStmt::VarDecl { name, ty, .. } => {
            if local(p, m, name).is_ok() {
                return err(format!("variable {name} already declared in {}", p.method_name(m)));
            }
            let t = lower_ty(p, ty)?;
            let v = VarId::from_index(p.vars.len());
            p.vars.push(VarInfo { name: name.clone(), ty: t, method: m });
            p.methods[m.index()].locals.push(v);
            Ok(LoweredStmt::Var(v))
        }
        SStmt::Return { val, .. } => {
            let val = match val {
                Some(o) => Some(lower_operand(p, m, o)?),
                None => None,
            };
            Ok(LoweredStmt::Cmd(Command::Return { val }))
        }
        SStmt::Assume { cond, .. } => {
            Ok(LoweredStmt::Cmd(Command::Assume { cond: lower_cond(p, m, cond)? }))
        }
        SStmt::CallStmt { dst, call, .. } => {
            let dst = match dst {
                Some(name) => Some(local(p, m, name)?),
                None => None,
            };
            Ok(LoweredStmt::Cmd(lower_call(p, m, dst, call)?))
        }
        SStmt::Assign { lhs, rhs, .. } => Ok(LoweredStmt::Cmd(lower_assign(p, m, lhs, rhs)?)),
        SStmt::If { .. } | SStmt::While { .. } | SStmt::Loop { .. } | SStmt::Choice { .. } => {
            err("control flow is not allowed in statement edits; add a method instead")
        }
    }
}

fn lower_call(
    p: &Program,
    m: MethodId,
    dst: Option<VarId>,
    call: &SCall,
) -> Result<Command, EditError> {
    match call {
        SCall::Virtual { receiver, method, args } => {
            let recv = local(p, m, receiver)?;
            let args =
                args.iter().map(|a| lower_operand(p, m, a)).collect::<Result<Vec<_>, _>>()?;
            Ok(Command::Call {
                dst,
                callee: Callee::Virtual { receiver: recv, method: method.clone() },
                args,
            })
        }
        SCall::Static { class, method, args } => {
            let mid = match class {
                Some(cname) => {
                    let c = p
                        .class_by_name(cname)
                        .ok_or_else(|| EditError { message: format!("unknown class {cname}") })?;
                    p.method_on(c, method).ok_or_else(|| EditError {
                        message: format!("no method {method} on class {cname}"),
                    })?
                }
                None => p
                    .free_function(method)
                    .ok_or_else(|| EditError { message: format!("unknown function {method}") })?,
            };
            let args =
                args.iter().map(|a| lower_operand(p, m, a)).collect::<Result<Vec<_>, _>>()?;
            Ok(Command::Call { dst, callee: Callee::Static { method: mid }, args })
        }
    }
}

fn rvalue_as_operand(p: &Program, m: MethodId, rhs: &SRvalue) -> Result<Operand, EditError> {
    match rhs {
        SRvalue::Operand(o) => lower_operand(p, m, o),
        _ => err("compound right-hand side not allowed here; use a temporary"),
    }
}

fn lower_assign(
    p: &mut Program,
    m: MethodId,
    lhs: &SLvalue,
    rhs: &SRvalue,
) -> Result<Command, EditError> {
    match lhs {
        SLvalue::Var(name) => {
            let dst = local(p, m, name)?;
            match rhs {
                SRvalue::Operand(o) => Ok(Command::Assign { dst, src: lower_operand(p, m, o)? }),
                SRvalue::BinOp(op, l, r) => Ok(Command::BinOp {
                    dst,
                    op: *op,
                    lhs: lower_operand(p, m, l)?,
                    rhs: lower_operand(p, m, r)?,
                }),
                SRvalue::Field(base, f) => {
                    let obj = local(p, m, base)?;
                    let field = field_of(p, m, obj, f)?;
                    Ok(Command::ReadField { dst, obj, field })
                }
                SRvalue::Index(base, idx) => {
                    let arr = local(p, m, base)?;
                    let idx = lower_operand(p, m, idx)?;
                    Ok(Command::ReadArray { dst, arr, idx })
                }
                SRvalue::Global(g) => {
                    let global = p
                        .global_by_name(g)
                        .ok_or_else(|| EditError { message: format!("unknown global {g}") })?;
                    Ok(Command::ReadGlobal { dst, global })
                }
                SRvalue::New { class, site } => {
                    let cid = p
                        .class_by_name(class)
                        .ok_or_else(|| EditError { message: format!("unknown class {class}") })?;
                    let alloc = fresh_alloc(p, m, site, cid)?;
                    Ok(Command::New { dst, class: cid, alloc })
                }
                SRvalue::NewArray { site, len } => {
                    let len = lower_operand(p, m, len)?;
                    let class = p.array_class;
                    let alloc = fresh_alloc(p, m, site, class)?;
                    Ok(Command::NewArray { dst, alloc, len })
                }
                SRvalue::Len(arr) => {
                    let arr = local(p, m, arr)?;
                    Ok(Command::ArrayLen { dst, arr })
                }
            }
        }
        SLvalue::Field(base, f) => {
            let obj = local(p, m, base)?;
            let field = field_of(p, m, obj, f)?;
            let src = rvalue_as_operand(p, m, rhs)?;
            Ok(Command::WriteField { obj, field, src })
        }
        SLvalue::Index(base, idx) => {
            let arr = local(p, m, base)?;
            let idx = lower_operand(p, m, idx)?;
            let src = rvalue_as_operand(p, m, rhs)?;
            Ok(Command::WriteArray { arr, idx, src })
        }
        SLvalue::Global(g) => {
            let global = p
                .global_by_name(g)
                .ok_or_else(|| EditError { message: format!("unknown global {g}") })?;
            let src = rvalue_as_operand(p, m, rhs)?;
            Ok(Command::WriteGlobal { global, src })
        }
    }
}

fn push_cmd(p: &mut Program, m: MethodId, cmd: Command) -> CmdId {
    let id = CmdId::from_index(p.cmds.len());
    p.cmds.push(cmd);
    p.cmd_method.push(m);
    id
}

// ------------------------------------------------------------ snippets

fn parse_stmt_text(text: &str) -> Result<SStmt, EditError> {
    let toks =
        lex(text).map_err(|e| EditError { message: format!("statement parse error: {e}") })?;
    let mut parser = Parser { toks, pos: 0 };
    let s = parser
        .parse_stmt()
        .map_err(|e| EditError { message: format!("statement parse error: {e}") })?;
    if !matches!(parser.peek(), Tok::Eof) {
        return err("trailing input after statement");
    }
    Ok(s)
}

fn parse_method_text(text: &str, class: Option<&str>) -> Result<SMethod, EditError> {
    let toks = lex(text).map_err(|e| EditError { message: format!("method parse error: {e}") })?;
    let mut parser = Parser { toks, pos: 0 };
    let line = parser.line();
    let kw_ok = match class {
        Some(_) => parser.eat_kw("method"),
        None => parser.eat_kw("fn"),
    };
    if !kw_ok {
        return err(match class {
            Some(_) => "instance method text must start with `method`",
            None => "free function text must start with `fn`",
        });
    }
    let sm = parser
        .parse_method(line)
        .map_err(|e| EditError { message: format!("method parse error: {e}") })?;
    if !matches!(parser.peek(), Tok::Eof) {
        return err("trailing input after method");
    }
    Ok(sm)
}

// ---------------------------------------------------------- body surgery

/// Inserts `new` immediately before the leaf `Stmt::Cmd(target)`.
fn insert_before(s: &mut Stmt, target: CmdId, new: CmdId) -> bool {
    fn in_child(child: &mut Stmt, target: CmdId, new: CmdId) -> bool {
        if matches!(child, Stmt::Cmd(c) if *c == target) {
            let old = std::mem::replace(child, Stmt::Skip);
            *child = Stmt::Seq(vec![Stmt::Cmd(new), old]);
            true
        } else {
            insert_before(child, target, new)
        }
    }
    match s {
        Stmt::Seq(ss) => {
            if let Some(i) = ss.iter().position(|c| matches!(c, Stmt::Cmd(x) if *x == target)) {
                ss.insert(i, Stmt::Cmd(new));
                return true;
            }
            ss.iter_mut().any(|c| insert_before(c, target, new))
        }
        Stmt::If { then_br, else_br, .. } => {
            in_child(then_br, target, new) || in_child(else_br, target, new)
        }
        Stmt::While { body, .. } | Stmt::Loop(body) => in_child(body, target, new),
        Stmt::Choice(a, b) => in_child(a, target, new) || in_child(b, target, new),
        Stmt::Skip | Stmt::Cmd(_) => false,
    }
}

/// Appends `new` at the end of a (top-level) body, before a trailing
/// `return` if one is present.
fn append_cmd(p: &Program, body: &mut Stmt, new: CmdId) {
    match body {
        Stmt::Seq(ss) => {
            if let Some(Stmt::Cmd(last)) = ss.last() {
                if matches!(p.cmd(*last), Command::Return { .. }) {
                    let i = ss.len() - 1;
                    ss.insert(i, Stmt::Cmd(new));
                    return;
                }
            }
            ss.push(Stmt::Cmd(new));
        }
        other => {
            let old = std::mem::replace(other, Stmt::Skip);
            *other = Stmt::Seq(vec![old, Stmt::Cmd(new)]);
        }
    }
}

/// Unlinks the leaf `Stmt::Cmd(target)` from the tree.
fn remove_leaf(s: &mut Stmt, target: CmdId) -> bool {
    fn in_child(child: &mut Stmt, target: CmdId) -> bool {
        if matches!(child, Stmt::Cmd(c) if *c == target) {
            *child = Stmt::Skip;
            true
        } else {
            remove_leaf(child, target)
        }
    }
    match s {
        Stmt::Seq(ss) => {
            if let Some(i) = ss.iter().position(|c| matches!(c, Stmt::Cmd(x) if *x == target)) {
                ss.remove(i);
                return true;
            }
            ss.iter_mut().any(|c| remove_leaf(c, target))
        }
        Stmt::If { then_br, else_br, .. } => in_child(then_br, target) || in_child(else_br, target),
        Stmt::While { body, .. } | Stmt::Loop(body) => in_child(body, target),
        Stmt::Choice(a, b) => in_child(a, target) || in_child(b, target),
        Stmt::Skip | Stmt::Cmd(_) => false,
    }
}

/// Rewrites the leaf `Stmt::Cmd(old)` to `Stmt::Cmd(new)`.
fn replace_leaf(s: &mut Stmt, old: CmdId, new: CmdId) -> bool {
    match s {
        Stmt::Seq(ss) => ss.iter_mut().any(|c| replace_leaf(c, old, new)),
        Stmt::If { then_br, else_br, .. } => {
            replace_leaf(then_br, old, new) || replace_leaf(else_br, old, new)
        }
        Stmt::While { body, .. } | Stmt::Loop(body) => replace_leaf(body, old, new),
        Stmt::Choice(a, b) => replace_leaf(a, old, new) || replace_leaf(b, old, new),
        Stmt::Skip => false,
        Stmt::Cmd(c) => {
            if *c == old {
                *c = new;
                true
            } else {
                false
            }
        }
    }
}

// ------------------------------------------------------------------- ops

fn add_stmt(
    p: &mut Program,
    method: &str,
    at: usize,
    text: &str,
) -> Result<AppliedEdit, EditError> {
    let m = find_method(p, method)?;
    let cmds = p.method_cmds(m);
    if at > cmds.len() {
        return err(format!(
            "insert position {at} out of range for {} ({} commands)",
            p.method_name(m),
            cmds.len()
        ));
    }
    let s = parse_stmt_text(text)?;
    match lower_simple(p, m, &s)? {
        LoweredStmt::Var(v) => Ok(AppliedEdit::AddedVar { method: m, var: v }),
        LoweredStmt::Cmd(cmd) => {
            let id = push_cmd(p, m, cmd);
            let mut body = std::mem::replace(&mut p.methods[m.index()].body, Stmt::Skip);
            if at == cmds.len() {
                append_cmd(p, &mut body, id);
            } else if !insert_before(&mut body, cmds[at], id) {
                p.methods[m.index()].body = body;
                return err(format!("command ordinal {at} not found in body"));
            }
            p.methods[m.index()].body = body;
            Ok(AppliedEdit::AddedCmd { method: m, cmd: id })
        }
    }
}

fn replace_stmt(
    p: &mut Program,
    method: &str,
    at: usize,
    text: &str,
) -> Result<AppliedEdit, EditError> {
    let m = find_method(p, method)?;
    let cmds = p.method_cmds(m);
    if at >= cmds.len() {
        return err(format!(
            "command ordinal {at} out of range for {} ({} commands)",
            p.method_name(m),
            cmds.len()
        ));
    }
    let s = parse_stmt_text(text)?;
    let cmd = match lower_simple(p, m, &s)? {
        LoweredStmt::Cmd(cmd) => cmd,
        LoweredStmt::Var(_) => return err("replacement must be a command, not a declaration"),
    };
    let new = push_cmd(p, m, cmd);
    let old = cmds[at];
    let mut body = std::mem::replace(&mut p.methods[m.index()].body, Stmt::Skip);
    let found = replace_leaf(&mut body, old, new);
    p.methods[m.index()].body = body;
    if !found {
        return err(format!("command ordinal {at} not found in body"));
    }
    Ok(AppliedEdit::ReplacedCmd { method: m, old, new })
}

fn remove_stmt(p: &mut Program, method: &str, at: usize) -> Result<AppliedEdit, EditError> {
    let m = find_method(p, method)?;
    let cmds = p.method_cmds(m);
    if at >= cmds.len() {
        return err(format!(
            "command ordinal {at} out of range for {} ({} commands)",
            p.method_name(m),
            cmds.len()
        ));
    }
    let target = cmds[at];
    let mut body = std::mem::replace(&mut p.methods[m.index()].body, Stmt::Skip);
    let found = if matches!(body, Stmt::Cmd(c) if c == target) {
        body = Stmt::Skip;
        true
    } else {
        remove_leaf(&mut body, target)
    };
    p.methods[m.index()].body = body;
    if !found {
        return err(format!("command ordinal {at} not found in body"));
    }
    Ok(AppliedEdit::RemovedCmd { method: m, cmd: target })
}

fn add_method(p: &mut Program, class: Option<&str>, text: &str) -> Result<AppliedEdit, EditError> {
    let cid = match class {
        Some(cname) => Some(
            p.class_by_name(cname)
                .ok_or_else(|| EditError { message: format!("unknown class {cname}") })?,
        ),
        None => None,
    };
    let sm = parse_method_text(text, class)?;
    match cid {
        Some(c) => {
            if p.method_on(c, &sm.name).is_some() {
                return err(format!("method {} already exists on {}", sm.name, class.unwrap()));
            }
        }
        None => {
            if p.free_function(&sm.name).is_some() {
                return err(format!("function {} already exists", sm.name));
            }
        }
    }

    let id = MethodId::from_index(p.methods.len());
    let mut param_ids = Vec::new();
    for (i, (pname, pty)) in sm.params.iter().enumerate() {
        if let Some(c) = cid {
            if i == 0 {
                if pname != "this" {
                    return err(format!("first parameter of method {} must be `this`", sm.name));
                }
                let v = VarId::from_index(p.vars.len());
                p.vars.push(VarInfo { name: "this".to_owned(), ty: Ty::Ref(c), method: id });
                param_ids.push(v);
                continue;
            }
        }
        let t = lower_ty(p, pty)?;
        let v = VarId::from_index(p.vars.len());
        p.vars.push(VarInfo { name: pname.clone(), ty: t, method: id });
        param_ids.push(v);
    }
    let ret_ty = match &sm.ret {
        Some(t) => Some(lower_ty(p, t)?),
        None => None,
    };
    p.methods.push(Method {
        name: sm.name.clone(),
        class: cid,
        params: param_ids.clone(),
        locals: param_ids,
        ret_ty,
        body: Stmt::Skip,
        removed: false,
    });
    if let Some(c) = cid {
        p.classes[c.index()].methods.push(id);
    }
    let body = lower_block(p, id, &sm.body)?;
    p.methods[id.index()].body = body;
    let cmds = p.method_cmds(id);
    Ok(AppliedEdit::AddedMethod { method: id, cmds })
}

/// Lowers a full statement block (control flow allowed) for a new method.
fn lower_block(p: &mut Program, m: MethodId, stmts: &[SStmt]) -> Result<Stmt, EditError> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            SStmt::If { cond, then_br, else_br, .. } => {
                let c = lower_cond(p, m, cond)?;
                let t = lower_block(p, m, then_br)?;
                let e = lower_block(p, m, else_br)?;
                out.push(Stmt::If { cond: c, then_br: Box::new(t), else_br: Box::new(e) });
            }
            SStmt::While { cond, body, .. } => {
                let c = lower_cond(p, m, cond)?;
                let b = lower_block(p, m, body)?;
                out.push(Stmt::While { cond: c, body: Box::new(b) });
            }
            SStmt::Loop { body } => {
                let b = lower_block(p, m, body)?;
                out.push(Stmt::Loop(Box::new(b)));
            }
            SStmt::Choice { left, right } => {
                let l = lower_block(p, m, left)?;
                let r = lower_block(p, m, right)?;
                out.push(Stmt::Choice(Box::new(l), Box::new(r)));
            }
            simple => match lower_simple(p, m, simple)? {
                LoweredStmt::Var(_) => {}
                LoweredStmt::Cmd(cmd) => {
                    let id = push_cmd(p, m, cmd);
                    out.push(Stmt::Cmd(id));
                }
            },
        }
    }
    Ok(Stmt::Seq(out))
}

fn remove_method(p: &mut Program, spec: &str) -> Result<AppliedEdit, EditError> {
    let m = find_method(p, spec)?;
    if p.entry == Some(m) {
        return err(format!("cannot remove entry method {}", p.method_name(m)));
    }
    let cmds = p.method_cmds(m);
    let class = p.methods[m.index()].class;
    p.methods[m.index()].removed = true;
    if let Some(c) = class {
        p.classes[c.index()].methods.retain(|&x| x != m);
    }
    Ok(AppliedEdit::RemovedMethod { method: m, cmds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::printer::print_program;

    const BASE: &str = r#"
class Cell {
  field val: int;
  field next: Cell;
  method get(this: Cell): int {
    var v: int;
    v = this.val;
    return v;
  }
}
global ROOT: Cell;
fn main() {
  var c: Cell;
  var n: int;
  c = new Cell @cell0;
  $ROOT = c;
  n = call c.get();
  return;
}
entry main;
"#;

    fn base() -> Program {
        parse(BASE).expect("parse base")
    }

    /// Edited programs must round-trip through the printer/parser, proving
    /// the in-place mutation is equivalent to a from-source program.
    fn assert_roundtrips(p: &Program) {
        let text = print_program(p);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("edited program reparses: {e}\n{text}"));
        assert_eq!(text, print_program(&p2));
    }

    #[test]
    fn add_stmt_appends_before_trailing_return() {
        let mut p = base();
        let main = p.free_function("main").unwrap();
        let n_before = p.method_cmds(main).len();
        let applied = apply_edits(
            &mut p,
            &[EditOp::AddStmt { method: "main".into(), at: n_before, text: "n = n + 1;".into() }],
        )
        .expect("apply");
        assert_eq!(applied.len(), 1);
        let cmds = p.method_cmds(main);
        assert_eq!(cmds.len(), n_before + 1);
        // Inserted second-to-last: the trailing return stays final.
        assert!(matches!(p.cmd(*cmds.last().unwrap()), Command::Return { .. }));
        assert_roundtrips(&p);
    }

    #[test]
    fn add_stmt_at_ordinal_inserts_before() {
        let mut p = base();
        let main = p.free_function("main").unwrap();
        apply_edits(
            &mut p,
            &[EditOp::AddStmt { method: "main".into(), at: 1, text: "n = 7;".into() }],
        )
        .expect("apply");
        let cmds = p.method_cmds(main);
        assert!(matches!(p.cmd(cmds[1]), Command::Assign { .. }));
        assert_roundtrips(&p);
    }

    #[test]
    fn add_stmt_with_new_allocation_site() {
        let mut p = base();
        let allocs_before = p.alloc_ids().count();
        apply_edits(
            &mut p,
            &[EditOp::AddStmt {
                method: "main".into(),
                at: 0,
                text: "c = new Cell @cell9;".into(),
            }],
        )
        .expect("apply");
        assert_eq!(p.alloc_ids().count(), allocs_before + 1);
        assert_roundtrips(&p);
    }

    #[test]
    fn duplicate_alloc_site_rejected() {
        let mut p = base();
        let e = apply_edits(
            &mut p,
            &[EditOp::AddStmt {
                method: "main".into(),
                at: 0,
                text: "c = new Cell @cell0;".into(),
            }],
        )
        .unwrap_err();
        assert!(e.message.contains("already exists"), "{e}");
    }

    #[test]
    fn var_decl_adds_local_without_command() {
        let mut p = base();
        let main = p.free_function("main").unwrap();
        let cmds_before = p.method_cmds(main).len();
        let applied = apply_edits(
            &mut p,
            &[
                EditOp::AddStmt { method: "main".into(), at: 0, text: "var t: int;".into() },
                EditOp::AddStmt { method: "main".into(), at: 0, text: "t = 3;".into() },
            ],
        )
        .expect("apply");
        assert!(matches!(applied[0], AppliedEdit::AddedVar { .. }));
        assert!(matches!(applied[1], AppliedEdit::AddedCmd { .. }));
        assert_eq!(p.method_cmds(main).len(), cmds_before + 1);
        assert_roundtrips(&p);
    }

    #[test]
    fn replace_stmt_swaps_command() {
        let mut p = base();
        let main = p.free_function("main").unwrap();
        let old = p.method_cmds(main)[1];
        let applied = apply_edits(
            &mut p,
            &[EditOp::ReplaceStmt { method: "main".into(), at: 1, text: "$ROOT = null;".into() }],
        )
        .expect("apply");
        let AppliedEdit::ReplacedCmd { old: o, new, .. } = &applied[0] else {
            panic!("expected ReplacedCmd")
        };
        assert_eq!(*o, old);
        assert!(matches!(p.cmd(*new), Command::WriteGlobal { .. }));
        // Old command is orphaned but still readable.
        let _ = p.cmd(old);
        assert_roundtrips(&p);
    }

    #[test]
    fn remove_stmt_unlinks_command() {
        let mut p = base();
        let main = p.free_function("main").unwrap();
        let n_before = p.method_cmds(main).len();
        apply_edits(&mut p, &[EditOp::RemoveStmt { method: "main".into(), at: 1 }]).expect("apply");
        assert_eq!(p.method_cmds(main).len(), n_before - 1);
        assert_roundtrips(&p);
    }

    #[test]
    fn add_method_with_control_flow_and_call_it() {
        let mut p = base();
        apply_edits(
            &mut p,
            &[
                EditOp::AddMethod {
                    class: None,
                    text:
                        "fn clamp(x: int): int {\n  if (x > 10) {\n    x = 10;\n  }\n  return x;\n}"
                            .into(),
                },
                EditOp::AddStmt { method: "main".into(), at: 2, text: "n = call clamp(n);".into() },
            ],
        )
        .expect("apply");
        assert!(p.free_function("clamp").is_some());
        assert_roundtrips(&p);
    }

    #[test]
    fn add_instance_method_dispatches() {
        let mut p = base();
        apply_edits(
            &mut p,
            &[
                EditOp::AddMethod {
                    class: Some("Cell".into()),
                    text: "method bump(this: Cell) {\n  var v: int;\n  v = this.val;\n  v = v + 1;\n  this.val = v;\n  return;\n}".into(),
                },
                EditOp::AddStmt { method: "main".into(), at: 2, text: "call c.bump();".into() },
            ],
        )
        .expect("apply");
        let cell = p.class_by_name("Cell").unwrap();
        assert!(p.method_on(cell, "bump").is_some());
        assert_roundtrips(&p);
    }

    #[test]
    fn remove_method_rejects_surviving_callers() {
        let mut p = base();
        // main virtually calls get; removing get leaves the call targetless.
        let e =
            apply_edits(&mut p, &[EditOp::RemoveMethod { method: "Cell.get".into() }]).unwrap_err();
        assert!(e.message.contains("invalid program"), "{e}");
        // Transaction rolled back: get is still there.
        let cell = p.class_by_name("Cell").unwrap();
        assert!(p.method_on(cell, "get").is_some());
    }

    #[test]
    fn remove_method_after_removing_call() {
        let mut p = base();
        apply_edits(
            &mut p,
            &[
                EditOp::RemoveStmt { method: "main".into(), at: 2 },
                EditOp::RemoveMethod { method: "Cell.get".into() },
            ],
        )
        .expect("apply");
        let cell = p.class_by_name("Cell").unwrap();
        assert!(p.method_on(cell, "get").is_none());
        assert_roundtrips(&p);
    }

    #[test]
    fn remove_entry_rejected() {
        let mut p = base();
        let e = apply_edits(&mut p, &[EditOp::RemoveMethod { method: "main".into() }]).unwrap_err();
        assert!(e.message.contains("entry"), "{e}");
    }

    #[test]
    fn failed_batch_rolls_back_everything() {
        let mut p = base();
        let before = print_program(&p);
        let e = apply_edits(
            &mut p,
            &[
                EditOp::AddStmt { method: "main".into(), at: 0, text: "n = 1;".into() },
                EditOp::AddStmt { method: "main".into(), at: 0, text: "bogus = 1;".into() },
            ],
        )
        .unwrap_err();
        assert!(e.message.contains("unknown variable"), "{e}");
        assert_eq!(print_program(&p), before);
    }

    #[test]
    fn control_flow_stmt_rejected() {
        let mut p = base();
        let e = apply_edits(
            &mut p,
            &[EditOp::AddStmt {
                method: "main".into(),
                at: 0,
                text: "if (n > 0) { n = 1; }".into(),
            }],
        )
        .unwrap_err();
        assert!(e.message.contains("control flow"), "{e}");
    }

    #[test]
    fn edits_preserve_existing_cmd_ids() {
        let mut p = base();
        let main = p.free_function("main").unwrap();
        let before = p.method_cmds(main);
        apply_edits(
            &mut p,
            &[EditOp::AddStmt { method: "main".into(), at: 1, text: "n = 5;".into() }],
        )
        .expect("apply");
        let after = p.method_cmds(main);
        // All pre-edit ids survive, in order, with one insertion.
        let surviving: Vec<_> = after.iter().copied().filter(|c| before.contains(c)).collect();
        assert_eq!(surviving, before);
    }
}
