//! Textual front-end for the IR.
//!
//! The grammar (emitted by [`crate::print_program`]):
//!
//! ```text
//! program   := item*
//! item      := class | global | fn | entry
//! class     := "class" IDENT ("extends" IDENT)? "{" member* "}"
//! member    := "field" IDENT ":" ty ";" | method
//! method    := "method" IDENT "(" params ")" (":" ty)? block
//! fn        := "fn" IDENT "(" params ")" (":" ty)? block
//! global    := "global" IDENT ":" ty ";"
//! entry     := "entry" IDENT ";"
//! ty        := "int" | "array" | IDENT
//! block     := "{" stmt* "}"
//! stmt      := "var" IDENT ":" ty ";"
//!            | "if" "(" cond ")" block ("else" block)?
//!            | "while" "(" cond ")" block
//!            | "loop" block
//!            | "choice" block "or" block
//!            | "return" operand? ";"
//!            | "assume" cond ";"
//!            | "call" callexpr ";"
//!            | lvalue "=" rvalue ";"
//! lvalue    := IDENT | IDENT "." IDENT | IDENT "[" operand "]" | "$" IDENT
//! rvalue    := "null" | INT | "new" IDENT "@" IDENT
//!            | "newarray" "@" IDENT "[" operand "]"
//!            | "call" callexpr | "len" "(" IDENT ")" | "$" IDENT
//!            | IDENT "." IDENT | IDENT "[" operand "]"
//!            | operand (("+"|"-"|"*") operand)?
//! callexpr  := IDENT "." IDENT "(" operands ")"          (virtual)
//!            | (IDENT "::")? IDENT "(" operands ")"       (static)
//! cond      := "*" | "true" | operand cmpop operand
//! operand   := IDENT | INT | "-" INT | "null"
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::builder::{MethodBuilder, ProgramBuilder};
use crate::ids::{ClassId, MethodId, VarId};
use crate::program::{Program, Ty};
use crate::stmt::{BinOp, CmpOp, Cond, Operand};

/// A parse or name-resolution error, with a 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// 1-based column where the error was detected; 0 when the error has no
    /// precise column (e.g. name-resolution errors reported per line).
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(f, "line {}:{}: {}", self.line, self.column, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

// ---------------------------------------------------------------- lexer

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    Punct(&'static str),
    Eof,
}

#[derive(Clone, Debug)]
pub(crate) struct SpannedTok {
    pub(crate) tok: Tok,
    line: usize,
    column: usize,
}

pub(crate) fn lex(src: &str) -> PResult<Vec<SpannedTok>> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut line_start = 0usize;
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let column = i - line_start + 1;
        match c {
            '\n' => {
                line += 1;
                line_start = i + 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                out.push(SpannedTok { tok: Tok::Ident(src[start..i].to_owned()), line, column });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = src[start..i].parse().map_err(|_| ParseError {
                    line,
                    column,
                    message: format!("integer literal out of range: {}", &src[start..i]),
                })?;
                out.push(SpannedTok { tok: Tok::Int(n), line, column });
            }
            _ => {
                let two = if i + 1 < bytes.len() { &src[i..i + 2] } else { "" };
                let p2: Option<&'static str> = match two {
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "::" => Some("::"),
                    _ => None,
                };
                if let Some(p) = p2 {
                    out.push(SpannedTok { tok: Tok::Punct(p), line, column });
                    i += 2;
                    continue;
                }
                let p1: Option<&'static str> = match c {
                    '{' => Some("{"),
                    '}' => Some("}"),
                    '(' => Some("("),
                    ')' => Some(")"),
                    '[' => Some("["),
                    ']' => Some("]"),
                    ';' => Some(";"),
                    ':' => Some(":"),
                    ',' => Some(","),
                    '.' => Some("."),
                    '=' => Some("="),
                    '<' => Some("<"),
                    '>' => Some(">"),
                    '+' => Some("+"),
                    '-' => Some("-"),
                    '*' => Some("*"),
                    '@' => Some("@"),
                    '$' => Some("$"),
                    _ => None,
                };
                match p1 {
                    Some(p) => {
                        out.push(SpannedTok { tok: Tok::Punct(p), line, column });
                        i += 1;
                    }
                    None => {
                        return Err(ParseError {
                            line,
                            column,
                            message: format!("unexpected character {c:?}"),
                        })
                    }
                }
            }
        }
    }
    out.push(SpannedTok { tok: Tok::Eof, line, column: bytes.len() - line_start + 1 });
    Ok(out)
}

// ---------------------------------------------------------- surface AST

#[derive(Debug)]
struct SProgram {
    classes: Vec<SClass>,
    globals: Vec<(String, STy, usize)>,
    fns: Vec<SMethod>,
    entry: Option<(String, usize)>,
}

#[derive(Debug)]
struct SClass {
    name: String,
    superclass: Option<String>,
    fields: Vec<(String, STy, usize)>,
    methods: Vec<SMethod>,
    line: usize,
}

#[derive(Debug)]
pub(crate) struct SMethod {
    pub(crate) name: String,
    pub(crate) params: Vec<(String, STy)>,
    pub(crate) ret: Option<STy>,
    pub(crate) body: Vec<SStmt>,
    pub(crate) line: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum STy {
    Int,
    Array,
    Class(String),
}

#[derive(Debug)]
pub(crate) enum SStmt {
    VarDecl { name: String, ty: STy, line: usize },
    If { cond: SCond, then_br: Vec<SStmt>, else_br: Vec<SStmt>, line: usize },
    While { cond: SCond, body: Vec<SStmt>, line: usize },
    Loop { body: Vec<SStmt> },
    Choice { left: Vec<SStmt>, right: Vec<SStmt> },
    Return { val: Option<SOperand>, line: usize },
    Assume { cond: SCond, line: usize },
    CallStmt { dst: Option<String>, call: SCall, line: usize },
    Assign { lhs: SLvalue, rhs: SRvalue, line: usize },
}

#[derive(Debug)]
pub(crate) enum SLvalue {
    Var(String),
    Field(String, String),
    Index(String, SOperand),
    Global(String),
}

#[derive(Debug)]
pub(crate) enum SRvalue {
    Operand(SOperand),
    BinOp(BinOp, SOperand, SOperand),
    Field(String, String),
    Index(String, SOperand),
    Global(String),
    New { class: String, site: String },
    NewArray { site: String, len: SOperand },
    Len(String),
}

#[derive(Debug)]
pub(crate) enum SCall {
    Virtual { receiver: String, method: String, args: Vec<SOperand> },
    Static { class: Option<String>, method: String, args: Vec<SOperand> },
}

#[derive(Clone, Debug)]
pub(crate) enum SOperand {
    Var(String),
    Int(i64),
    Null,
}

#[derive(Debug)]
pub(crate) enum SCond {
    Nondet,
    True,
    Cmp(CmpOp, SOperand, SOperand),
}

// --------------------------------------------------------------- parser

pub(crate) struct Parser {
    pub(crate) toks: Vec<SpannedTok>,
    pub(crate) pos: usize,
}

impl Parser {
    pub(crate) fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    pub(crate) fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn column(&self) -> usize {
        self.toks[self.pos].column
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError { line: self.line(), column: self.column(), message: message.into() })
    }

    fn expect_punct(&mut self, p: &'static str) -> PResult<()> {
        match self.bump() {
            Tok::Punct(q) if q == p => Ok(()),
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                column: self.toks[self.pos.saturating_sub(1)].column,
                message: format!("expected `{p}`, found {other:?}"),
            }),
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                column: self.toks[self.pos.saturating_sub(1)].column,
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    /// Parses `IDENT ('.' IDENT)*` — global names may be dotted
    /// (`Class.field` convention).
    fn dotted_ident(&mut self) -> PResult<String> {
        let mut name = self.ident()?;
        while matches!(self.peek(), Tok::Punct(".")) {
            self.bump();
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    pub(crate) fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn parse_program(&mut self) -> PResult<SProgram> {
        let mut p =
            SProgram { classes: Vec::new(), globals: Vec::new(), fns: Vec::new(), entry: None };
        loop {
            if matches!(self.peek(), Tok::Eof) {
                break;
            }
            let line = self.line();
            if self.eat_kw("class") {
                p.classes.push(self.parse_class(line)?);
            } else if self.eat_kw("global") {
                let name = self.dotted_ident()?;
                self.expect_punct(":")?;
                let ty = self.parse_ty()?;
                self.expect_punct(";")?;
                p.globals.push((name, ty, line));
            } else if self.eat_kw("fn") {
                p.fns.push(self.parse_method(line)?);
            } else if self.eat_kw("entry") {
                let name = self.ident()?;
                self.expect_punct(";")?;
                p.entry = Some((name, line));
            } else {
                return self.err(format!("expected item, found {:?}", self.peek()));
            }
        }
        Ok(p)
    }

    fn parse_class(&mut self, line: usize) -> PResult<SClass> {
        let name = self.ident()?;
        let superclass = if self.eat_kw("extends") { Some(self.ident()?) } else { None };
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        loop {
            let line = self.line();
            if self.eat_punct("}") {
                break;
            } else if self.eat_kw("field") {
                let fname = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.parse_ty()?;
                self.expect_punct(";")?;
                fields.push((fname, ty, line));
            } else if self.eat_kw("method") {
                methods.push(self.parse_method(line)?);
            } else {
                return self.err(format!("expected class member, found {:?}", self.peek()));
            }
        }
        Ok(SClass { name, superclass, fields, methods, line })
    }

    fn parse_ty(&mut self) -> PResult<STy> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "int" => STy::Int,
            "array" => STy::Array,
            _ => STy::Class(name),
        })
    }

    pub(crate) fn parse_method(&mut self, line: usize) -> PResult<SMethod> {
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pname = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.parse_ty()?;
                params.push((pname, ty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let ret = if self.eat_punct(":") { Some(self.parse_ty()?) } else { None };
        let body = self.parse_block()?;
        Ok(SMethod { name, params, ret, body, line })
    }

    fn parse_block(&mut self) -> PResult<Vec<SStmt>> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    pub(crate) fn parse_stmt(&mut self) -> PResult<SStmt> {
        let line = self.line();
        if self.eat_kw("var") {
            let name = self.ident()?;
            self.expect_punct(":")?;
            let ty = self.parse_ty()?;
            self.expect_punct(";")?;
            return Ok(SStmt::VarDecl { name, ty, line });
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.parse_cond()?;
            self.expect_punct(")")?;
            let then_br = self.parse_block()?;
            let else_br = if self.eat_kw("else") { self.parse_block()? } else { Vec::new() };
            return Ok(SStmt::If { cond, then_br, else_br, line });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.parse_cond()?;
            self.expect_punct(")")?;
            let body = self.parse_block()?;
            return Ok(SStmt::While { cond, body, line });
        }
        if self.eat_kw("loop") {
            let body = self.parse_block()?;
            return Ok(SStmt::Loop { body });
        }
        if self.eat_kw("choice") {
            let left = self.parse_block()?;
            if !self.eat_kw("or") {
                return self.err("expected `or` after choice block");
            }
            let right = self.parse_block()?;
            return Ok(SStmt::Choice { left, right });
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(SStmt::Return { val: None, line });
            }
            let val = self.parse_operand()?;
            self.expect_punct(";")?;
            return Ok(SStmt::Return { val: Some(val), line });
        }
        if self.eat_kw("assume") {
            let cond = self.parse_cond()?;
            self.expect_punct(";")?;
            return Ok(SStmt::Assume { cond, line });
        }
        if self.eat_kw("call") {
            let call = self.parse_callexpr()?;
            self.expect_punct(";")?;
            return Ok(SStmt::CallStmt { dst: None, call, line });
        }
        // Assignment forms.
        if self.eat_punct("$") {
            let g = self.dotted_ident()?;
            self.expect_punct("=")?;
            let rhs = self.parse_rvalue()?;
            self.expect_punct(";")?;
            return Ok(SStmt::Assign { lhs: SLvalue::Global(g), rhs, line });
        }
        let name = self.ident()?;
        if self.eat_punct(".") {
            let f = self.ident()?;
            self.expect_punct("=")?;
            let rhs = self.parse_rvalue()?;
            self.expect_punct(";")?;
            return Ok(SStmt::Assign { lhs: SLvalue::Field(name, f), rhs, line });
        }
        if self.eat_punct("[") {
            let idx = self.parse_operand()?;
            self.expect_punct("]")?;
            self.expect_punct("=")?;
            let rhs = self.parse_rvalue()?;
            self.expect_punct(";")?;
            return Ok(SStmt::Assign { lhs: SLvalue::Index(name, idx), rhs, line });
        }
        self.expect_punct("=")?;
        if self.eat_kw("call") {
            let call = self.parse_callexpr()?;
            self.expect_punct(";")?;
            return Ok(SStmt::CallStmt { dst: Some(name), call, line });
        }
        let rhs = self.parse_rvalue()?;
        self.expect_punct(";")?;
        Ok(SStmt::Assign { lhs: SLvalue::Var(name), rhs, line })
    }

    fn parse_callexpr(&mut self) -> PResult<SCall> {
        let first = self.ident()?;
        if self.eat_punct(".") {
            let method = self.ident()?;
            let args = self.parse_args()?;
            return Ok(SCall::Virtual { receiver: first, method, args });
        }
        if self.eat_punct("::") {
            let method = self.ident()?;
            let args = self.parse_args()?;
            return Ok(SCall::Static { class: Some(first), method, args });
        }
        let args = self.parse_args()?;
        Ok(SCall::Static { class: None, method: first, args })
    }

    fn parse_args(&mut self) -> PResult<Vec<SOperand>> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.parse_operand()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(args)
    }

    fn parse_rvalue(&mut self) -> PResult<SRvalue> {
        if self.eat_kw("null") {
            return Ok(SRvalue::Operand(SOperand::Null));
        }
        if self.eat_kw("new") {
            let class = self.ident()?;
            self.expect_punct("@")?;
            let site = self.ident()?;
            return Ok(SRvalue::New { class, site });
        }
        if self.eat_kw("newarray") {
            self.expect_punct("@")?;
            let site = self.ident()?;
            self.expect_punct("[")?;
            let len = self.parse_operand()?;
            self.expect_punct("]")?;
            return Ok(SRvalue::NewArray { site, len });
        }
        if self.eat_kw("len") {
            self.expect_punct("(")?;
            let arr = self.ident()?;
            self.expect_punct(")")?;
            return Ok(SRvalue::Len(arr));
        }
        if self.eat_punct("$") {
            let g = self.dotted_ident()?;
            return Ok(SRvalue::Global(g));
        }
        // operand-led forms
        if matches!(self.peek(), Tok::Ident(_)) && matches!(self.peek2(), Tok::Punct(".")) {
            let base = self.ident()?;
            self.expect_punct(".")?;
            let f = self.ident()?;
            return Ok(SRvalue::Field(base, f));
        }
        if matches!(self.peek(), Tok::Ident(_)) && matches!(self.peek2(), Tok::Punct("[")) {
            let base = self.ident()?;
            self.expect_punct("[")?;
            let idx = self.parse_operand()?;
            self.expect_punct("]")?;
            return Ok(SRvalue::Index(base, idx));
        }
        let lhs = self.parse_operand()?;
        let op = match self.peek() {
            Tok::Punct("+") => Some(BinOp::Add),
            Tok::Punct("-") => Some(BinOp::Sub),
            Tok::Punct("*") => Some(BinOp::Mul),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_operand()?;
            return Ok(SRvalue::BinOp(op, lhs, rhs));
        }
        Ok(SRvalue::Operand(lhs))
    }

    fn parse_operand(&mut self) -> PResult<SOperand> {
        match self.bump() {
            Tok::Ident(s) if s == "null" => Ok(SOperand::Null),
            Tok::Ident(s) => Ok(SOperand::Var(s)),
            Tok::Int(n) => Ok(SOperand::Int(n)),
            Tok::Punct("-") => match self.bump() {
                Tok::Int(n) => Ok(SOperand::Int(-n)),
                other => Err(ParseError {
                    line: self.toks[self.pos.saturating_sub(1)].line,
                    column: 0,
                    message: format!("expected integer after `-`, found {other:?}"),
                }),
            },
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                column: 0,
                message: format!("expected operand, found {other:?}"),
            }),
        }
    }

    fn parse_cond(&mut self) -> PResult<SCond> {
        if self.eat_punct("*") {
            return Ok(SCond::Nondet);
        }
        if matches!(self.peek(), Tok::Ident(s) if s == "true") {
            self.bump();
            return Ok(SCond::True);
        }
        let lhs = self.parse_operand()?;
        let op = match self.bump() {
            Tok::Punct("==") => CmpOp::Eq,
            Tok::Punct("!=") => CmpOp::Ne,
            Tok::Punct("<") => CmpOp::Lt,
            Tok::Punct("<=") => CmpOp::Le,
            Tok::Punct(">") => CmpOp::Gt,
            Tok::Punct(">=") => CmpOp::Ge,
            other => {
                return Err(ParseError {
                    line: self.toks[self.pos.saturating_sub(1)].line,
                    column: 0,
                    message: format!("expected comparison operator, found {other:?}"),
                })
            }
        };
        let rhs = self.parse_operand()?;
        Ok(SCond::Cmp(op, lhs, rhs))
    }
}

// ------------------------------------------------------------- lowering

struct Lowerer {
    class_ids: HashMap<String, ClassId>,
    global_ids: HashMap<String, crate::ids::GlobalId>,
    // (class name or "", method name) -> id
    method_ids: HashMap<(String, String), MethodId>,
}

impl Lowerer {
    fn ty(&self, b: &ProgramBuilder, sty: &STy, line: usize) -> PResult<Ty> {
        Ok(match sty {
            STy::Int => Ty::Int,
            STy::Array => Ty::Ref(b.array_class()),
            STy::Class(name) => Ty::Ref(*self.class_ids.get(name).ok_or_else(|| ParseError {
                line,
                column: 0,
                message: format!("unknown class {name}"),
            })?),
        })
    }
}

struct BodyCx<'l> {
    lower: &'l Lowerer,
    vars: HashMap<String, VarId>,
}

impl<'l> BodyCx<'l> {
    fn var(&self, name: &str, line: usize) -> PResult<VarId> {
        self.vars.get(name).copied().ok_or_else(|| ParseError {
            line,
            column: 0,
            message: format!("unknown variable {name}"),
        })
    }

    fn operand(&self, o: &SOperand, line: usize) -> PResult<Operand> {
        Ok(match o {
            SOperand::Var(name) => Operand::Var(self.var(name, line)?),
            SOperand::Int(n) => Operand::Int(*n),
            SOperand::Null => Operand::Null,
        })
    }

    fn cond(&self, c: &SCond, line: usize) -> PResult<Cond> {
        Ok(match c {
            SCond::Nondet => Cond::Nondet,
            SCond::True => Cond::True,
            SCond::Cmp(op, l, r) => {
                Cond::Cmp { op: *op, lhs: self.operand(l, line)?, rhs: self.operand(r, line)? }
            }
        })
    }
}

/// Parses the textual IR syntax into a validated [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical, syntactic, or name-resolution
/// failures, and on validation failures (reported at line 0).
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut parser = Parser { toks, pos: 0 };
    let sp = parser.parse_program()?;

    let mut b = ProgramBuilder::new();
    let mut lower = Lowerer {
        class_ids: HashMap::new(),
        global_ids: HashMap::new(),
        method_ids: HashMap::new(),
    };
    lower.class_ids.insert("Object".to_owned(), b.object_class());
    lower.class_ids.insert("Array".to_owned(), b.array_class());

    // Pass 1a: declare classes (two rounds so `extends` may be forward).
    for sc in &sp.classes {
        if lower.class_ids.contains_key(&sc.name) {
            return Err(ParseError {
                line: sc.line,
                column: 0,
                message: format!("duplicate class {}", sc.name),
            });
        }
        let id = b.class(&sc.name, None);
        lower.class_ids.insert(sc.name.clone(), id);
    }
    for sc in &sp.classes {
        if let Some(sup) = &sc.superclass {
            let sup_id = *lower.class_ids.get(sup).ok_or_else(|| ParseError {
                line: sc.line,
                column: 0,
                message: format!("unknown superclass {sup}"),
            })?;
            let id = lower.class_ids[&sc.name];
            b.set_superclass(id, sup_id);
        }
    }
    // Pass 1b: fields, globals, method signatures.
    for sc in &sp.classes {
        let cid = lower.class_ids[&sc.name];
        for (fname, fty, line) in &sc.fields {
            let ty = lower.ty(&b, fty, *line)?;
            b.field(cid, fname, ty);
        }
    }
    for (gname, gty, line) in &sp.globals {
        let ty = lower.ty(&b, gty, *line)?;
        let id = b.global(gname, ty);
        lower.global_ids.insert(gname.clone(), id);
    }
    let declare = |b: &mut ProgramBuilder,
                   lower: &Lowerer,
                   class: Option<ClassId>,
                   sm: &SMethod|
     -> PResult<MethodId> {
        let mut params: Vec<(String, Ty)> = Vec::new();
        for (i, (pname, pty)) in sm.params.iter().enumerate() {
            // For instance methods the explicit `this` param in source is
            // dropped (the builder creates it).
            if class.is_some() && i == 0 {
                if pname != "this" {
                    return Err(ParseError {
                        line: sm.line,
                        column: 0,
                        message: format!("first parameter of method {} must be `this`", sm.name),
                    });
                }
                continue;
            }
            params.push((pname.clone(), lower.ty(b, pty, sm.line)?));
        }
        let params_ref: Vec<(&str, Ty)> = params.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let ret = match &sm.ret {
            Some(t) => Some(lower.ty(b, t, sm.line)?),
            None => None,
        };
        Ok(b.declare_method(class, &sm.name, &params_ref, ret))
    };
    for sc in &sp.classes {
        let cid = lower.class_ids[&sc.name];
        for sm in &sc.methods {
            let id = declare(&mut b, &lower, Some(cid), sm)?;
            lower.method_ids.insert((sc.name.clone(), sm.name.clone()), id);
        }
    }
    for sm in &sp.fns {
        let id = declare(&mut b, &lower, None, sm)?;
        lower.method_ids.insert((String::new(), sm.name.clone()), id);
    }

    // Pass 2: bodies.
    for sc in &sp.classes {
        for sm in &sc.methods {
            let id = lower.method_ids[&(sc.name.clone(), sm.name.clone())];
            lower_body(&mut b, &lower, id, sm)?;
        }
    }
    for sm in &sp.fns {
        let id = lower.method_ids[&(String::new(), sm.name.clone())];
        lower_body(&mut b, &lower, id, sm)?;
    }

    if let Some((entry, line)) = &sp.entry {
        let id =
            *lower.method_ids.get(&(String::new(), entry.clone())).ok_or_else(|| ParseError {
                line: *line,
                column: 0,
                message: format!("unknown entry function {entry}"),
            })?;
        b.set_entry(id);
    }

    b.try_finish().map_err(|e| ParseError { line: 0, column: 0, message: e.message })
}

fn lower_body(b: &mut ProgramBuilder, lower: &Lowerer, id: MethodId, sm: &SMethod) -> PResult<()> {
    let mut result: PResult<()> = Ok(());
    b.define_method(id, |mb| {
        let mut cx = BodyCx { lower, vars: HashMap::new() };
        // Bind parameters (including implicit this).
        for &p in mb.params() {
            cx.vars.insert(mb.var_name(p), p);
        }
        result = lower_in(&mut cx, mb, &sm.body);
    });
    result
}

fn lower_in(cx: &mut BodyCx, mb: &mut MethodBuilder, stmts: &[SStmt]) -> PResult<()> {
    for s in stmts {
        match s {
            SStmt::VarDecl { name, ty, line } => {
                let t = cx.lower.ty(mb.program_builder(), ty, *line)?;
                let v = mb.var(name, t);
                cx.vars.insert(name.clone(), v);
            }
            SStmt::If { cond, then_br, else_br, line } => {
                let c = cx.cond(cond, *line)?;
                mb.begin_block();
                let r1 = lower_in(cx, mb, then_br);
                let t = mb.end_block();
                mb.begin_block();
                let r2 = lower_in(cx, mb, else_br);
                let e = mb.end_block();
                r1?;
                r2?;
                mb.push_if(c, t, e);
            }
            SStmt::While { cond, body, line } => {
                let c = cx.cond(cond, *line)?;
                mb.begin_block();
                let r = lower_in(cx, mb, body);
                let body_s = mb.end_block();
                r?;
                mb.push_while(c, body_s);
            }
            SStmt::Loop { body } => {
                mb.begin_block();
                let r = lower_in(cx, mb, body);
                let body_s = mb.end_block();
                r?;
                mb.push_loop(body_s);
            }
            SStmt::Choice { left, right } => {
                mb.begin_block();
                let r1 = lower_in(cx, mb, left);
                let l = mb.end_block();
                mb.begin_block();
                let r2 = lower_in(cx, mb, right);
                let rgt = mb.end_block();
                r1?;
                r2?;
                mb.push_choice(l, rgt);
            }
            SStmt::Return { val, line } => match val {
                Some(v) => {
                    let o = cx.operand(v, *line)?;
                    mb.ret(o);
                }
                None => {
                    mb.ret_void();
                }
            },
            SStmt::Assume { cond, line } => {
                let c = cx.cond(cond, *line)?;
                mb.assume(c);
            }
            SStmt::CallStmt { dst, call, line } => {
                let dst_v = match dst {
                    Some(name) => Some(cx.var(name, *line)?),
                    None => None,
                };
                lower_call(cx, mb, dst_v, call, *line)?;
            }
            SStmt::Assign { lhs, rhs, line } => lower_assign(cx, mb, lhs, rhs, *line)?,
        }
    }
    Ok(())
}

fn field_of(
    cx: &BodyCx,
    mb: &MethodBuilder,
    base: VarId,
    fname: &str,
    line: usize,
) -> PResult<crate::ids::FieldId> {
    let class = match mb.var_ty(base) {
        Ty::Ref(c) => c,
        Ty::Int => {
            return Err(ParseError {
                line,
                column: 0,
                message: format!("field access on integer variable {}", mb.var_name(base)),
            })
        }
    };
    let _ = cx;
    mb.resolve_field(class, fname).ok_or_else(|| ParseError {
        line,
        column: 0,
        message: format!("no field {fname} on class of {}", mb.var_name(base)),
    })
}

fn lower_assign(
    cx: &mut BodyCx,
    mb: &mut MethodBuilder,
    lhs: &SLvalue,
    rhs: &SRvalue,
    line: usize,
) -> PResult<()> {
    match lhs {
        SLvalue::Var(name) => {
            let dst = cx.var(name, line)?;
            match rhs {
                SRvalue::Operand(o) => {
                    let o = cx.operand(o, line)?;
                    mb.assign(dst, o);
                }
                SRvalue::BinOp(op, l, r) => {
                    let l = cx.operand(l, line)?;
                    let r = cx.operand(r, line)?;
                    mb.binop(dst, *op, l, r);
                }
                SRvalue::Field(base, f) => {
                    let b_v = cx.var(base, line)?;
                    let fid = field_of(cx, mb, b_v, f, line)?;
                    mb.read_field(dst, b_v, fid);
                }
                SRvalue::Index(base, idx) => {
                    let b_v = cx.var(base, line)?;
                    let idx = cx.operand(idx, line)?;
                    mb.read_array(dst, b_v, idx);
                }
                SRvalue::Global(g) => {
                    let gid = *cx.lower.global_ids.get(g).ok_or_else(|| ParseError {
                        line,
                        column: 0,
                        message: format!("unknown global {g}"),
                    })?;
                    mb.read_global(dst, gid);
                }
                SRvalue::New { class, site } => {
                    let cid = *cx.lower.class_ids.get(class).ok_or_else(|| ParseError {
                        line,
                        column: 0,
                        message: format!("unknown class {class}"),
                    })?;
                    mb.new_obj(dst, cid, site);
                }
                SRvalue::NewArray { site, len } => {
                    let len = cx.operand(len, line)?;
                    mb.new_array(dst, site, len);
                }
                SRvalue::Len(arr) => {
                    let a = cx.var(arr, line)?;
                    mb.array_len(dst, a);
                }
            }
        }
        SLvalue::Field(base, f) => {
            let b_v = cx.var(base, line)?;
            let fid = field_of(cx, mb, b_v, f, line)?;
            let src = rvalue_as_operand(cx, rhs, line)?;
            mb.write_field(b_v, fid, src);
        }
        SLvalue::Index(base, idx) => {
            let b_v = cx.var(base, line)?;
            let idx = cx.operand(idx, line)?;
            let src = rvalue_as_operand(cx, rhs, line)?;
            mb.write_array(b_v, idx, src);
        }
        SLvalue::Global(g) => {
            let gid = *cx.lower.global_ids.get(g).ok_or_else(|| ParseError {
                line,
                column: 0,
                message: format!("unknown global {g}"),
            })?;
            let src = rvalue_as_operand(cx, rhs, line)?;
            mb.write_global(gid, src);
        }
    }
    Ok(())
}

fn rvalue_as_operand(cx: &BodyCx, rhs: &SRvalue, line: usize) -> PResult<Operand> {
    match rhs {
        SRvalue::Operand(o) => cx.operand(o, line),
        _ => Err(ParseError {
            line,
            column: 0,
            message: "compound right-hand side not allowed here; use a temporary".to_owned(),
        }),
    }
}

fn lower_call(
    cx: &mut BodyCx,
    mb: &mut MethodBuilder,
    dst: Option<VarId>,
    call: &SCall,
    line: usize,
) -> PResult<()> {
    match call {
        SCall::Virtual { receiver, method, args } => {
            let recv = cx.var(receiver, line)?;
            let args: Vec<Operand> =
                args.iter().map(|a| cx.operand(a, line)).collect::<PResult<_>>()?;
            mb.call_virtual(dst, recv, method, &args);
        }
        SCall::Static { class, method, args } => {
            let key = (class.clone().unwrap_or_default(), method.clone());
            let mid = *cx.lower.method_ids.get(&key).ok_or_else(|| ParseError {
                line,
                column: 0,
                message: format!(
                    "unknown function {}{}",
                    class.as_deref().map(|c| format!("{c}::")).unwrap_or_default(),
                    method
                ),
            })?;
            let args: Vec<Operand> =
                args.iter().map(|a| cx.operand(a, line)).collect::<PResult<_>>()?;
            mb.call_static(dst, mid, &args);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_program;

    const SAMPLE: &str = r#"
class Cell {
  field val: int;
  field next: Cell;
  method get(this: Cell): int {
    var v: int;
    v = this.val;
    return v;
  }
}
global ROOT: Cell;
fn main() {
  var c: Cell;
  var n: int;
  c = new Cell @cell0;
  c.val = 3;
  $ROOT = c;
  n = call c.get();
  assume n < 10;
  if (n == 3) {
    n = n + 1;
  } else {
    n = 0;
  }
  while (n < 5) {
    n = n + 1;
  }
  return;
}
entry main;
"#;

    #[test]
    fn parses_sample_program() {
        let p = parse(SAMPLE).expect("parse");
        assert!(p.class_by_name("Cell").is_some());
        assert!(p.global_by_name("ROOT").is_some());
        assert_eq!(p.method(p.entry()).name, "main");
    }

    #[test]
    fn print_parse_roundtrip_is_stable() {
        let p1 = parse(SAMPLE).expect("parse 1");
        let text1 = print_program(&p1);
        let p2 = parse(&text1).expect("parse 2");
        let text2 = print_program(&p2);
        assert_eq!(text1, text2);
    }

    #[test]
    fn reports_unknown_variable_with_line() {
        let err = parse("fn main() { x = 3; } entry main;").unwrap_err();
        assert!(err.message.contains("unknown variable x"), "{err}");
    }

    #[test]
    fn reports_unknown_class() {
        let err = parse("fn main() { var x: Nope; } entry main;").unwrap_err();
        assert!(err.message.contains("unknown class Nope"), "{err}");
    }

    #[test]
    fn parses_choice_and_loop() {
        let src = r#"
fn main() {
  var n: int;
  n = 0;
  choice {
    n = 1;
  } or {
    n = 2;
  }
  loop {
    n = n + 1;
  }
}
entry main;
"#;
        let p = parse(src).expect("parse");
        let cmds = p.method_cmds(p.entry());
        assert_eq!(cmds.len(), 4);
    }

    #[test]
    fn parses_arrays_and_len() {
        let src = r#"
fn main() {
  var a: array;
  var x: Object;
  var n: int;
  a = newarray @arr0 [10];
  n = len(a);
  a[0] = null;
  x = a[n];
}
entry main;
"#;
        let p = parse(src).expect("parse");
        assert_eq!(p.alloc_ids().count(), 1);
    }

    #[test]
    fn rejects_compound_rhs_in_field_write() {
        let src = r#"
class C { field f: int; }
fn main() {
  var c: C;
  c = new C @c0;
  c.f = 1 + 2;
}
entry main;
"#;
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("use a temporary"), "{err}");
    }

    #[test]
    fn virtual_dispatch_call_parses() {
        let src = r#"
class A {
  method go(this: A): int { return 1; }
}
class B extends A {
  method go(this: B): int { return 2; }
}
fn main() {
  var a: A;
  var r: int;
  choice { a = new A @a0; } or { a = new B @b0; }
  r = call a.go();
}
entry main;
"#;
        let p = parse(src).expect("parse");
        let a = p.class_by_name("A").unwrap();
        let b = p.class_by_name("B").unwrap();
        assert!(p.is_subclass(b, a));
    }
}
