//! Well-formedness checks run by [`ProgramBuilder::finish`](crate::ProgramBuilder::finish)
//! and [`crate::parse`].

use std::fmt;

use crate::ids::{MethodId, VarId};
use crate::program::{Program, Ty};
use crate::stmt::{Callee, Command, Operand, Stmt};

/// A program well-formedness violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValidateError {}

fn err<T>(message: impl Into<String>) -> Result<T, ValidateError> {
    Err(ValidateError { message: message.into() })
}

/// Validates `program`, returning the first violation found.
///
/// Checked properties:
/// - `Return` appears only as the final statement of a method body (the
///   backwards executor relies on this);
/// - every variable referenced by a method's commands is owned by that
///   method;
/// - returned values are present exactly when the method declares a return
///   type;
/// - the entry method, if set, takes no parameters;
/// - reference-typed operations are applied to reference-typed variables.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    for m in program.method_ids() {
        if program.method(m).removed {
            continue;
        }
        validate_method(program, m)?;
    }
    if let Some(entry) = program.entry_opt() {
        if program.method(entry).removed {
            return err(format!("entry method {} is removed", program.method_name(entry)));
        }
        if !program.method(entry).params.is_empty() {
            return err(format!(
                "entry method {} must take no parameters",
                program.method_name(entry)
            ));
        }
    }
    Ok(())
}

fn validate_method(program: &Program, m: MethodId) -> Result<(), ValidateError> {
    let method = program.method(m);
    let name = program.method_name(m);

    // Return placement: only allowed as the last top-level statement.
    let cmds = program.method_cmds(m);
    for (i, &c) in cmds.iter().enumerate() {
        if matches!(program.cmd(c), Command::Return { .. }) && i + 1 != cmds.len() {
            return err(format!("{name}: return is not the final command"));
        }
    }
    if let Some(&last) = cmds.last() {
        if let Command::Return { val } = program.cmd(last) {
            match (val, method.ret_ty) {
                (Some(_), None) => {
                    return err(format!("{name}: returns a value but declares none"))
                }
                (None, Some(_)) => {
                    return err(format!("{name}: declares a return type but returns nothing"))
                }
                _ => {}
            }
        }
        // Return must also be a *top-level* statement, not nested in a branch.
        if let Stmt::Seq(ss) = &method.body {
            let mut nested_ret = false;
            for (i, s) in ss.iter().enumerate() {
                let top_level_last = i + 1 == ss.len() && matches!(s, Stmt::Cmd(_));
                if !top_level_last {
                    s.for_each_cmd(&mut |c| {
                        if matches!(program.cmd(c), Command::Return { .. }) {
                            nested_ret = true;
                        }
                    });
                }
            }
            if nested_ret {
                return err(format!("{name}: return nested inside control flow"));
            }
        }
    }

    let check_var = |v: VarId| -> Result<(), ValidateError> {
        if program.var(v).method != m {
            return err(format!(
                "{name}: variable {} belongs to another method",
                program.var(v).name
            ));
        }
        Ok(())
    };
    let check_ref = |v: VarId, what: &str| -> Result<(), ValidateError> {
        if !program.var(v).ty.is_ref() {
            return err(format!(
                "{name}: {what} requires a reference, got {}",
                program.var(v).name
            ));
        }
        Ok(())
    };

    for &c in &cmds {
        let cmd = program.cmd(c);
        if let Some(d) = cmd.def() {
            check_var(d)?;
        }
        for u in cmd.uses() {
            check_var(u)?;
        }
        match cmd {
            Command::ReadField { obj, .. } => check_ref(*obj, "field read")?,
            Command::WriteField { obj, .. } => check_ref(*obj, "field write")?,
            Command::ReadArray { arr, .. } => check_ref(*arr, "array read")?,
            Command::WriteArray { arr, .. } => check_ref(*arr, "array write")?,
            Command::ArrayLen { arr, .. } => check_ref(*arr, "array length")?,
            Command::New { dst, .. } | Command::NewArray { dst, .. } => {
                check_ref(*dst, "allocation")?
            }
            Command::Call { callee, args, .. } => match callee {
                Callee::Virtual { receiver, method } => {
                    check_ref(*receiver, "virtual call")?;
                    let recv_class = match program.var(*receiver).ty {
                        Ty::Ref(c) => c,
                        Ty::Int => unreachable!("checked by check_ref"),
                    };
                    // At least one class in the cone must define the method.
                    let any = program
                        .subclasses(recv_class)
                        .iter()
                        .any(|&c| program.resolve_method(c, method).is_some());
                    if !any && program.resolve_method(recv_class, method).is_none() {
                        return err(format!("{name}: no target for virtual call {method}"));
                    }
                }
                Callee::Static { method } => {
                    let callee_m = program.method(*method);
                    if callee_m.removed {
                        return err(format!(
                            "{name}: call to removed method {}",
                            program.method_name(*method)
                        ));
                    }
                    let expected = callee_m.params.len() - usize::from(callee_m.class.is_some());
                    // Instance methods called statically (constructors) pass
                    // the receiver as the first explicit argument.
                    let given = args.len() - usize::from(callee_m.class.is_some());
                    if expected != given {
                        return err(format!(
                            "{name}: call to {} passes {} args, expects {}",
                            program.method_name(*method),
                            given,
                            expected
                        ));
                    }
                }
            },
            _ => {}
        }
        for op in operands_of(cmd) {
            if let Operand::Var(v) = op {
                check_var(v)?;
            }
        }
    }
    Ok(())
}

fn operands_of(cmd: &Command) -> Vec<Operand> {
    match cmd {
        Command::Assign { src, .. } => vec![*src],
        Command::BinOp { lhs, rhs, .. } => vec![*lhs, *rhs],
        Command::WriteField { src, .. } => vec![*src],
        Command::WriteGlobal { src, .. } => vec![*src],
        Command::ReadArray { idx, .. } => vec![*idx],
        Command::WriteArray { idx, src, .. } => vec![*idx, *src],
        Command::NewArray { len, .. } => vec![*len],
        Command::Call { args, .. } => args.clone(),
        Command::Return { val } => val.iter().copied().collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::program::Ty;

    #[test]
    fn accepts_wellformed_program() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        let main = b.method(None, "main", &[], None, |mb| {
            let x = mb.var("x", Ty::Ref(c));
            mb.new_obj(x, c, "c0");
            mb.ret_void();
        });
        b.set_entry(main);
        let _ = b.finish(); // no panic
    }

    #[test]
    #[should_panic(expected = "return is not the final command")]
    fn rejects_mid_body_return() {
        let mut b = ProgramBuilder::new();
        b.method(None, "f", &[], None, |mb| {
            let x = mb.var("x", Ty::Int);
            mb.ret_void();
            mb.assign(x, 1);
        });
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "nested inside control flow")]
    fn rejects_nested_return() {
        let mut b = ProgramBuilder::new();
        b.method(None, "f", &[], None, |mb| {
            mb.if_then(crate::stmt::Cond::Nondet, |mb| {
                mb.ret_void();
            });
        });
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "declares a return type but returns nothing")]
    fn rejects_missing_return_value() {
        let mut b = ProgramBuilder::new();
        b.method(None, "f", &[], Some(Ty::Int), |mb| {
            mb.ret_void();
        });
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "must take no parameters")]
    fn rejects_entry_with_params() {
        let mut b = ProgramBuilder::new();
        let m = b.method(None, "main", &[("x", Ty::Int)], None, |mb| {
            mb.ret_void();
        });
        b.set_entry(m);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "no target for virtual call")]
    fn rejects_unresolvable_virtual_call() {
        let mut b = ProgramBuilder::new();
        let c = b.class("C", None);
        b.method(None, "main", &[], None, |mb| {
            let x = mb.var("x", Ty::Ref(c));
            mb.new_obj(x, c, "c0");
            mb.call_virtual(None, x, "nope", &[]);
            mb.ret_void();
        });
        let _ = b.finish();
    }
}
