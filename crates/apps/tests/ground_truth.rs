//! Ground-truth checks: for each benchmark app, the leak client must
//! witness every real leak (soundness) and is expected to refute the
//! designed-refutable alarms (precision).

use android::{paper_annotations, ActivityLeakChecker};
use apps::{builder, suite, BenchApp};

fn field_outcomes(app: &BenchApp, annotated: bool) -> Vec<(String, bool)> {
    let mut checker =
        ActivityLeakChecker::new(&app.program).with_policy(builder::container_policy(app));
    if annotated {
        checker = checker.with_annotations(paper_annotations(&app.lib));
    }
    let report = checker.check();
    report
        .alarms
        .iter()
        .map(|(a, r)| (app.program.global(a.field).name.clone(), r.is_refuted()))
        .collect()
}

fn check_ground_truth(app: &BenchApp, annotated: bool) {
    let outcomes = field_outcomes(app, annotated);
    assert!(!outcomes.is_empty() || app.true_leak_fields.is_empty());
    // Soundness: real leaks are never refuted.
    for leak in &app.true_leak_fields {
        let alarms: Vec<_> = outcomes.iter().filter(|(f, _)| f == leak).collect();
        assert!(
            !alarms.is_empty(),
            "{}: true leak {leak} raised no alarm (annotated={annotated})",
            app.name
        );
        assert!(
            alarms.iter().any(|(_, refuted)| !refuted),
            "{}: true leak {leak} was fully refuted — UNSOUND (annotated={annotated})",
            app.name
        );
    }
    // Designed-unrefutable false alarms must also survive (solver gap).
    for f in &app.unrefutable_false_fields {
        let survived = outcomes.iter().any(|(g, refuted)| g == f && !refuted);
        assert!(
            survived,
            "{}: designed-unrefutable alarm on {f} was refuted (annotated={annotated})",
            app.name
        );
    }
}

#[test]
fn droidlife_all_leaks_witnessed() {
    let app = suite::droidlife();
    check_ground_truth(&app, false);
    let outcomes = field_outcomes(&app, false);
    // DroidLife is all real leaks: nothing should be refuted.
    assert!(outcomes.iter().all(|(_, refuted)| !refuted), "{outcomes:?}");
}

#[test]
fn standuptimer_latent_leaks_refuted() {
    let app = suite::standuptimer();
    check_ground_truth(&app, false);
    let outcomes = field_outcomes(&app, false);
    // The guarded latent leaks must be refuted.
    for f in ["DAO.cachedTimer", "DAO.cachedSettings"] {
        assert!(
            outcomes.iter().filter(|(g, _)| g == f).all(|(_, refuted)| *refuted),
            "latent leak {f} not refuted: {outcomes:?}"
        );
    }
    // And no true leaks exist, so witnessed alarms are exactly the
    // designed-unrefutable ones (plus any pollution the engine missed).
    assert!(outcomes.iter().any(|(_, refuted)| *refuted));
}

#[test]
fn smspopup_mostly_true_leaks() {
    let app = suite::smspopup();
    check_ground_truth(&app, false);
}

#[test]
fn pulsepoint_annotated_and_not() {
    let app = suite::pulsepoint();
    check_ground_truth(&app, false);
    check_ground_truth(&app, true);
}

#[test]
fn opensudoku_annotation_clears_everything() {
    let app = suite::opensudoku();
    let unann = field_outcomes(&app, false);
    let ann = field_outcomes(&app, true);
    // No true leaks in OpenSudoku.
    assert!(app.true_leak_fields.is_empty());
    // The annotation removes the HashMap-pollution alarms entirely.
    assert!(
        ann.len() < unann.len() || unann.is_empty(),
        "annotation should reduce alarms: {} -> {}",
        unann.len(),
        ann.len()
    );
    // Everything that remains annotated must be refuted (no real leaks).
    assert!(
        ann.iter().all(|(_, refuted)| *refuted),
        "annotated OpenSudoku should be fully filtered: {ann:?}"
    );
}

#[test]
fn ametro_shape() {
    let app = suite::ametro();
    check_ground_truth(&app, true);
    let unann = field_outcomes(&app, false);
    let ann = field_outcomes(&app, true);
    assert!(ann.len() < unann.len(), "annotation must shrink aMetro alarms");
}

#[test]
fn k9mail_shape() {
    let app = suite::k9mail();
    check_ground_truth(&app, true);
    let unann = field_outcomes(&app, false);
    let ann = field_outcomes(&app, true);
    assert!(ann.len() < unann.len());
    // Annotated refutation rate must beat the un-annotated one (the
    // paper's 21% -> 63%).
    let rate =
        |v: &[(String, bool)]| v.iter().filter(|(_, r)| *r).count() as f64 / v.len().max(1) as f64;
    assert!(
        rate(&ann) >= rate(&unann),
        "annotated rate {:.2} < unannotated {:.2}",
        rate(&ann),
        rate(&unann)
    );
}

#[test]
fn mega_app_scales_and_stays_sound() {
    let app = apps::suite::mega(8);
    check_ground_truth(&app, true);
    let outcomes = field_outcomes(&app, true);
    // Latent + helper alarms all refuted; only the explicit leaks survive.
    let surviving: Vec<_> = outcomes.iter().filter(|(_, r)| !r).collect();
    assert_eq!(surviving.len(), app.true_leak_fields.len(), "{outcomes:?}");
}
