//! App-scale round-trip: every benchmark app survives `print → parse` with
//! an identical points-to graph, exercising the parser and printer on
//! realistically sized programs.

use apps::suite;

#[test]
fn suite_apps_roundtrip_through_text() {
    for app in suite::all_apps() {
        let text = tir::print_program(&app.program);
        let reparsed =
            tir::parse(&text).unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", app.name));
        assert_eq!(
            app.program.num_cmds(),
            reparsed.num_cmds(),
            "{}: command count changed",
            app.name
        );
        let r1 = pta::analyze(&app.program, pta::ContextPolicy::Insensitive);
        let r2 = pta::analyze(&reparsed, pta::ContextPolicy::Insensitive);
        assert_eq!(r1.dump(&app.program), r2.dump(&reparsed), "{}", app.name);
    }
}

#[test]
fn suite_apps_run_in_the_interpreter() {
    use tir::interp::{Interp, Oracle};
    for app in suite::all_apps() {
        // All-maybe-taken oracle executes every handler.
        let mut interp =
            Interp::new(&app.program, Oracle::scripted(vec![false; 64], vec![1; 16]), 1_000_000);
        let trace = interp.run().unwrap_or_else(|e| panic!("{}: {e}", app.name));
        assert!(trace.allocations > 0, "{}", app.name);
        // Real leaks must concretely materialize: at least one global edge.
        if !app.true_leak_fields.is_empty() {
            assert!(
                !trace.global_edges.is_empty(),
                "{}: expected concrete global stores",
                app.name
            );
        }
    }
}
