//! Null-dereference motifs: Figure 1's `AVec` pattern generalized.
//!
//! The paper's running example (§2, Figure 1) is a growable vector whose
//! backing array holds *default* contents until pushed — exactly the
//! shape that makes naive null reporting noisy and refutation valuable.
//! This module turns that example into a reusable vocabulary for the
//! null-dereference client ([`thresher::NullClient`]-compatible
//! programs; the `core` crate depends on `apps` only in tests, so the
//! coupling is by construction, not by import):
//!
//! - [`NullMotif::VecGet`] — the Figure 1 generalization: `get` on a
//!   slot the straight-line pushes may or may not have written;
//! - [`NullMotif::DeepChain`] — null flows (or provably fails to flow)
//!   through a deep static call chain before the dereference, so every
//!   refutation drags a long call-graph slice into its fingerprint;
//! - [`NullMotif::WideDispatch`] — virtual dispatch over a wide subclass
//!   fan whose overrides read a nullable field; one arm may return
//!   `null` outright;
//! - [`NullMotif::GuardedDeref`] — a satisfiable null flow defused by an
//!   explicit `!= null` guard (the idiomatic defense; refuted by the
//!   engine's null-guard handling, not by the front end).
//!
//! Every builder is a pure function of its arguments — byte-identical
//! programs across calls — because the differential suites compare
//! reports across solvers, job counts, and cache states.

use tir::{CmpOp, Cond, MethodId, Operand, Program, ProgramBuilder, Ty};

/// One null-dereference code pattern. [`NullMotif::expect_alarm`] is the
/// per-motif ground truth the tests pin.
#[derive(Clone, Debug)]
pub enum NullMotif {
    /// Figure 1 generalized: push `pushes` elements into a fresh vector,
    /// then dereference the element read back from slot `read_at`. The
    /// slot is null (never written) iff `read_at >= pushes`.
    VecGet {
        /// Elements pushed (slots `0..pushes` are written).
        pushes: usize,
        /// Slot read back and dereferenced.
        read_at: usize,
    },
    /// A dereference fed through a two-level static call chain (the
    /// deepest value flow the engine's paper-default `max_call_depth`
    /// of 3 resolves without soundly havocking the return), under which
    /// hangs a `depth`-long chain of side-effect-local "noise" calls.
    /// The noise never touches the query — the frame rule skips it —
    /// but every noise function lands in the decision's call-graph
    /// slice, so the cache fingerprint grows with `depth`. With
    /// `null_source`, a non-deterministic choice may leave the source
    /// null (a real alarm); without it, the null assignment is
    /// overwritten by an allocation before the chain, so the backward
    /// walk refutes by separation (`WitNew`: a fresh instance is never
    /// null) while the flow-insensitive front end still flags the site.
    DeepChain {
        /// Length of the noise call chain under the value chain.
        depth: usize,
        /// True: null reaches the chain on a satisfiable path.
        null_source: bool,
    },
    /// Virtual dispatch over `width` subclasses whose `get` overrides
    /// read a nullable `slot` field. With `null_arm = Some(k)`, subclass
    /// `k` returns `null` outright (a real alarm on the dispatch path
    /// that picks it); with `None`, the slot's only null write is behind
    /// a provably-false flag (refutable).
    WideDispatch {
        /// Number of subclasses in the dispatch fan.
        width: usize,
        /// Index of the override that returns `null`, if any.
        null_arm: Option<usize>,
    },
    /// A satisfiable null flow whose dereference is wrapped in
    /// `if (x != null)`: always refutable, never an alarm.
    GuardedDeref,
}

impl NullMotif {
    /// True if the motif contains a reachable null dereference (the
    /// client must report exactly these).
    pub fn expect_alarm(&self) -> bool {
        match self {
            NullMotif::VecGet { pushes, read_at } => read_at >= pushes,
            NullMotif::DeepChain { null_source, .. } => *null_source,
            NullMotif::WideDispatch { null_arm, .. } => null_arm.is_some(),
            NullMotif::GuardedDeref => false,
        }
    }
}

/// Number of alarms the null client must report on
/// [`build_null_program`]`(groups)`.
pub fn expected_alarms(groups: &[(String, Vec<NullMotif>)]) -> usize {
    groups.iter().flat_map(|(_, ms)| ms).filter(|m| m.expect_alarm()).count()
}

/// Per-group shared declarations: one element class and one Figure 1
/// vector (class + free init/push/get) per tag, so distinct groups share
/// nothing — every dereference in group `A` has a call-graph slice
/// disjoint from group `B`'s, the cache-hostile shape.
struct Group {
    elem: tir::ClassId,
    tag_f: tir::FieldId,
    nvec: tir::ClassId,
    tbl_f: tir::FieldId,
    init: MethodId,
}

fn declare_group(b: &mut ProgramBuilder, tag: &str) -> Group {
    let object = b.object_class();
    let array = b.array_class();
    let elem = b.class(&format!("Elem{tag}"), None);
    let tag_f = b.field(elem, &format!("tag{tag}"), Ty::Ref(object));
    let nvec = b.class(&format!("NVec{tag}"), None);
    let tbl_f = b.field(nvec, &format!("tbl{tag}"), Ty::Ref(array));
    let sz_f = b.field(nvec, &format!("sz{tag}"), Ty::Int);
    let init = b.method(
        None,
        &format!("nv_init{tag}"),
        &[("v", Ty::Ref(nvec)), ("cap", Ty::Int)],
        None,
        |mb| {
            let v = mb.param(0);
            let cap = mb.param(1);
            let e = mb.var("e", Ty::Ref(array));
            mb.new_array(e, &format!("nvtbl{tag}"), cap);
            mb.write_field(v, tbl_f, e);
            mb.write_field(v, sz_f, 0);
        },
    );
    // The slot index is a parameter rather than the `sz` field: recovering
    // `sz`'s value backwards through repeated pushes needs arithmetic over
    // unified heap cells the pure solver deliberately approximates, so an
    // index-from-sz push makes *written* slots unrefutable (a false alarm
    // the interp oracle would reject). With the index explicit, the
    // written/unwritten split is exactly the engine's index-disequality
    // reasoning — the precision Figure 1's refutation actually exercises.
    b.method(
        None,
        &format!("nv_push{tag}"),
        &[("v", Ty::Ref(nvec)), ("i", Ty::Int), ("x", Ty::Ref(elem))],
        None,
        |mb| {
            let v = mb.param(0);
            let i = mb.param(1);
            let x = mb.param(2);
            let t = mb.var("t", Ty::Ref(array));
            let s = mb.var("s", Ty::Int);
            let s2 = mb.var("s2", Ty::Int);
            mb.read_field(t, v, tbl_f);
            mb.write_array(t, i, x);
            mb.read_field(s, v, sz_f);
            mb.binop(s2, tir::BinOp::Add, s, 1);
            mb.write_field(v, sz_f, s2);
        },
    );
    b.method(
        None,
        &format!("nv_get{tag}"),
        &[("v", Ty::Ref(nvec)), ("i", Ty::Int)],
        Some(Ty::Ref(elem)),
        |mb| {
            let v = mb.param(0);
            let i = mb.param(1);
            let t = mb.var("t", Ty::Ref(array));
            let r = mb.var("r", Ty::Ref(elem));
            mb.read_field(t, v, tbl_f);
            mb.read_array(r, t, i);
            mb.ret(r);
        },
    );
    Group { elem, tag_f, nvec, tbl_f, init }
}

/// A balanced binary `choice` tree executing `mk(i)` on arm `i` of `n`.
fn choice_fan(
    mb: &mut tir::MethodBuilder,
    n: usize,
    base: usize,
    mk: &mut dyn FnMut(&mut tir::MethodBuilder, usize),
) {
    if n == 1 {
        mk(mb, base);
    } else {
        let half = n / 2;
        mb.begin_block();
        choice_fan(mb, half, base, mk);
        let left = mb.end_block();
        mb.begin_block();
        choice_fan(mb, n - half, base + half, mk);
        let right = mb.end_block();
        mb.push_choice(left, right);
    }
}

/// Builds one program containing every motif of every group, groups
/// fully isolated from each other (see [`Group`]). Group tags must be
/// distinct; `("", motifs)` gives the undecorated class names.
pub fn build_null_program(groups: &[(String, Vec<NullMotif>)]) -> Program {
    build_impl(groups, false)
}

/// [`build_null_program`] with every motif body wrapped in a
/// non-deterministic `maybe` gate. The static verdict per site is
/// unchanged (the gate adds a path on which the motif simply does not
/// run), but a scripted interpreter oracle can now execute any single
/// motif in isolation — without the gates, the first faulting motif
/// would shadow every later alarm, and no schedule could concretely
/// replay them. [`gated_schedule`] computes the bits.
pub fn build_null_program_gated(groups: &[(String, Vec<NullMotif>)]) -> Program {
    build_impl(groups, true)
}

/// Oracle choice bits driving [`build_null_program_gated`]`(groups)`
/// through exactly one motif (all other gates closed): the `target`
/// `(group index, motif index)` runs on its alarming path when it has
/// one — the null `maybe` taken, the dispatch fan steered to the null
/// arm — and on its most adversarial safe path otherwise. With
/// `target = None` every gate is closed and the program runs to
/// completion touching nothing.
pub fn gated_schedule(
    groups: &[(String, Vec<NullMotif>)],
    target: Option<(usize, usize)>,
) -> Vec<bool> {
    // `Stmt::Choice(a, b)` executes `b` on `true`, `a` on `false`; a
    // `maybe` body is the *first* arm, so `false` opens a gate.
    let mut bits = Vec::new();
    for (gi, (_, motifs)) in groups.iter().enumerate() {
        for (ki, motif) in motifs.iter().enumerate() {
            if target != Some((gi, ki)) {
                bits.push(true); // gate closed: skip this motif
                continue;
            }
            bits.push(false); // gate open
            match motif {
                NullMotif::VecGet { .. } => {}
                NullMotif::DeepChain { null_source, .. } => {
                    if *null_source {
                        bits.push(false); // take the `src := null` arm
                    }
                }
                NullMotif::WideDispatch { width, null_arm } => {
                    // Navigate the balanced fan (`choice_fan`) to the null
                    // arm, or arm 0 for the clean variant.
                    let arm = null_arm.unwrap_or(0);
                    let (mut n, mut base) = (*width, 0usize);
                    while n > 1 {
                        let half = n / 2;
                        if arm < base + half {
                            bits.push(false);
                            n = half;
                        } else {
                            bits.push(true);
                            base += half;
                            n -= half;
                        }
                    }
                }
                NullMotif::GuardedDeref => {
                    bits.push(false); // leave `t` null: the guard must hold
                }
            }
        }
    }
    bits
}

fn build_impl(groups: &[(String, Vec<NullMotif>)], gated: bool) -> Program {
    let mut b = ProgramBuilder::new();
    let object = b.object_class();
    let array = b.array_class();

    // Pass 1: shared group declarations + per-motif helpers that must
    // exist before `main` is built.
    struct Plan {
        group: Group,
        /// Per-DeepChain entry method (outermost link).
        chains: Vec<Option<MethodId>>,
        /// Per-WideDispatch base class, nullable slot field, subclasses.
        fans: Vec<Option<(tir::ClassId, tir::FieldId, Vec<tir::ClassId>)>>,
    }
    let mut plans: Vec<Plan> = Vec::new();
    for (tag, motifs) in groups {
        let group = declare_group(&mut b, tag);
        let mut chains = Vec::new();
        let mut fans = Vec::new();
        for (k, motif) in motifs.iter().enumerate() {
            match motif {
                NullMotif::DeepChain { depth, .. } => {
                    let elem = group.elem;
                    // Noise chain: each link allocates and stirs its own
                    // pad object, then calls the next link. Irrelevant to
                    // any null query (no global writes, no Elem writes),
                    // but every link is in main's call-graph slice.
                    let pad = b.class(&format!("Pad{tag}_{k}"), None);
                    let pad_f = b.field(pad, &format!("pad{tag}_{k}"), Ty::Ref(pad));
                    let mut noise: Option<MethodId> = None;
                    for d in 0..=*depth {
                        let inner = noise;
                        let name = format!("noise{tag}_{k}_{d}");
                        let site = name.clone();
                        noise = Some(b.method(None, &name, &[], None, move |mb| {
                            let n = mb.var("n", Ty::Ref(pad));
                            mb.new_obj(n, pad, &site);
                            mb.write_field(n, pad_f, n);
                            if let Some(inner) = inner {
                                mb.call_static(None, inner, &[]);
                            }
                        }));
                    }
                    let noise = noise.expect("at least one noise link");
                    // Two-level value chain: the innermost link hangs the
                    // noise chain off to the side and passes `e` through.
                    let chain0 = b.method(
                        None,
                        &format!("chain{tag}_{k}_0"),
                        &[("e", Ty::Ref(elem))],
                        Some(Ty::Ref(elem)),
                        move |mb| {
                            let e = mb.param(0);
                            mb.call_static(None, noise, &[]);
                            mb.ret(e);
                        },
                    );
                    let chain1 = b.method(
                        None,
                        &format!("chain{tag}_{k}_1"),
                        &[("e", Ty::Ref(elem))],
                        Some(Ty::Ref(elem)),
                        move |mb| {
                            let e = mb.param(0);
                            let r = mb.var("r", Ty::Ref(elem));
                            mb.call_static(Some(r), chain0, &[Operand::Var(e)]);
                            mb.ret(r);
                        },
                    );
                    chains.push(Some(chain1));
                    fans.push(None);
                }
                NullMotif::WideDispatch { width, null_arm } => {
                    let elem = group.elem;
                    let dbase = b.class(&format!("DBase{tag}_{k}"), None);
                    let slot_f = b.field(dbase, &format!("dslot{tag}_{k}"), Ty::Ref(elem));
                    b.method(Some(dbase), "get", &[], Some(Ty::Ref(elem)), |mb| {
                        let r = mb.var("r", Ty::Ref(elem));
                        mb.read_field(r, mb.this(), slot_f);
                        mb.ret(r);
                    });
                    let subs: Vec<tir::ClassId> = (0..*width)
                        .map(|i| {
                            let sub = b.class(&format!("DSub{tag}_{k}_{i}"), Some(dbase));
                            if *null_arm == Some(i) {
                                b.method(Some(sub), "get", &[], Some(Ty::Ref(elem)), |mb| {
                                    mb.ret(Operand::Null);
                                });
                            } else {
                                b.method(Some(sub), "get", &[], Some(Ty::Ref(elem)), |mb| {
                                    let r = mb.var("r", Ty::Ref(elem));
                                    mb.read_field(r, mb.this(), slot_f);
                                    mb.ret(r);
                                });
                            }
                            sub
                        })
                        .collect();
                    chains.push(None);
                    fans.push(Some((dbase, slot_f, subs)));
                }
                _ => {
                    chains.push(None);
                    fans.push(None);
                }
            }
        }
        plans.push(Plan { group, chains, fans });
    }

    // Pass 2: main body, one motif instance at a time.
    let main = b.method(None, "main", &[], None, |mb| {
        for (plan, (tag, motifs)) in plans.iter().zip(groups) {
            let g = &plan.group;
            for (k, motif) in motifs.iter().enumerate() {
                let u = format!("{tag}_{k}");
                let sink = mb.var(&format!("sink_{u}"), Ty::Ref(object));
                if gated {
                    mb.begin_block();
                }
                match motif {
                    NullMotif::VecGet { pushes, read_at } => {
                        // Writes and read go through ONE table local: the
                        // engine's §3.3 disaliasing drops index
                        // disequalities between *distinct* base symbols,
                        // so a written-slot read is only refutable when
                        // the write's base is already the queried cell's
                        // owner — i.e. the same local, no call boundary
                        // in between. (`nv_push`/`nv_get` stay in the
                        // program as the call-shaped variants of the same
                        // accesses; their slots are never read here.)
                        let v = mb.var(&format!("v_{u}"), Ty::Ref(g.nvec));
                        let t = mb.var(&format!("t_{u}"), Ty::Ref(array));
                        let e = mb.var(&format!("e_{u}"), Ty::Ref(g.elem));
                        mb.new_obj(v, g.nvec, &format!("nv_{u}"));
                        let cap = (pushes.max(read_at) + 1) as i64;
                        mb.call_static(None, g.init, &[Operand::Var(v), Operand::Int(cap)]);
                        mb.read_field(t, v, g.tbl_f);
                        for i in 0..*pushes {
                            let el = mb.var(&format!("el_{u}_{i}"), Ty::Ref(g.elem));
                            mb.new_obj(el, g.elem, &format!("el_{u}_{i}"));
                            mb.write_array(t, i as i64, el);
                        }
                        mb.read_array(e, t, *read_at as i64);
                        mb.read_field(sink, e, g.tag_f);
                    }
                    NullMotif::DeepChain { null_source, .. } => {
                        let entry = plan.chains[k].expect("declared");
                        let src = mb.var(&format!("src_{u}"), Ty::Ref(g.elem));
                        let e = mb.var(&format!("ce_{u}"), Ty::Ref(g.elem));
                        if *null_source {
                            mb.new_obj(src, g.elem, &format!("src_{u}"));
                            mb.maybe(|mb| {
                                mb.assign_null(src);
                            });
                        } else {
                            // The null is dead by *separation*, not by an
                            // infeasible path: the allocation overwrites it
                            // before the chain, and a discharged backward
                            // query would otherwise be witnessed the moment
                            // the guarded `src := null` consumed its last
                            // constraint — before any enclosing guard is
                            // applied (witnesses are may-witnesses).
                            mb.assign_null(src);
                            mb.new_obj(src, g.elem, &format!("src_{u}"));
                        }
                        mb.call_static(Some(e), entry, &[Operand::Var(src)]);
                        mb.read_field(sink, e, g.tag_f);
                    }
                    NullMotif::WideDispatch { width, null_arm } => {
                        let (dbase, slot_f, subs) = plan.fans[k].as_ref().expect("declared");
                        let slot_f = *slot_f;
                        let h = mb.var(&format!("h_{u}"), Ty::Ref(*dbase));
                        let el = mb.var(&format!("del_{u}"), Ty::Ref(g.elem));
                        let e = mb.var(&format!("de_{u}"), Ty::Ref(g.elem));
                        let subs = subs.clone();
                        let u2 = u.clone();
                        choice_fan(mb, *width, 0, &mut |mb, i| {
                            mb.new_obj(h, subs[i], &format!("disp_{u2}_{i}"));
                        });
                        mb.new_obj(el, g.elem, &format!("del_{u}"));
                        mb.write_field(h, slot_f, el);
                        if null_arm.is_none() {
                            // A provably-dead null write keeps the slot
                            // nullable for the front end; the engine
                            // refutes the path.
                            let f = mb.var(&format!("df_{u}"), Ty::Int);
                            mb.assign(f, 0);
                            mb.if_then(Cond::cmp(CmpOp::Eq, f, 1), |mb| {
                                mb.write_field(h, slot_f, Operand::Null);
                            });
                        }
                        mb.call_virtual(Some(e), h, "get", &[]);
                        mb.read_field(sink, e, g.tag_f);
                    }
                    NullMotif::GuardedDeref => {
                        let t = mb.var(&format!("t_{u}"), Ty::Ref(g.elem));
                        mb.new_obj(t, g.elem, &format!("gd_{u}"));
                        mb.maybe(|mb| {
                            mb.assign_null(t);
                        });
                        mb.if_then(Cond::cmp(CmpOp::Ne, t, Operand::Null), |mb| {
                            mb.read_field(sink, t, g.tag_f);
                        });
                    }
                }
                if gated {
                    let body = mb.end_block();
                    mb.push_choice(body, tir::Stmt::Skip);
                }
            }
        }
    });
    b.set_entry(main);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_of_each_builds_and_counts() {
        let groups = vec![(
            String::new(),
            vec![
                NullMotif::VecGet { pushes: 1, read_at: 2 },
                NullMotif::DeepChain { depth: 3, null_source: false },
                NullMotif::WideDispatch { width: 3, null_arm: Some(1) },
                NullMotif::GuardedDeref,
            ],
        )];
        let p = build_null_program(&groups);
        assert!(p.class_by_name("NVec").is_some());
        assert!(p.num_cmds() > 0);
        assert_eq!(expected_alarms(&groups), 2);
        // Determinism: two builds print identically.
        assert_eq!(tir::print_program(&p), tir::print_program(&build_null_program(&groups)));
    }
}
