//! The seven benchmark-app analogs of Table 1.
//!
//! Absolute sizes are scaled down (the paper's apps are 2K–40K SLOC over a
//! 1.1M SLOC library), but each app's *mixture* of motifs reproduces its
//! qualitative row: which apps contain real leaks, how many alarms are
//! refutable, how the `Ann?=Y` annotation changes the counts, and where the
//! un-annotated HashMap edges strain the budget.

use crate::builder::{build_app, ActivityDef, BenchApp};
use crate::motifs::Motif;

fn vec_cache(field: &str) -> Motif {
    Motif::VecStringCache { field: field.into() }
}

fn map_cache(field: &str, extra_puts: usize) -> Motif {
    Motif::MapStringCache { field: field.into(), extra_puts }
}

fn helper_false(field: &str) -> Motif {
    Motif::SharedHelperFalse { field: field.into() }
}

fn fan_in(field: &str, width: usize, depth: usize) -> Motif {
    Motif::FanInFalse { field: field.into(), width, depth }
}

fn diamond(field: &str, width: usize) -> Motif {
    Motif::DiamondFalse { field: field.into(), width }
}

/// PulsePoint analog: real adapter leaks plus collection pollution
/// (paper: 24 alarms, 8 true, refutations improve markedly with Ann?=Y).
pub fn pulsepoint() -> BenchApp {
    build_app(
        "PulsePoint",
        &[
            ActivityDef::new(
                "PulseMainActivity",
                vec![
                    Motif::SingletonAdapterLeak { field: "Pulse.sAdapter".into() },
                    Motif::LocalVecActivity,
                    vec_cache("Pulse.sStrings"),
                    helper_false("Pulse.sHolder"),
                    fan_in("Pulse.sPicker", 8, 3),
                    diamond("Pulse.sDiamond", 24),
                ],
            ),
            ActivityDef::new(
                "PulseMapActivity",
                vec![
                    Motif::ViewHierarchyLeak { field: "Pulse.sMapView".into() },
                    Motif::LocalMapActivity,
                    map_cache("Pulse.sConfig", 2),
                ],
            ),
        ],
    )
}

/// StandupTimer analog: no real leaks; a latent flag-guarded leak (the ⊙
/// of Table 1) plus unrefutable false alarms.
pub fn standuptimer() -> BenchApp {
    build_app(
        "StandupTimer",
        &[
            ActivityDef::new(
                "TimerActivity",
                vec![
                    Motif::GuardedLatentLeak { field: "DAO.cachedTimer".into() },
                    Motif::LocalVecActivity,
                    vec_cache("Timer.sNames"),
                    helper_false("Timer.sHolder"),
                    fan_in("Timer.sPicker", 8, 3),
                    diamond("Timer.sDiamond", 28),
                ],
            ),
            ActivityDef::new(
                "SettingsActivity",
                vec![
                    Motif::GuardedLatentLeak { field: "DAO.cachedSettings".into() },
                    Motif::UnrefutableFalse { field: "Timer.sMaybe".into() },
                    vec_cache("Timer.sPrefs"),
                ],
            ),
        ],
    )
}

/// DroidLife analog: three blatant leaks, nothing else (paper: 3 alarms,
/// all true).
pub fn droidlife() -> BenchApp {
    build_app(
        "DroidLife",
        &[
            ActivityDef::new(
                "LifeActivity",
                vec![Motif::DirectStaticLeak { field: "Life.sActivity".into() }],
            ),
            ActivityDef::new(
                "DesignerActivity",
                vec![Motif::DirectStaticLeak { field: "Life.sDesigner".into() }],
            ),
            ActivityDef::new(
                "SeederActivity",
                vec![Motif::ViewHierarchyLeak { field: "Life.sSeederView".into() }],
            ),
        ],
    )
}

/// OpenSudoku analog: no real leaks; alarms stem almost entirely from
/// HashMap pollution and vanish under the annotation (paper: 7 alarms →
/// 0 with Ann?=Y).
pub fn opensudoku() -> BenchApp {
    build_app(
        "OpenSudoku",
        &[
            ActivityDef::new(
                "SudokuListActivity",
                vec![
                    Motif::LocalMapActivity,
                    map_cache("Sudoku.sGames", 3),
                    map_cache("Sudoku.sFolders", 2),
                ],
            ),
            ActivityDef::new(
                "SudokuPlayActivity",
                vec![
                    Motif::LocalMapActivity,
                    vec_cache("Sudoku.sNotes"),
                    Motif::LocalVecActivity,
                    helper_false("Sudoku.sHolder"),
                    fan_in("Sudoku.sPicker", 6, 3),
                ],
            ),
        ],
    )
}

/// SMSPopUp analog: mostly real leaks (paper: 5 alarms, 4 true).
pub fn smspopup() -> BenchApp {
    build_app(
        "SMSPopUp",
        &[
            ActivityDef::new(
                "PopupActivity",
                vec![
                    Motif::SingletonAdapterLeak { field: "Popup.sAdapter".into() },
                    Motif::DirectStaticLeak { field: "Popup.sActive".into() },
                    Motif::LocalVecActivity,
                    vec_cache("Popup.sTemplates"),
                    helper_false("Popup.sHolder"),
                    fan_in("Popup.sPicker", 8, 3),
                    diamond("Popup.sDiamond", 16),
                ],
            ),
            ActivityDef::new(
                "ConfigActivity",
                vec![
                    Motif::ViewHierarchyLeak { field: "Popup.sConfigView".into() },
                    Motif::DirectStaticLeak { field: "Popup.sConfig".into() },
                ],
            ),
        ],
    )
}

/// aMetro analog: large; many map-pollution false alarms that disappear
/// with the annotation, a block of real leaks, and vec alarms that remain
/// refutable (paper: 144 alarms → 54 with Ann?=Y).
pub fn ametro() -> BenchApp {
    let mut acts = vec![
        ActivityDef::new(
            "MetroMapActivity",
            vec![
                Motif::SingletonAdapterLeak { field: "Metro.sCatalog".into() },
                Motif::LocalMapActivity,
                map_cache("Metro.sStations", 4),
                vec_cache("Metro.sLines"),
                helper_false("Metro.sHolderA"),
                fan_in("Metro.sPickerA", 8, 3),
                Motif::GuardedLatentLeak { field: "Metro.sLatent".into() },
            ],
        ),
        ActivityDef::new(
            "RouteActivity",
            vec![
                Motif::ViewHierarchyLeak { field: "Metro.sRouteView".into() },
                Motif::LocalVecActivity,
                map_cache("Metro.sRoutes", 3),
                vec_cache("Metro.sHistory"),
                helper_false("Metro.sHolderB"),
                fan_in("Metro.sPickerB", 6, 3),
                diamond("Metro.sDiamond", 20),
            ],
        ),
    ];
    for i in 0..4 {
        acts.push(ActivityDef::new(
            format!("CityActivity{i}"),
            vec![
                Motif::LocalMapActivity,
                map_cache(&format!("Metro.sCity{i}"), 1),
                vec_cache(&format!("Metro.sCityNames{i}")),
                helper_false(&format!("Metro.sCityHolder{i}")),
            ],
        ));
    }
    build_app("aMetro", &acts)
}

/// K9Mail analog: the largest app; the Figure 5 singleton leak, several
/// more real leaks, and a mass of collection pollution (paper: 364 alarms
/// → 208 with Ann?=Y, refutation rate 21% → 63%).
pub fn k9mail() -> BenchApp {
    let mut acts = vec![
        ActivityDef::new(
            "MessageCompose",
            vec![
                Motif::SingletonAdapterLeak { field: "K9.EmailAddressAdapter.sInstance".into() },
                Motif::LocalVecActivity,
                vec_cache("K9.sIdentities"),
                helper_false("K9.sHolderCompose"),
                fan_in("K9.sPickerCompose", 8, 4),
                Motif::GuardedLatentLeak { field: "K9.sComposeLatent".into() },
            ],
        ),
        ActivityDef::new(
            "MessageList",
            vec![
                Motif::SingletonAdapterLeak { field: "K9.MessageListAdapter.sInstance".into() },
                Motif::LocalMapActivity,
                map_cache("K9.sFolderCache", 4),
                helper_false("K9.sHolderList"),
                fan_in("K9.sPickerList", 6, 3),
                diamond("K9.sDiamond", 24),
            ],
        ),
        ActivityDef::new(
            "AccountsActivity",
            vec![
                Motif::DirectStaticLeak { field: "K9.sCurrentAccountActivity".into() },
                Motif::UnrefutableFalse { field: "K9.sSometimes".into() },
                vec_cache("K9.sAccountNames"),
                helper_false("K9.sHolderAccounts"),
                Motif::GuardedLatentLeak { field: "K9.sAccountsLatent".into() },
            ],
        ),
    ];
    for i in 0..5 {
        acts.push(ActivityDef::new(
            format!("FolderActivity{i}"),
            vec![
                Motif::LocalMapActivity,
                map_cache(&format!("K9.sFolder{i}"), 2),
                vec_cache(&format!("K9.sFolderNames{i}")),
                helper_false(&format!("K9.sFolderHolder{i}")),
            ],
        ));
    }
    build_app("K9Mail", &acts)
}

/// A parametric stress app: `n` activities, each with the standard motif
/// mixture. Used by the scalability bench (not part of Table 1).
pub fn mega(n: usize) -> BenchApp {
    let mut acts = Vec::new();
    for i in 0..n {
        acts.push(ActivityDef::new(
            format!("MegaActivity{i}"),
            vec![
                Motif::LocalVecActivity,
                vec_cache(&format!("Mega.sNames{i}")),
                helper_false(&format!("Mega.sHolder{i}")),
                Motif::GuardedLatentLeak { field: format!("Mega.sLatent{i}") },
            ],
        ));
        if i % 4 == 0 {
            acts.push(ActivityDef::new(
                format!("MegaLeaky{i}"),
                vec![Motif::DirectStaticLeak { field: format!("Mega.sLeak{i}") }],
            ));
        }
    }
    build_app("Mega", &acts)
}

/// All seven apps in Table 1 order.
pub fn all_apps() -> Vec<BenchApp> {
    vec![pulsepoint(), standuptimer(), droidlife(), opensudoku(), smspopup(), ametro(), k9mail()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_and_validate() {
        let apps = all_apps();
        assert_eq!(apps.len(), 7);
        for app in &apps {
            assert!(app.program.num_cmds() > 20, "{} too small", app.name);
            assert!(app.program.entry_opt().is_some());
        }
    }

    #[test]
    fn ground_truth_is_recorded() {
        let k9 = k9mail();
        assert!(k9.true_leak_fields.contains(&"K9.EmailAddressAdapter.sInstance".to_owned()));
        assert_eq!(droidlife().true_leak_fields.len(), 3);
        assert!(standuptimer().true_leak_fields.is_empty());
        assert_eq!(standuptimer().unrefutable_false_fields.len(), 1);
    }

    #[test]
    fn sizes_order_roughly_matches_paper() {
        // K9Mail and aMetro are the big ones.
        let sizes: Vec<(&str, usize)> =
            all_apps().iter().map(|a| (a.name, a.program.num_cmds())).collect();
        let get = |n: &str| sizes.iter().find(|(a, _)| *a == n).unwrap().1;
        assert!(get("K9Mail") > get("DroidLife"));
        assert!(get("aMetro") > get("SMSPopUp"));
    }
}
