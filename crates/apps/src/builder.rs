//! Assembles benchmark apps from activities and motifs.

use android::harness::ActivitySpec;
use android::library::{self, AndroidLib};
use tir::{Program, ProgramBuilder};

use crate::motifs::{self, Motif, MotifGlobals};

/// A fully built benchmark app with its ground truth.
#[derive(Debug)]
pub struct BenchApp {
    /// App name (matches the paper's benchmark names).
    pub name: &'static str,
    /// The program, harness included.
    pub program: Program,
    /// Library handle (for annotations and container policy).
    pub lib: AndroidLib,
    /// Names of globals that are *real* leaks (expected witnessed).
    pub true_leak_fields: Vec<String>,
    /// Names of globals whose alarms are false but expected to survive
    /// refutation (solver-fragment gaps).
    pub unrefutable_false_fields: Vec<String>,
}

/// One activity with its motifs.
#[derive(Clone, Debug)]
pub struct ActivityDef {
    /// Class name (unique per app).
    pub name: String,
    /// Motifs instantiated in its `onCreate`.
    pub motifs: Vec<Motif>,
}

impl ActivityDef {
    /// Creates an activity definition.
    pub fn new(name: impl Into<String>, motifs: Vec<Motif>) -> Self {
        ActivityDef { name: name.into(), motifs }
    }
}

/// Builds a benchmark app from activity definitions.
pub fn build_app(name: &'static str, activities: &[ActivityDef]) -> BenchApp {
    let mut b = ProgramBuilder::new();
    let lib = library::install(&mut b);

    // Declare activity classes and all motif globals first (so cross
    // references resolve).
    let mut classes = Vec::new();
    for def in activities {
        classes.push(b.class(&def.name, Some(lib.activity)));
    }
    let mut all_globals: Vec<Vec<MotifGlobals>> = Vec::new();
    for def in activities {
        let mut per = Vec::new();
        for m in &def.motifs {
            per.push(motifs::declare_globals(&mut b, &lib, m));
        }
        all_globals.push(per);
    }

    // Define onCreate bodies.
    let mut specs = Vec::new();
    for ((def, class), globals) in activities.iter().zip(&classes).zip(&all_globals) {
        let lib_ref = &lib;
        let def_name = def.name.clone();
        b.method(Some(*class), "onCreate", &[], None, |mb| {
            for (i, (motif, mg)) in def.motifs.iter().zip(globals).enumerate() {
                let uniq = format!("{}_{}", def_name, i);
                motifs::emit(mb, lib_ref, motif, mg, &uniq);
            }
        });
        specs.push(ActivitySpec::new(*class, format!("{}_inst", def.name)));
    }
    android::harness::generate_main(&mut b, &lib, &specs);
    let program = b.finish();

    let mut true_leak_fields = Vec::new();
    let mut unrefutable_false_fields = Vec::new();
    for def in activities {
        for m in &def.motifs {
            if let Some(f) = m.field_name() {
                if m.is_true_leak() {
                    true_leak_fields.push(f.to_owned());
                } else if m.is_unrefutable_false() {
                    unrefutable_false_fields.push(f.to_owned());
                }
            }
        }
    }

    BenchApp { name, program, lib, true_leak_fields, unrefutable_false_fields }
}

/// Approximate source-line count of the app (for the Table 1 `SLOC`-like
/// size column we report command counts).
pub fn app_size(app: &BenchApp) -> usize {
    app.program.num_cmds()
}

/// The container-sensitive points-to policy for a built app.
pub fn container_policy(app: &BenchApp) -> pta::ContextPolicy {
    pta::ContextPolicy::containers_named(&app.program, library::CONTAINER_CLASSES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_app() {
        let app = build_app(
            "tiny",
            &[ActivityDef::new(
                "TinyAct",
                vec![
                    Motif::DirectStaticLeak { field: "Tiny.sLeak".into() },
                    Motif::VecStringCache { field: "Tiny.sCache".into() },
                ],
            )],
        );
        assert!(app.program.class_by_name("TinyAct").is_some());
        assert!(app.program.global_by_name("Tiny.sLeak").is_some());
        assert_eq!(app.true_leak_fields, vec!["Tiny.sLeak"]);
        assert!(app_size(&app) > 10);
    }

    #[test]
    fn two_activities_do_not_collide() {
        let app = build_app(
            "two",
            &[
                ActivityDef::new("A1", vec![Motif::LocalVecActivity]),
                ActivityDef::new("A2", vec![Motif::LocalVecActivity]),
            ],
        );
        assert!(app.program.class_by_name("A1").is_some());
        assert!(app.program.class_by_name("A2").is_some());
    }
}
