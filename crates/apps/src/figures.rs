//! The paper's inline examples as standalone programs, used by the
//! `examples/` binaries and the figure-reproduction tests.

use tir::Program;

/// The Figure 1 running example, in the textual IR syntax: the `Vec`
/// null-object pattern. The points-to graph of this program is Figure 2;
/// the refutation of `arr0.contents ⇒ act0` is the walkthrough of §2.
pub const FIG1_SOURCE: &str = r#"
class Activity { }
class Act extends Activity {
  method onCreate(this: Act) {
    var acts: Vec;
    var hello: Object;
    var objs: Vec;
    acts = new Vec @vec1;
    call Vec::init(acts);
    call acts.push(this);
    hello = new Object @hello0;
    objs = $OBJS;
    call objs.push(hello);
  }
}
class Vec {
  field sz: int;
  field cap: int;
  field tbl: array;
  method init(this: Vec) {
    var e: array;
    this.sz = 0;
    this.cap = -1;
    e = $EMPTY;
    this.tbl = e;
  }
  method push(this: Vec, val: Object) {
    var oldtbl: array;
    var sz: int;
    var cap: int;
    var t: int;
    var t2: int;
    var newtbl: array;
    var i: int;
    var x: Object;
    var tbl2: array;
    var sz2: int;
    var sz3: int;
    oldtbl = this.tbl;
    sz = this.sz;
    cap = this.cap;
    if (sz >= cap) {
      t = len(oldtbl);
      t2 = t * 2;
      this.cap = t2;
      newtbl = newarray @arr1 [t2];
      this.tbl = newtbl;
      i = 0;
      while (i < sz) {
        x = oldtbl[i];
        newtbl[i] = x;
        i = i + 1;
      }
    }
    tbl2 = this.tbl;
    sz2 = this.sz;
    tbl2[sz2] = val;
    sz3 = sz2 + 1;
    this.sz = sz3;
  }
}
global EMPTY: array;
global OBJS: Vec;
fn main() {
  var a: Act;
  var e: array;
  var v: Vec;
  e = newarray @arr0 [1];
  $EMPTY = e;
  v = new Vec @vec0;
  call Vec::init(v);
  $OBJS = v;
  a = new Act @act0;
  call a.onCreate();
}
entry main;
"#;

/// Parses the Figure 1 program.
///
/// # Panics
///
/// Panics if the embedded source fails to parse (a bug).
pub fn fig1() -> Program {
    tir::parse(FIG1_SOURCE).expect("figure 1 source parses")
}

/// The Figure 3 example: `from`-constraint narrowing through a field read
/// and a potentially-aliasing field write.
pub const FIG3_SOURCE: &str = r#"
class N { field f: Object; }
global OUT: Object;
fn main() {
  var x: N;
  var y: N;
  var p: Object;
  var q: Object;
  var z: Object;
  x = new N @nx;
  choice {
    y = x;
  } or {
    y = new N @ny;
  }
  p = new Object @a1;
  q = new Object @a0;
  x.f = p;
  z = y.f;
  $OUT = z;
  $OUT = q;
}
entry main;
"#;

/// Parses the Figure 3 example.
///
/// # Panics
///
/// Panics if the embedded source fails to parse (a bug).
pub fn fig3() -> Program {
    tir::parse(FIG3_SOURCE).expect("figure 3 source parses")
}

/// A multi-HashMap micro benchmark for the hypothesis-3 experiment: two
/// maps, only one of which ever holds the activity-like object. Full loop
/// invariant inference distinguishes them; drop-all loop handling cannot
/// (the map internals are loop-heavy).
pub const MULTI_MAP_SOURCE: &str = r#"
class Box { field slot: Object; }
global CLEAN: Box;
fn fill(b: Box, o: Object, n: int) {
  var i: int;
  i = 0;
  while (i < n) {
    b.slot = o;
    i = i + 1;
  }
}
fn main() {
  var clean: Box;
  var dirty: Box;
  var secret: Object;
  var pub_o: Object;
  clean = new Box @clean0;
  dirty = new Box @dirty0;
  secret = new Object @secret0;
  pub_o = new Object @pub0;
  call fill(dirty, secret, 3);
  call fill(clean, pub_o, 3);
  $CLEAN = clean;
}
entry main;
"#;

/// Parses the multi-map micro benchmark.
///
/// # Panics
///
/// Panics if the embedded source fails to parse (a bug).
pub fn multi_map() -> Program {
    tir::parse(MULTI_MAP_SOURCE).expect("multi-map source parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_parse() {
        assert!(fig1().class_by_name("Vec").is_some());
        assert!(fig3().global_by_name("OUT").is_some());
        assert!(multi_map().class_by_name("Box").is_some());
    }

    #[test]
    fn fig1_graph_shows_the_false_edge() {
        // The Figure 2 pollution: arr0.contents may point to act0.
        let p = fig1();
        let r = pta::analyze(&p, pta::ContextPolicy::Insensitive);
        let arr0 = r.locs().ids().find(|&l| r.loc_name(&p, l) == "arr0").unwrap();
        let act0 = r.locs().ids().find(|&l| r.loc_name(&p, l) == "act0").unwrap();
        assert!(r.pt_field(arr0, p.contents_field).contains(act0.index()));
    }
}
