//! Leak and false-alarm motifs.
//!
//! Each motif is a code pattern observed in the paper's benchmarks,
//! instantiated inside an activity's `onCreate`. Apps are compositions of
//! motifs (see [`crate::suite`]); the per-motif ground truth drives the
//! expected Table 1 shape:
//!
//! | Motif | Ground truth | Ann?=N outcome | Ann?=Y outcome |
//! |---|---|---|---|
//! | [`Motif::SingletonAdapterLeak`] | real leak (Fig. 5) | witnessed | witnessed |
//! | [`Motif::DirectStaticLeak`] | real leak | witnessed | witnessed |
//! | [`Motif::ViewHierarchyLeak`] | real leak | witnessed | witnessed |
//! | [`Motif::GuardedLatentLeak`] | latent (flag off) | refuted | refuted |
//! | [`Motif::SharedHelperFalse`] | false alarm | refuted (fast) | refuted (fast) |
//! | [`Motif::VecStringCache`] | false alarm | refuted or timeout | no alarm |
//! | [`Motif::MapStringCache`] | false alarm | refuted or timeout | no alarm |
//! | [`Motif::UnrefutableFalse`] | false alarm | witnessed (solver gap) | witnessed |
//! | [`Motif::LocalVecActivity`] | pollution source | — | — |
//! | [`Motif::LocalMapActivity`] | pollution source | — | — |

use android::library::AndroidLib;
use tir::{CmpOp, Cond, GlobalId, MethodBuilder, Operand, ProgramBuilder, Ty};

/// A code pattern added to an activity's `onCreate`. Fields name the static
/// field (global) the motif creates, when it creates one.
#[derive(Clone, Debug)]
pub enum Motif {
    /// The Figure 5 K9Mail leak: a static singleton adapter captures the
    /// activity through a constructor chain into `mContext`.
    SingletonAdapterLeak {
        /// Name for the `sInstance` global.
        field: String,
    },
    /// The simplest real leak: `STATIC = this`.
    DirectStaticLeak {
        /// Name for the global.
        field: String,
    },
    /// A static `View` whose `mContext` points to the activity.
    ViewHierarchyLeak {
        /// Name for the global.
        field: String,
    },
    /// The StandupTimer latent leak: the store is guarded by a flag that is
    /// provably never set.
    GuardedLatentLeak {
        /// Name for the cache global.
        field: String,
    },
    /// A false alarm refuted by argument-flow reasoning: a shared helper
    /// stores objects into holders; only the local holder ever receives the
    /// activity, but the flow-insensitive analysis conflates the two call
    /// sites. Refutation is fast (the `WitAssign`-style eager refutation of
    /// §3.2) and does not involve collections, so it succeeds in both
    /// annotation configurations.
    SharedHelperFalse {
        /// Name for the static holder global.
        field: String,
    },
    /// A static `AVec` that only ever holds strings. Reaches activities
    /// only through the shared `VEC_EMPTY` pollution — a refutable false
    /// alarm (the Figure 1 scenario).
    VecStringCache {
        /// Name for the global.
        field: String,
    },
    /// A static `AHashMap` that only ever holds strings; reaches activities
    /// only through `MAP_EMPTY_TABLE` pollution. Under the `Ann?=Y`
    /// annotation the alarm disappears. `extra_puts` scatters additional
    /// put call sites to scale refutation effort (the timeout knob).
    MapStringCache {
        /// Name for the global.
        field: String,
        /// Number of additional string puts.
        extra_puts: usize,
    },
    /// The §3.2 "WitAssign vs WitNew" variant: the safe holder's value
    /// comes from a `pick()` helper that returns one of `width^depth`
    /// string allocations through nested non-deterministic choices. The
    /// mixed representation refutes at the parameter binding (one step);
    /// the fully symbolic representation must chase every path to an
    /// allocation site — "the potentially exponential number of paths to
    /// the allocation sites" the paper warns about. This motif drives the
    /// Table 2 slowdown.
    FanInFalse {
        /// Name for the static holder global.
        field: String,
        /// Choice fan-out per level.
        width: usize,
        /// Nesting depth (paths = width^depth).
        depth: usize,
    },
    /// A wide routing layer: `route(h, o)` reaches the bottom store through
    /// `width` distinct call sites (non-deterministic dispatch), so the
    /// store has `width` backwards caller paths that all arrive at the
    /// router's entry with *identical* queries. Query-history subsumption
    /// (§3.3) explores one continuation; without simplification every path
    /// continues into the caller — multiplying with the second top-level
    /// call into `O(width²)` work. This is the hypothesis-2 workload.
    DiamondFalse {
        /// Name for the static holder global.
        field: String,
        /// Number of routed call sites.
        width: usize,
    },
    /// A false alarm the tool cannot refute: the guard uses multiplication,
    /// which the path-constraint solver (like the paper's limited
    /// constraint set) cannot reason about, so the impossible store is
    /// soundly treated as witnessable.
    UnrefutableFalse {
        /// Name for the global.
        field: String,
    },
    /// Pollution source: a local `AVec` holding the activity (pollutes
    /// `VEC_EMPTY` flow-insensitively).
    LocalVecActivity,
    /// Pollution source: a local `AHashMap` holding the activity (pollutes
    /// `MAP_EMPTY_TABLE` flow-insensitively).
    LocalMapActivity,
}

impl Motif {
    /// The global field name this motif introduces, if any.
    pub fn field_name(&self) -> Option<&str> {
        match self {
            Motif::SingletonAdapterLeak { field }
            | Motif::DirectStaticLeak { field }
            | Motif::ViewHierarchyLeak { field }
            | Motif::GuardedLatentLeak { field }
            | Motif::VecStringCache { field }
            | Motif::MapStringCache { field, .. }
            | Motif::SharedHelperFalse { field }
            | Motif::FanInFalse { field, .. }
            | Motif::DiamondFalse { field, .. }
            | Motif::UnrefutableFalse { field } => Some(field),
            Motif::LocalVecActivity | Motif::LocalMapActivity => None,
        }
    }

    /// True if the motif is a real leak (expected to be witnessed).
    pub fn is_true_leak(&self) -> bool {
        matches!(
            self,
            Motif::SingletonAdapterLeak { .. }
                | Motif::DirectStaticLeak { .. }
                | Motif::ViewHierarchyLeak { .. }
        )
    }

    /// True if the motif produces alarms the tool is expected to fail to
    /// refute even though they are false.
    pub fn is_unrefutable_false(&self) -> bool {
        matches!(self, Motif::UnrefutableFalse { .. })
    }

    /// True if the motif's alarms are designed to be refuted quickly in
    /// every configuration (no collections involved).
    pub fn is_fast_refutable(&self) -> bool {
        matches!(
            self,
            Motif::GuardedLatentLeak { .. }
                | Motif::SharedHelperFalse { .. }
                | Motif::FanInFalse { .. }
                | Motif::DiamondFalse { .. }
        )
    }
}

/// Pre-declared program items for one motif instance (created before method
/// bodies are built).
#[derive(Clone, Debug)]
pub struct MotifGlobals {
    /// The primary global, if the motif has one.
    pub field: Option<GlobalId>,
    /// Secondary globals (e.g. the guard flag).
    pub aux: Vec<GlobalId>,
    /// A helper function the motif's code calls, if any.
    pub helper: Option<tir::MethodId>,
    /// The value-producing helper (fan-in motif).
    pub picker: Option<tir::MethodId>,
}

impl MotifGlobals {
    fn with_picker(mut self, m: tir::MethodId) -> Self {
        self.picker = Some(m);
        self
    }
}

/// Declares the globals (and helper functions) a motif needs.
pub fn declare_globals(b: &mut ProgramBuilder, lib: &AndroidLib, motif: &Motif) -> MotifGlobals {
    match motif {
        Motif::SingletonAdapterLeak { field } => MotifGlobals {
            field: Some(b.global(field, Ty::Ref(lib.resource_cursor_adapter))),
            aux: Vec::new(),
            helper: None,
            picker: None,
        },
        Motif::DirectStaticLeak { field } => MotifGlobals {
            field: Some(b.global(field, Ty::Ref(lib.activity))),
            aux: Vec::new(),
            helper: None,
            picker: None,
        },
        Motif::ViewHierarchyLeak { field } => MotifGlobals {
            field: Some(b.global(field, Ty::Ref(lib.view))),
            aux: Vec::new(),
            helper: None,
            picker: None,
        },
        Motif::GuardedLatentLeak { field } => {
            let f = b.global(field, Ty::Ref(lib.activity));
            let flag = b.global(&format!("{field}.flag"), Ty::Int);
            MotifGlobals { field: Some(f), aux: vec![flag], helper: None, picker: None }
        }
        Motif::SharedHelperFalse { field } => {
            let f = b.global(field, Ty::Ref(lib.holder));
            let object = b.object_class();
            let holder = lib.holder;
            let holder_obj = lib.holder_obj;
            let helper = b.method(
                None,
                &format!("stash_{}", field.replace('.', "_")),
                &[("h", Ty::Ref(holder)), ("o", Ty::Ref(object))],
                None,
                |mb| {
                    let h = mb.param(0);
                    let o = mb.param(1);
                    mb.write_field(h, holder_obj, o);
                },
            );
            MotifGlobals { field: Some(f), aux: Vec::new(), helper: Some(helper), picker: None }
        }
        Motif::VecStringCache { field } => MotifGlobals {
            field: Some(b.global(field, Ty::Ref(lib.vec))),
            aux: Vec::new(),
            helper: None,
            picker: None,
        },
        Motif::MapStringCache { field, .. } => MotifGlobals {
            field: Some(b.global(field, Ty::Ref(lib.hashmap))),
            aux: Vec::new(),
            helper: None,
            picker: None,
        },
        Motif::FanInFalse { field, width, depth } => {
            let f = b.global(field, Ty::Ref(lib.holder));
            let object = b.object_class();
            let string = lib.string;
            let tag = field.replace('.', "_");
            // pick_1 allocates; pick_d (d>1) fans out into pick_{d-1}.
            let mut prev: Option<tir::MethodId> = None;
            for d in 1..=*depth {
                let inner = prev;
                let w = *width;
                let tag2 = tag.clone();
                let m = b.method(
                    None,
                    &format!("pick_{tag}_{d}"),
                    &[],
                    Some(Ty::Ref(object)),
                    move |mb| {
                        let r = mb.var("r", Ty::Ref(object));
                        // Nested binary choices producing `w` branches.
                        fn fan(
                            mb: &mut tir::MethodBuilder,
                            r: tir::VarId,
                            n: usize,
                            mk: &mut dyn FnMut(&mut tir::MethodBuilder, tir::VarId, usize),
                            base: usize,
                        ) {
                            if n == 1 {
                                mk(mb, r, base);
                            } else {
                                let half = n / 2;
                                mb.begin_block();
                                fan(mb, r, half, mk, base);
                                let left = mb.end_block();
                                mb.begin_block();
                                fan(mb, r, n - half, mk, base + half);
                                let right = mb.end_block();
                                mb.push_choice(left, right);
                            }
                        }
                        match inner {
                            None => {
                                let mut mk =
                                    |mb: &mut tir::MethodBuilder, r: tir::VarId, i: usize| {
                                        mb.new_obj(r, string, &format!("pick_{tag2}_{i}"));
                                    };
                                fan(mb, r, w, &mut mk, 0);
                            }
                            Some(inner_m) => {
                                let mut mk =
                                    |mb: &mut tir::MethodBuilder, r: tir::VarId, _i: usize| {
                                        mb.call_static(Some(r), inner_m, &[]);
                                    };
                                fan(mb, r, w, &mut mk, 0);
                            }
                        }
                        mb.ret(r);
                    },
                );
                prev = Some(m);
            }
            let holder = lib.holder;
            let holder_obj = lib.holder_obj;
            let stash = b.method(
                None,
                &format!("fanstash_{tag}"),
                &[("h", Ty::Ref(holder)), ("o", Ty::Ref(object))],
                None,
                |mb| {
                    let h = mb.param(0);
                    let o = mb.param(1);
                    mb.write_field(h, holder_obj, o);
                },
            );
            MotifGlobals { field: Some(f), aux: Vec::new(), helper: Some(stash), picker: None }
                .with_picker(prev.expect("depth >= 1"))
        }
        Motif::DiamondFalse { field, width } => {
            let f = b.global(field, Ty::Ref(lib.holder));
            let object = b.object_class();
            let holder = lib.holder;
            let holder_obj = lib.holder_obj;
            let tag = field.replace('.', "_");
            let store = b.method(
                None,
                &format!("diamond_store_{tag}"),
                &[("h", Ty::Ref(holder)), ("o", Ty::Ref(object))],
                None,
                |mb| {
                    let h = mb.param(0);
                    let o = mb.param(1);
                    mb.write_field(h, holder_obj, o);
                },
            );
            let w = *width;
            let route = b.method(
                None,
                &format!("diamond_route_{tag}"),
                &[("h", Ty::Ref(holder)), ("o", Ty::Ref(object))],
                None,
                move |mb| {
                    let h = mb.param(0);
                    let o = mb.param(1);
                    // `w` distinct call sites behind a balanced choice tree.
                    fn fan(
                        mb: &mut tir::MethodBuilder,
                        n: usize,
                        mk: &mut dyn FnMut(&mut tir::MethodBuilder),
                    ) {
                        if n == 1 {
                            mk(mb);
                        } else {
                            let half = n / 2;
                            mb.begin_block();
                            fan(mb, half, mk);
                            let left = mb.end_block();
                            mb.begin_block();
                            fan(mb, n - half, mk);
                            let right = mb.end_block();
                            mb.push_choice(left, right);
                        }
                    }
                    let mut mk = |mb: &mut tir::MethodBuilder| {
                        mb.call_static(None, store, &[Operand::Var(h), Operand::Var(o)]);
                    };
                    fan(mb, w, &mut mk);
                },
            );
            MotifGlobals { field: Some(f), aux: Vec::new(), helper: Some(route), picker: None }
        }
        Motif::UnrefutableFalse { field } => MotifGlobals {
            field: Some(b.global(field, Ty::Ref(lib.activity))),
            aux: Vec::new(),
            helper: None,
            picker: None,
        },
        Motif::LocalVecActivity | Motif::LocalMapActivity => {
            MotifGlobals { field: None, aux: Vec::new(), helper: None, picker: None }
        }
    }
}

/// Emits the motif's code into an activity `onCreate` body. `uniq` makes
/// allocation-site and variable names unique per instantiation.
pub fn emit(
    mb: &mut MethodBuilder,
    lib: &AndroidLib,
    motif: &Motif,
    globals: &MotifGlobals,
    uniq: &str,
) {
    let this = mb.this();
    match motif {
        Motif::SingletonAdapterLeak { .. } => {
            let field = globals.field.expect("declared");
            let cur = mb.var(&format!("cur_{uniq}"), Ty::Ref(lib.resource_cursor_adapter));
            let fresh = mb.var(&format!("fresh_{uniq}"), Ty::Ref(lib.resource_cursor_adapter));
            mb.read_global(cur, field);
            mb.if_then(Cond::cmp(CmpOp::Eq, cur, Operand::Null), |mb| {
                mb.new_obj(fresh, lib.resource_cursor_adapter, &format!("adr_{uniq}"));
                mb.call_static(
                    None,
                    lib.resource_cursor_adapter_ctor,
                    &[Operand::Var(fresh), Operand::Var(this)],
                );
                mb.write_global(field, fresh);
            });
        }
        Motif::DirectStaticLeak { .. } => {
            let field = globals.field.expect("declared");
            mb.write_global(field, this);
        }
        Motif::ViewHierarchyLeak { .. } => {
            let field = globals.field.expect("declared");
            let v = mb.var(&format!("view_{uniq}"), Ty::Ref(lib.view));
            mb.new_obj(v, lib.view, &format!("view_{uniq}"));
            mb.write_field(v, lib.view_context, this);
            mb.write_global(field, v);
        }
        Motif::GuardedLatentLeak { .. } => {
            let field = globals.field.expect("declared");
            let flag = globals.aux[0];
            let f = mb.var(&format!("flag_{uniq}"), Ty::Int);
            mb.write_global(flag, 0);
            mb.read_global(f, flag);
            mb.if_then(Cond::cmp(CmpOp::Eq, f, 1), |mb| {
                mb.write_global(field, this);
            });
        }
        Motif::SharedHelperFalse { .. } => {
            let field = globals.field.expect("declared");
            let helper = globals.helper.expect("declared");
            let safe = mb.var(&format!("safe_{uniq}"), Ty::Ref(lib.holder));
            let dirty = mb.var(&format!("dirty_{uniq}"), Ty::Ref(lib.holder));
            let s = mb.var(&format!("hstr_{uniq}"), Ty::Ref(lib.string));
            mb.new_obj(safe, lib.holder, &format!("safe_{uniq}"));
            mb.new_obj(dirty, lib.holder, &format!("dirty_{uniq}"));
            mb.new_obj(s, lib.string, &format!("hstr_{uniq}"));
            mb.call_static(None, helper, &[Operand::Var(safe), Operand::Var(s)]);
            mb.call_static(None, helper, &[Operand::Var(dirty), Operand::Var(this)]);
            mb.write_global(field, safe);
        }
        Motif::VecStringCache { .. } => {
            let field = globals.field.expect("declared");
            let v = mb.var(&format!("vcache_{uniq}"), Ty::Ref(lib.vec));
            let s = mb.var(&format!("vstr_{uniq}"), Ty::Ref(lib.string));
            mb.new_obj(v, lib.vec, &format!("vcache_{uniq}"));
            mb.call_static(None, lib.vec_init, &[Operand::Var(v)]);
            mb.new_obj(s, lib.string, &format!("vstr_{uniq}"));
            mb.call_virtual(None, v, "push", &[Operand::Var(s)]);
            mb.write_global(field, v);
        }
        Motif::MapStringCache { extra_puts, .. } => {
            let field = globals.field.expect("declared");
            let m = mb.var(&format!("mcache_{uniq}"), Ty::Ref(lib.hashmap));
            let k = mb.var(&format!("mkey_{uniq}"), Ty::Ref(lib.string));
            let v = mb.var(&format!("mval_{uniq}"), Ty::Ref(lib.string));
            mb.new_obj(m, lib.hashmap, &format!("mcache_{uniq}"));
            mb.call_static(None, lib.hashmap_init, &[Operand::Var(m)]);
            mb.new_obj(k, lib.string, &format!("mkey_{uniq}"));
            mb.new_obj(v, lib.string, &format!("mval_{uniq}"));
            mb.call_virtual(None, m, "put", &[Operand::Var(k), Operand::Var(v)]);
            for i in 0..*extra_puts {
                let k2 = mb.var(&format!("mkey_{uniq}_{i}"), Ty::Ref(lib.string));
                mb.new_obj(k2, lib.string, &format!("mkey_{uniq}_{i}"));
                mb.call_virtual(None, m, "put", &[Operand::Var(k2), Operand::Var(v)]);
            }
            mb.write_global(field, m);
        }
        Motif::FanInFalse { .. } => {
            let field = globals.field.expect("declared");
            let stash = globals.helper.expect("declared");
            let picker = globals.picker.expect("declared");
            let safe = mb.var(&format!("fsafe_{uniq}"), Ty::Ref(lib.holder));
            let dirty = mb.var(&format!("fdirty_{uniq}"), Ty::Ref(lib.holder));
            let o = mb.var(&format!("fo_{uniq}"), Ty::Ref(mb.program_builder().object_class()));
            mb.new_obj(safe, lib.holder, &format!("fsafe_{uniq}"));
            mb.new_obj(dirty, lib.holder, &format!("fdirty_{uniq}"));
            mb.call_static(Some(o), picker, &[]);
            mb.call_static(None, stash, &[Operand::Var(safe), Operand::Var(o)]);
            mb.call_static(None, stash, &[Operand::Var(dirty), Operand::Var(this)]);
            mb.write_global(field, safe);
        }
        Motif::DiamondFalse { .. } => {
            let field = globals.field.expect("declared");
            let entry = globals.helper.expect("declared");
            let safe = mb.var(&format!("dsafe_{uniq}"), Ty::Ref(lib.holder));
            let dirty = mb.var(&format!("ddirty_{uniq}"), Ty::Ref(lib.holder));
            let s = mb.var(&format!("dstr_{uniq}"), Ty::Ref(lib.string));
            mb.new_obj(safe, lib.holder, &format!("dsafe_{uniq}"));
            mb.new_obj(dirty, lib.holder, &format!("ddirty_{uniq}"));
            mb.new_obj(s, lib.string, &format!("dstr_{uniq}"));
            mb.call_static(None, entry, &[Operand::Var(safe), Operand::Var(s)]);
            mb.call_static(None, entry, &[Operand::Var(dirty), Operand::Var(this)]);
            mb.write_global(field, safe);
        }
        Motif::UnrefutableFalse { .. } => {
            let field = globals.field.expect("declared");
            let a = mb.var(&format!("pa_{uniq}"), Ty::Int);
            let b2 = mb.var(&format!("pb_{uniq}"), Ty::Int);
            // b2 = a * 2 can never equal 5, but multiplication is outside
            // the solver fragment, so the refutation is missed.
            mb.assign(a, 1);
            mb.binop(b2, tir::BinOp::Mul, a, 2);
            mb.if_then(Cond::cmp(CmpOp::Eq, b2, 5), |mb| {
                mb.write_global(field, this);
            });
        }
        Motif::LocalVecActivity => {
            let v = mb.var(&format!("vloc_{uniq}"), Ty::Ref(lib.vec));
            mb.new_obj(v, lib.vec, &format!("vloc_{uniq}"));
            mb.call_static(None, lib.vec_init, &[Operand::Var(v)]);
            mb.call_virtual(None, v, "push", &[Operand::Var(this)]);
        }
        Motif::LocalMapActivity => {
            let m = mb.var(&format!("mloc_{uniq}"), Ty::Ref(lib.hashmap));
            let k = mb.var(&format!("mlkey_{uniq}"), Ty::Ref(lib.string));
            mb.new_obj(m, lib.hashmap, &format!("mloc_{uniq}"));
            mb.call_static(None, lib.hashmap_init, &[Operand::Var(m)]);
            mb.new_obj(k, lib.string, &format!("mlkey_{uniq}"));
            mb.call_virtual(None, m, "put", &[Operand::Var(k), Operand::Var(this)]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_names_and_classification() {
        let m = Motif::SingletonAdapterLeak { field: "S".into() };
        assert_eq!(m.field_name(), Some("S"));
        assert!(m.is_true_leak());
        assert!(!m.is_unrefutable_false());

        let m = Motif::GuardedLatentLeak { field: "G".into() };
        assert!(!m.is_true_leak());
        assert!(m.is_fast_refutable());

        let m = Motif::SharedHelperFalse { field: "H".into() };
        assert!(m.is_fast_refutable());
        assert!(!m.is_true_leak());

        let m = Motif::UnrefutableFalse { field: "U".into() };
        assert!(m.is_unrefutable_false());

        assert_eq!(Motif::LocalVecActivity.field_name(), None);
    }
}
