//! # apps — the synthetic benchmark suite
//!
//! Analogs of the seven Android applications evaluated in Table 1 of the
//! paper (PulsePoint, StandupTimer, DroidLife, OpenSudoku, SMSPopUp,
//! aMetro, K9Mail), plus the paper's inline figures as standalone programs.
//!
//! The real apps are closed- or third-party source measured against a 1.1M
//! SLOC platform; per the reproduction's substitution rule, each app is
//! rebuilt from the leak/false-alarm *motifs* its Table 1 row implies (see
//! [`motifs`] for the catalogue and [`suite`] for the compositions). Ground
//! truth (which static fields really leak) is recorded on each
//! [`BenchApp`], making the Table 1 `TruA`/`FalA` split checkable.
//!
//! ```
//! let app = apps::suite::droidlife();
//! assert_eq!(app.true_leak_fields.len(), 3);
//! let report = android::ActivityLeakChecker::new(&app.program).check();
//! assert!(report.num_alarms() >= 3);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod figures;
pub mod motifs;
pub mod null_motifs;
pub mod scale;
pub mod suite;

pub use builder::{build_app, ActivityDef, BenchApp};
pub use motifs::Motif;
pub use null_motifs::NullMotif;
