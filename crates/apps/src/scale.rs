//! Deterministic scalable corpus for solver benchmarking.
//!
//! [`scaled_program`] replicates the suite's structural motifs — copy rings
//! through mutual recursion, field load/store chains, virtual dispatch
//! fans, global hand-offs — across `scale` *modules*, each with its own
//! classes, fields, globals, and allocation sites. Module `m`'s recursion
//! ring feeds module `(m + 1) % scale`'s, so the copy edges of the whole
//! program close into one large cycle: exactly the shape where online
//! cycle collapsing pays off and naive full-set propagation churns.
//!
//! The generator is a pure function of `scale` (no randomness, no
//! iteration-order dependence), so two calls build byte-identical
//! programs — a requirement for the differential tests and the
//! propagation-count regression gate in CI.

use tir::{MethodId, Operand, Program, ProgramBuilder, Ty};

/// Number of functions in each module's mutual-recursion ring.
const RING_LEN: usize = 3;

/// Builds a deterministic benchmark program with `scale` modules.
///
/// Each module contributes: a linked-list class `Data{m}` (fields
/// `next{m}`, `payload{m}`), a dispatch hierarchy `Base{m}` /
/// `SubA{m}` / `SubB{m}` with a virtual `get`, globals `G{m}` and
/// `H{m}`, a [`RING_LEN`]-function copy ring (`ring{m}_i`), and a driver
/// `drive{m}` invoked from `main`.
///
/// # Panics
///
/// Panics if `scale` is zero.
pub fn scaled_program(scale: usize) -> Program {
    assert!(scale > 0, "scale must be at least 1");
    let mut b = ProgramBuilder::new();
    let object = b.object_class();

    // Pass 1: declare every class, field, global, and method signature so
    // ring bodies can reference their successors (including the wrap-around
    // link into the next module) before those are defined.
    let mut data = Vec::new();
    let mut next_f = Vec::new();
    let mut payload_f = Vec::new();
    let mut base = Vec::new();
    let mut slot_f = Vec::new();
    let mut sub_a = Vec::new();
    let mut sub_b = Vec::new();
    let mut g_glob = Vec::new();
    let mut h_glob = Vec::new();
    let mut x_glob = Vec::new();
    for m in 0..scale {
        let d = b.class(&format!("Data{m}"), None);
        data.push(d);
        next_f.push(b.field(d, &format!("next{m}"), Ty::Ref(d)));
        payload_f.push(b.field(d, &format!("payload{m}"), Ty::Ref(object)));
        let bs = b.class(&format!("Base{m}"), None);
        base.push(bs);
        slot_f.push(b.field(bs, &format!("slot{m}"), Ty::Ref(object)));
        sub_a.push(b.class(&format!("SubA{m}"), Some(bs)));
        sub_b.push(b.class(&format!("SubB{m}"), Some(bs)));
        g_glob.push(b.global(&format!("G{m}"), Ty::Ref(object)));
        h_glob.push(b.global(&format!("H{m}"), Ty::Ref(d)));
        x_glob.push(b.global(&format!("X{m}"), Ty::Ref(object)));
    }
    let obj = Ty::Ref(object);
    let mut rings: Vec<Vec<MethodId>> = Vec::new();
    for m in 0..scale {
        rings.push(
            (0..RING_LEN)
                .map(|i| b.declare_method(None, &format!("ring{m}_{i}"), &[("x", obj)], Some(obj)))
                .collect(),
        );
    }
    let drives: Vec<MethodId> =
        (0..scale).map(|m| b.declare_method(None, &format!("drive{m}"), &[], None)).collect();

    // Pass 2: bodies.
    for m in 0..scale {
        // Copy ring: `r = x; maybe { r = ring_next(r) }; return r`. The
        // call edges arg -> param and ret -> r close copy cycles across
        // the ring, and ring{m}_0 additionally feeds ring{m+1}_0 so every
        // module's ring joins one program-wide cycle.
        for i in 0..RING_LEN {
            let succ = rings[m][(i + 1) % RING_LEN];
            let cross = (i == 0).then(|| rings[(m + 1) % scale][0]);
            b.define_method(rings[m][i], |mb| {
                let x = mb.param(0);
                let r = mb.var("r", obj);
                mb.assign(r, x);
                mb.maybe(|mb| {
                    mb.call_static(Some(r), succ, &[Operand::Var(x)]);
                });
                if let Some(cross) = cross {
                    mb.maybe(|mb| {
                        mb.call_static(Some(r), cross, &[Operand::Var(r)]);
                    });
                }
                mb.ret(r);
            });
        }

        // Virtual dispatch: `get` bounces its argument through `slot{m}`.
        // `SubA` also publishes to the module's global; `SubB` returns a
        // fresh allocation alongside, so the two overrides diverge.
        b.method(Some(base[m]), "get", &[("p", obj)], Some(obj), |mb| {
            let this = mb.this();
            let p = mb.param(0);
            let q = mb.var("q", obj);
            mb.write_field(this, slot_f[m], p);
            mb.read_field(q, this, slot_f[m]);
            mb.ret(q);
        });
        b.method(Some(sub_a[m]), "get", &[("p", obj)], Some(obj), |mb| {
            let this = mb.this();
            let p = mb.param(0);
            let q = mb.var("q", obj);
            mb.write_field(this, slot_f[m], p);
            mb.read_field(q, this, slot_f[m]);
            mb.write_global(g_glob[m], q);
            mb.ret(q);
        });
        b.method(Some(sub_b[m]), "get", &[("p", obj)], Some(obj), |mb| {
            let this = mb.this();
            let p = mb.param(0);
            let q = mb.var("q", obj);
            mb.write_field(this, slot_f[m], p);
            mb.read_field(q, this, slot_f[m]);
            mb.maybe(|mb| {
                mb.new_obj(q, mb.program_builder().object_class(), &format!("extra{m}"));
            });
            mb.ret(q);
        });

        let drive = drives[m];
        b.define_method(drive, |mb| {
            // Seed the ring with a module-distinct allocation and publish
            // the (cyclically smeared) result.
            let o = mb.var("o", obj);
            mb.new_obj(o, object, &format!("seed{m}"));
            let out = mb.var("out", obj);
            mb.call_static(Some(out), rings[m][0], &[Operand::Var(o)]);
            mb.write_global(g_glob[m], out);

            // Field chain: build a nondeterministically long `Data{m}`
            // list, stash the ring output in its head, read it back out
            // through the `next{m}` spine.
            let d = Ty::Ref(data[m]);
            let h = mb.var("h", d);
            mb.new_obj(h, data[m], &format!("head{m}"));
            let cur = mb.var("cur", d);
            mb.assign(cur, h);
            mb.loop_(|mb| {
                let n = mb.var("n", d);
                mb.new_obj(n, data[m], &format!("node{m}"));
                mb.write_field(n, next_f[m], cur);
                mb.assign(cur, n);
            });
            mb.write_field(cur, payload_f[m], out);
            mb.write_global(h_glob[m], cur);
            let t = mb.var("t", d);
            mb.read_field(t, cur, next_f[m]);
            let p2 = mb.var("p2", obj);
            mb.read_field(p2, t, payload_f[m]);
            mb.write_global(g_glob[m], p2);

            // Dispatch fan: the receiver is one of two subclasses, so the
            // on-the-fly call graph must resolve both `get` overrides.
            let recv = mb.var("recv", Ty::Ref(base[m]));
            mb.choice(
                |mb| {
                    mb.new_obj(recv, sub_a[m], &format!("suba{m}"));
                },
                |mb| {
                    mb.new_obj(recv, sub_b[m], &format!("subb{m}"));
                },
            );
            let got = mb.var("got", obj);
            mb.call_virtual(Some(got), recv, "get", &[Operand::Var(out)]);
            mb.write_global(g_glob[m], got);

            // Copy-cycle motif: three locals assigned in a ring form an
            // immediate var-level copy cycle (Andersen is flow-insensitive,
            // so `u = w` closes it without any loop), and the module reads
            // its predecessor's `X` global while publishing its own, so the
            // per-module cycles chain through X{0..scale} into one
            // program-wide SCC — the shape the online collapser (and the
            // incremental SCC-split path) must handle at every scale.
            let u = mb.var("u", obj);
            let v = mb.var("v", obj);
            let w = mb.var("w", obj);
            mb.new_obj(u, object, &format!("cyc{m}"));
            mb.assign(v, u);
            mb.assign(w, v);
            mb.assign(u, w);
            mb.read_global(u, x_glob[(m + scale - 1) % scale]);
            mb.write_global(x_glob[m], w);
            mb.ret_void();
        });
    }

    let main = b.method(None, "main", &[], None, |mb| {
        for &drive in &drives {
            mb.call_static(None, drive, &[]);
        }
        mb.ret_void();
    });
    b.set_entry(main);
    b.finish()
}

/// The motif mix [`scaled_null_program`] builds: one isolated group per
/// module, parameters varied deterministically by module index so every
/// scale mixes safe and alarming instances of all four
/// [`crate::null_motifs::NullMotif`] shapes.
pub fn scaled_null_groups(scale: usize) -> Vec<(String, Vec<crate::null_motifs::NullMotif>)> {
    use crate::null_motifs::NullMotif;
    assert!(scale > 0, "scale must be at least 1");
    (0..scale)
        .map(|m| {
            let motifs = vec![
                NullMotif::VecGet { pushes: 1 + m % 3, read_at: m % 4 },
                NullMotif::DeepChain { depth: 2 + m % 3, null_source: m % 2 == 1 },
                NullMotif::WideDispatch {
                    width: 2 + m % 3,
                    null_arm: if m % 4 == 1 { Some(m % 2) } else { None },
                },
                NullMotif::GuardedDeref,
            ];
            (format!("N{m}"), motifs)
        })
        .collect()
}

/// Deterministic null-dereference corpus with `scale` isolated modules.
///
/// The cache-hostile counterpart of [`scaled_program`] for the null
/// client: deep static call chains and wide dispatch fans over nullable
/// fields mean each dereference query drags a large, mostly-disjoint
/// slice into its cache fingerprint. Pure function of `scale`, like
/// every generator here.
///
/// # Panics
///
/// Panics if `scale` is zero.
pub fn scaled_null_program(scale: usize) -> Program {
    crate::null_motifs::build_null_program(&scaled_null_groups(scale))
}

/// Ground-truth alarm count for [`scaled_null_program`]`(scale)`.
pub fn expected_null_alarms(scale: usize) -> usize {
    crate::null_motifs::expected_alarms(&scaled_null_groups(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = tir::print_program(&scaled_program(4));
        let b = tir::print_program(&scaled_program(4));
        assert_eq!(a, b);
    }

    #[test]
    fn scales_the_program() {
        let small = scaled_program(1);
        let big = scaled_program(8);
        assert!(big.method_ids().count() > small.method_ids().count());
        assert!(tir::print_program(&big).len() > 4 * tir::print_program(&small).len());
    }

    #[test]
    fn solvers_agree_on_scaled_corpus() {
        use pta::{analyze_with, ContextPolicy, PtaOptions, SolverKind};
        let p = scaled_program(3);
        let delta = analyze_with(&p, ContextPolicy::Insensitive, &PtaOptions::default());
        let reference = analyze_with(
            &p,
            ContextPolicy::Insensitive,
            &PtaOptions { solver: SolverKind::Reference, ..Default::default() },
        );
        assert_eq!(delta.dump(&p), reference.dump(&p));
        // The ring smears every module's seed into every module's global.
        let g0 = p.global_by_name("G0").unwrap();
        assert!(delta.pt_global(g0).len() >= 3);
    }

    /// A hand-built three-variable assignment ring must be detected and
    /// collapsed by the delta solver's lazy cycle detection — the unit
    /// the scaled corpus's copy-cycle motif exercises in bulk.
    #[test]
    fn hand_built_copy_cycle_collapses() {
        use pta::{analyze_with, ContextPolicy, PtaOptions, SolverKind};
        let mut b = ProgramBuilder::new();
        let object = b.object_class();
        let obj = Ty::Ref(object);
        let main = b.method(None, "main", &[], None, |mb| {
            let a = mb.var("a", obj);
            let x = mb.var("x", obj);
            let y = mb.var("y", obj);
            mb.new_obj(a, object, "seed");
            mb.assign(x, a);
            mb.assign(y, x);
            mb.assign(a, y);
            mb.ret_void();
        });
        b.set_entry(main);
        let p = b.finish();

        let _serial = obs::test_lock();
        let rec = obs::MemRecorder::install_static(obs::RingCapacity::default());
        rec.reset();
        let delta = analyze_with(&p, ContextPolicy::Insensitive, &PtaOptions::default());
        assert!(
            rec.counter(obs::Counter::PtaSccsCollapsed) >= 1,
            "three-variable assignment ring was not collapsed"
        );
        let reference = analyze_with(
            &p,
            ContextPolicy::Insensitive,
            &PtaOptions { solver: SolverKind::Reference, ..Default::default() },
        );
        assert_eq!(delta.dump(&p), reference.dump(&p));
    }

    /// The multi-module copy-cycle motif must give the collapser real work
    /// at every scale, and collapsing must never change the answer.
    #[test]
    fn copy_cycle_motif_collapses_at_several_scales() {
        use pta::{analyze_with, ContextPolicy, PtaOptions, SolverKind};
        let _serial = obs::test_lock();
        let rec = obs::MemRecorder::install_static(obs::RingCapacity::default());
        for scale in [2, 4, 8] {
            let p = scaled_program(scale);
            rec.reset();
            let delta = analyze_with(&p, ContextPolicy::Insensitive, &PtaOptions::default());
            let collapsed = rec.counter(obs::Counter::PtaSccsCollapsed);
            assert!(collapsed >= 1, "no SCC collapsed at scale {scale}");
            let reference = analyze_with(
                &p,
                ContextPolicy::Insensitive,
                &PtaOptions { solver: SolverKind::Reference, ..Default::default() },
            );
            assert_eq!(delta.dump(&p), reference.dump(&p), "solvers disagree at scale {scale}");
        }
    }
}
