//! Probe: diamond-edge refutation with and without simplification.
use pta::{HeapEdge, ModRef};
use symex::{Engine, SymexConfig};

fn main() {
    let app = apps::suite::pulsepoint();
    let p = &app.program;
    let policy = apps::builder::container_policy(&app);
    let opts = android::to_pta_options(&android::paper_annotations(&app.lib));
    let pta = pta::analyze_with(p, policy, &opts);
    let modref = ModRef::compute(p, &pta);
    let holder_cls = p.class_by_name("Holder").unwrap();
    let obj_f = p.resolve_field(holder_cls, "obj").unwrap();
    let safe = pta.locs().ids().find(|&l| pta.loc_name(p, l).starts_with("dsafe_")).unwrap();
    let act = pta
        .locs()
        .ids()
        .find(|&l| {
            pta.loc_name(p, l).contains("_inst")
                && p.is_subclass(pta.class_of(l), p.class_by_name("Activity").unwrap())
        })
        .unwrap();
    let edge = HeapEdge::Field { base: safe, field: obj_f, target: act };
    for simp in [true, false] {
        let cfg = SymexConfig::default().with_simplification(simp);
        let mut e = Engine::new(p, &pta, &modref, cfg);
        let t = std::time::Instant::now();
        let out = e.refute_edge(&edge);
        println!(
            "simplification={simp} outcome={} time={:?} paths={} cmds={} subsumed={}",
            match out {
                symex::SearchOutcome::Refuted => "refuted",
                symex::SearchOutcome::Witnessed(_) => "witnessed",
                _ => "timeout",
            },
            t.elapsed(),
            e.stats.path_programs,
            e.stats.cmds_executed,
            e.stats.subsumed,
        );
    }
}
