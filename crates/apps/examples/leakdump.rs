//! Prints per-alarm outcomes for one suite app: `leakdump <app> [ann]`.
use android::{paper_annotations, ActivityLeakChecker};
use apps::{builder, suite};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "opensudoku".into());
    let annotated = std::env::args().any(|a| a == "ann");
    let app = match name.as_str() {
        "pulsepoint" => suite::pulsepoint(),
        "standuptimer" => suite::standuptimer(),
        "droidlife" => suite::droidlife(),
        "opensudoku" => suite::opensudoku(),
        "smspopup" => suite::smspopup(),
        "ametro" => suite::ametro(),
        "k9mail" => suite::k9mail(),
        other => panic!("unknown app {other}"),
    };
    let budget: u64 = std::env::args()
        .filter_map(|a| a.strip_prefix("budget=").and_then(|v| v.parse().ok()))
        .next()
        .unwrap_or(10_000);
    let mut checker = ActivityLeakChecker::new(&app.program)
        .with_policy(builder::container_policy(&app))
        .with_config(symex::SymexConfig::default().with_budget(budget));
    if annotated {
        checker = checker.with_annotations(paper_annotations(&app.lib));
    }
    let t0 = std::time::Instant::now();
    let report = checker.check();
    println!(
        "app={} ann={} alarms={} refuted={} fields={} reffields={} refedg={} witedg={} to={} time={:?} total={:?}",
        app.name,
        annotated,
        report.num_alarms(),
        report.num_refuted(),
        report.num_fields(),
        report.num_refuted_fields(),
        report.stats.edges_refuted,
        report.stats.edges_witnessed,
        report.stats.edge_timeouts,
        report.stats.symex_time,
        t0.elapsed(),
    );
    for (a, r) in &report.alarms {
        println!(
            "  {} ~> act : {}",
            app.program.global(a.field).name,
            if r.is_refuted() { "REFUTED" } else { "witnessed" }
        );
    }
}
