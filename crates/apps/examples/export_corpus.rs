//! Writes every suite app and figure program as a `.tir` file under
//! `corpus/` (run from the workspace root):
//! `cargo run -p apps --example export_corpus`

use std::fs;

fn main() -> std::io::Result<()> {
    fs::create_dir_all("corpus")?;
    for app in apps::suite::all_apps() {
        let path = format!("corpus/{}.tir", app.name.to_lowercase());
        fs::write(&path, tir::print_program(&app.program))?;
        println!("wrote {path}");
    }
    fs::write("corpus/fig1_vec_null_object.tir", apps::figures::FIG1_SOURCE)?;
    fs::write("corpus/fig3_aliasing.tir", apps::figures::FIG3_SOURCE)?;
    fs::write("corpus/multi_container.tir", apps::figures::MULTI_MAP_SOURCE)?;
    println!("wrote corpus/fig1_vec_null_object.tir, fig3_aliasing.tir, multi_container.tir");
    Ok(())
}
