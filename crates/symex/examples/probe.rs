//! Temporary probe for fig1 performance.
use pta::{analyze, ContextPolicy, HeapEdge, ModRef};
use symex::{Engine, SymexConfig};

fn main() {
    let src = std::fs::read_to_string("/tmp/fig1.tir").unwrap();
    let program = tir::parse(&src).unwrap();
    let pta = analyze(&program, ContextPolicy::Insensitive);
    let modref = ModRef::compute(&program, &pta);
    let arr0 = pta.locs().ids().find(|&l| pta.loc_name(&program, l) == "arr0").unwrap();
    let target_name = std::env::args().nth(2).unwrap_or_else(|| "act0".into());
    let act0 =
        pta.locs().ids().find(|&l| pta.loc_name(&program, l) == target_name.as_str()).unwrap();
    let edge = HeapEdge::Field { base: arr0, field: program.contents_field, target: act0 };
    let budget: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let cfg = SymexConfig { budget, ..SymexConfig::default() };
    let mut engine = Engine::new(&program, &pta, &modref, cfg);
    let t = std::time::Instant::now();
    let out = engine.refute_edge(&edge);
    if let symex::SearchOutcome::Witnessed(w) = &out {
        println!("WITNESS: {}", w.describe(&program));
    }
    println!(
        "budget={} outcome={:?} time={:?} paths={} cmds={} subsumed={} loops={} refs={}",
        budget,
        match out {
            symex::SearchOutcome::Refuted => "refuted",
            symex::SearchOutcome::Witnessed(_) => "witnessed",
            symex::SearchOutcome::Aborted(_) => "aborted",
        },
        t.elapsed(),
        engine.stats.path_programs,
        engine.stats.cmds_executed,
        engine.stats.subsumed,
        engine.stats.loop_fixpoints,
        engine.stats.total_refutations(),
    );
}
