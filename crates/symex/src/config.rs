//! Engine configuration, including the ablation switches evaluated in §4
//! and the robustness knobs (deadlines, degradation ladder, fault
//! injection).

use std::time::Duration;

/// Query representation (§2.2, Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Representation {
    /// The paper's contribution: symbolic variables carrying `from`
    /// instance constraints that are narrowed at every flow step, enabling
    /// early refutations without case splits.
    Mixed,
    /// Ablation: points-to facts are used only as a PSE-style aliasing
    /// oracle (pruning the aliased case of field writes) and to check
    /// allocation sites at `new`; `from` sets are never narrowed by flow and
    /// region subset checks are disabled during subsumption.
    FullySymbolic,
    /// Ablation: `from` constraints are expanded eagerly — every symbolic
    /// variable is case-split into one query per abstract location in its
    /// region (a backwards analogue of lazy initialization over locations,
    /// §2.2).
    FullyExplicit,
}

/// Loop handling (§3.3, hypothesis 3 of §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopMode {
    /// On-the-fly loop invariant inference: per-query fixed point over heap
    /// constraints with a materialization bound, dropping only pure
    /// constraints that fail to stabilize.
    Infer,
    /// Ablation: drop every constraint the loop body may modify.
    DropAll,
}

/// Tuning knobs for the witness-refutation search. Defaults reproduce the
/// configuration of the paper's evaluation (§4).
#[derive(Clone, Debug)]
pub struct SymexConfig {
    /// Query representation.
    pub representation: Representation,
    /// Loop handling.
    pub loop_mode: LoopMode,
    /// Enable query-history subsumption at loop heads and procedure
    /// boundaries (hypothesis 2 ablation when disabled).
    pub simplification: bool,
    /// Exploration budget: maximum number of path programs (query forks)
    /// per edge before declaring a timeout. Paper: 10,000.
    pub budget: u64,
    /// Call-stack depth beyond which callees are skipped by dropping the
    /// constraints they may produce (mod/ref). Paper: 3.
    pub max_call_depth: usize,
    /// Maximum number of path-condition atoms kept per query (older atoms
    /// are dropped — a sound weakening). Paper: 2.
    pub max_path_atoms: usize,
    /// Maximum backwards passes over a loop body before widening kicks in.
    pub loop_iter_cap: usize,
    /// Maximum instances materialized per abstract location during loop
    /// invariant inference. Paper: 1.
    pub materialization_bound: usize,
    /// Maximum recorded trace steps per witness.
    pub trace_cap: usize,
    /// Hard cap on exact heap cells per query; excess (newest) cells are
    /// dropped — a sound weakening bounding per-transfer cost on deep
    /// searches.
    pub max_heap_cells: usize,
    /// Cooperative wall-clock deadline per refuted edge. Checked amortized
    /// inside the engine's budget charging, so hot loops pay ~zero cost.
    /// `None` (the default) disables the check.
    pub edge_deadline: Option<Duration>,
    /// Cooperative wall-clock deadline for everything one engine does
    /// across all its edges (measured from engine construction). Edges
    /// started after it expires abort immediately with
    /// [`StopReason::WallClock`].
    ///
    /// [`StopReason::WallClock`]: crate::StopReason::WallClock
    pub total_deadline: Option<Duration>,
    /// Enables the graceful degradation ladder in
    /// [`Engine::refute_edge_resilient`]: an edge that aborts under this
    /// configuration is retried under progressively coarser (still sound)
    /// configurations. On by default; coarse retries may only *add*
    /// refutations, never remove them.
    ///
    /// [`Engine::refute_edge_resilient`]: crate::Engine::refute_edge_resilient
    pub degrade: bool,
    /// Enables must-not-null strong updates from branch guards: an
    /// `assume x != null` on an unbound reference local pins `x` to a fresh
    /// symbolic instance (symbolic values denote concrete instances, never
    /// null), so a pending `x ↦ null` constraint in a sibling disjunct
    /// refutes instead of surviving the guard. Sound for the null client's
    /// "can null reach this dereference" queries; off by default so the
    /// escape/leak clients keep their historical path behavior.
    pub track_null_guards: bool,
    /// When set, a query exceeding [`SymexConfig::max_heap_cells`] aborts
    /// the search with [`StopReason::HeapCap`] instead of being truncated.
    /// Off by default (truncation is the sound, paper-faithful behavior);
    /// useful to detect workloads that rely on the soft cap.
    ///
    /// [`StopReason::HeapCap`]: crate::StopReason::HeapCap
    pub hard_heap_cap: bool,
    /// Fault-injection hook for tests: panic inside the backwards `new`
    /// transfer when the allocation site carries this name. Exercises the
    /// drivers' panic containment; never set in production configs.
    #[doc(hidden)]
    pub inject_panic_on_new: Option<String>,
}

impl Default for SymexConfig {
    fn default() -> Self {
        SymexConfig {
            representation: Representation::Mixed,
            loop_mode: LoopMode::Infer,
            simplification: true,
            budget: 10_000,
            max_call_depth: 3,
            max_path_atoms: 2,
            loop_iter_cap: 3,
            materialization_bound: 1,
            trace_cap: 512,
            max_heap_cells: 24,
            edge_deadline: None,
            total_deadline: None,
            degrade: true,
            track_null_guards: false,
            hard_heap_cap: false,
            inject_panic_on_new: None,
        }
    }
}

impl SymexConfig {
    /// The paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the representation (builder style).
    pub fn with_representation(mut self, r: Representation) -> Self {
        self.representation = r;
        self
    }

    /// Sets the loop mode (builder style).
    pub fn with_loop_mode(mut self, m: LoopMode) -> Self {
        self.loop_mode = m;
        self
    }

    /// Enables/disables query simplification (builder style).
    pub fn with_simplification(mut self, on: bool) -> Self {
        self.simplification = on;
        self
    }

    /// Sets the per-edge path-program budget (builder style).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the per-edge wall-clock deadline (builder style).
    pub fn with_edge_deadline(mut self, d: Duration) -> Self {
        self.edge_deadline = Some(d);
        self
    }

    /// Sets the whole-engine wall-clock deadline (builder style).
    pub fn with_total_deadline(mut self, d: Duration) -> Self {
        self.total_deadline = Some(d);
        self
    }

    /// Enables/disables the degradation ladder (builder style).
    pub fn with_degrade(mut self, on: bool) -> Self {
        self.degrade = on;
        self
    }

    /// Enables/disables must-not-null guard tracking (builder style).
    pub fn with_null_guards(mut self, on: bool) -> Self {
        self.track_null_guards = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SymexConfig::default();
        assert_eq!(c.budget, 10_000);
        assert_eq!(c.max_call_depth, 3);
        assert_eq!(c.max_path_atoms, 2);
        assert_eq!(c.materialization_bound, 1);
        assert_eq!(c.representation, Representation::Mixed);
        assert!(c.simplification);
        assert_eq!(c.edge_deadline, None);
        assert_eq!(c.total_deadline, None);
        assert!(c.degrade);
        assert!(!c.track_null_guards);
        assert!(!c.hard_heap_cap);
        assert!(c.inject_panic_on_new.is_none());
    }

    #[test]
    fn builder_chains() {
        let c = SymexConfig::new()
            .with_representation(Representation::FullySymbolic)
            .with_simplification(false)
            .with_budget(5);
        assert_eq!(c.representation, Representation::FullySymbolic);
        assert!(!c.simplification);
        assert_eq!(c.budget, 5);
    }
}
