//! Engine configuration, including the ablation switches evaluated in §4.

/// Query representation (§2.2, Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Representation {
    /// The paper's contribution: symbolic variables carrying `from`
    /// instance constraints that are narrowed at every flow step, enabling
    /// early refutations without case splits.
    Mixed,
    /// Ablation: points-to facts are used only as a PSE-style aliasing
    /// oracle (pruning the aliased case of field writes) and to check
    /// allocation sites at `new`; `from` sets are never narrowed by flow and
    /// region subset checks are disabled during subsumption.
    FullySymbolic,
    /// Ablation: `from` constraints are expanded eagerly — every symbolic
    /// variable is case-split into one query per abstract location in its
    /// region (a backwards analogue of lazy initialization over locations,
    /// §2.2).
    FullyExplicit,
}

/// Loop handling (§3.3, hypothesis 3 of §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopMode {
    /// On-the-fly loop invariant inference: per-query fixed point over heap
    /// constraints with a materialization bound, dropping only pure
    /// constraints that fail to stabilize.
    Infer,
    /// Ablation: drop every constraint the loop body may modify.
    DropAll,
}

/// Tuning knobs for the witness-refutation search. Defaults reproduce the
/// configuration of the paper's evaluation (§4).
#[derive(Clone, Debug)]
pub struct SymexConfig {
    /// Query representation.
    pub representation: Representation,
    /// Loop handling.
    pub loop_mode: LoopMode,
    /// Enable query-history subsumption at loop heads and procedure
    /// boundaries (hypothesis 2 ablation when disabled).
    pub simplification: bool,
    /// Exploration budget: maximum number of path programs (query forks)
    /// per edge before declaring a timeout. Paper: 10,000.
    pub budget: u64,
    /// Call-stack depth beyond which callees are skipped by dropping the
    /// constraints they may produce (mod/ref). Paper: 3.
    pub max_call_depth: usize,
    /// Maximum number of path-condition atoms kept per query (older atoms
    /// are dropped — a sound weakening). Paper: 2.
    pub max_path_atoms: usize,
    /// Maximum backwards passes over a loop body before widening kicks in.
    pub loop_iter_cap: usize,
    /// Maximum instances materialized per abstract location during loop
    /// invariant inference. Paper: 1.
    pub materialization_bound: usize,
    /// Maximum recorded trace steps per witness.
    pub trace_cap: usize,
    /// Hard cap on exact heap cells per query; excess (newest) cells are
    /// dropped — a sound weakening bounding per-transfer cost on deep
    /// searches.
    pub max_heap_cells: usize,
}

impl Default for SymexConfig {
    fn default() -> Self {
        SymexConfig {
            representation: Representation::Mixed,
            loop_mode: LoopMode::Infer,
            simplification: true,
            budget: 10_000,
            max_call_depth: 3,
            max_path_atoms: 2,
            loop_iter_cap: 3,
            materialization_bound: 1,
            trace_cap: 512,
            max_heap_cells: 24,
        }
    }
}

impl SymexConfig {
    /// The paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the representation (builder style).
    pub fn with_representation(mut self, r: Representation) -> Self {
        self.representation = r;
        self
    }

    /// Sets the loop mode (builder style).
    pub fn with_loop_mode(mut self, m: LoopMode) -> Self {
        self.loop_mode = m;
        self
    }

    /// Enables/disables query simplification (builder style).
    pub fn with_simplification(mut self, on: bool) -> Self {
        self.simplification = on;
        self
    }

    /// Sets the per-edge path-program budget (builder style).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SymexConfig::default();
        assert_eq!(c.budget, 10_000);
        assert_eq!(c.max_call_depth, 3);
        assert_eq!(c.max_path_atoms, 2);
        assert_eq!(c.materialization_bound, 1);
        assert_eq!(c.representation, Representation::Mixed);
        assert!(c.simplification);
    }

    #[test]
    fn builder_chains() {
        let c = SymexConfig::new()
            .with_representation(Representation::FullySymbolic)
            .with_simplification(false)
            .with_budget(5);
        assert_eq!(c.representation, Representation::FullySymbolic);
        assert!(!c.simplification);
        assert_eq!(c.budget, 5);
    }
}
