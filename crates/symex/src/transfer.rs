//! Backwards transfer functions for atomic commands — the rules of
//! Figure 4 (`WitNew`, `WitAssign`, `WitRead`, `WitWrite`, `WitAssume`)
//! plus globals, arrays, arithmetic, calls, and returns.

use pta::BitSet;
use solver::{Atom, Term};
use tir::{BinOp, CmdId, CmpOp, Command, Cond, FieldId, GlobalId, Operand, VarId};

use crate::config::Representation;
use crate::engine::{Engine, Flow, Stop};
use crate::query::{HeapCell, Query, Refuted};
use crate::stats::StopReason;
use crate::value::Val;

/// Whether per-command trace messages are requested (`SYMEX_TRACE`). The
/// environment is consulted once — this runs on every command transfer.
fn trace_cmds() -> bool {
    static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| std::env::var_os("SYMEX_TRACE").is_some())
}

impl Engine<'_> {
    /// Applies the backwards transfer of one command. Returns the surviving
    /// pre-queries; an empty vector means every case was refuted.
    pub(crate) fn exec_cmd_back(&mut self, cmd_id: CmdId, mut q: Query) -> Flow {
        self.charge_cmd()?;
        self.stats.add_cmd_executed();
        obs::observe(obs::Hist::HeapCells, q.heap.len() as u64);
        if self.stats.cmds_executed.is_multiple_of(50_000) {
            obs::instant_with(obs::SpanKind::Message, || {
                format!(
                    "progress: cmds={} paths={} heap_cells_now={}",
                    self.stats.cmds_executed,
                    self.stats.path_programs,
                    q.heap.len()
                )
            });
        }
        q.record(cmd_id, self.config.trace_cap);
        if trace_cmds() {
            obs::instant_with(obs::SpanKind::Message, || {
                format!(
                    "[{}] {} || {}",
                    self.program.describe_cmd(cmd_id),
                    tir::print_cmd(self.program, self.program.cmd(cmd_id)),
                    q.describe(self.program)
                )
            });
        }
        let program = self.program;
        let cmd = program.cmd(cmd_id);
        // Calls, writes, and guards manage their own forking/stopping.
        let qs: Vec<Query> = match cmd {
            Command::Call { .. } => self.exec_call_back(cmd_id, q)?,
            Command::WriteField { obj, field, src } => {
                self.exec_write_back(q, *obj, *field, None, *src)?
            }
            Command::WriteArray { arr, idx, src } => {
                self.exec_write_back(q, *arr, program.contents_field, Some(*idx), *src)?
            }
            Command::Assume { cond } => match self.apply_cond(cond, q)? {
                Some(q2) => vec![q2],
                None => Vec::new(),
            },
            other => {
                let res = match other {
                    Command::Assign { dst, src } => self.exec_assign_back(q, *dst, *src),
                    Command::BinOp { dst, op, lhs, rhs } => {
                        self.exec_binop_back(q, *dst, *op, *lhs, *rhs)
                    }
                    Command::ReadField { dst, obj, field } => {
                        self.exec_read_back(q, *dst, *obj, *field, None)
                    }
                    Command::ReadArray { dst, arr, idx } => {
                        self.exec_read_back(q, *dst, *arr, program.contents_field, Some(*idx))
                    }
                    Command::ArrayLen { dst, arr } => {
                        self.exec_read_back(q, *dst, *arr, program.len_field, None)
                    }
                    Command::ReadGlobal { dst, global } => {
                        self.exec_read_global_back(q, *dst, *global)
                    }
                    Command::WriteGlobal { global, src } => {
                        self.exec_write_global_back(q, *global, *src)
                    }
                    Command::New { dst, alloc, .. } => self.exec_new_back(q, *dst, *alloc, None),
                    Command::NewArray { dst, alloc, len } => {
                        self.exec_new_back(q, *dst, *alloc, Some(*len))
                    }
                    Command::Return { val } => self.exec_return_back(q, *val),
                    _ => unreachable!("handled above"),
                };
                match res {
                    Ok(qs) => qs,
                    Err(r) => {
                        self.stats.count_refutation(r);
                        Vec::new()
                    }
                }
            }
        };
        self.finish(qs)
    }

    /// Post-processing shared by all transfers: heap-consistency
    /// normalization, explicit-mode explosion, and the full-witness check
    /// (a discharged satisfiable query is `any`).
    fn finish(&mut self, qs: Vec<Query>) -> Flow {
        let cap = self.config.max_heap_cells;
        let hard_cap = self.config.hard_heap_cap;
        let mut capped = Vec::with_capacity(qs.len());
        for mut q in qs {
            // Bound query size: drop the newest cells beyond the cap
            // (sound weakening; keeps transfers and entailment cheap). With
            // `hard_heap_cap` the overflow aborts instead, surfacing
            // workloads that depend on the truncation.
            if q.heap.len() > cap && hard_cap {
                return Err(Stop::Aborted(StopReason::HeapCap));
            }
            while q.heap.len() > cap {
                q.heap.pop();
            }
            capped.push(q);
        }
        let mut out = Vec::new();
        if self.config.representation == Representation::FullyExplicit {
            for q in capped {
                self.explode(q, &mut out)?;
            }
        } else {
            out = capped;
        }
        if out.len() > 1 {
            self.charge(out.len() as u64 - 1)?;
        }
        for q in &out {
            if q.is_discharged() && q.ret_slot.is_none() {
                // A solver failure means we cannot show the discharged
                // query inconsistent, but reporting it as a witness would
                // hide the failure — abort with provenance instead (equally
                // sound: the edge stays unrefuted either way).
                match q.try_pure_sat() {
                    Ok(true) => return Err(Stop::Witnessed(self.make_witness(q))),
                    Ok(false) => {}
                    Err(_) => return Err(Stop::Aborted(StopReason::SolverFailure)),
                }
            }
        }
        Ok(out)
    }

    /// Heap-consistency narrowing: for every exact cell `ô·f ↦ v̂`, the
    /// soundness of the up-front analysis guarantees that some `l` in the
    /// owner's region has `pt(l.f)` intersecting the value's region. Both
    /// regions are narrowed accordingly, to a fixed point. This extends the
    /// per-rule `from` narrowing of Figure 4 across unifications (e.g. a
    /// receiver narrowed at a call site propagates into the cells it owns).
    ///
    /// Run at procedure boundaries and loop heads (not per transfer — the
    /// per-rule narrowing of Figure 4 covers straight-line flow).
    ///
    /// Disabled in the fully-symbolic ablation (no flow narrowing).
    pub(crate) fn normalize_cells(&mut self, q: &mut Query) -> Result<(), Refuted> {
        if self.config.representation == Representation::FullySymbolic {
            return Ok(());
        }
        // Single pass per transfer: narrowing cascades are picked up by the
        // next transfer's pass, keeping per-transfer cost linear.
        {
            let mut changed = false;
            let cells: Vec<(crate::value::SymId, FieldId, Val)> =
                q.heap.iter().map(|c| (c.obj, c.field, c.val)).collect();
            for (obj, field, val) in cells {
                let Val::Sym(vs) = val else { continue };
                let Some(val_locs) = q.region(vs).as_locs().cloned() else { continue };
                let Some(owner_locs) = q.region(obj).as_locs().cloned() else { continue };
                // Forward: the value must lie in the union of the owners'
                // field points-to sets.
                let mut allowed = BitSet::new();
                for l in owner_locs.iter() {
                    allowed.union_with(self.pta.pt_field(pta::LocId(l as u32), field));
                }
                if !val_locs.is_subset(&allowed) {
                    q.narrow(vs, &allowed)?;
                    changed = true;
                }
                // Backward: the owner must be a location whose field may
                // reach the value's region.
                let mut owners = BitSet::new();
                for l in owner_locs.iter() {
                    let lid = pta::LocId(l as u32);
                    if !self.pta.pt_field(lid, field).is_disjoint(&val_locs) {
                        owners.insert(l);
                    }
                }
                if owners != owner_locs {
                    q.narrow(obj, &owners)?;
                    changed = true;
                }
            }
            let _ = changed;
        }
        Ok(())
    }

    /// Fully-explicit representation (§2.2): case-split every symbolic value
    /// whose region holds more than one abstract location.
    fn explode(&mut self, q: Query, out: &mut Vec<Query>) -> Result<(), Stop> {
        let split = q.regions().find_map(|(s, r)| {
            r.as_locs().and_then(|l| if l.len() > 1 { Some((s, l.clone())) } else { None })
        });
        match split {
            None => {
                out.push(q);
                Ok(())
            }
            Some((s, locs)) => {
                self.charge(locs.len() as u64 - 1)?;
                for l in locs.iter() {
                    let mut q2 = q.clone();
                    q2.narrow(s, &BitSet::singleton(l)).expect("singleton narrow");
                    self.explode(q2, out)?;
                }
                Ok(())
            }
        }
    }

    /// `WitAssign` — `x := src` produced `x ↦ v` iff `src` evaluates to `v`,
    /// with the region narrowed by `pt(src)` (boxed condition of Fig. 4).
    fn exec_assign_back(
        &mut self,
        mut q: Query,
        dst: VarId,
        src: Operand,
    ) -> Result<Vec<Query>, Refuted> {
        let Some(v) = q.locals.remove(&dst) else { return Ok(vec![q]) };
        self.bind_value_to_operand(&mut q, v, src)?;
        Ok(vec![q])
    }

    /// Backwards integer arithmetic: `x := lhs op rhs`. Addition and
    /// subtraction by a constant stay in the solver's fragment; anything
    /// else soundly drops the constraint on `x`.
    fn exec_binop_back(
        &mut self,
        mut q: Query,
        dst: VarId,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    ) -> Result<Vec<Query>, Refuted> {
        let Some(v) = q.locals.remove(&dst) else { return Ok(vec![q]) };
        let v_term = match v {
            Val::Int(c) => Term::int(c),
            Val::Sym(s) => Term::sym(s.0),
            Val::Null => return Err(Refuted::Pure),
        };
        match (op, lhs, rhs) {
            (_, Operand::Int(a), Operand::Int(b)) => {
                // Checked arithmetic: an overflowing constant fold would
                // either panic (debug) or silently disagree with the
                // concrete wrapping semantics (release). Dropping the
                // constraint instead is a sound weakening.
                let r = match op {
                    BinOp::Add => a.checked_add(b),
                    BinOp::Sub => a.checked_sub(b),
                    BinOp::Mul => a.checked_mul(b),
                };
                let Some(r) = r else { return Ok(vec![q]) };
                q.add_pure(CmpOp::Eq, v_term, Term::int(r))?;
            }
            (BinOp::Add, Operand::Var(y), Operand::Int(c))
            | (BinOp::Add, Operand::Int(c), Operand::Var(y)) => {
                let w = self.int_term(&mut q, y)?;
                let Some(t) = offset(w, c) else { return Ok(vec![q]) };
                q.add_pure(CmpOp::Eq, v_term, t)?;
            }
            (BinOp::Sub, Operand::Var(y), Operand::Int(c)) => {
                let w = self.int_term(&mut q, y)?;
                let Some(t) = c.checked_neg().and_then(|nc| offset(w, nc)) else {
                    return Ok(vec![q]);
                };
                q.add_pure(CmpOp::Eq, v_term, t)?;
            }
            _ => {
                // Multiplication or var-var arithmetic: outside the solver
                // fragment; drop the constraint (sound weakening).
                return Ok(vec![q]);
            }
        }
        Ok(vec![q])
    }

    /// The solver term for integer variable `y`, binding it if needed.
    fn int_term(&mut self, q: &mut Query, y: VarId) -> Result<Term, Refuted> {
        match self.get_or_bind(q, y)? {
            Val::Int(c) => Ok(Term::int(c)),
            Val::Sym(s) => Ok(Term::sym(s.0)),
            Val::Null => Err(Refuted::Pure),
        }
    }

    /// The value of an integer operand, binding variables as needed.
    fn int_operand(&mut self, q: &mut Query, o: Operand) -> Result<Val, Refuted> {
        match o {
            Operand::Int(c) => Ok(Val::Int(c)),
            Operand::Null => Err(Refuted::Pure),
            Operand::Var(y) => self.get_or_bind(q, y),
        }
    }

    /// `WitRead` — `x := obj.field` (also arrays via `contents` and `len`):
    /// materializes the base instance `û from pt(obj)`, narrows
    /// `v from pt(obj.field)`, and records the cell `û·field ↦ v`.
    fn exec_read_back(
        &mut self,
        mut q: Query,
        dst: VarId,
        obj: VarId,
        field: FieldId,
        idx: Option<Operand>,
    ) -> Result<Vec<Query>, Refuted> {
        let Some(v) = q.locals.remove(&dst) else { return Ok(vec![q]) };
        if self.config.representation != Representation::FullySymbolic {
            if let Val::Sym(s) = v {
                if self.program.field(field).ty.is_ref() {
                    let pt = self.pta.pt_var_field(obj, field);
                    q.narrow(s, &pt)?;
                }
            }
        }
        let base = self.get_or_bind(&mut q, obj)?;
        let Val::Sym(base_sym) = base else {
            // Reading a field of null: the path cannot execute.
            return Err(Refuted::Separation);
        };
        let idx_val = match idx {
            Some(op) => Some(self.int_operand(&mut q, op)?),
            None => None,
        };
        self.add_cell(&mut q, base_sym, field, v, idx_val)?;
        Ok(vec![q])
    }

    /// Inserts a heap cell, unifying with an existing cell for the same
    /// concrete memory cell (same owner and field; for arrays also a
    /// syntactically equal index).
    fn add_cell(
        &mut self,
        q: &mut Query,
        obj: crate::value::SymId,
        field: FieldId,
        val: Val,
        idx: Option<Val>,
    ) -> Result<(), Refuted> {
        for cell in &q.heap {
            if cell.obj == obj && cell.field == field && cell.idx == idx {
                let existing = cell.val;
                return q.unify(existing, val);
            }
        }
        q.heap.push(HeapCell { obj, field, val, idx });
        Ok(())
    }

    /// `WitWrite` — `obj.field := src` (also arrays): one disjunct where the
    /// write produced each matching cell (restricting the owner by `pt(obj)`
    /// and the value by `pt(src)`), plus one where it produced none of them.
    fn exec_write_back(
        &mut self,
        q: Query,
        obj: VarId,
        field: FieldId,
        idx: Option<Operand>,
        src: Operand,
    ) -> Flow {
        let cell_ids: Vec<usize> =
            q.heap.iter().enumerate().filter(|(_, c)| c.field == field).map(|(i, _)| i).collect();
        if cell_ids.is_empty() {
            return Ok(vec![q]);
        }
        self.charge(cell_ids.len() as u64)?;
        let mut out = Vec::new();

        // Disjunct: the write did not produce any of the cells.
        match self.write_not_produced(q.clone(), obj, field, &idx) {
            Ok(q_not) => out.push(q_not),
            Err(r) => self.stats.count_refutation(r),
        }

        // Disjuncts: the write produced cell `i`.
        for i in cell_ids {
            match self.write_produced(q.clone(), i, obj, &idx, src) {
                Ok(q_i) => out.push(q_i),
                Err(r) => self.stats.count_refutation(r),
            }
        }
        Ok(out)
    }

    /// The "not produced" case of `WitWrite`: the written cell is separate
    /// from every queried cell. The disequality is checked locally against
    /// unified owners and then dropped (§3.3 "Query Simplification with
    /// Disaliasing").
    fn write_not_produced(
        &mut self,
        mut q: Query,
        obj: VarId,
        field: FieldId,
        idx: &Option<Operand>,
    ) -> Result<Query, Refuted> {
        let base = self.get_or_bind(&mut q, obj)?;
        let Val::Sym(base_sym) = base else { return Err(Refuted::Separation) };
        if self.config.representation != Representation::FullySymbolic {
            q.narrow(base_sym, self.pta.pt_var(obj))?;
        }
        let idx_val = match idx {
            Some(op) => Some(self.int_operand(&mut q, *op)?),
            None => None,
        };
        let cells: Vec<(crate::value::SymId, Option<Val>)> =
            q.heap.iter().filter(|c| c.field == field).map(|c| (c.obj, c.idx)).collect();
        for (cell_obj, cell_idx) in cells {
            if cell_obj != base_sym {
                // Distinct symbols: possibly disaliased; the disequality is
                // dropped (kept implicitly via separation and `from`).
                continue;
            }
            match (&idx_val, &cell_idx) {
                (Some(wi), Some(ci)) => {
                    // Same array object: the indices must differ.
                    let wt = val_term(*wi)?;
                    let ct = val_term(*ci)?;
                    q.add_pure(CmpOp::Ne, wt, ct).map_err(|_| Refuted::Separation)?;
                }
                _ => return Err(Refuted::Separation),
            }
        }
        Ok(q)
    }

    /// The "produced cell `i`" case of `WitWrite`.
    fn write_produced(
        &mut self,
        mut q: Query,
        i: usize,
        obj: VarId,
        idx: &Option<Operand>,
        src: Operand,
    ) -> Result<Query, Refuted> {
        let cell = q.heap.remove(i);
        if self.config.representation != Representation::FullySymbolic {
            q.narrow(cell.obj, self.pta.pt_var(obj))?;
        } else {
            // PSE-style aliasing oracle: prune if the owner cannot be pt(obj).
            if let Some(locs) = q.region(cell.obj).as_locs() {
                if locs.is_disjoint(self.pta.pt_var(obj)) {
                    return Err(Refuted::EmptyRegion);
                }
            }
        }
        let base = self.get_or_bind(&mut q, obj)?;
        q.unify(base, Val::Sym(cell.obj))?;
        self.bind_value_to_operand(&mut q, cell.val, src)?;
        if let (Some(op), Some(ci)) = (idx, &cell.idx) {
            let wi = self.int_operand(&mut q, *op)?;
            q.unify(wi, *ci)?;
        }
        Ok(q)
    }

    /// Backwards `x := $G`: globals are single concrete cells.
    fn exec_read_global_back(
        &mut self,
        mut q: Query,
        dst: VarId,
        global: GlobalId,
    ) -> Result<Vec<Query>, Refuted> {
        let Some(v) = q.locals.remove(&dst) else { return Ok(vec![q]) };
        if self.config.representation != Representation::FullySymbolic {
            if let Val::Sym(s) = v {
                if self.program.global(global).ty.is_ref() {
                    q.narrow(s, self.pta.pt_global(global))?;
                }
            }
        }
        match q.statics.get(&global).copied() {
            Some(w) => q.unify(v, w)?,
            None => {
                q.statics.insert(global, v);
            }
        }
        Ok(vec![q])
    }

    /// Backwards `$G := src`: a strong update — the single cell `$G` was
    /// definitely produced by this write.
    fn exec_write_global_back(
        &mut self,
        mut q: Query,
        global: GlobalId,
        src: Operand,
    ) -> Result<Vec<Query>, Refuted> {
        let Some(v) = q.statics.remove(&global) else { return Ok(vec![q]) };
        self.bind_value_to_operand(&mut q, v, src)?;
        Ok(vec![q])
    }

    /// `WitNew` — `x := new @alloc` (and `newarray`): the bound instance
    /// must come from this allocation site, its fields are default-valued
    /// at birth, and it cannot occur in any earlier constraint.
    fn exec_new_back(
        &mut self,
        mut q: Query,
        dst: VarId,
        alloc: tir::AllocId,
        array_len: Option<Operand>,
    ) -> Result<Vec<Query>, Refuted> {
        if let Some(victim) = &self.config.inject_panic_on_new {
            if self.program.alloc(alloc).name == *victim {
                panic!("injected fault at allocation site {victim}");
            }
        }
        let Some(v) = q.locals.remove(&dst) else { return Ok(vec![q]) };
        let s = match v {
            Val::Sym(s) => s,
            // `new` yields a non-null reference.
            Val::Null => return Err(Refuted::Separation),
            Val::Int(_) => return Err(Refuted::Pure),
        };
        let locs = self.pta.alloc_locs(alloc);
        match q.region(s).as_locs() {
            Some(r) if !r.is_disjoint(locs) => {}
            _ => return Err(Refuted::Allocation),
        }
        // Fields are null/zero at birth; array length is initialized.
        let own_cells: Vec<usize> =
            q.heap.iter().enumerate().filter(|(_, c)| c.obj == s).map(|(i, _)| i).collect();
        for i in own_cells.into_iter().rev() {
            let cell = q.heap.remove(i);
            if cell.field == self.program.len_field {
                if let Some(len_op) = array_len {
                    let len_val = self.int_operand(&mut q, len_op)?;
                    q.unify(cell.val, len_val)?;
                    continue;
                }
            }
            match cell.val {
                Val::Null | Val::Int(0) => {}
                Val::Int(_) => return Err(Refuted::Allocation),
                Val::Sym(vs) => match q.region(vs) {
                    // An integer field is zero at birth.
                    crate::region::Region::Data => q.unify(Val::Sym(vs), Val::Int(0))?,
                    // A reference field cannot hold an instance at birth.
                    crate::region::Region::Locs(_) => return Err(Refuted::Allocation),
                },
            }
        }
        // The instance cannot be referenced before its allocation.
        let occurs_elsewhere = q.locals.values().any(|&w| w == Val::Sym(s))
            || q.statics.values().any(|&w| w == Val::Sym(s))
            || q.heap
                .iter()
                .any(|c| c.obj == s || c.val == Val::Sym(s) || c.idx == Some(Val::Sym(s)))
            || q.ret_slot == Some(Val::Sym(s));
        if occurs_elsewhere {
            return Err(Refuted::Allocation);
        }
        q.gc();
        Ok(vec![q])
    }

    /// Backwards `return val`: consumes the pending return binding pushed
    /// by the caller's call transfer.
    fn exec_return_back(
        &mut self,
        mut q: Query,
        val: Option<Operand>,
    ) -> Result<Vec<Query>, Refuted> {
        if let Some(v) = q.ret_slot.take() {
            match val {
                Some(op) => self.bind_value_to_operand(&mut q, v, op)?,
                None => {
                    // A void return cannot produce the awaited value;
                    // validation prevents this pairing.
                    return Err(Refuted::Pure);
                }
            }
        }
        Ok(vec![q])
    }

    /// `WitAssume` — guard conditions. Path constraints are added only when
    /// the guard mentions a value the query is already tracking ("only when
    /// the queries on each side of the branch are different", §3.2), and the
    /// path-constraint set is capped (§4).
    pub(crate) fn apply_cond(&mut self, cond: &Cond, mut q: Query) -> Result<Option<Query>, Stop> {
        let Cond::Cmp { op, lhs, rhs } = cond else { return Ok(Some(q)) };
        let is_ref_operand = |o: &Operand| match o {
            Operand::Null => true,
            Operand::Var(v) => self.program.var(*v).ty.is_ref(),
            Operand::Int(_) => false,
        };
        if is_ref_operand(lhs) || is_ref_operand(rhs) {
            return Ok(self.apply_ref_cond(*op, *lhs, *rhs, q));
        }
        // Integer comparison. Unbound variables are bound to fresh data
        // symbols: field reads feeding the guard then unify those symbols
        // with the queried heap cells, which is how the `sz < cap` path
        // constraint of Figure 1 connects to the constructor's stores.
        let t1 = match self.cond_term(&mut q, lhs) {
            Ok(t) => t,
            Err(r) => {
                self.stats.count_refutation(r);
                return Ok(None);
            }
        };
        let t2 = match self.cond_term(&mut q, rhs) {
            Ok(t) => t,
            Err(r) => {
                self.stats.count_refutation(r);
                return Ok(None);
            }
        };
        match q.add_path_atom(Atom::new(*op, t1, t2), self.config.max_path_atoms) {
            Ok(()) => Ok(Some(q)),
            Err(r) => {
                self.stats.count_refutation(r);
                Ok(None)
            }
        }
    }

    /// The solver term for a guard operand, binding integer variables.
    fn cond_term(&mut self, q: &mut Query, o: &Operand) -> Result<Term, Refuted> {
        match o {
            Operand::Int(c) => Ok(Term::int(*c)),
            Operand::Null => Err(Refuted::Pure),
            Operand::Var(v) => match self.get_or_bind(q, *v)? {
                Val::Int(c) => Ok(Term::int(c)),
                Val::Sym(s) => Ok(Term::sym(s.0)),
                Val::Null => Err(Refuted::Pure),
            },
        }
    }

    /// Reference equality/disequality guards.
    fn apply_ref_cond(
        &mut self,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
        mut q: Query,
    ) -> Option<Query> {
        let val_of = |o: &Operand, q: &Query| -> Option<Val> {
            match o {
                Operand::Null => Some(Val::Null),
                Operand::Var(v) => q.locals.get(v).copied(),
                Operand::Int(c) => Some(Val::Int(*c)),
            }
        };
        let a = val_of(&lhs, &q);
        let b = val_of(&rhs, &q);
        match op {
            CmpOp::Eq => match (a, b) {
                (Some(x), Some(y)) => match q.unify(x, y) {
                    Ok(()) => Some(q),
                    Err(r) => {
                        self.stats.count_refutation(r);
                        None
                    }
                },
                (Some(x), None) => {
                    if let Operand::Var(y) = rhs {
                        q.locals.insert(y, x);
                    }
                    Some(q)
                }
                (None, Some(y)) => {
                    if let Operand::Var(x) = lhs {
                        q.locals.insert(x, y);
                    }
                    Some(q)
                }
                (None, None) => Some(q),
            },
            CmpOp::Ne => match (a, b) {
                (Some(Val::Sym(x)), Some(Val::Sym(y))) if x == y => {
                    self.stats.count_refutation(Refuted::Separation);
                    None
                }
                (Some(Val::Null), Some(Val::Null)) => {
                    self.stats.count_refutation(Refuted::Separation);
                    None
                }
                // Must-not-null strong update (null client): `x != null`
                // with `x` unbound pins `x` to a fresh instance symbol —
                // symbolic values are never null — so a null flowing into
                // `x` earlier in the path refutes at the unification. An
                // empty points-to set means `x` can only ever hold null,
                // making the guarded branch infeasible outright.
                (None, Some(Val::Null)) | (Some(Val::Null), None)
                    if self.config.track_null_guards =>
                {
                    let var = match (&lhs, &rhs) {
                        (Operand::Var(v), _) if a.is_none() => *v,
                        (_, Operand::Var(v)) => *v,
                        _ => return Some(q),
                    };
                    match self.get_or_bind(&mut q, var) {
                        Ok(_) => Some(q),
                        Err(r) => {
                            self.stats.count_refutation(r);
                            None
                        }
                    }
                }
                // Distinct symbols / sym-vs-null: consistent (symbols denote
                // instances). The disaliasing fact is dropped (§3.3).
                _ => Some(q),
            },
            // Ordered comparison on references is not generated by the
            // front-end; keep the query unchanged.
            _ => Some(q),
        }
    }
}

/// The solver term for a value known to be an integer.
fn val_term(v: Val) -> Result<Term, Refuted> {
    match v {
        Val::Int(c) => Ok(Term::int(c)),
        Val::Sym(s) => Ok(Term::sym(s.0)),
        Val::Null => Err(Refuted::Pure),
    }
}

/// `base + c` as a term; `None` when folding the offsets would overflow
/// (callers drop the constraint — a sound weakening).
fn offset(base: Term, c: i64) -> Option<Term> {
    match base {
        Term::Sym(s) => Some(Term::sym_plus(s, c)),
        Term::SymPlus(s, k) => k.checked_add(c).map(|kc| Term::sym_plus(s, kc)),
        Term::Const(k) => k.checked_add(c).map(Term::int),
    }
}
