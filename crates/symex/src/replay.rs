//! Witness validation by forward replay.
//!
//! A [`Witness`] records the backwards-traversed command
//! sequence of a path program. Replaying that sequence *forwards* through a
//! lightweight abstract heap validates the witness structurally: every
//! command must be executable in order (definitions before uses of the
//! objects the query tracks), mirroring the paper's use of path programs
//! for alarm triage ("the path program witnesses our tool produces are
//! always helpful in triaging reported leak alarms", §4).
//!
//! The replay is necessarily approximate — a path program may include loop
//! iterations and abstract (over-approximate) steps — so validation checks
//! *consistency*, not concrete executability: it confirms the trace visits
//! commands of connected methods in caller/callee order and that the
//! claimed producing statement exists.

use std::collections::HashSet;

use tir::{CmdId, MethodId, Program};

use crate::stats::Witness;

/// The verdict of a replay check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// The trace is structurally consistent.
    Consistent,
    /// The trace is empty (no information to validate).
    Empty,
    /// Two adjacent trace steps belong to methods with no caller/callee or
    /// sibling relationship in the call graph.
    DisconnectedStep {
        /// Index of the offending step in the trace.
        index: usize,
    },
}

/// Structurally validates a witness trace against the program's call graph.
///
/// The trace is ordered from the producing statement backwards; adjacent
/// steps must stay within one method or move along a call-graph edge
/// (callee → caller when propagating up, caller → callee when a call was
/// entered).
pub fn validate_witness(
    program: &Program,
    pta: &dyn pta::PtaView,
    witness: &Witness,
) -> ReplayVerdict {
    if witness.trace.is_empty() {
        return ReplayVerdict::Empty;
    }
    let related = |a: MethodId, b: MethodId| -> bool {
        if a == b {
            return true;
        }
        // b reachable from a's call sites or vice versa (one hop).
        let calls = |m: MethodId, n: MethodId| {
            program.method_cmds(m).into_iter().any(|c| pta.call_targets(c).contains(&n))
        };
        calls(a, b) || calls(b, a)
    };
    let methods: Vec<MethodId> = witness.trace.iter().map(|&c| program.cmd_method(c)).collect();
    for (i, pair) in methods.windows(2).enumerate() {
        if !related(pair[0], pair[1]) {
            return ReplayVerdict::DisconnectedStep { index: i + 1 };
        }
    }
    // Every traced command must really exist in its method body.
    let mut per_method: HashSet<(MethodId, CmdId)> = HashSet::new();
    for (&c, &m) in witness.trace.iter().zip(&methods) {
        per_method.insert((m, c));
    }
    for (m, c) in per_method {
        if !program.method_cmds(m).contains(&c) {
            // cmd_method and method_cmds disagree — impossible unless the
            // witness was built against a different program.
            return ReplayVerdict::DisconnectedStep { index: 0 };
        }
    }
    ReplayVerdict::Consistent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, SearchOutcome, SymexConfig};
    use pta::{ContextPolicy, HeapEdge, ModRef};

    #[test]
    fn real_witnesses_validate() {
        let p = tir::parse(
            r#"
class Box { field item: Object; }
fn store(b: Box, o: Object) {
  b.item = o;
}
fn main() {
  var b: Box;
  var o: Object;
  b = new Box @box0;
  o = new Object @obj0;
  call store(b, o);
}
entry main;
"#,
        )
        .expect("parse");
        let r = pta::analyze(&p, ContextPolicy::Insensitive);
        let m = ModRef::compute(&p, &r);
        let box0 = r.locs().ids().find(|&l| r.loc_name(&p, l) == "box0").unwrap();
        let obj0 = r.locs().ids().find(|&l| r.loc_name(&p, l) == "obj0").unwrap();
        let c = p.class_by_name("Box").unwrap();
        let f = p.resolve_field(c, "item").unwrap();
        let edge = HeapEdge::Field { base: box0, field: f, target: obj0 };
        let out = Engine::new(&p, &r, &m, SymexConfig::default()).refute_edge(&edge);
        let SearchOutcome::Witnessed(w) = out else { panic!("expected witness") };
        assert_eq!(validate_witness(&p, &r, &w), ReplayVerdict::Consistent);
    }

    #[test]
    fn empty_trace_is_flagged() {
        let p = tir::parse("fn main() { } entry main;").expect("parse");
        let r = pta::analyze(&p, ContextPolicy::Insensitive);
        let w = Witness { trace: Vec::new(), final_query: "any".into() };
        assert_eq!(validate_witness(&p, &r, &w), ReplayVerdict::Empty);
    }

    #[test]
    fn disconnected_trace_is_flagged() {
        let p = tir::parse(
            r#"
fn island() {
  var x: int;
  x = 1;
}
fn main() {
  var y: int;
  y = 2;
}
entry main;
"#,
        )
        .expect("parse");
        let r = pta::analyze(&p, ContextPolicy::Insensitive);
        // Stitch a fake trace crossing unrelated methods.
        let island = p.free_function("island").unwrap();
        let main = p.entry();
        let c1 = p.method_cmds(island)[0];
        let c2 = p.method_cmds(main)[0];
        let w = Witness { trace: vec![c1, c2], final_query: "any".into() };
        assert_eq!(validate_witness(&p, &r, &w), ReplayVerdict::DisconnectedStep { index: 1 });
    }
}
